"""Compression-ratio sensitivity study (extension beyond the paper).

Sweeps DGC's sparsification ratio from 0.1% to 25% on GPT2/64 GPUs and
records Espresso's selected strategy and throughput at each point.  The
expected shape: throughput is highest at aggressive ratios and decays as
the ratio grows (more traffic survives); as compression stops paying,
Espresso compresses fewer tensors, and at ratio 1.0-equivalent cost it
would fall back to FP32 — it never does *worse* than FP32 at any ratio,
because "don't compress" is always in its search space.
"""

import functools

from benchmarks.harness import emit, job_for
from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo
from repro.core import Espresso
from repro.utils import render_table

RATIOS = (0.001, 0.01, 0.05, 0.25)


@functools.lru_cache(maxsize=1)
def compute_sweep():
    rows = []
    for ratio in RATIOS:
        job = job_for("gpt2", GCInfo("dgc", {"ratio": ratio}), nvlink_100g_cluster())
        result = Espresso(job).select_strategy()
        throughput = (
            job.model.batch_size
            * job.system.cluster.total_gpus
            / result.iteration_time
        )
        rows.append(
            (
                ratio,
                throughput,
                len(result.compressed_indices),
                result.baseline_iteration_time,
                result.iteration_time,
            )
        )
    return rows


def test_sensitivity_ratio(benchmark):
    rows = compute_sweep()
    benchmark(compute_sweep)

    emit(
        "sensitivity_ratio",
        render_table(
            ["DGC ratio", "Espresso tokens/s", "#compressed", "speedup vs FP32"],
            [
                (
                    f"{ratio * 100:g}%",
                    f"{throughput:,.0f}",
                    compressed,
                    f"{baseline / iteration:.2f}x",
                )
                for ratio, throughput, compressed, baseline, iteration in rows
            ],
            title="Sensitivity — Espresso vs DGC sparsification ratio "
            "(GPT2, 64 GPUs, NVLink)",
        ),
    )

    throughputs = [r[1] for r in rows]
    # Aggressive compression is (weakly) better than mild compression.
    assert throughputs[0] >= throughputs[-1] * 0.98
    # Never worse than FP32 at any ratio.
    for ratio, throughput, compressed, baseline, iteration in rows:
        assert iteration <= baseline + 1e-12, ratio
