"""Fig. 14: CDF of performance difference from the Upper Bound (64 GPUs).

The paper sweeps all GC x model combinations on both testbeds and plots,
per system, the distribution of ``(UpperBound - throughput) / UpperBound``.
Espresso's difference is always below 10%; the baselines' distributions
sit far to the right.  At CI scale we run a representative subset of the
18-combination grid; ``REPRO_BENCH_SCALE=paper`` runs all of it.
"""

import functools

import numpy as np

from benchmarks.harness import emit, job_for, paper_scale
from repro.baselines import ALL_SYSTEMS
from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo
from repro.eval import cdf, upper_bound_gaps
from repro.models import available_models
from repro.utils import render_table

_GCS = {
    "randomk": GCInfo("randomk", {"ratio": 0.01}),
    "dgc": GCInfo("dgc", {"ratio": 0.01}),
    "efsignsgd": GCInfo("efsignsgd"),
}


def _combos():
    if paper_scale():
        return [
            (model, gc_name, testbed)
            for model in available_models()
            for gc_name in _GCS
            for testbed in ("nvlink", "pcie")
        ]
    return [
        ("gpt2", "efsignsgd", "nvlink"),
        ("bert-base", "randomk", "nvlink"),
        ("ugatit", "dgc", "nvlink"),
        ("vgg16", "randomk", "pcie"),
        ("lstm", "efsignsgd", "pcie"),
        ("resnet101", "dgc", "pcie"),
    ]


@functools.lru_cache(maxsize=1)
def compute_gaps():
    gaps = {cls.name: [] for cls in ALL_SYSTEMS}
    for model, gc_name, testbed in _combos():
        cluster = (
            nvlink_100g_cluster() if testbed == "nvlink" else pcie_25g_cluster()
        )
        from repro.models import get_model

        job = job_for(model, _GCS[gc_name], cluster)
        for name, value in upper_bound_gaps(job).items():
            gaps[name].append(value)
    return gaps


def test_fig14_upper_bound_cdf(benchmark):
    gaps = compute_gaps()
    benchmark(compute_gaps)

    rows = []
    for name, values in gaps.items():
        data, _ = cdf(values)
        rows.append(
            (
                name,
                f"{np.median(data):.1f}%",
                f"{np.max(data):.1f}%",
                " ".join(f"{v:.0f}" for v in data),
            )
        )
    emit(
        "fig14_upper_bound_cdf",
        render_table(
            ["System", "median gap", "max gap", "all gaps (%)"],
            rows,
            title="Fig. 14 — performance difference from Upper Bound, 64 GPUs",
        ),
    )

    espresso = np.asarray(gaps["Espresso"])
    # The paper reports < 10% everywhere; our gap is larger on the most
    # compression-heavy combos because the bound charges zero compression
    # cost while our calibrated kernels are relatively slower than the
    # testbed's (see EXPERIMENTS.md).
    assert np.max(espresso) < 25.0
    # Every baseline's median gap is larger than Espresso's.
    for name, values in gaps.items():
        if name != "Espresso":
            assert np.median(values) > np.median(espresso)
