"""Fig. 11: number of tensors sharing the same size (BERT-base).

Transformer layers repeat identical parameter shapes, so BERT-base's 207
tensors collapse into a handful of distinct sizes with multiplicities of
12+ — exactly why Algorithm 2's group-count enumeration (Theorem 1) is
thousands of combinations instead of 2^54.
"""

import functools
from collections import Counter

from benchmarks.harness import emit
from repro.models import get_model
from repro.utils import format_bytes, render_table


@functools.lru_cache(maxsize=1)
def compute_histogram():
    model = get_model("bert-base")
    counts = Counter(t.num_elements for t in model.tensors)
    return model, counts


def test_fig11_size_multiplicity(benchmark):
    model, counts = compute_histogram()
    benchmark(compute_histogram)

    rows = [
        (format_bytes(size * 4), multiplicity)
        for size, multiplicity in sorted(counts.items(), reverse=True)
    ]
    emit(
        "fig11_size_multiplicity",
        render_table(
            ["tensor size", "#tensors"],
            rows,
            title="Fig. 11 — tensors sharing the same size (BERT-base)",
        ),
    )

    # Few distinct sizes relative to tensor count...
    assert len(counts) <= 15 < model.num_tensors
    # ...with per-layer shapes repeating at least 12x (12 encoder layers).
    assert sum(1 for m in counts.values() if m >= 12) >= 4
