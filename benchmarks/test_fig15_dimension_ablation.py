"""Fig. 15: considering all four dimensions beats any crippled three.

VGG16 with 64 GPUs, as in the paper: panels (a)–(c) on the NVLink
testbed with DGC, panel (d) with EF-SignSGD on the PCIe testbed (where
intra-machine compression placement matters).  For every panel, full
Espresso must beat both restricted mechanisms.
"""

import functools

from benchmarks.harness import emit, job_for
from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo
from repro.eval import dimension_ablation
from repro.utils import render_table

_PANELS = {
    1: ("vgg16", GCInfo("dgc", {"ratio": 0.01}), nvlink_100g_cluster()),
    2: ("vgg16", GCInfo("dgc", {"ratio": 0.01}), nvlink_100g_cluster()),
    3: ("vgg16", GCInfo("dgc", {"ratio": 0.01}), nvlink_100g_cluster()),
    4: ("vgg16", GCInfo("efsignsgd"), pcie_25g_cluster()),
}


@functools.lru_cache(maxsize=1)
def compute_panels():
    panels = {}
    for dimension, (model, gc, cluster) in _PANELS.items():
        panels[dimension] = dimension_ablation(job_for(model, gc, cluster), dimension)
    return panels


def test_fig15_dimension_ablation(benchmark):
    panels = compute_panels()
    benchmark(compute_panels)

    lines = []
    for dimension, results in panels.items():
        lines.append(
            render_table(
                ["Mechanism", "scaling factor"],
                [(name, f"{value:.2f}") for name, value in results.items()],
                title=f"Fig. 15 — restrict Dimension {dimension} (VGG16, 64 GPUs)",
            )
        )
    emit("fig15_dimension_ablation", "\n\n".join(lines))

    for dimension, results in panels.items():
        espresso = results["Espresso"]
        for name, value in results.items():
            if name != "Espresso":
                # "Near-optimal": a crippled mechanism may graze the
                # greedy's result, but never beat it by more than a hair.
                assert espresso >= value * 0.99, (dimension, name)
