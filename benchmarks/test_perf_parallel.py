"""Parallel strategy search: serial vs ``--jobs`` selection time.

Times ``Espresso.select_strategy()`` serial and with ``jobs=4`` on the
benchmark presets and merges a ``"parallel"`` section into
``BENCH_planner.json``: model → {serial_ms, parallel_ms, ratio,
requested_jobs, effective_jobs}.  ``jobs=4`` goes through the *default*
path — the worker-pool width is clamped to the host's core count, so on
a single-core CI box the planner transparently runs serial
(``effective_jobs=1``) instead of paying pure time-slicing overhead.
Bit-identical selection is asserted everywhere; the ≤1.2x ratio gate is
enforced only when the pool actually engaged — with the pool disabled
both runs are serial and the ratio is timer noise against itself, so
the gate is skipped and the skip recorded (``ratio_gate``) in the
trajectory file.

No pytest-benchmark fixture on purpose: the interleaved best-of-pairs
measurement below is self-contained, so this file also runs where the
plugin is absent (scripts/check.sh's bench sanity phase).
"""

from __future__ import annotations

import gc
import time

from benchmarks.harness import emit, merge_bench_json, paper_scale
from benchmarks.test_perf_planner import BENCH_PATH, _job
from repro.core import Espresso
from repro.core.parallel import available_cores
from repro.utils import render_table

REQUESTED_JOBS = 4

#: Models with enough candidate-pricing work for the fan-out to matter;
#: the full-zoo timing lives in test_perf_planner.
MODELS = ("gpt2", "bert-base") if paper_scale() else ("vgg16", "gpt2")


def _timed(job, jobs):
    start = time.perf_counter()
    result = Espresso(job, jobs=jobs).select_strategy()
    return (time.perf_counter() - start) * 1e3, result


def _measure(job, pairs=2):
    """Interleaved (serial, parallel, serial, parallel, ...) samples,
    best of each side, gc paused so collections hit neither side."""
    samples = {1: [], REQUESTED_JOBS: []}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(pairs):
            for jobs in (1, REQUESTED_JOBS):
                samples[jobs].append(_timed(job, jobs))
                gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    serial_ms, serial = min(samples[1], key=lambda timed: timed[0])
    parallel_ms, parallel = min(
        samples[REQUESTED_JOBS], key=lambda timed: timed[0]
    )
    return serial_ms, serial, parallel_ms, parallel


def test_perf_parallel():
    records = {}
    for name in MODELS:
        job = _job(name)
        serial_ms, serial, parallel_ms, parallel = _measure(job)
        # The acceptance gate: bit-identical selection for every width.
        assert parallel.strategy.options == serial.strategy.options, name
        assert parallel.iteration_time == serial.iteration_time, name
        records[name] = {
            "serial_ms": round(serial_ms, 1),
            "parallel_ms": round(parallel_ms, 1),
            "ratio": round(parallel_ms / serial_ms, 3),
            "requested_jobs": REQUESTED_JOBS,
            "effective_jobs": parallel.stats.parallel_jobs,
            "fanout_ms": round(parallel.stats.fanout_seconds * 1e3, 1),
            "merge_ms": round(parallel.stats.merge_seconds * 1e3, 1),
            # Why the run stayed serial, if it did: "effective_jobs: 1"
            # with no reason recorded is exactly the mystery this
            # section once shipped (a 1-core clamp looks identical to a
            # broken pool).  None when the fan-out actually engaged.
            "disabled_reason": parallel.stats.parallel_disabled_reason,
        }
        # With the pool disabled both timed runs are *serial* — the
        # ratio compares two samples of the same computation, and on a
        # short selection timer noise alone breaches any gate.  Record
        # the gate's status so the trajectory file says whether the
        # ratio below was ever a serial-vs-parallel comparison.
        records[name]["ratio_gate"] = (
            "skipped: pool disabled"
            if records[name]["disabled_reason"]
            else "enforced"
        )

    merge_bench_json(BENCH_PATH, {"parallel": records})

    table = render_table(
        ["Model", "serial", f"--jobs {REQUESTED_JOBS}", "ratio", "effective"],
        [
            (
                name,
                f"{rec['serial_ms']:,.0f} ms",
                f"{rec['parallel_ms']:,.0f} ms",
                f"{rec['ratio']:.2f}x",
                f"{rec['effective_jobs']}/{rec['requested_jobs']}",
            )
            for name, rec in records.items()
        ],
        title=(
            f"Parallel strategy search ({available_cores()} core(s) "
            "available)"
        ),
    )
    emit("perf_parallel", table)

    for name, rec in records.items():
        assert 1 <= rec["effective_jobs"] <= REQUESTED_JOBS, (name, rec)
        if rec["disabled_reason"]:
            # 1-core host: the pool was disabled and both runs were
            # serial, so the ratio is noise-vs-noise — nothing to gate.
            # The bit-identity assertions above still ran, and the
            # skip is recorded in BENCH_planner.json's ratio_gate.
            continue
        # Requesting workers must never cost real time: either the
        # clamp keeps the run serial, or the fan-out pays for itself.
        # 1.2x of headroom absorbs timer noise on short selections.
        assert rec["ratio"] <= 1.2, (name, rec)
