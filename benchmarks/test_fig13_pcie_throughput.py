"""Fig. 13: throughput on PCIe-only machines + 25 Gbps Ethernet.

Three panels — VGG16+Random-k, LSTM+EF-SignSGD, ResNet101+DGC.  Shape
checks from §5.2.3:

* Espresso wins everywhere (it alone also attacks the intra-machine
  bottleneck);
* VGG16 is extremely communication-bound: Espresso improves over FP32 by
  multiples (paper: +269%);
* ResNet101 is *not* communication-intensive (FP32 scaling factor well
  above VGG16's) and over-compressing baselines can lose to FP32 there
  in the paper; in our model they must at least show far smaller gains
  than on VGG16.
"""

import functools

from benchmarks.harness import FIG13_CASES, emit, machine_counts, run_case
from repro.baselines import ALL_SYSTEMS
from repro.cluster import pcie_25g_cluster
from repro.utils import render_table


@functools.lru_cache(maxsize=1)
def compute_sweep():
    results = {}
    for model_name, gc in FIG13_CASES:
        for machines in machine_counts():
            cluster = pcie_25g_cluster(num_machines=machines)
            for system_cls in ALL_SYSTEMS:
                result = run_case(system_cls, model_name, gc, cluster)
                results[(model_name, cluster.total_gpus, result.name)] = result
    return results


def test_fig13_pcie_throughput(benchmark):
    results = compute_sweep()
    benchmark(compute_sweep)

    names = [cls.name for cls in ALL_SYSTEMS]
    lines = []
    for model_name, gc in FIG13_CASES:
        rows = []
        for machines in machine_counts():
            gpus = machines * 8
            rows.append(
                [gpus]
                + [f"{results[(model_name, gpus, n)].throughput:,.0f}" for n in names]
            )
        lines.append(
            render_table(
                ["GPUs"] + names,
                rows,
                title=f"Fig. 13 — {model_name} + {gc.algorithm} "
                f"(PCIe, 25 Gbps), samples/s",
            )
        )
    emit("fig13_pcie_throughput", "\n\n".join(lines))

    top = max(machine_counts()) * 8
    for model_name, _ in FIG13_CASES:
        espresso = results[(model_name, top, "Espresso")].throughput
        for name in names:
            assert espresso >= results[(model_name, top, name)].throughput - 1e-6

    # VGG16 is the communication-bound extreme: multiples over FP32.
    vgg_gain = (
        results[("vgg16", top, "Espresso")].throughput
        / results[("vgg16", top, "FP32")].throughput
    )
    assert vgg_gain > 2.0
    # ResNet101 is compute-friendly: FP32 scales much better than VGG16's
    # FP32, and GC's headroom is correspondingly smaller.
    assert (
        results[("resnet101", top, "FP32")].scaling_factor
        > results[("vgg16", top, "FP32")].scaling_factor * 1.5
    )
    resnet_gain = (
        results[("resnet101", top, "Espresso")].throughput
        / results[("resnet101", top, "FP32")].throughput
    )
    assert resnet_gain < vgg_gain
