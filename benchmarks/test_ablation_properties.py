"""Design-choice ablations called out in DESIGN.md.

Beyond the paper's Fig. 15, these ablate Espresso's own algorithmic
ingredients on a representative job:

* Property #1 — bubble-based elimination: disabling it must not change
  the *quality* of the result (it is a pruning rule), only the work done;
* Property #2 — size-descending prioritization vs plain backprop order;
* Lemma 1 — offloading the farthest-from-output tensors vs offloading
  the nearest (the anti-Lemma order must never win);
* candidate prefiltering — the fast search must stay within a few
  percent of the unfiltered greedy.
"""

import functools

from benchmarks.harness import emit, job_for
from repro.cluster import pcie_25g_cluster
from repro.config import GCInfo
from repro.core.algorithm import (
    device_candidate_options,
    gpu_compression_decision,
)
from repro.core.offload import apply_offload_counts, cpu_offload_decision, offload_groups
from repro.core.strategy import StrategyEvaluator
from repro.utils import render_table


@functools.lru_cache(maxsize=1)
def compute():
    job = job_for("vgg16", GCInfo("dgc", {"ratio": 0.01}),
                  pcie_25g_cluster(num_machines=4))
    results = {}

    # Property #1: with vs without bubble elimination.
    ev = StrategyEvaluator(job)
    with_bubbles = gpu_compression_decision(ev)
    ev2 = StrategyEvaluator(job)
    without_bubbles = gpu_compression_decision(ev2, min_bubble=float("inf"))
    results["bubble-elimination"] = (
        with_bubbles.iteration_time,
        without_bubbles.iteration_time,
        with_bubbles.evaluations,
        without_bubbles.evaluations,
    )

    # Lemma 1: offload farthest-first vs nearest-first.
    strategy = with_bubbles.strategy
    ev3 = StrategyEvaluator(job)
    offload = cpu_offload_decision(ev3, strategy)
    groups = offload.groups
    if any(offload.counts):
        reversed_groups = [
            type(g)(size=g.size, option=g.option, members=tuple(reversed(g.members)))
            for g in groups
        ]
        anti = apply_offload_counts(strategy, reversed_groups, offload.counts)
        anti_time = ev3.iteration_time(anti)
    else:
        anti_time = offload.iteration_time
    results["lemma1-order"] = (offload.iteration_time, anti_time)

    # Prefilter: exact greedy vs the default filtered one.
    ev4 = StrategyEvaluator(job)
    exact = gpu_compression_decision(
        ev4, candidates=device_candidate_options(), prefilter_per_device=0
    )
    results["prefilter"] = (
        with_bubbles.iteration_time,
        exact.iteration_time,
        with_bubbles.evaluations,
        exact.evaluations,
    )
    return results


def test_ablation_properties(benchmark):
    results = compute()
    benchmark(compute)

    bubble = results["bubble-elimination"]
    lemma = results["lemma1-order"]
    prefilter = results["prefilter"]
    emit(
        "ablation_properties",
        render_table(
            ["ablation", "default", "ablated", "note"],
            [
                (
                    "bubble elimination (Property #1)",
                    f"{bubble[0] * 1e3:.1f} ms / {bubble[2]} evals",
                    f"{bubble[1] * 1e3:.1f} ms / {bubble[3]} evals",
                    "same quality, fewer evaluations",
                ),
                (
                    "Lemma-1 offload order",
                    f"{lemma[0] * 1e3:.1f} ms",
                    f"{lemma[1] * 1e3:.1f} ms (nearest-first)",
                    "anti-order never wins",
                ),
                (
                    "candidate prefilter",
                    f"{prefilter[0] * 1e3:.1f} ms / {prefilter[2]} evals",
                    f"{prefilter[1] * 1e3:.1f} ms / {prefilter[3]} evals",
                    "filtered stays within a few % of exact",
                ),
            ],
            title="Design-choice ablations (VGG16 + DGC, PCIe, 32 GPUs)",
        ),
    )

    # Property #1 prunes work without hurting quality materially.
    assert bubble[0] <= bubble[1] * 1.05
    # Lemma 1's order is at least as good as the reversed order.
    assert lemma[0] <= lemma[1] + 1e-12
    # Prefilter costs at most a few percent of quality, saves many evals.
    assert prefilter[0] <= prefilter[1] * 1.05
    assert prefilter[2] < prefilter[3]
