"""Fig. 9: communication bubbles and the compression-order insights.

(a) Tensors communicated before a bubble gain nothing from compression;
(b) compressing a tensor can open a *new* bubble; (c) of two same-size
tensors, compressing the one closer to the output layer (computed later
in backprop) reduces the iteration more.
"""

import functools

from benchmarks.harness import emit
from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.bubbles import communication_bubbles, tensors_before_bubbles
from repro.core.options import Device
from repro.core.presets import inter_allgather_option
from repro.core.strategy import StrategyEvaluator
from repro.models import synthetic_model
from repro.utils import MB, MS, render_table


@functools.lru_cache(maxsize=1)
def compute():
    # T0 small & early; T1/T2 same size, T2 computed last (closest to the
    # output layer per the paper's convention).
    model = synthetic_model(
        "fig9",
        [
            (int(8 * MB / 4), 2 * MS),
            (int(96 * MB / 4), 40 * MS),
            (int(96 * MB / 4), 10 * MS),
        ],
        forward_time=10 * MS,
    )
    job = JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster(num_machines=8)),
    )
    evaluator = StrategyEvaluator(job)
    baseline = evaluator.baseline()
    option = inter_allgather_option(Device.GPU)

    timeline = evaluator.timeline(baseline)
    shielded = tensors_before_bubbles(timeline)
    base_time = evaluator.iteration_time(baseline)
    t0_time = evaluator.iteration_time(baseline.replace(0, option))
    t1_time = evaluator.iteration_time(baseline.replace(1, option))
    t2_time = evaluator.iteration_time(baseline.replace(2, option))
    bubbles_after_t2 = communication_bubbles(
        evaluator.timeline(baseline.replace(2, option))
    )
    return {
        "shielded": shielded,
        "base": base_time,
        "compress_t0": t0_time,
        "compress_t1": t1_time,
        "compress_t2": t2_time,
        "new_bubbles": bubbles_after_t2,
    }


def test_fig9_bubbles(benchmark):
    r = compute()
    benchmark(compute)

    emit(
        "fig9_bubbles",
        render_table(
            ["scenario", "iteration"],
            [
                ("baseline", f"{r['base'] * 1e3:.1f} ms"),
                ("compress T0 (before bubble)", f"{r['compress_t0'] * 1e3:.1f} ms"),
                ("compress T1 (same size as T2)", f"{r['compress_t1'] * 1e3:.1f} ms"),
                ("compress T2 (closest to output)", f"{r['compress_t2'] * 1e3:.1f} ms"),
            ],
            title=f"Fig. 9 — bubbles rule out T0 (shielded={sorted(r['shielded'])})",
        ),
    )

    # (a) T0 is communicated before a bubble and gains nothing.
    assert 0 in r["shielded"]
    assert r["compress_t0"] >= r["base"] - 1e-9
    # (c) Compressing T2 (computed last) beats compressing T1.
    assert r["compress_t2"] < r["compress_t1"]
    assert r["compress_t2"] < r["base"]
    # (b) Compressing can open new bubbles somewhere on the links.
    assert r["new_bubbles"]
