"""Table 4: characteristics of the benchmark DNN models.

Paper: VGG16 528 MB / ResNet101 170 MB / UGATIT 2559 MB / BERT-base
420 MB / GPT2 475 MB / LSTM 328 MB, with the batch sizes and datasets
listed in the caption; Table 5 additionally fixes the tensor counts
(32 / 314 / 148 / 207 / 148 / 10).
"""

import functools

from benchmarks.harness import emit
from repro.models import available_models, get_model
from repro.utils import render_table

PAPER = {
    "vgg16": (528, 32, "32 images"),
    "resnet101": (170, 314, "32 images"),
    "ugatit": (2559, 148, "2 images"),
    "bert-base": (420, 207, "1024 tokens"),
    "gpt2": (475, 148, "80 tokens"),
    "lstm": (328, 10, "80 tokens"),
}


@functools.lru_cache(maxsize=1)
def build_rows():
    return [
        (name, get_model(name)) for name in available_models()
    ]


def test_table4_model_zoo(benchmark):
    rows = benchmark(build_rows)
    table = render_table(
        ["Model", "Dataset", "Batch", "Size", "paper size", "#tensors"],
        [
            (
                name,
                model.dataset,
                f"{model.batch_size} {model.sample_unit}",
                f"{model.size_mb:.0f} MB",
                f"{PAPER[name][0]} MB",
                model.num_tensors,
            )
            for name, model in rows
        ],
        title="Table 4 — benchmark model characteristics",
    )
    emit("table4_model_zoo", table)

    for name, model in rows:
        paper_mb, paper_tensors, paper_batch = PAPER[name]
        assert model.num_tensors == paper_tensors, name
        assert abs(model.size_mb - paper_mb) / paper_mb < 0.06, name
        assert paper_batch.startswith(str(model.batch_size))
