"""Fig. 10: the benefit ratio of GPU compression grows with tensor size.

Benefit ratio = (communication time saved by compressing) divided by
(compression + decompression time incurred), for a lone tensor on the
64-GPU NVLink testbed.  The constant kernel-launch overhead makes GPU
compression a net loss for small tensors and increasingly profitable for
large ones — the basis of Property #2's size-descending ordering.
"""

import functools

from benchmarks.harness import emit
from repro.cluster import nvlink_100g_cluster
from repro.compression import DGC
from repro.core.options import Device
from repro.core.plan import PlanCompiler
from repro.core.presets import inter_alltoall_option
from repro.core.options import no_compression_option
from repro.profiling import v100_gpu, xeon_cpu
from repro.utils import KB, MB, format_bytes, render_table

SIZES = [16 * KB, 64 * KB, 256 * KB, MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB]


@functools.lru_cache(maxsize=1)
def compute_ratios():
    compiler = PlanCompiler(
        cluster=nvlink_100g_cluster(),
        compressor=DGC(ratio=0.01),
        gpu=v100_gpu(),
        cpu=xeon_cpu(),
    )
    plain_option = no_compression_option()
    # The divisible compressed scheme has the same latency rounds as the
    # FP32 allreduce, so the saved communication is purely the bandwidth
    # term (proportional to size) while the incurred compression cost has
    # a constant kernel-launch floor — the paper's Fig. 10 mechanism.
    gpu_option = inter_alltoall_option(Device.GPU)
    ratios = []
    for nbytes in SIZES:
        elements = nbytes // 4
        plain = sum(
            s.duration for s in compiler.stages(plain_option, elements)
        )
        stages = compiler.stages(gpu_option, elements)
        comm = sum(s.duration for s in stages if s.kind == "comm")
        comp = sum(s.duration for s in stages if s.kind != "comm")
        ratios.append((nbytes, (plain - comm) / comp))
    return ratios


def test_fig10_benefit_ratio(benchmark):
    ratios = compute_ratios()
    benchmark(compute_ratios)

    emit(
        "fig10_benefit_ratio",
        render_table(
            ["tensor size", "benefit ratio"],
            [(format_bytes(n), f"{r:.2f}") for n, r in ratios],
            title="Fig. 10 — benefit ratio of GPU compression (DGC 1%, 64 GPUs)",
        ),
    )

    values = [r for _, r in ratios]
    # Monotonically non-decreasing in size.
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    # Small tensors lose, large tensors win: the curve crosses 1.
    assert values[0] < 1.0
    assert values[-1] > 1.0
