"""Planner selection-time trajectory: the fast evaluation layer's win.

Times ``Espresso.select_strategy()`` across the six zoo models on the
paper's 8-machine NVLink testbed and writes ``BENCH_planner.json`` at
the repo root (the perf-trajectory seed): model → {selection_ms,
evaluations, cache_hit_rate}.  For BERT-base it additionally measures
the before/after of the fast evaluation layer — ``fast_eval=False``
replays every F(S) from scratch, which is what the planner did before
the incremental engine existed — and asserts the layer's speedup while
checking the selected strategy is bit-identical either way.
"""

from __future__ import annotations

import functools
import gc
import json
import time
from pathlib import Path

import pytest

from benchmarks.harness import emit, merge_bench_json, paper_scale
from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core import Espresso
from repro.models import available_models
from repro.utils import render_table

BENCH_PATH = Path(__file__).parent.parent / "BENCH_planner.json"

# The committed trajectory baseline, captured at import — before
# test_perf_planner merges this run's numbers into the same file — so
# the regression gate always compares against what was checked in.
_COMMITTED: dict = (
    json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
)


def _job(model_name: str) -> JobConfig:
    from repro.models import get_model

    return JobConfig(
        model=get_model(model_name),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster()),
    )


def _timed_selection(job: JobConfig, fast_eval: bool):
    start = time.perf_counter()
    result = Espresso(job, fast_eval=fast_eval).select_strategy()
    return (time.perf_counter() - start) * 1e3, result


@functools.lru_cache(maxsize=1)
def compute_records():
    records = {}
    for name in available_models():
        # Two samples, best one recorded — the same least-noise
        # estimator the before/after comparison below uses.  Selection
        # is deterministic, so the samples differ only by scheduler and
        # CPU-steal noise, which a single sample would bake into the
        # trajectory file on a shared host.
        ms, result = min(
            (_timed_selection(_job(name), fast_eval=True) for _ in range(2)),
            key=lambda timed: timed[0],
        )
        stats = result.stats
        records[name] = {
            "selection_ms": round(ms, 1),
            "evaluations": stats.fs_calls,
            # Answered-without-simulation rate (memo + dedup + lower-bound
            # prunes); memo_hit_rate is the narrow memo-only metric.
            "cache_hit_rate": round(stats.cache_hit_rate, 4),
            "memo_hit_rate": round(stats.memo_hit_rate, 4),
            "prefix_reuse_fraction": round(stats.prefix_reuse_fraction, 4),
            "iteration_time": result.iteration_time,
        }

    # Before/after of the fast evaluation layer on BERT-base, measured
    # in this very process.  Samples are interleaved (slow, fast, slow,
    # fast, ...) so thermal drift and noisy neighbours hit both sides
    # equally, gc is paused around each timed run for the same reason,
    # and each side reports its best sample.
    job = _job("bert-base")
    pairs = 2 if not paper_scale() else 3
    samples = {True: [], False: []}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(pairs):
            for fast_eval in (False, True):
                samples[fast_eval].append(_timed_selection(job, fast_eval))
                gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    after_ms, after = min(samples[True], key=lambda timed: timed[0])
    before_ms, before = min(samples[False], key=lambda timed: timed[0])
    assert after.iteration_time == before.iteration_time
    assert after.strategy.options == before.strategy.options
    # ``after`` measures the same quantity as bert's selection_ms (a
    # fast-path selection), so its interleaved samples sharpen the
    # best-sample estimate for free.
    if after_ms < records["bert-base"]["selection_ms"]:
        records["bert-base"]["selection_ms"] = round(after_ms, 1)
    records["bert-base"].update(
        {
            "before_ms": round(before_ms, 1),
            "after_ms": round(after_ms, 1),
            "speedup": round(before_ms / after_ms, 2),
        }
    )
    return records


def test_perf_planner(benchmark):
    records = compute_records()
    benchmark(compute_records)

    # Merge, don't clobber: test_perf_parallel contributes a "parallel"
    # section to the same trajectory file.
    merge_bench_json(BENCH_PATH, records)

    table = render_table(
        ["Model", "selection", "F(S) calls", "cache hits", "prefix reuse"],
        [
            (
                name,
                f"{rec['selection_ms']:,.0f} ms",
                f"{rec['evaluations']:,}",
                f"{rec['cache_hit_rate']:.1%}",
                f"{rec['prefix_reuse_fraction']:.1%}",
            )
            for name, rec in records.items()
        ],
        title="Planner selection time (fast evaluation layer on)",
    )
    bert = records["bert-base"]
    table += (
        f"\nBERT-base fast evaluation layer: "
        f"{bert['before_ms']:,.0f} ms -> {bert['after_ms']:,.0f} ms "
        f"({bert['speedup']:.2f}x)"
    )
    emit("perf_planner", table)

    for name, rec in records.items():
        # Selection stays interactive for every model (paper: <0.2 s;
        # pure Python is slower but the same order of usability).
        assert rec["selection_ms"] < 60_000, name
        assert rec["evaluations"] > 0, name
        assert 0.0 <= rec["cache_hit_rate"] <= 1.0, name
    # The deep homogeneous models are where the answered-without-
    # simulation rate once collapsed to ~0 (the memo-only metric decays
    # with depth: any accepted decision changes every full-chain key);
    # dedup + sound pruning keep the honest rate well above this floor.
    for name in ("resnet101", "bert-base", "gpt2"):
        assert records[name]["cache_hit_rate"] > 0.05, (name, records[name])
    # The incremental engine must deliver a real speedup on the model
    # with the largest refinement churn.  Measured ~3x on an idle
    # machine; the bound leaves headroom for noisy CI neighbours.
    assert bert["speedup"] >= 2.0, bert


#: Fusion benchmark coverage: the full zoo at paper scale, the three
#: models with the largest launch-overhead exposure in CI.
FUSION_MODELS = (
    tuple(available_models())
    if paper_scale()
    else ("vgg16", "gpt2", "bert-base")
)


@functools.lru_cache(maxsize=1)
def fusion_records():
    from repro.core import FusionPlanner

    records = {}
    for name in FUSION_MODELS:
        job = _job(name)
        start = time.perf_counter()
        result = FusionPlanner(job).select_strategy()
        ms = (time.perf_counter() - start) * 1e3
        records[name] = {
            "selection_ms": round(ms, 1),
            "candidates": len(result.candidates),
            "groups": result.plan.num_groups,
            "num_tensors": result.plan.num_tensors,
            "iteration_time": result.iteration_time,
            "no_fusion_iteration_time": result.no_fusion_time,
            "delta_pct": round(result.improvement_over_no_fusion * 100, 3),
        }
    return records


def test_perf_fusion():
    """Joint boundary+option search: selection cost and iteration win.

    Emits the ``"fusion"`` section of BENCH_planner.json: per model, the
    fusion planner's selection time and the simulated-iteration-time
    delta against the best no-fusion plan (the EXPERIMENTS.md table).
    """
    records = fusion_records()
    merge_bench_json(BENCH_PATH, {"fusion": records})

    table = render_table(
        ["Model", "selection", "groups", "iteration", "vs no fusion"],
        [
            (
                name,
                f"{rec['selection_ms']:,.0f} ms",
                f"{rec['groups']}/{rec['num_tensors']}",
                f"{rec['iteration_time'] * 1e3:.2f} ms",
                f"{rec['delta_pct']:+.2f}%",
            )
            for name, rec in records.items()
        ],
        title="Fusion-aware planning (joint boundaries + options)",
    )
    emit("perf_fusion", table)

    for name, rec in records.items():
        # The no-fusion plan is always in the candidate portfolio, so
        # fusion-aware planning can never lose to per-tensor planning.
        assert rec["iteration_time"] <= rec["no_fusion_iteration_time"], name
        assert 1 <= rec["groups"] <= rec["num_tensors"], name
        assert rec["selection_ms"] < 120_000, name
    # Fusion must deliver a real win on most of the covered models (the
    # acceptance bar: >= 3 zoo models at paper scale).
    improved = sum(1 for rec in records.values() if rec["delta_pct"] > 0)
    assert improved >= (3 if paper_scale() else 2), records


#: Ratio-ladder benchmark coverage: bert-base is the gate model (the
#: deepest zoo model, the one where the doubled portfolio pipeline is
#: most expensive); at paper scale the sweep covers the full zoo.
RATIO_MODELS = (
    tuple(available_models()) if paper_scale() else ("bert-base",)
)


@functools.lru_cache(maxsize=1)
def ratio_records():
    from repro.core.options import DEFAULT_RATIO_LADDER

    records = {}
    for name in RATIO_MODELS:
        job = _job(name)
        start = time.perf_counter()
        result = Espresso(
            job, ratios=DEFAULT_RATIO_LADDER
        ).select_strategy()
        ms = (time.perf_counter() - start) * 1e3
        stats = result.stats
        pins = [r for r in result.ratio_schedule if r is not None]
        records[name] = {
            "selection_ms": round(ms, 1),
            "ladder": list(DEFAULT_RATIO_LADDER),
            "pinned_tensors": len(pins),
            "iteration_time": result.iteration_time,
            "fixed_iteration_time": result.fixed_ratio_iteration_time,
            "improvement_pct": round(
                (1.0 - result.iteration_time
                 / result.fixed_ratio_iteration_time) * 100, 3,
            ),
            "cache_hit_rate": round(stats.cache_hit_rate, 4),
            "memo_hit_rate": round(stats.memo_hit_rate, 4),
        }
    return records


def test_perf_ratio():
    """Ratio ladder as a planner dimension: selection cost + portfolio.

    Emits the ``"ratio"`` section of BENCH_planner.json: per model, the
    laddered selection time and the simulated-iteration delta against
    the fixed-ratio plan the ladder generalizes.
    """
    records = ratio_records()
    merge_bench_json(BENCH_PATH, {"ratio": records})

    table = render_table(
        ["Model", "selection", "pinned", "iteration", "vs fixed ratio"],
        [
            (
                name,
                f"{rec['selection_ms']:,.0f} ms",
                f"{rec['pinned_tensors']}",
                f"{rec['iteration_time'] * 1e3:.2f} ms",
                f"{rec['improvement_pct']:+.2f}%",
            )
            for name, rec in records.items()
        ],
        title="Ratio-laddered planning (portfolio vs fixed ratio)",
    )
    emit("perf_ratio", table)

    for name, rec in records.items():
        # Portfolio guarantee: the ladder never loses to fixed ratio.
        assert rec["iteration_time"] <= rec["fixed_iteration_time"], name
        assert rec["selection_ms"] < 120_000, name
        # Satellite regression floor: the honest answered-without-
        # simulation rate must not re-collapse to ~0 on the laddered
        # double pipeline (the shared evaluator keeps the fixed-ratio
        # pass warm, so the laddered rate sits above the plain one).
        assert rec["cache_hit_rate"] > 0.05, (name, rec)
        assert 0.0 <= rec["memo_hit_rate"] <= rec["cache_hit_rate"], name


@pytest.mark.bench_regression
def test_ratio_selection_time_no_regression():
    """CI gate: bert-base *laddered* selection must not regress >25% vs
    the committed ``ratio`` section of BENCH_planner.json."""
    committed = (
        _COMMITTED.get("ratio", {}).get("bert-base", {}).get("selection_ms")
    )
    if committed is None:
        pytest.skip("no committed laddered bert-base baseline")
    measured = ratio_records()["bert-base"]["selection_ms"]
    assert measured <= committed * 1.25, (
        f"laddered bert-base selection regressed: {measured:.1f} ms vs "
        f"committed {committed:.1f} ms "
        f"(+{measured / committed - 1.0:.0%}, gate +25%)"
    )


@pytest.mark.bench_regression
def test_selection_time_no_regression():
    """CI gate: bert-base selection must not regress >25% vs the
    committed BENCH_planner.json baseline.

    The committed number is the trajectory this repo's perf work is
    measured against; a slow PR should fail here, loudly.  The 25%
    allowance absorbs host-to-host variation; on hosts too noisy even
    for that, deselect with ``-m 'not bench_regression'``.
    """
    committed = _COMMITTED.get("bert-base", {}).get("selection_ms")
    if committed is None:
        pytest.skip("no committed bert-base baseline to compare against")
    measured = compute_records()["bert-base"]["selection_ms"]
    assert measured <= committed * 1.25, (
        f"bert-base selection regressed: {measured:.1f} ms vs committed "
        f"{committed:.1f} ms (+{measured / committed - 1.0:.0%}, gate +25%)"
    )
