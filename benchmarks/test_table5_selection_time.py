"""Table 5: time to select compression strategies, per model.

Paper (8 NVLink machines): Espresso needs 1–179 ms while brute force
needs > 24 h for every model.  Our pure-Python planner is slower than
the paper's implementation, but the qualitative claim is the same:
selection completes within a handful of training iterations, while the
extrapolated |C|^N brute force is astronomical (> 24 h even for LSTM's
10 tensors).
"""

import functools

from benchmarks.harness import emit, paper_scale
from repro.baselines.bruteforce import (
    estimate_search_seconds,
    measure_evaluation_seconds,
)
from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core import Espresso
from repro.core.strategy import StrategyEvaluator
from repro.core.tree import search_space_size
from repro.models import available_models, get_model
from repro.utils import format_seconds, render_table

PAPER_MS = {
    "vgg16": 17,
    "resnet101": 179,
    "ugatit": 84,
    "bert-base": 125,
    "gpt2": 99,
    "lstm": 1,
}


def _models():
    if paper_scale():
        return list(available_models())
    # CI scale: skip the two slowest planners (largest tensor counts).
    return ["vgg16", "ugatit", "gpt2", "lstm"]


@functools.lru_cache(maxsize=1)
def compute_rows():
    gc = GCInfo("dgc", {"ratio": 0.01})
    cluster = nvlink_100g_cluster()
    num_options = search_space_size("independent")
    rows = []
    for name in _models():
        job = JobConfig(model=get_model(name), gc=gc, system=SystemInfo(cluster=cluster))
        result = Espresso(job).select_strategy()
        per_eval = measure_evaluation_seconds(StrategyEvaluator(job), samples=5)
        brute = estimate_search_seconds(
            job.model.num_tensors, num_options, per_eval
        )
        rows.append(
            (name, job.model.num_tensors, result.selection_seconds, brute)
        )
    return rows


def test_table5_selection_time(benchmark):
    rows = compute_rows()
    benchmark(compute_rows)

    table = render_table(
        ["Model", "#tensors", "Espresso", "paper Espresso", "Brute force (extrapolated)"],
        [
            (
                name,
                tensors,
                format_seconds(seconds),
                f"{PAPER_MS[name]} ms",
                "> 24h" if brute > 24 * 3600 else format_seconds(brute),
            )
            for name, tensors, seconds, brute in rows
        ],
        title="Table 5 — time to select compression strategies",
    )
    emit("table5_selection_time", table)

    for name, tensors, seconds, brute in rows:
        # Espresso: tractable (well under two minutes even in Python).
        assert seconds < 120, name
        # Brute force: astronomically intractable for every model.
        assert brute > 24 * 3600, name
    # Selection time grows with tensor count (LSTM fastest).
    by_name = {r[0]: r[2] for r in rows}
    assert by_name["lstm"] == min(by_name.values())
