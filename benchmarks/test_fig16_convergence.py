"""Fig. 16: model accuracy is preserved while training runs faster.

The paper fine-tunes BERT (F1) and trains ResNet101 (Top-1) with and
without GC, showing near-identical accuracy and 1.23–1.55x speedups.
We run the same protocol on the numpy data-parallel engine: identical
seeds, FP32 vs DGC vs Random-k (with error feedback), 8 workers; the
per-iteration wall clock of each scheme comes from the 64-GPU ResNet101
simulation, so the speedup axis is the DDL system's, not the laptop's.
"""

import functools

from benchmarks.harness import emit, job_for
from repro.cluster import nvlink_100g_cluster
from repro.compression import create_compressor
from repro.config import GCInfo
from repro.core import Espresso
from repro.core.strategy import StrategyEvaluator
from repro.training import DataParallelTrainer, make_classification
from repro.utils import render_table

STEPS = 400


STEP_TIME_MODEL = "bert-base"


@functools.lru_cache(maxsize=1)
def compute_curves():
    dataset = make_classification(
        samples=2400, features=40, classes=6, noise=2.4, seed=9
    )
    fp32_job = job_for(
        STEP_TIME_MODEL, GCInfo("dgc", {"ratio": 0.01}), nvlink_100g_cluster()
    )
    fp32_evaluator = StrategyEvaluator(fp32_job)
    fp32_step = fp32_evaluator.iteration_time(fp32_evaluator.baseline())

    rows = {}
    for label, algorithm, params in (
        ("FP32", "none", {}),
        ("DGC 1%", "dgc", {"ratio": 0.01}),
        ("Random-k 5%", "randomk", {"ratio": 0.05}),
        ("EF-SignSGD", "efsignsgd", {}),
    ):
        if algorithm == "none":
            step_seconds = fp32_step
        else:
            job = job_for(
                STEP_TIME_MODEL, GCInfo(algorithm, params), nvlink_100g_cluster()
            )
            step_seconds = Espresso(job).select_strategy().iteration_time
        trainer = DataParallelTrainer(
            dataset,
            compressor=create_compressor(algorithm, **params),
            workers=8,
            seed=5,
            momentum=0.5,
            step_seconds=step_seconds,
        )
        curve = trainer.train(STEPS, eval_every=50)
        rows[label] = (curve.final_accuracy, step_seconds)
    return rows


def test_fig16_convergence(benchmark):
    rows = compute_curves()
    benchmark(compute_curves)

    fp32_accuracy, fp32_step = rows["FP32"]
    emit(
        "fig16_convergence",
        render_table(
            ["Scheme", "final accuracy", "iteration", "speedup vs FP32"],
            [
                (
                    label,
                    f"{accuracy * 100:.1f}%",
                    f"{step * 1e3:.1f} ms",
                    f"{fp32_step / step:.2f}x",
                )
                for label, (accuracy, step) in rows.items()
            ],
            title=f"Fig. 16 — accuracy and speedup after {STEPS} steps, 8 workers",
        ),
    )

    for label, (accuracy, step) in rows.items():
        if label == "FP32":
            continue
        # Accuracy preserved within ~2 points (paper: within ~0.1).
        assert accuracy >= fp32_accuracy - 0.02, label
        # And iterations are meaningfully faster (paper: 1.23x-1.55x).
        assert fp32_step / step > 1.15, label
