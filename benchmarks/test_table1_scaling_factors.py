"""Table 1: scaling factors of naive all-tensor GC vs FP32 (64 GPUs).

Paper rows (8 machines x 8 GPUs):

    GPT2       NVLink+100G  FP32 0.58 | GC-GPU 0.67 (+15%) | GC-CPU 0.64 (+10%)
    BERT-base  NVLink+100G  FP32 0.51 | GC-GPU 0.55 (+8%)  | GC-CPU 0.61 (+20%)
    LSTM       PCIe+25G     FP32 0.46 | GC-GPU 0.43 (-6%)  | GC-CPU 0.42 (-9%)

"GC with GPU/CPU" is the naive policy of §2.3/§3: compress *every*
tensor for inter-machine communication (indivisible Allgather), on one
device, ignoring interactions.  Shape checks: FP32 scaling factors land
near the paper's; naive GC brings at best modest gains — nowhere near
ideal scaling — which is the motivation for Espresso.  (Known
divergence, recorded in EXPERIMENTS.md: the paper measures a small
*regression* for LSTM-on-PCIe that our cost model renders as a modest
gain instead.)
"""

import functools

from benchmarks.harness import emit
from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.options import Device
from repro.core.presets import inter_allgather_option
from repro.core.strategy import CompressionStrategy, StrategyEvaluator
from repro.models import get_model
from repro.utils import render_table

ROWS = (
    ("gpt2", GCInfo("dgc", {"ratio": 0.01}), nvlink_100g_cluster(), 0.58),
    ("bert-base", GCInfo("efsignsgd"), nvlink_100g_cluster(), 0.51),
    ("lstm", GCInfo("dgc", {"ratio": 0.01}), pcie_25g_cluster(), 0.46),
)


@functools.lru_cache(maxsize=1)
def compute_rows():
    results = []
    for model_name, gc, cluster, paper_fp32 in ROWS:
        job = JobConfig(
            model=get_model(model_name), gc=gc, system=SystemInfo(cluster=cluster)
        )
        evaluator = StrategyEvaluator(job)
        n = job.model.num_tensors
        fp32 = evaluator.scaling_factor(evaluator.baseline())
        gpu = evaluator.scaling_factor(
            CompressionStrategy(options=(inter_allgather_option(Device.GPU),) * n)
        )
        cpu = evaluator.scaling_factor(
            CompressionStrategy(options=(inter_allgather_option(Device.CPU),) * n)
        )
        results.append((model_name, cluster.interconnect, fp32, gpu, cpu, paper_fp32))
    return results


def test_table1_scaling_factors(benchmark):
    rows = compute_rows()
    benchmark(compute_rows)

    table = render_table(
        ["Model", "Networks", "FP32", "GC w/ GPU", "GC w/ CPU", "paper FP32"],
        [
            (m, net, f"{fp32:.2f}", f"{gpu:.2f}", f"{cpu:.2f}", f"{paper:.2f}")
            for m, net, fp32, gpu, cpu, paper in rows
        ],
        title="Table 1 — scaling factors with 64 GPUs (naive all-tensor GC)",
    )
    emit("table1_scaling_factors", table)

    by_model = {m: (fp32, gpu, cpu) for m, _, fp32, gpu, cpu, _ in rows}
    # FP32 scaling factors match the paper within a modest margin.
    for (model_name, _, _, paper_fp32), measured in zip(ROWS, rows):
        assert abs(measured[2] - paper_fp32) < 0.12, model_name
    # Naive GC is far from ideal scaling everywhere (the paper's point).
    for fp32, gpu, cpu in by_model.values():
        assert gpu < 0.85 and cpu < 0.85
    # NVLink jobs: GPU-side naive GC helps, as in the paper.
    assert by_model["gpt2"][1] > by_model["gpt2"][0]
    assert by_model["bert-base"][1] > by_model["bert-base"][0]
