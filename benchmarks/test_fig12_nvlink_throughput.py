"""Fig. 12: throughput on NVLink machines + 100 Gbps Ethernet.

Three panels — BERT-base+Random-k, GPT2+EF-SignSGD, UGATIT+DGC — each
sweeping 8→64 GPUs over the five systems.  Shape checks:

* Espresso is the best system at every scale (its headline claim);
* Espresso's advantage over FP32 grows with the GPU count (§5.2.1's
  "improvements become larger from 8 GPUs to 64 GPUs");
* the compression baselines bring only limited gains on BERT-base
  (many tensors -> costly compression overheads).
"""

import functools

from benchmarks.harness import FIG12_CASES, emit, machine_counts, run_case
from repro.baselines import ALL_SYSTEMS
from repro.cluster import nvlink_100g_cluster
from repro.utils import render_table


@functools.lru_cache(maxsize=1)
def compute_sweep():
    results = {}
    for model_name, gc in FIG12_CASES:
        for machines in machine_counts():
            cluster = nvlink_100g_cluster(num_machines=machines)
            for system_cls in ALL_SYSTEMS:
                result = run_case(system_cls, model_name, gc, cluster)
                results[(model_name, cluster.total_gpus, result.name)] = result
    return results


def test_fig12_nvlink_throughput(benchmark):
    results = compute_sweep()
    benchmark(compute_sweep)

    names = [cls.name for cls in ALL_SYSTEMS]
    lines = []
    for model_name, gc in FIG12_CASES:
        rows = []
        for machines in machine_counts():
            gpus = machines * 8
            rows.append(
                [gpus]
                + [f"{results[(model_name, gpus, n)].throughput:,.0f}" for n in names]
            )
        lines.append(
            render_table(
                ["GPUs"] + names,
                rows,
                title=f"Fig. 12 — {model_name} + {gc.algorithm} "
                f"(NVLink, 100 Gbps), samples/s",
            )
        )
    emit("fig12_nvlink_throughput", "\n\n".join(lines))

    top = max(machine_counts()) * 8
    for model_name, _ in FIG12_CASES:
        # Espresso wins at 64 GPUs.
        espresso = results[(model_name, top, "Espresso")].throughput
        for name in names:
            assert espresso >= results[(model_name, top, name)].throughput - 1e-6
        # Espresso's relative gain over FP32 grows with scale.
        small = min(machine_counts()) * 8
        if small < top:
            gain_small = (
                results[(model_name, small, "Espresso")].throughput
                / results[(model_name, small, "FP32")].throughput
            )
            gain_large = espresso / results[(model_name, top, "FP32")].throughput
            assert gain_large >= gain_small - 0.05, model_name
