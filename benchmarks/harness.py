"""Shared benchmark-harness utilities.

Every module in this directory regenerates one of the paper's tables or
figures: it computes the same rows/series the paper reports, prints them
(run pytest with ``-s`` to see the tables inline), writes them to
``benchmarks/results/``, and asserts the paper's qualitative *shape*
(who wins, roughly by how much, where the crossovers are).

Scale control: the full paper grid (8–64 GPUs, all 18 model x GC combos)
takes tens of minutes in pure Python.  By default the benches run a
representative subset; set ``REPRO_BENCH_SCALE=paper`` for the full grid.
"""

from __future__ import annotations

import functools
import json
import os
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.baselines import BaselineResult
from repro.cluster.topology import ClusterSpec
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.models import get_model

RESULTS_DIR = Path(__file__).parent / "results"


def paper_scale() -> bool:
    """True when the full paper grid was requested."""
    return os.environ.get("REPRO_BENCH_SCALE", "ci").lower() == "paper"


def machine_counts() -> Tuple[int, ...]:
    """The 8→64 GPU x-axis of Figs. 12/13 (8 GPUs per machine)."""
    return (1, 2, 4, 8) if paper_scale() else (1, 4, 8)


def job_for(model_name: str, gc: GCInfo, cluster: ClusterSpec) -> JobConfig:
    return JobConfig(model=get_model(model_name), gc=gc, system=SystemInfo(cluster=cluster))


@functools.lru_cache(maxsize=None)
def _system_cache() -> dict:
    return {}


def run_system_cached(system_cls, job_key: str, job: JobConfig) -> BaselineResult:
    """Run a baseline system once per (system, job) and cache the result.

    pytest-benchmark re-invokes the benched callable several times; the
    expensive experiments are computed once and the bench measures the
    (cheap, deterministic) result lookup plus table assembly.
    """
    cache = _system_cache()
    key = (system_cls.__name__, job_key)
    if key not in cache:
        cache[key] = system_cls().run(job)
    return cache[key]


def run_case(
    system_cls, model_name: str, gc: GCInfo, cluster: ClusterSpec
) -> BaselineResult:
    """Cached end-to-end run of one system on one (model, GC, cluster)."""
    key = (
        f"{model_name}|{gc.algorithm}|{sorted(gc.params.items())}|"
        f"{cluster.interconnect}|{cluster.num_machines}x{cluster.gpus_per_machine}"
    )
    return run_system_cached(system_cls, key, job_for(model_name, gc, cluster))


def merge_bench_json(path: Path, updates: Dict) -> Dict:
    """Merge ``updates`` into a BENCH_*.json file, keeping other keys.

    Several bench modules contribute sections to the same trajectory
    file (e.g. ``test_perf_planner`` writes the per-model records and
    ``test_perf_parallel`` the ``"parallel"`` section); a plain
    ``write_text`` from either would clobber the other's section.
    """
    existing: Dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(updates)
    path.write_text(json.dumps(existing, indent=2) + "\n")
    return existing


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


#: The Figs. 12/13 model x GC pairings, exactly as captioned.
FIG12_CASES = (
    ("bert-base", GCInfo("randomk", {"ratio": 0.01})),
    ("gpt2", GCInfo("efsignsgd")),
    ("ugatit", GCInfo("dgc", {"ratio": 0.01})),
)
FIG13_CASES = (
    ("vgg16", GCInfo("randomk", {"ratio": 0.01})),
    ("lstm", GCInfo("efsignsgd")),
    ("resnet101", GCInfo("dgc", {"ratio": 0.01})),
)
