"""Fig. 2: the same job under five compression strategies.

The paper's didactic three-tensor example: (a) FP32; (b) compressing the
late tensor helps; (c) GPU-compressing everything *hurts* relative to
the best choice because GPU kernels contend with backprop; (d) CPU
compression of everything behaves differently again; (e) Espresso's
selection is the best of all.
"""

import functools

from benchmarks.harness import emit
from repro.cluster import pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core import Espresso
from repro.core.options import Device
from repro.core.presets import inter_allgather_option
from repro.core.strategy import StrategyEvaluator
from repro.models import three_tensor_job
from repro.utils import render_table


@functools.lru_cache(maxsize=1)
def compute_timelines():
    job = JobConfig(
        model=three_tensor_job(),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=pcie_25g_cluster(num_machines=4)),
    )
    evaluator = StrategyEvaluator(job)
    fp32 = evaluator.baseline()
    gpu = inter_allgather_option(Device.GPU)
    cpu = inter_allgather_option(Device.CPU)
    strategies = {
        "(a) no compression": fp32,
        "(b) compress T2 (GPU)": fp32.replace(2, gpu),
        "(c) compress all (GPU)": fp32.replace(0, gpu).replace(1, gpu).replace(2, gpu),
        "(d) compress all (CPU)": fp32.replace(0, cpu).replace(1, cpu).replace(2, cpu),
        "(e) Espresso": Espresso(job).select_strategy().strategy,
    }
    return {
        label: evaluator.iteration_time(strategy)
        for label, strategy in strategies.items()
    }


def test_fig2_strategy_timelines(benchmark):
    times = compute_timelines()
    benchmark(compute_timelines)

    table = render_table(
        ["Strategy", "iteration"],
        [(label, f"{t * 1e3:.1f} ms") for label, t in times.items()],
        title="Fig. 2 — one job, five compression strategies",
    )
    emit("fig2_strategy_timelines", table)

    # (b) reduces the iteration time over (a).
    assert times["(b) compress T2 (GPU)"] < times["(a) no compression"]
    # (e) is optimal among the five.
    assert times["(e) Espresso"] == min(times.values())
    # Compressing everything is not optimal (over-compression penalty).
    assert times["(e) Espresso"] < times["(c) compress all (GPU)"] + 1e-12
