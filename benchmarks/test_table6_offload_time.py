"""Table 6: time to find the best CPU offloading solution.

Paper: after Algorithm 1 the offloading candidates shrink to 5–54
tensors; Espresso's group-count enumeration (Theorem 1) finds the best
offloading in 1–44 ms, while the 2^n subset brute force takes hours to
> 24 h for the bigger models.  We report the same rows: candidate-tensor
count, Algorithm 2's combination count and wall-clock, and the
extrapolated brute-force time.
"""

import functools

from benchmarks.harness import emit, paper_scale
from repro.baselines.bruteforce import measure_evaluation_seconds
from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.algorithm import gpu_compression_decision
from repro.core.offload import cpu_offload_decision
from repro.core.strategy import StrategyEvaluator
from repro.models import available_models, get_model
from repro.utils import format_seconds, render_table

import time

PAPER = {  # (#tensors for offloading, Espresso time)
    "vgg16": (11, "1 ms"),
    "resnet101": (42, "30 ms"),
    "ugatit": (32, "12 ms"),
    "bert-base": (54, "44 ms"),
    "gpt2": (34, "18 ms"),
    "lstm": (5, "1 ms"),
}


def _models():
    if paper_scale():
        return list(available_models())
    return ["vgg16", "ugatit", "gpt2", "lstm"]


@functools.lru_cache(maxsize=1)
def compute_rows():
    gc = GCInfo("dgc", {"ratio": 0.01})
    cluster = nvlink_100g_cluster()
    rows = []
    for name in _models():
        job = JobConfig(model=get_model(name), gc=gc, system=SystemInfo(cluster=cluster))
        evaluator = StrategyEvaluator(job)
        decision = gpu_compression_decision(evaluator)
        start = time.perf_counter()
        offload = cpu_offload_decision(evaluator, decision.strategy)
        seconds = time.perf_counter() - start
        per_eval = measure_evaluation_seconds(evaluator, samples=5)
        candidates = sum(len(g) for g in offload.groups)
        brute = (2.0 ** candidates) * per_eval
        rows.append((name, candidates, offload.combinations, seconds, brute))
    return rows


def test_table6_offload_time(benchmark):
    rows = compute_rows()
    benchmark(compute_rows)

    table = render_table(
        [
            "Model",
            "#tensors",
            "combinations",
            "Espresso",
            "paper Espresso",
            "Brute force 2^n (extrapolated)",
        ],
        [
            (
                name,
                candidates,
                combos,
                format_seconds(seconds),
                PAPER[name][1],
                "> 24h" if brute > 24 * 3600 else format_seconds(brute),
            )
            for name, candidates, combos, seconds, brute in rows
        ],
        title="Table 6 — time to find the best CPU offloading",
    )
    emit("table6_offload_time", table)

    for name, candidates, combos, seconds, brute in rows:
        # Theorem 1's point: the group-count enumeration is drastically
        # smaller than the subset space whenever sizes repeat.
        assert combos <= 2 ** max(candidates, 1), name
        assert seconds < 60, name
