"""Fig. 5: scheme choices depend on tensor interactions.

(a)/(b): with T0 compressed, the divisible scheme wins when T0's
communication is exposed, but once T0's communication can hide behind a
long-enough computation of T1, the indivisible scheme (fewer compression
operations on the critical path) is at least as good — the choice flips
with the interaction, not with the tensor alone.

(c)/(d): applying GC to both intra- and inter-machine communication wins
when computation is short, but compressing the intra phase too can lose
to inter-only once a long computation hides the intra communication.
"""

import functools

from benchmarks.harness import emit
from repro.cluster import pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.options import Device
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.core.strategy import StrategyEvaluator
from repro.models import two_tensor_job
from repro.utils import MS, render_table


def _iteration(t1_ms: float, option) -> float:
    job = JobConfig(
        model=two_tensor_job(t0_mb=256.0, t1_mb=1.0, t0_time=5 * MS,
                             t1_time=t1_ms * MS),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=pcie_25g_cluster(num_machines=8)),
    )
    evaluator = StrategyEvaluator(job)
    return evaluator.iteration_time(evaluator.baseline().replace(0, option))


@functools.lru_cache(maxsize=1)
def compute():
    indivisible = inter_allgather_option(Device.GPU)
    divisible = inter_alltoall_option(Device.GPU)
    both = double_compression_option(Device.GPU)
    return {
        # Short T1 compute: T0's sync is exposed.
        "short": {
            "indivisible": _iteration(5, indivisible),
            "divisible": _iteration(5, divisible),
            "intra+inter": _iteration(5, both),
        },
        # Long T1 compute: T0's sync hides behind it.
        "long": {
            "indivisible": _iteration(400, indivisible),
            "divisible": _iteration(400, divisible),
            "intra+inter": _iteration(400, both),
        },
    }


def test_fig5_scheme_interactions(benchmark):
    results = compute()
    benchmark(compute)

    rows = [
        (regime, *(f"{results[regime][k] * 1e3:.1f} ms"
                   for k in ("indivisible", "divisible", "intra+inter")))
        for regime in ("short", "long")
    ]
    emit(
        "fig5_scheme_interactions",
        render_table(
            ["T1 compute", "indivisible", "divisible", "intra+inter"],
            rows,
            title="Fig. 5 — scheme choice depends on interactions",
        ),
    )

    short, long = results["short"], results["long"]
    # (a): exposed communication -> the traffic-lean schemes win.
    assert short["divisible"] < short["indivisible"]
    assert short["intra+inter"] <= short["divisible"] + 1e-9
    # (b)/(d): once T1's computation hides T0's communication, the extra
    # compression work stops paying — the scheme gaps shrink sharply.
    gap_short = short["indivisible"] - short["intra+inter"]
    gap_long = long["indivisible"] - long["intra+inter"]
    assert gap_long < gap_short * 0.6
