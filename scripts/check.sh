#!/usr/bin/env bash
# Full correctness gate: tier-1 tests, the slow differential-oracle
# sweeps, and the simulator conformance battery over the model zoo on
# both testbeds.  Run from the repository root:
#
#   bash scripts/check.sh
#
# CI should treat any non-zero exit as a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== slow suite (O(n^2) oracle sweeps over the zoo) =="
python -m pytest -q -m slow

echo
echo "== simulator conformance: zoo x uniform suite x testbeds =="
for model in vgg16 resnet101 ugatit bert-base gpt2 lstm; do
    for testbed in nvlink pcie; do
        echo "-- ${model} / ${testbed}"
        python -m repro validate --model "$model" --testbed "$testbed" \
            --machines 2 --gpus 4
    done
done

echo
echo "== planner conformance: plan --check over the zoo =="
for model in vgg16 resnet101 ugatit bert-base gpt2 lstm; do
    echo "-- ${model}"
    python -m repro plan --model "$model" --gc dgc --ratio 0.01 \
        --machines 2 --gpus 4 --check | grep "conformance:"
done

echo
echo "All checks passed."
