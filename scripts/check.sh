#!/usr/bin/env bash
# Full correctness gate: tier-1 tests, the slow differential-oracle
# sweeps, the simulator conformance battery over the model zoo on both
# testbeds, and the fault-injection sensitivity sweeps.  Run from the
# repository root:
#
#   bash scripts/check.sh
#
# CI should treat any non-zero exit as a failure.
#
# Hang-detection net: every phase runs under a hard timeout (override
# with PHASE_TIMEOUT, seconds).  On timeout the process receives SIGABRT
# — with PYTHONFAULTHANDLER=1 that dumps every thread's traceback — so a
# stuck conformance sweep fails loudly with a stack instead of wedging
# CI.  pytest additionally arms faulthandler_timeout (pyproject.toml)
# for per-test dumps.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src
export PYTHONFAULTHANDLER=1
PHASE_TIMEOUT="${PHASE_TIMEOUT:-900}"

run_phase() {
    # SIGABRT first (faulthandler dump), SIGKILL 15s later if wedged hard.
    local status=0
    timeout --signal=ABRT --kill-after=15 "$PHASE_TIMEOUT" "$@" || status=$?
    if [ "$status" -ne 0 ]; then
        if [ "$status" -ge 124 ]; then
            echo "HANG: phase exceeded ${PHASE_TIMEOUT}s and was aborted: $*" >&2
        fi
        exit "$status"
    fi
}

echo "== tier-1 test suite =="
run_phase python -m pytest -x -q

echo
echo "== slow suite (O(n^2) oracle sweeps over the zoo) =="
run_phase python -m pytest -q -m slow

echo
echo "== simulator conformance: zoo x uniform suite x testbeds =="
for model in vgg16 resnet101 ugatit bert-base gpt2 lstm; do
    for testbed in nvlink pcie; do
        echo "-- ${model} / ${testbed}"
        run_phase python -m repro validate --model "$model" --testbed "$testbed" \
            --machines 2 --gpus 4
    done
done

echo
echo "== planner conformance: plan --check over the zoo =="
for model in vgg16 resnet101 ugatit bert-base gpt2 lstm; do
    echo "-- ${model}"
    run_phase python -m repro plan --model "$model" --gc dgc --ratio 0.01 \
        --machines 2 --gpus 4 --check | grep "conformance:"
done

echo
echo "== fault injection: ensemble sensitivity + invariants over faulted timelines =="
for model in vgg16 bert-base lstm; do
    echo "-- ${model}"
    run_phase python -m repro faults --model "$model" --gc dgc --ratio 0.01 \
        --machines 2 --gpus 4 --check | grep "conformance:"
done

echo
echo "== robust planning: plan --robust on a preset =="
run_phase python -m repro plan --model vgg16 --gc dgc --ratio 0.01 \
    --machines 2 --gpus 4 --robust | grep "Robust selection"

echo
echo "== fusion equivalence: fused plans bit-identical + conformant =="
# Fused vs unfused single-tensor-group plans are bit-identical, fused
# timelines pass the unmodified invariant battery + differential
# oracle, --jobs N fusion search matches serial, and stale plan
# artifacts are refused with exit 2.
run_phase python -m pytest -q tests/core/test_fusion.py -m ''

echo
echo "== fusion planner: plan --fusion --check smoke =="
run_phase python -m repro plan --model vgg16 --gc dgc --ratio 0.01 \
    --machines 2 --gpus 4 --fusion --check | grep "conformance:"

echo
echo "== ratio equivalence: laddered plans vs fixed ratio (portfolio + battery) =="
# The ratio ladder never loses to the fixed-ratio planner on any zoo
# model, laddered timelines pass the unmodified invariant battery +
# differential oracle, the adaptive controller replans within budget,
# and plan --ratios --check stays conformant.
run_phase python -m pytest -q -m '' tests/core/test_ratio.py \
    tests/training/test_adaptive.py
run_phase python -m repro plan --model vgg16 --gc dgc --ratio 0.01 \
    --machines 2 --gpus 4 --ratios --error-budget 0.9 --check \
    | grep "conformance:"

echo
echo "== parallel equivalence: --jobs N bit-identical to serial (zoo) =="
run_phase python -m pytest -q tests/core/test_parallel.py \
    tests/core/test_parallel_equivalence.py -m ''

echo
echo "== parallel planner: plan --jobs 4 --check smoke =="
run_phase python -m repro plan --model vgg16 --gc dgc --ratio 0.01 \
    --machines 2 --gpus 4 --jobs 4 --check | grep "conformance:"

echo
echo "== parallel benchmark sanity: --jobs 4 <= 1.2x serial =="
run_phase python -m pytest -q -p no:cacheprovider \
    benchmarks/test_perf_parallel.py

echo
echo "== planner perf: selection trajectory + regression gate =="
# Rewrites BENCH_planner.json (the perf-trajectory seed) and fails if
# bert-base selection regressed >25% vs the committed baseline.  On
# hosts too noisy for wall-clock gates: -m 'not bench_regression'.
run_phase python -m pytest -q -p no:cacheprovider \
    benchmarks/test_perf_planner.py

echo
echo "== planner profile: where selection time goes (perf PRs start here) =="
run_phase python scripts/profile_planner.py vgg16 --top 10 --sort tottime

echo
echo "== service: chaos load against repro serve, zero dropped requests =="
# Spawns the planning server, replays a seeded request mix with
# injected evaluator kills/stalls and deadline pressure, shuts down via
# SIGTERM drain, and exits non-zero on any dropped request, wire error,
# or bit-identity mismatch.  Writes BENCH_service.json.
run_phase python scripts/service_bench.py --requests 60 --workers 2 \
    --conns 4 --verify-plans 2 --sigterm

echo
echo "== fleet: joint planning portfolio guarantee + seeded churn drill =="
# Every shipped job mix plans jointly with the invariant battery armed
# (joint >= selfish aggregate throughput, always), then a seeded churn
# stream replans through the degradation tables against one cumulative
# ledger: every replan within budget or explicitly degraded, zero
# crashes.  Writes BENCH_fleet.json.
run_phase python -m pytest -q tests/cluster/test_tenancy.py \
    tests/core/test_fleet.py
run_phase python scripts/fleet_bench.py --quick
run_phase python -m repro fleet --mix lstm-pair --check \
    | grep "conformance:"

echo
echo "== chaos replay: crash/SIGKILL/corruption recovery is bit-identical =="
# Bounded by run_phase's PHASE_TIMEOUT like every other phase; artifacts
# (checkpoints + report.json) land in CHAOS_ARTIFACTS so CI can upload
# them when a drill fails.
CHAOS_DIR="${CHAOS_ARTIFACTS:-$(mktemp -d -t chaos-XXXXXX)}"
run_phase python -m pytest -q -m '' tests/training/test_chaos.py
run_phase python -m repro chaos --gc dgc --workers 2 --steps 16 \
    --eval-every 4 --checkpoint-every 3 --kills 2 --corrupt-newest \
    --dir "$CHAOS_DIR"

echo
echo "All checks passed."
