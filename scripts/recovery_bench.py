#!/usr/bin/env python
"""Recovery-overhead benchmark: checkpoint cost + elastic replan latency.

For every zoo model this measures the two latencies a recovering job
actually pays (DESIGN.md §5.6):

* **Checkpoint write / restore** of the §5.4 training engine, using an
  MLP proxy sized by the model's tensor count (the engine trains
  synthetic tasks; the proxy keeps state size roughly ordered like the
  zoo) — bytes on disk, atomic-save time, restore time, and the
  per-step recompute cost a crash between checkpoints re-pays.
* **Elastic replan** through the model's `DegradationTable`: build time
  at admission, then the latency of `replan` for a membership change,
  against the controller's default budget (twice the worst single-plan
  time observed at build).

Usage::

    PYTHONPATH=src python scripts/recovery_bench.py [--models lstm,vgg16]

Prints a markdown table (pasted into EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.robust import DegradationTable
from repro.models import available_models, get_model
from repro.training.chaos import TrainingJobSpec
from repro.training.elastic import ElasticController, MembershipEvent


def proxy_spec(num_tensors: int) -> TrainingJobSpec:
    hidden = max(32, min(512, 2 * num_tensors))
    return TrainingJobSpec(
        gc="dgc", ratio=0.05, workers=4, steps=8, eval_every=4,
        checkpoint_every=4, samples=512, features=64, classes=8,
        informative=32, hidden=hidden,
    )


def bench_checkpoint(spec: TrainingJobSpec):
    trainer = spec.build_trainer()
    start = time.perf_counter()
    trainer.train(spec.steps, eval_every=spec.eval_every)
    step_seconds = (time.perf_counter() - start) / spec.steps
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        path = trainer.save(tmp)
        save_seconds = time.perf_counter() - start
        nbytes = Path(path).stat().st_size
        fresh = spec.build_trainer()
        start = time.perf_counter()
        fresh.resume_from(tmp)
        load_seconds = time.perf_counter() - start
    return nbytes, save_seconds, load_seconds, step_seconds


def bench_replan(name: str):
    job = JobConfig(
        model=get_model(name),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster(2, 4)),
    )
    start = time.perf_counter()
    table = DegradationTable.build(job)
    build_seconds = time.perf_counter() - start
    controller = ElasticController([MembershipEvent(1, 3)], table=table)
    spec = TrainingJobSpec(workers=4, steps=2, checkpoint_every=1)
    trainer = spec.build_trainer()
    controller.run(trainer, 2, eval_every=2)
    (record,) = controller.log
    return build_seconds, record.replan


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models", default=",".join(available_models()),
        help="comma-separated zoo model names",
    )
    args = parser.parse_args()
    names = [name.strip() for name in args.models.split(",") if name.strip()]

    print("| model | ckpt size | write | restore | recompute/step "
          "| table build | replan | budget | verdict |")
    print("|---|---|---|---|---|---|---|---|---|")
    for name in names:
        model = get_model(name)
        nbytes, save_s, load_s, step_s = bench_checkpoint(
            proxy_spec(model.num_tensors)
        )
        build_s, replan = bench_replan(name)
        verdict = "within" if replan.within_budget else "OVER"
        print(
            f"| {name} | {nbytes / 1024:.0f} KB | {save_s * 1e3:.1f} ms "
            f"| {load_s * 1e3:.1f} ms | {step_s * 1e3:.1f} ms "
            f"| {build_s:.2f} s | {replan.seconds * 1e3:.1f} ms "
            f"| {replan.budget_seconds * 1e3:.1f} ms | {verdict} |"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
