#!/usr/bin/env python
"""Deterministic load + chaos harness for ``repro serve``.

Spawns the planning server as a subprocess, replays a seeded request
mix against it (same seed = same models, deadlines, chaos injections,
byte for byte), and demands the service's core guarantee: **zero
dropped requests** — every admitted or refused request gets exactly one
response, each either a fresh plan, an exact cache hit, an explicitly
``degraded`` stale/heuristic plan, or a one-line refusal.

The mix exercises all three failure injections at once:

* worker kills   (``--kill-rate``: evaluator dies, server retries)
* slow evaluators (``--slow-rate``: evaluation stalls, deadlines bite)
* deadline pressure (``--tight-rate``: a slice of requests carries a
  deadline far below planning cost, forcing the degradation ladder)

It then spot-checks **bit-identity**: for a sample of non-degraded
responses it re-runs the planner in-process on the same inputs and
compares strategy digest, per-tensor options, and iteration time —
the served plan must be exactly the plan ``repro plan`` would print.

Results (rps, p50/p99 latency, cache hit rate, degraded-response rate,
breaker/chaos accounting) go to ``BENCH_service.json``.

Examples::

    python scripts/service_bench.py                       # full run (200)
    python scripts/service_bench.py --requests 60 --sigterm
    python scripts/service_bench.py --kill-rate 0 --slow-rate 0  # clean
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.api import PlanRequest, strategy_digest  # noqa: E402
from repro.service.core import PlanningCore  # noqa: E402

#: The job pool the seeded mix draws from: small enough to plan in
#: fractions of a second, varied enough to exercise the cache's exact
#: and family indices.
JOB_POOL = [
    {"model": "lstm", "gc": "dgc", "ratio": 0.01, "machines": 2, "gpus": 4},
    {"model": "lstm", "gc": "dgc", "ratio": 0.01, "machines": 2, "gpus": 2},
    {"model": "lstm", "gc": "dgc", "ratio": 0.05, "machines": 2, "gpus": 4},
    {"model": "lstm", "gc": "randomk", "ratio": 0.01, "machines": 2, "gpus": 4},
    {"model": "lstm", "gc": "efsignsgd", "machines": 2, "gpus": 4},
    {"model": "vgg16", "gc": "dgc", "ratio": 0.01, "machines": 2, "gpus": 4},
    {"model": "vgg16", "gc": "dgc", "ratio": 0.01, "machines": 2, "gpus": 2},
    {"model": "vgg16", "gc": "efsignsgd", "machines": 2, "gpus": 4},
    {"model": "resnet101", "gc": "dgc", "ratio": 0.01, "machines": 2, "gpus": 4},
    {"model": "resnet101", "gc": "randomk", "ratio": 0.05, "machines": 2,
     "gpus": 2},
]


def build_mix(args: argparse.Namespace) -> list:
    """The seeded request mix: (payload dict) per request, deterministic."""
    rng = random.Random(args.seed)
    requests = []
    for index in range(args.requests):
        payload = dict(rng.choice(JOB_POOL))
        payload["op"] = "plan"
        payload["request_id"] = f"req-{args.seed}-{index:04d}"
        if rng.random() < args.tight_rate:
            payload["deadline_s"] = args.tight_deadline
        else:
            payload["deadline_s"] = args.deadline
        requests.append(payload)
    return requests


def percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


class Connection:
    """One JSON-lines connection with request_id-matched responses."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None
        self.pending = {}
        self.ops = None
        self._reader_task = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.ops = asyncio.Queue()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def _read_loop(self) -> None:
        while True:
            line = await self.reader.readline()
            if not line:
                break
            message = json.loads(line)
            if "op" in message:
                self.ops.put_nowait(message)
                continue
            future = self.pending.pop(message.get("request_id", ""), None)
            if future is not None and not future.done():
                future.set_result(message)

    async def request(self, payload: dict) -> dict:
        future = asyncio.get_running_loop().create_future()
        self.pending[payload["request_id"]] = future
        self.writer.write((json.dumps(payload) + "\n").encode())
        await self.writer.drain()
        return await future

    async def op(self, name: str) -> dict:
        self.writer.write((json.dumps({"op": name}) + "\n").encode())
        await self.writer.drain()
        return await self.ops.get()

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except ConnectionError:
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()


def spawn_server(args: argparse.Namespace):
    """Start ``repro serve`` and parse the bound port from its banner."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--workers", str(args.workers),
        "--queue-limit", str(args.queue_limit),
        "--deadline", str(args.deadline),
        "--breaker-threshold", str(args.breaker_threshold),
        "--breaker-cooldown", str(args.breaker_cooldown),
        "--retries", "2",
        "--retry-backoff", "0.05",
        "--chaos-seed", str(args.seed),
        "--chaos-kill-rate", str(args.kill_rate),
        "--chaos-slow-rate", str(args.slow_rate),
        "--chaos-slow-seconds", str(args.slow_seconds),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO),
    )
    deadline = time.monotonic() + 30
    banner = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                "server exited before listening:\n" + "".join(banner)
            )
        banner.append(line)
        if "listening on" in line:
            port = int(line.split("listening on", 1)[1].split()[0]
                       .rsplit(":", 1)[1])
            return process, port
    process.kill()
    raise RuntimeError("server did not come up in 30s:\n" + "".join(banner))


async def run_load(args: argparse.Namespace, port: int, mix: list):
    connections = [Connection("127.0.0.1", port) for _ in range(args.conns)]
    for connection in connections:
        await connection.connect()
    semaphore = asyncio.Semaphore(args.inflight)
    results = [None] * len(mix)
    latencies = [None] * len(mix)

    async def one(index: int, payload: dict) -> None:
        async with semaphore:
            started = time.perf_counter()
            try:
                response = await asyncio.wait_for(
                    connections[index % len(connections)].request(payload),
                    timeout=args.client_timeout,
                )
            except asyncio.TimeoutError:
                response = None  # a DROP — the bench's failure condition
            latencies[index] = time.perf_counter() - started
            results[index] = response

    started = time.perf_counter()
    await asyncio.gather(*(one(i, p) for i, p in enumerate(mix)))
    wall = time.perf_counter() - started
    stats = await connections[0].op("stats")
    health = await connections[0].op("health")
    return connections, results, latencies, wall, stats, health


def verify_bit_identity(results: list, mix: list, sample: int) -> dict:
    """Re-plan a sample of non-degraded responses in-process and compare."""
    by_fingerprint = {}
    for payload, response in zip(mix, results):
        if not response or response.get("status") != "ok":
            continue
        if response.get("degraded") or response.get("source") not in (
            "fresh", "cache"
        ):
            continue
        by_fingerprint.setdefault(response["fingerprint"], (payload, response))
    checked = matched = 0
    mismatches = []
    core = PlanningCore()
    for fingerprint, (payload, response) in sorted(by_fingerprint.items()):
        if checked >= sample:
            break
        request = PlanRequest.from_dict(
            {k: v for k, v in payload.items() if k not in ("deadline_s",)}
        )
        result = core.plan_job(request.build_job())
        checked += 1
        same = (
            strategy_digest(result.strategy) == response["strategy_digest"]
            and [o.describe() for o in result.strategy.options]
            == response["options"]
            and result.iteration_time == response["iteration_time"]
        )
        if same:
            matched += 1
        else:
            mismatches.append(fingerprint)
    return {"checked": checked, "matched": matched, "mismatches": mismatches}


async def amain(args: argparse.Namespace) -> int:
    mix = build_mix(args)
    process, port = spawn_server(args)
    drained_line = ""
    try:
        connections, results, latencies, wall, stats, health = await run_load(
            args, port, mix
        )
        if args.sigterm:
            process.send_signal(signal.SIGTERM)
        else:
            try:
                await connections[0].op("drain")
            except Exception:
                process.send_signal(signal.SIGTERM)
        for connection in connections:
            await connection.close()
    finally:
        try:
            output, _ = process.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            output, _ = process.communicate()
        for line in (output or "").splitlines():
            if "drained" in line:
                drained_line = line.strip()

    dropped = [i for i, r in enumerate(results) if r is None]
    answered = [r for r in results if r]
    ok = [r for r in answered if r.get("status") == "ok"]
    degraded = [r for r in ok if r.get("degraded")]
    refused = [r for r in answered if r.get("status") == "rejected"]
    errors = [r for r in answered if r.get("status") == "error"]
    lat = [l for l, r in zip(latencies, results) if r is not None]

    identity = verify_bit_identity(results, mix, args.verify_plans)

    report = {
        "seed": args.seed,
        "requests": len(mix),
        "config": {
            "workers": args.workers,
            "queue_limit": args.queue_limit,
            "inflight": args.inflight,
            "connections": args.conns,
            "deadline_s": args.deadline,
            "tight_deadline_s": args.tight_deadline,
            "tight_rate": args.tight_rate,
            "kill_rate": args.kill_rate,
            "slow_rate": args.slow_rate,
            "slow_seconds": args.slow_seconds,
            "breaker_threshold": args.breaker_threshold,
            "breaker_cooldown_s": args.breaker_cooldown,
            "shutdown": "SIGTERM" if args.sigterm else "drain op",
        },
        "wall_seconds": wall,
        "rps": len(answered) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": percentile(lat, 0.50) * 1e3,
            "p99": percentile(lat, 0.99) * 1e3,
            "mean": (sum(lat) / len(lat) * 1e3) if lat else 0.0,
            "max": max(lat) * 1e3 if lat else 0.0,
        },
        "answered": len(answered),
        "dropped": len(dropped),
        "ok": len(ok),
        "fresh": sum(1 for r in ok if r.get("source") == "fresh"),
        "cache_hits": sum(1 for r in ok if r.get("source") == "cache"),
        "stale_serves": sum(
            1 for r in ok if r.get("source") == "stale-cache"
        ),
        "heuristic_serves": sum(
            1 for r in ok if r.get("source") == "heuristic"
        ),
        "degraded": len(degraded),
        "degraded_rate": len(degraded) / len(answered) if answered else 0.0,
        "refused": len(refused),
        "errors": len(errors),
        "cache_hit_rate": stats.get("cache", {}).get("hit_rate", 0.0),
        "server": {
            "retries": stats.get("retries"),
            "worker_failures": stats.get("worker_failures"),
            "deadline_misses": stats.get("deadline_misses"),
            "queue_expired": stats.get("queue_expired"),
            "rejected_saturated": stats.get("rejected_saturated"),
            "breaker": stats.get("breaker"),
            "ready_before_drain": health.get("ready"),
            "drained_line": drained_line,
        },
        "bit_identity": identity,
    }
    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"service bench: {len(answered)}/{len(mix)} answered "
        f"({len(dropped)} dropped), {report['rps']:.1f} rps, "
        f"p50 {report['latency_ms']['p50']:.0f} ms / "
        f"p99 {report['latency_ms']['p99']:.0f} ms"
    )
    print(
        f"  {report['fresh']} fresh, {report['cache_hits']} cached "
        f"(hit rate {report['cache_hit_rate']:.1%}), "
        f"{len(degraded)} degraded ({report['degraded_rate']:.1%}), "
        f"{len(refused)} refused, {len(errors)} errors"
    )
    print(
        f"  chaos: {report['server']['worker_failures']} kills, "
        f"{report['server']['retries']} retries, "
        f"{report['server']['deadline_misses']} deadline misses, "
        f"breaker opened {report['server']['breaker']['opens']}x"
    )
    print(
        f"  bit-identity: {identity['matched']}/{identity['checked']} "
        f"re-planned strategies identical"
    )
    print(f"  report: {out}")

    failures = []
    if dropped:
        failures.append(f"{len(dropped)} requests dropped (no response)")
    if errors:
        failures.append(f"{len(errors)} unexpected request errors")
    if identity["matched"] != identity["checked"]:
        failures.append(
            f"bit-identity violated for {identity['mismatches']}"
        )
    if not drained_line:
        failures.append("server never printed its drain summary")
    if failures:
        print("BENCH FAILURE: " + "; ".join(failures))
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--conns", type=int, default=6,
                        help="client connections")
    parser.add_argument("--inflight", type=int, default=16,
                        help="max concurrent outstanding requests")
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="normal per-request deadline")
    parser.add_argument("--tight-rate", type=float, default=0.1,
                        help="fraction of requests with a hopeless deadline")
    parser.add_argument("--tight-deadline", type=float, default=0.02,
                        help="the hopeless deadline (seconds)")
    parser.add_argument("--kill-rate", type=float, default=0.15,
                        help="chaos: per-attempt evaluator kill probability")
    parser.add_argument("--slow-rate", type=float, default=0.10,
                        help="chaos: per-attempt slow-evaluation probability")
    parser.add_argument("--slow-seconds", type=float, default=0.2)
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-cooldown", type=float, default=0.5)
    parser.add_argument("--verify-plans", type=int, default=3,
                        help="distinct non-degraded plans to re-plan "
                             "in-process for the bit-identity check")
    parser.add_argument("--client-timeout", type=float, default=120.0,
                        help="per-request client wait before declaring a "
                             "drop")
    parser.add_argument("--sigterm", action="store_true",
                        help="shut the server down via SIGTERM instead of "
                             "the drain op (exercises the signal path)")
    parser.add_argument("--output", default=str(REPO / "BENCH_service.json"))
    args = parser.parse_args()
    return asyncio.run(amain(args))


if __name__ == "__main__":
    sys.exit(main())
