#!/usr/bin/env python
"""Fleet-planning benchmark: joint-plan latency + seeded churn drill.

Two drills, one report (``BENCH_fleet.json``):

* **Job mixes** — every shipped mix (:func:`repro.core.fleet.example_mixes`)
  goes through the joint planner with the invariant battery armed.
  Records plan latency, per-tenant contended makespans, the
  joint-vs-selfish aggregate throughputs, and gates on the portfolio
  guarantee (joint >= selfish, always).
* **Seeded churn** — a deterministic ``random.Random(seed)`` stream of
  tenant arrivals/departures drives a :class:`FleetChurnController`;
  every replan is charged to one cumulative ledger.  Records replan
  latency percentiles, the degraded-plan fraction, and the ledger
  accounting, and gates on the no-silently-stale-plans contract: every
  replan finishes within budget or degrades explicitly — and nothing
  crashes.

Usage::

    PYTHONPATH=src python scripts/fleet_bench.py [--seed 0] [--events 8]
    PYTHONPATH=src python scripts/fleet_bench.py --quick
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import time
import traceback
from pathlib import Path

from repro.cluster.tenancy import FleetSpec, TenantSpec
from repro.core.fleet import (
    FleetChurnController,
    FleetEvent,
    example_mixes,
    plan_fleet,
)

#: Compressor choices the churn stream samples arrivals from.  All on
#: lstm so admission (4 planner runs per tenant) stays cheap enough for
#: a CI phase.
ARRIVAL_POOL = [
    ("dgc", 0.01),
    ("topk", 0.01),
    ("efsignsgd", None),
    ("fp16", None),
]


def percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_mixes(quick: bool):
    mixes = example_mixes()
    if quick:
        mixes = {"lstm-pair": mixes["lstm-pair"]}
    rows, failures = [], []
    for name, fleet in mixes.items():
        result = plan_fleet(fleet, check=True)
        rows.append(
            {
                "mix": name,
                "tenants": len(fleet.tenants),
                "mode": result.mode,
                "converged": result.converged,
                "oscillated": result.oscillated,
                "rounds": result.rounds,
                "plan_seconds": result.plan_seconds,
                "aggregate_throughput": result.aggregate_throughput,
                "selfish_aggregate_throughput": (
                    result.selfish_aggregate_throughput
                ),
                "worst_slowdown": result.worst_slowdown,
                "timelines_checked": result.timelines_checked,
                "makespans_ms": {
                    plan.name: plan.contended_time * 1e3
                    for plan in result.tenants
                },
            }
        )
        if result.aggregate_throughput < result.selfish_aggregate_throughput:
            failures.append(
                f"portfolio guarantee violated on {name}: joint "
                f"{result.aggregate_throughput:.0f} < selfish "
                f"{result.selfish_aggregate_throughput:.0f}"
            )
        print(f"  {name}: {result.summary()}")
    return rows, failures


def churn_events(rng: random.Random, count: int):
    """A deterministic arrive/depart stream over a growing name pool."""
    events, present, next_id = [], ["a", "b"], 0
    for _ in range(count):
        if len(present) > 2 and rng.random() < 0.4:
            name = rng.choice(sorted(present))
            present.remove(name)
            events.append(FleetEvent(kind="depart", name=name))
        else:
            gc, ratio = rng.choice(ARRIVAL_POOL)
            name = f"t{next_id}"
            next_id += 1
            present.append(name)
            events.append(
                FleetEvent(
                    kind="arrive",
                    tenant=TenantSpec(
                        name=name, model="lstm", gc=gc, ratio=ratio
                    ),
                )
            )
    return events


def bench_churn(seed: int, count: int):
    rng = random.Random(seed)
    fleet = example_mixes()["lstm-pair"]
    start = time.perf_counter()
    controller = FleetChurnController(fleet)
    admission_seconds = time.perf_counter() - start
    report = controller.run(churn_events(rng, count))
    replans = report.replans
    latencies = [r.seconds for r in replans]
    ledger = controller.ledger
    row = {
        "seed": seed,
        "events": len(report.records),
        "replans": len(replans),
        "admission_seconds": admission_seconds,
        "replan_ms": {
            "p50": percentile(latencies, 0.50) * 1e3,
            "p95": percentile(latencies, 0.95) * 1e3,
            "max": (max(latencies) if latencies else 0.0) * 1e3,
            "mean": (statistics.mean(latencies) if latencies else 0.0) * 1e3,
        },
        "degraded_fraction": report.degraded_fraction,
        "all_accounted": report.all_accounted,
        "final_tenants": list(controller.fleet.names),
        "ledger": {
            "total_seconds": ledger.total_seconds,
            "spent_seconds": ledger.spent_seconds,
            "exhausted": ledger.exhausted,
        },
    }
    failures = []
    if not report.all_accounted:
        failures.append(
            "churn drill left a replan neither within budget nor degraded"
        )
    print(f"  churn: {report.summary()}")
    return row, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--events", type=int, default=8,
                        help="churn events in the drill")
    parser.add_argument("--quick", action="store_true",
                        help="one mix, 3 churn events")
    parser.add_argument("--output", default="BENCH_fleet.json")
    args = parser.parse_args()
    events = 3 if args.quick else args.events

    failures = []
    crash = None
    mixes, churn = [], {}
    start = time.perf_counter()
    try:
        print("fleet bench: joint planning over the shipped job mixes")
        mixes, mix_failures = bench_mixes(args.quick)
        failures += mix_failures
        print(f"fleet bench: seeded churn drill ({events} events)")
        churn, churn_failures = bench_churn(args.seed, events)
        failures += churn_failures
    except Exception:  # the zero-crash gate
        crash = traceback.format_exc()
        failures.append("fleet bench crashed (see 'crash' in the report)")

    report = {
        "elapsed_seconds": time.perf_counter() - start,
        "mixes": mixes,
        "churn": churn,
        "crash": crash,
        "failures": failures,
        "ok": not failures,
    }
    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"  report: {out}")
    if failures:
        print("BENCH FAILURE: " + "; ".join(failures))
        if crash:
            print(crash)
        return 1
    print("fleet bench: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
