#!/usr/bin/env python
"""cProfile the planner's selection hot path over a zoo model.

Perf PRs should start from data, not guesses: this prints the top-N
functions by cumulative and by self time for one full
``Espresso.select_strategy()`` run, plus the evaluator's own counters
(simulations, batch prunes, dedup hits, memo hits) so algorithmic wins
and constant-factor wins can be told apart.

Usage::

    PYTHONPATH=src python scripts/profile_planner.py [model] [--top N]
        [--fast/--no-fast] [--sort cumulative|tottime]

Defaults to bert-base (the slowest zoo selection) with the fast
incremental evaluation layer on — profile ``--no-fast`` to see what the
scalar from-scratch engine spends.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("model", nargs="?", default="bert-base")
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default=None,
        help="print only one table, sorted this way (default: both)",
    )
    parser.add_argument(
        "--no-fast",
        dest="fast",
        action="store_false",
        help="profile the from-scratch scalar engine instead",
    )
    args = parser.parse_args(argv)

    from repro.cluster import nvlink_100g_cluster
    from repro.config import GCInfo, JobConfig, SystemInfo
    from repro.core import Espresso
    from repro.models import available_models, get_model

    if args.model not in available_models():
        parser.error(
            f"unknown model {args.model!r}; "
            f"choose from {', '.join(available_models())}"
        )

    job = JobConfig(
        model=get_model(args.model),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster()),
    )

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = Espresso(job, fast_eval=args.fast).select_strategy()
    profiler.disable()
    elapsed_ms = (time.perf_counter() - start) * 1e3

    stats = result.stats
    print(
        f"{args.model}: selection {elapsed_ms:.1f} ms, "
        f"iteration_time {result.iteration_time * 1e3:.3f} ms, "
        f"fast_eval={args.fast}"
    )
    print(
        f"evaluations {stats.fs_calls}, incremental sims "
        f"{stats.incremental_sims}, memo hits {stats.cache_hits}, "
        f"batch: {stats.batch_candidates} candidates / "
        f"{stats.batch_dedup_hits} dedup / {stats.batch_pruned} pruned / "
        f"{stats.batch_fallbacks} fallbacks"
    )

    sorts = (args.sort,) if args.sort else ("cumulative", "tottime")
    for sort in sorts:
        buffer = io.StringIO()
        table = pstats.Stats(profiler, stream=buffer)
        table.strip_dirs().sort_stats(sort).print_stats(args.top)
        print(f"\n== top {args.top} by {sort} ==")
        # Drop pstats' preamble; keep the column header and rows.
        lines = buffer.getvalue().splitlines()
        header = next(
            i for i, line in enumerate(lines) if "ncalls" in line
        )
        print("\n".join(lines[header:]).rstrip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
