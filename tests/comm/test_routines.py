"""Alpha-beta collective cost-model tests."""

import pytest

from repro.comm import LinkParams, Routine, routine_time

LINK = LinkParams(participants=8, bandwidth=1e9, latency=1e-5)


def test_single_participant_is_free():
    solo = LinkParams(participants=1, bandwidth=1e9, latency=1e-5)
    for routine in Routine:
        assert routine_time(routine, 1e6, solo) == 0.0


def test_zero_bytes_is_free():
    for routine in Routine:
        assert routine_time(routine, 0, LINK) == 0.0


def test_allreduce_is_rs_plus_ag():
    n = 1e8
    allreduce = routine_time(Routine.ALLREDUCE, n, LINK)
    rs = routine_time(Routine.REDUCE_SCATTER, n, LINK)
    # Allgather's nbytes semantics is the per-node shard.
    ag = routine_time(Routine.ALLGATHER, n / LINK.participants, LINK)
    assert allreduce == pytest.approx(rs + ag)


def test_allreduce_bandwidth_term():
    """2(p-1)/p * n / B for large tensors (latency negligible)."""
    n = 1e9
    p = LINK.participants
    expected = 2 * (p - 1) / p * n / LINK.bandwidth
    assert routine_time(Routine.ALLREDUCE, n, LINK) == pytest.approx(
        expected, rel=0.01
    )


def test_alltoall_cheaper_than_allgather_same_input():
    """Alltoall moves (p-1)/p of n; allgather replicates n to p-1 peers."""
    n = 1e8
    assert routine_time(Routine.ALLTOALL, n, LINK) < routine_time(
        Routine.ALLGATHER, n, LINK
    )


def test_divisible_beats_indivisible_for_compressed():
    """Table 2's trade-off: Alltoall+Allgather (on 1/p shards) moves less
    than one big Allgather."""
    n = 1e8
    indivisible = routine_time(Routine.ALLGATHER, n, LINK)
    divisible = routine_time(Routine.ALLTOALL, n, LINK) + routine_time(
        Routine.ALLGATHER, n / LINK.participants, LINK
    )
    assert divisible < indivisible


def test_rooted_routines_use_tree_rounds():
    n = 1e6
    reduce_time = routine_time(Routine.REDUCE, n, LINK)
    # ceil(log2(8)) = 3 rounds of (alpha + n*beta).
    assert reduce_time == pytest.approx(3 * (LINK.latency + n / LINK.bandwidth))
    assert routine_time(Routine.BROADCAST, n, LINK) == pytest.approx(reduce_time)


def test_gather_matches_allgather_cost_shape():
    n = 1e6
    assert routine_time(Routine.GATHER, n, LINK) == pytest.approx(
        routine_time(Routine.ALLGATHER, n, LINK)
    )


@pytest.mark.parametrize("routine", list(Routine))
def test_monotone_in_bytes(routine):
    small = routine_time(routine, 1e5, LINK)
    large = routine_time(routine, 1e7, LINK)
    assert large > small


@pytest.mark.parametrize("routine", list(Routine))
def test_monotone_in_bandwidth(routine):
    slow = LinkParams(participants=8, bandwidth=1e8, latency=1e-5)
    fast = LinkParams(participants=8, bandwidth=1e10, latency=1e-5)
    assert routine_time(routine, 1e7, slow) > routine_time(routine, 1e7, fast)


def test_latency_dominates_tiny_tensors():
    chatty = LinkParams(participants=8, bandwidth=1e12, latency=1e-4)
    # 7 rounds of alltoall latency vs 3 tree rounds: rooted wins on tiny
    # payloads, which is why the full search space includes them.
    assert routine_time(Routine.BROADCAST, 100, chatty) < routine_time(
        Routine.ALLGATHER, 100, chatty
    )


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        routine_time(Routine.ALLREDUCE, -1, LINK)


def test_invalid_link_params():
    with pytest.raises(ValueError):
        LinkParams(participants=0, bandwidth=1e9, latency=0)
    with pytest.raises(ValueError):
        LinkParams(participants=2, bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        LinkParams(participants=2, bandwidth=1e9, latency=-1)


# -- degenerate and boundary cases (all seven routines) --------------------


@pytest.mark.parametrize("routine", list(Routine))
def test_single_participant_ignores_huge_latency(routine):
    """p == 1 is exactly free even when the per-round latency is enormous
    (the rooted trees' ceil(log2 1) == 0 must not be load-bearing)."""
    solo = LinkParams(participants=1, bandwidth=1.0, latency=1e6)
    assert routine_time(routine, 1e12, solo) == 0.0


@pytest.mark.parametrize("routine", list(Routine))
def test_zero_bytes_ignores_latency(routine):
    """nbytes == 0 charges no latency rounds either: nothing to send."""
    chatty = LinkParams(participants=64, bandwidth=1e9, latency=1.0)
    assert routine_time(routine, 0.0, chatty) == 0.0


def test_two_participant_closed_forms():
    """p == 2 closed forms, exactly: one exchange partner, one tree round."""
    link = LinkParams(participants=2, bandwidth=1e9, latency=1e-5)
    n = 8e6
    alpha, beta = link.latency, 1.0 / link.bandwidth
    assert routine_time(Routine.ALLREDUCE, n, link) == 2 * alpha + n * beta
    assert routine_time(Routine.REDUCE_SCATTER, n, link) == (
        alpha + 0.5 * n * beta
    )
    assert routine_time(Routine.ALLGATHER, n, link) == alpha + n * beta
    assert routine_time(Routine.ALLTOALL, n, link) == alpha + 0.5 * n * beta
    assert routine_time(Routine.REDUCE, n, link) == alpha + n * beta
    assert routine_time(Routine.BROADCAST, n, link) == alpha + n * beta
    assert routine_time(Routine.GATHER, n, link) == alpha + n * beta


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_bytes_rejected(bad):
    with pytest.raises(ValueError):
        routine_time(Routine.ALLREDUCE, bad, LINK)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_non_finite_link_params_rejected(bad):
    with pytest.raises(ValueError):
        LinkParams(participants=2, bandwidth=bad, latency=0.0)
    with pytest.raises(ValueError):
        LinkParams(participants=2, bandwidth=1e9, latency=bad)


def test_nan_bytes_rejected_not_propagated():
    """Regression: NaN passes a plain `< 0` check, so without the finite
    guard a NaN payload would silently poison every downstream makespan."""
    with pytest.raises(ValueError, match="finite"):
        routine_time(Routine.ALLGATHER, float("nan"), LINK)
