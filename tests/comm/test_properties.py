"""Hypothesis property tests for the collective cost models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import LinkParams, Routine, routine_time

links = st.builds(
    LinkParams,
    participants=st.integers(1, 128),
    bandwidth=st.floats(1e6, 1e12),
    latency=st.floats(0, 1e-3),
)
routines = st.sampled_from(list(Routine))
payloads = st.floats(0, 1e10)


@given(routines, payloads, links)
@settings(max_examples=200, deadline=None)
def test_cost_is_nonnegative_and_finite(routine, nbytes, link):
    cost = routine_time(routine, nbytes, link)
    assert cost >= 0.0
    assert cost < float("inf")


@given(routines, st.floats(1, 1e9), links)
@settings(max_examples=200, deadline=None)
def test_cost_monotone_in_payload(routine, nbytes, link):
    if link.participants == 1:
        return
    assert routine_time(routine, nbytes * 2, link) >= routine_time(
        routine, nbytes, link
    )


@given(st.floats(1, 1e9), links)
@settings(max_examples=200, deadline=None)
def test_allreduce_dominates_its_halves(nbytes, link):
    """Allreduce >= reduce-scatter and >= same-shard allgather."""
    allreduce = routine_time(Routine.ALLREDUCE, nbytes, link)
    assert allreduce >= routine_time(Routine.REDUCE_SCATTER, nbytes, link)
