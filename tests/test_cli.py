"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"):
        assert name in out


def test_options_command(capsys):
    assert main(["options", "--mode", "uniform"]) == 0
    out = capsys.readouterr().out
    assert "|C| = 155" in out


def test_plan_command_small_job(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "Espresso selected compression" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--model", "lstm", "--gc", "efsignsgd",
        "--testbed", "nvlink", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "FP32" in out
    assert "Espresso" in out


def test_plan_from_config_files(tmp_path, capsys):
    from repro.config import GCInfo, save_cluster, save_gc, save_model
    from repro.cluster import nvlink_100g_cluster
    from repro.models import synthetic_model
    from repro.utils.units import MB, MS

    save_model(
        synthetic_model("cfg", [(int(32 * MB / 4), 8 * MS)]),
        tmp_path / "m.json",
    )
    save_gc(GCInfo("efsignsgd"), tmp_path / "g.json")
    save_cluster(nvlink_100g_cluster(num_machines=2, gpus_per_machine=2),
                 tmp_path / "s.json")
    assert main([
        "plan",
        "--model-config", str(tmp_path / "m.json"),
        "--gc-config", str(tmp_path / "g.json"),
        "--system-config", str(tmp_path / "s.json"),
    ]) == 0
    assert "Espresso selected" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
