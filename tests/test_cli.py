"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"):
        assert name in out


def test_options_command(capsys):
    assert main(["options", "--mode", "uniform"]) == 0
    out = capsys.readouterr().out
    assert "|C| = 155" in out


def test_plan_command_small_job(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "Espresso selected compression" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--model", "lstm", "--gc", "efsignsgd",
        "--testbed", "nvlink", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "FP32" in out
    assert "Espresso" in out


def test_plan_from_config_files(tmp_path, capsys):
    from repro.config import GCInfo, save_cluster, save_gc, save_model
    from repro.cluster import nvlink_100g_cluster
    from repro.models import synthetic_model
    from repro.utils.units import MB, MS

    save_model(
        synthetic_model("cfg", [(int(32 * MB / 4), 8 * MS)]),
        tmp_path / "m.json",
    )
    save_gc(GCInfo("efsignsgd"), tmp_path / "g.json")
    save_cluster(nvlink_100g_cluster(num_machines=2, gpus_per_machine=2),
                 tmp_path / "s.json")
    assert main([
        "plan",
        "--model-config", str(tmp_path / "m.json"),
        "--gc-config", str(tmp_path / "g.json"),
        "--system-config", str(tmp_path / "s.json"),
    ]) == 0
    assert "Espresso selected" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_validate_command(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    assert main([
        "validate", "--model", "lstm", "--testbed", "nvlink",
        "--machines", "2", "--gpus", "4", "--trace", str(trace),
    ]) == 0
    out = capsys.readouterr().out
    assert "All 8 strategies conformant" in out
    assert "0 violations" not in out  # table shows "ok", not counts
    for name in ("baseline", "allgather-gpu", "alltoall-cpu", "double-gpu"):
        assert name in out
    import json

    payload = json.loads(trace.read_text(encoding="utf-8"))
    assert payload["traceEvents"]
    assert payload["otherData"]["stages"] > 0


def test_validate_single_strategy_skip_oracle(capsys):
    assert main([
        "validate", "--model", "lstm", "--machines", "2", "--gpus", "4",
        "--strategy", "baseline", "--skip-oracle",
    ]) == 0
    out = capsys.readouterr().out
    assert "skipped" in out
    assert "All 1 strategies conformant" in out


def test_plan_check_flag(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4", "--check",
    ]) == 0
    out = capsys.readouterr().out
    assert "conformance:" in out
    assert "0 violations" in out


def test_compare_check_flag(capsys):
    assert main([
        "compare", "--model", "lstm", "--gc", "efsignsgd",
        "--machines", "2", "--gpus", "4", "--check",
    ]) == 0
    out = capsys.readouterr().out
    assert "conformance: 5 system timelines checked, 0 violations" in out
