"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("vgg16", "resnet101", "ugatit", "bert-base", "gpt2", "lstm"):
        assert name in out


def test_options_command(capsys):
    assert main(["options", "--mode", "uniform"]) == 0
    out = capsys.readouterr().out
    assert "|C| = 155" in out


def test_plan_command_small_job(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "Espresso selected compression" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--model", "lstm", "--gc", "efsignsgd",
        "--testbed", "nvlink", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "FP32" in out
    assert "Espresso" in out


def test_plan_from_config_files(tmp_path, capsys):
    from repro.config import GCInfo, save_cluster, save_gc, save_model
    from repro.cluster import nvlink_100g_cluster
    from repro.models import synthetic_model
    from repro.utils.units import MB, MS

    save_model(
        synthetic_model("cfg", [(int(32 * MB / 4), 8 * MS)]),
        tmp_path / "m.json",
    )
    save_gc(GCInfo("efsignsgd"), tmp_path / "g.json")
    save_cluster(nvlink_100g_cluster(num_machines=2, gpus_per_machine=2),
                 tmp_path / "s.json")
    assert main([
        "plan",
        "--model-config", str(tmp_path / "m.json"),
        "--gc-config", str(tmp_path / "g.json"),
        "--system-config", str(tmp_path / "s.json"),
    ]) == 0
    assert "Espresso selected" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_validate_command(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    assert main([
        "validate", "--model", "lstm", "--testbed", "nvlink",
        "--machines", "2", "--gpus", "4", "--trace", str(trace),
    ]) == 0
    out = capsys.readouterr().out
    assert "All 8 strategies conformant" in out
    assert "0 violations" not in out  # table shows "ok", not counts
    for name in ("baseline", "allgather-gpu", "alltoall-cpu", "double-gpu"):
        assert name in out
    import json

    payload = json.loads(trace.read_text(encoding="utf-8"))
    assert payload["traceEvents"]
    assert payload["otherData"]["stages"] > 0


def test_validate_single_strategy_skip_oracle(capsys):
    assert main([
        "validate", "--model", "lstm", "--machines", "2", "--gpus", "4",
        "--strategy", "baseline", "--skip-oracle",
    ]) == 0
    out = capsys.readouterr().out
    assert "skipped" in out
    assert "All 1 strategies conformant" in out


def test_plan_check_flag(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4", "--check",
    ]) == 0
    out = capsys.readouterr().out
    assert "conformance:" in out
    assert "0 violations" in out


def test_compare_check_flag(capsys):
    assert main([
        "compare", "--model", "lstm", "--gc", "efsignsgd",
        "--machines", "2", "--gpus", "4", "--check",
    ]) == 0
    out = capsys.readouterr().out
    assert "conformance: 5 system timelines checked, 0 violations" in out


def test_faults_command(capsys):
    assert main([
        "faults", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "Fault sensitivity" in out
    # The sensitivity table covers the selected strategy, FP32, and a
    # baseline, with per-fault-class overhead deltas.
    for column in ("espresso", "fp32", "hipress"):
        assert column in out
    for fault in ("nominal", "straggler-1.5x", "slow-inter-50",
                  "cpu-contention", "lossy-inter-1pct", "degraded-mix"):
        assert fault in out
    assert "worst case" in out
    assert "%" in out


def test_faults_check_flag(capsys):
    assert main([
        "faults", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4", "--check",
    ]) == 0
    out = capsys.readouterr().out
    assert "faulted timelines checked, 0 violations" in out


def test_plan_robust_flag(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4", "--robust",
    ]) == 0
    out = capsys.readouterr().out
    assert "Robust selection" in out
    assert "nominal plan" in out  # "replaces" or "confirms" verdict


def test_plan_robust_cvar_objective(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
        "--robust", "--objective", "cvar", "--cvar-alpha", "0.5",
    ]) == 0
    out = capsys.readouterr().out
    assert "Robust selection (cvar)" in out


# -- failure paths: bad config files exit 2 with a one-line message --------


@pytest.mark.parametrize("flag", ["--model-config", "--gc-config",
                                  "--system-config"])
def test_missing_config_file_exits_2(flag, tmp_path, capsys):
    assert main(["plan", flag, str(tmp_path / "nope.json")]) == 2
    err = capsys.readouterr().err
    assert "not found" in err
    assert err.count("\n") == 1  # one-line diagnostic, no traceback


@pytest.mark.parametrize("flag", ["--model-config", "--gc-config",
                                  "--system-config"])
def test_malformed_config_file_exits_2(flag, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert main(["plan", flag, str(bad)]) == 2
    err = capsys.readouterr().err
    assert "malformed JSON" in err
    assert err.count("\n") == 1


def test_config_directory_exits_2(tmp_path, capsys):
    assert main(["plan", "--model-config", str(tmp_path)]) == 2
    assert "is a directory" in capsys.readouterr().err


def test_wrong_schema_config_exits_2(tmp_path, capsys):
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"unexpected": 1}', encoding="utf-8")
    assert main(["plan", "--model-config", str(wrong)]) == 2
    err = capsys.readouterr().err
    assert "model config" in err
    assert err.count("\n") == 1


def test_typod_optional_key_exits_2_not_silently_defaulted(tmp_path, capsys):
    """Satellite regression: a misspelled *optional* cluster key used to
    be dropped on the floor and the default priced instead — the plan
    looked plausible but described the wrong cluster.  Now it's a
    loud exit-2 that names both the typo and the accepted spelling."""
    import json as json_module

    from repro.cluster import nvlink_100g_cluster
    from repro.config import cluster_to_dict

    data = cluster_to_dict(nvlink_100g_cluster())
    data["inter_latencey"] = data.pop("inter_latency")
    bad = tmp_path / "cluster.json"
    bad.write_text(json_module.dumps(data), encoding="utf-8")
    assert main(["plan", "--system-config", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "'inter_latencey'" in err
    assert "inter_latency" in err  # the fix is in the message
    assert err.count("\n") == 1


def test_bad_compressor_param_exits_2_before_planning(capsys):
    """Compressor kwargs are validated eagerly: a bad ratio surfaces as a
    one-line exit-2 diagnostic instead of a traceback mid-plan."""
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0",
        "--machines", "2", "--gpus", "4",
    ]) == 2
    err = capsys.readouterr().err
    assert "ratio" in err
    assert err.count("\n") == 1  # one-line diagnostic, no traceback


# -- ratio ladder / error budget flags -------------------------------------


def test_plan_ratios_flag_prints_ladder_line(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
        "--ratios",
    ]) == 0
    out = capsys.readouterr().out
    assert "Espresso selected compression" in out
    assert "ratio ladder:" in out
    assert "fixed-ratio baseline" in out


def test_plan_explicit_ratio_list_and_budget(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc", "--ratio", "0.01",
        "--testbed", "pcie", "--machines", "2", "--gpus", "4",
        "--ratios", "0.001,0.01,0.1", "--error-budget", "0.9",
    ]) == 0
    out = capsys.readouterr().out
    assert "error budget:" in out
    assert "utilization" in out


def test_plan_bad_ratios_exit_2(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc",
        "--machines", "2", "--gpus", "4", "--ratios", "0.1,2.0",
    ]) == 2
    err = capsys.readouterr().err
    assert "--ratios" in err
    assert err.count("\n") == 1


def test_plan_bad_error_budget_exits_2(capsys):
    assert main([
        "plan", "--model", "lstm", "--gc", "dgc",
        "--machines", "2", "--gpus", "4", "--error-budget", "1.5",
    ]) == 2
    err = capsys.readouterr().err
    assert "--error-budget" in err
    assert err.count("\n") == 1


# -- training engine subcommands ------------------------------------------


def test_train_command_with_checkpoints(tmp_path, capsys):
    ck = tmp_path / "ck"
    assert main([
        "train", "--gc", "topk", "--ratio", "0.1", "--workers", "2",
        "--steps", "8", "--eval-every", "4", "--checkpoint-every", "4",
        "--checkpoint-dir", str(ck),
    ]) == 0
    out = capsys.readouterr().out
    assert "trained to step 8" in out
    assert "checkpoints in" in out
    # A checkpoint landed on the target step: resuming is a clean no-op.
    assert main([
        "train", "--gc", "topk", "--ratio", "0.1", "--workers", "2",
        "--steps", "8", "--eval-every", "4", "--checkpoint-every", "4",
        "--checkpoint-dir", str(ck), "--resume",
    ]) == 0
    out = capsys.readouterr().out
    assert "resumed at step 8" in out
    assert "nothing to do" in out


def test_train_resume_with_resize(tmp_path, capsys):
    ck = tmp_path / "ck"
    assert main([
        "train", "--gc", "dgc", "--workers", "2", "--steps", "6",
        "--eval-every", "3", "--checkpoint-every", "2",
        "--checkpoint-dir", str(ck), "--resize", "4:3",
    ]) == 0
    out = capsys.readouterr().out
    assert "membership changes:" in out
    assert "2 -> 3 workers" in out


def test_train_resume_requires_checkpoint_dir(capsys):
    assert main(["train", "--resume"]) == 2
    err = capsys.readouterr().err
    assert "--resume requires --checkpoint-dir" in err
    assert err.count("\n") == 1


def test_train_bad_resize_exits_2(capsys):
    assert main(["train", "--resize", "banana"]) == 2
    assert "--resize wants STEP:WORKERS" in capsys.readouterr().err


def test_train_unknown_compressor_exits_2(capsys):
    assert main(["train", "--gc", "nope"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert err.count("\n") == 1


def test_train_all_corrupt_checkpoints_exit_2(tmp_path, capsys):
    from repro.training.chaos import corrupt_file
    from repro.training.checkpoint import list_checkpoints

    ck = tmp_path / "ck"
    args = [
        "train", "--gc", "dgc", "--workers", "2", "--steps", "6",
        "--eval-every", "3", "--checkpoint-every", "2",
        "--checkpoint-dir", str(ck),
    ]
    assert main(args) == 0
    capsys.readouterr()
    for path in list_checkpoints(ck):
        corrupt_file(path)
    assert main(args + ["--resume"]) == 2
    err = capsys.readouterr().err
    assert "candidates corrupt" in err
    assert err.count("\n") == 1  # one-line diagnostic, no traceback


def test_chaos_command_inprocess(tmp_path, capsys):
    assert main([
        "chaos", "--gc", "dgc", "--workers", "2", "--steps", "10",
        "--eval-every", "5", "--checkpoint-every", "3", "--kills", "2",
        "--mode", "inprocess", "--corrupt-newest", "--dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "[inprocess]" in out
    assert "[corruption]" in out
    assert "EQUIVALENT" in out
    assert "bit-identical" in out
    import json

    report = json.loads((tmp_path / "report.json").read_text())
    assert report["equivalent"] is True
    assert {r["mode"] for r in report["results"]} == {
        "inprocess", "corruption",
    }
    for result in report["results"]:
        for recovery in result["recoveries"]:
            assert recovery["restored_step"] <= recovery["crash_step"]


def test_chaos_command_sigkill_mode(tmp_path, capsys):
    assert main([
        "chaos", "--gc", "none", "--workers", "2", "--steps", "8",
        "--eval-every", "4", "--checkpoint-every", "2", "--kills", "1",
        "--mode", "sigkill", "--dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "[sigkill]" in out
    assert "EQUIVALENT" in out
    assert (tmp_path / "report.json").exists()


def test_fleet_command_with_mix(capsys):
    assert main(["fleet", "--mix", "lstm-pair", "--check"]) == 0
    out = capsys.readouterr().out
    assert "Fleet plan: 2 tenants" in out
    assert "aggregate throughput:" in out
    assert "worst tenant slowdown" in out
    assert "contended timelines checked, 0 violations" in out


def test_fleet_command_inline_tenants(capsys):
    assert main([
        "fleet", "--tenant", "a:lstm:dgc:0.01", "--tenant", "b:lstm:fp16",
        "--testbed", "nvlink", "--machines", "2", "--gpus", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "Fleet plan: 2 tenants" in out
    assert "a:" in out and "b:" in out


def test_fleet_command_from_config(tmp_path, capsys):
    from repro.cluster import nvlink_100g_cluster
    from repro.cluster.tenancy import FleetSpec, TenantSpec, save_fleet

    fleet = FleetSpec(
        cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=2),
        tenants=(
            TenantSpec(name="a", model="lstm", gc="dgc", ratio=0.01),
            TenantSpec(name="b", model="lstm", gc="efsignsgd"),
        ),
    )
    save_fleet(fleet, tmp_path / "fleet.json")
    assert main(["fleet", "--config", str(tmp_path / "fleet.json")]) == 0
    assert "Fleet plan: 2 tenants" in capsys.readouterr().out


def test_fleet_jobs_flag_prints_serial_note_on_small_hosts(capsys):
    import os

    assert main(["fleet", "--mix", "lstm-pair", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    if (os.cpu_count() or 1) < 2:
        assert "ran serially" in out
    else:
        assert "ran serially" not in out


def test_fleet_malformed_configs_exit_2(tmp_path, capsys):
    # Missing file.
    assert main(["fleet", "--config", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err
    # Unknown key in the fleet config.
    bad = tmp_path / "bad.json"
    bad.write_text(
        '{"testbed": "nvlink", "tenants": '
        '[{"name": "a", "model": "lstm"}], "surprise": 1}'
    )
    assert main(["fleet", "--config", str(bad)]) == 2
    assert "surprise" in capsys.readouterr().err
    # Malformed inline tenant spec.
    assert main(["fleet", "--tenant", "bad"]) == 2
    assert "NAME:MODEL:GC" in capsys.readouterr().err
    # Bad compressor ratio surfaces before planning.
    assert main(["fleet", "--tenant", "a:lstm:dgc:7.0",
                 "--tenant", "b:lstm:fp16"]) == 2
    assert "ratio" in capsys.readouterr().err
    # Exactly one source of tenants.
    assert main(["fleet"]) == 2
    assert main(["fleet", "--mix", "lstm-pair",
                 "--tenant", "a:lstm:fp16"]) == 2
    # Bad round cap.
    assert main(["fleet", "--mix", "lstm-pair", "--max-rounds", "0"]) == 2
    assert "--max-rounds" in capsys.readouterr().err
