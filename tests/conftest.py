"""Shared fixtures: small, fast jobs for the decision-algorithm tests."""

from __future__ import annotations

import pytest

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.strategy import StrategyEvaluator
from repro.models import synthetic_model, three_tensor_job
from repro.utils.units import MB, MS


@pytest.fixture
def small_cluster():
    """2 machines x 4 GPUs, NVLink-class intra, 100 Gbps inter."""
    return nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)


@pytest.fixture
def pcie_cluster():
    """4 machines x 4 GPUs, PCIe intra, 25 Gbps inter."""
    return pcie_25g_cluster(num_machines=4, gpus_per_machine=4)


@pytest.fixture
def tiny_model():
    """The Fig. 2 didactic three-tensor job."""
    return three_tensor_job()


@pytest.fixture
def medium_model():
    """Eight tensors with mixed sizes/compute — fast but non-trivial."""
    return synthetic_model(
        "medium",
        [
            (int(1 * MB / 4), 3 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(32 * MB / 4), 8 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(64 * MB / 4), 10 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(128 * MB / 4), 12 * MS),
        ],
        forward_time=15 * MS,
    )


@pytest.fixture
def tiny_job(tiny_model, small_cluster):
    return JobConfig(
        model=tiny_model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )


@pytest.fixture
def medium_job(medium_model, small_cluster):
    return JobConfig(
        model=medium_model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )


@pytest.fixture
def pcie_job(medium_model, pcie_cluster):
    return JobConfig(
        model=medium_model,
        gc=GCInfo("efsignsgd"),
        system=SystemInfo(cluster=pcie_cluster),
    )


@pytest.fixture
def tiny_evaluator(tiny_job):
    return StrategyEvaluator(tiny_job)


@pytest.fixture
def medium_evaluator(medium_job):
    return StrategyEvaluator(medium_job)
