"""Baseline-system behaviour tests."""

import pytest

from repro.baselines import (
    ALL_SYSTEMS,
    BytePSCompress,
    EspressoSystem,
    FP32,
    HiPress,
    HiTopKComm,
    UpperBound,
)
from repro.core.options import Device


def test_fp32_compresses_nothing(medium_job):
    result = FP32().run(medium_job)
    assert result.strategy.compressed_indices == []
    assert result.scaling_factor <= 1.0


def test_hitopkcomm_compresses_everything(medium_job):
    result = HiTopKComm().run(medium_job)
    assert len(result.strategy.compressed_indices) == medium_job.model.num_tensors
    for option in result.strategy.options:
        assert option.uses_device(Device.GPU)
        assert not option.compresses_intra


def test_bytepscompress_uses_cpu_everywhere(medium_job):
    result = BytePSCompress().run(medium_job)
    assert len(result.strategy.compressed_indices) == medium_job.model.num_tensors
    for option in result.strategy.options:
        assert option.uses_device(Device.CPU)


def test_hipress_is_selective(medium_job):
    """HiPress compresses where wall-clock saving > wall-clock cost —
    the big tensors of the medium job, but not the 1 MB one."""
    result = HiPress().run(medium_job)
    compressed = set(result.strategy.compressed_indices)
    assert compressed  # it does compress something
    sizes = [t.num_elements for t in medium_job.model.tensors]
    largest = max(range(len(sizes)), key=sizes.__getitem__)
    assert largest in compressed
    for index in compressed:
        assert result.strategy[index].uses_device(Device.GPU)


def test_espresso_beats_every_baseline(medium_job, pcie_job):
    for job in (medium_job, pcie_job):
        espresso = EspressoSystem().run(job).throughput
        for system_cls in (FP32, HiPress, HiTopKComm, BytePSCompress):
            baseline = system_cls().run(job).throughput
            assert espresso >= baseline * 0.999, system_cls.name


def test_upper_bound_dominates_all(medium_job):
    bound = UpperBound().run(medium_job).throughput
    for system_cls in ALL_SYSTEMS:
        assert bound >= system_cls().run(medium_job).throughput * 0.999


def test_all_systems_report_consistent_metrics(medium_job):
    for system_cls in ALL_SYSTEMS:
        result = system_cls().run(medium_job)
        expected = (
            medium_job.model.batch_size
            * medium_job.system.cluster.total_gpus
            / result.iteration_time
        )
        assert result.throughput == pytest.approx(expected)
        assert 0 < result.scaling_factor <= 1.0 + 1e-9
