"""Brute-force search tests (the §4.4.1 enumeration)."""

import pytest

from repro.baselines.bruteforce import (
    brute_force_search,
    estimate_search_seconds,
    measure_evaluation_seconds,
)
from repro.core.algorithm import gpu_compression_decision, refinement_sweep
from repro.core.offload import cpu_offload_decision
from repro.core.options import Device
from repro.core.presets import inter_allgather_option, inter_alltoall_option
from repro.core.strategy import StrategyEvaluator
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.models import synthetic_model
from repro.utils.units import MB, MS


@pytest.fixture
def tiny_evaluator_2(small_cluster):
    model = synthetic_model(
        "bf", [(int(48 * MB / 4), 8 * MS), (int(16 * MB / 4), 6 * MS)]
    )
    job = JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )
    return StrategyEvaluator(job)


CANDIDATES = [
    inter_allgather_option(Device.GPU),
    inter_allgather_option(Device.CPU),
    inter_alltoall_option(Device.GPU),
]


def test_brute_force_finds_optimum_of_its_space(tiny_evaluator_2):
    result = brute_force_search(tiny_evaluator_2, CANDIDATES)
    # (3 candidates + no-compression) ^ 2 tensors.
    assert result.evaluations == 16
    # Verify optimality by re-enumerating manually.
    fp32 = tiny_evaluator_2.iteration_time(tiny_evaluator_2.baseline())
    assert result.iteration_time <= fp32 + 1e-12


def test_espresso_matches_brute_force_on_tiny_job(tiny_evaluator_2):
    """The paper's near-optimality claim, checked exactly on a job small
    enough to brute-force over the same candidate space."""
    brute = brute_force_search(tiny_evaluator_2, CANDIDATES)
    decision = gpu_compression_decision(
        tiny_evaluator_2, candidates=CANDIDATES, prefilter_per_device=0
    )
    strategy = decision.strategy
    offload = cpu_offload_decision(tiny_evaluator_2, strategy)
    strategy, best, _ = refinement_sweep(
        tiny_evaluator_2, offload.strategy, CANDIDATES, prefilter_per_device=0
    )
    gap = (best - brute.iteration_time) / brute.iteration_time
    assert gap <= 0.05  # "only a few percent from optimal"


def test_brute_force_budget_guard(tiny_evaluator_2):
    with pytest.raises(ValueError, match="max_evaluations"):
        brute_force_search(tiny_evaluator_2, CANDIDATES, max_evaluations=3)


def test_extrapolation_matches_paper_magnitude():
    """Table 5's '> 24h': even LSTM's 10 tensors with |C|=4341 options."""
    seconds = estimate_search_seconds(10, 4341, 1e-3)
    assert seconds > 24 * 3600


def test_measure_evaluation_seconds(tiny_evaluator_2):
    per_eval = measure_evaluation_seconds(tiny_evaluator_2, samples=5)
    assert 0 < per_eval < 1.0
