"""Experiment-harness tests."""

import numpy as np
import pytest

from repro.baselines import EspressoSystem, FP32
from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo
from repro.eval import cdf, gpu_count_sweep, make_job, run_systems, upper_bound_gaps
from repro.models import synthetic_model
from repro.utils.units import MB, MS


@pytest.fixture
def sweep_model():
    return synthetic_model(
        "sweep",
        [(int(64 * MB / 4), 10 * MS), (int(128 * MB / 4), 12 * MS)],
        forward_time=10 * MS,
    )


def test_run_systems_names(medium_job):
    results = run_systems(medium_job, systems=[FP32, EspressoSystem])
    assert set(results) == {"FP32", "Espresso"}


def test_sweep_covers_grid(sweep_model):
    points = gpu_count_sweep(
        sweep_model,
        GCInfo("dgc", {"ratio": 0.01}),
        lambda m: nvlink_100g_cluster(num_machines=m, gpus_per_machine=4),
        machine_counts=(1, 2),
        systems=[FP32, EspressoSystem],
    )
    assert len(points) == 4
    assert {p.num_gpus for p in points} == {4, 8}


def test_espresso_gains_grow_with_scale(sweep_model):
    """The paper's observation: compression matters more at larger scale."""
    points = gpu_count_sweep(
        sweep_model,
        GCInfo("dgc", {"ratio": 0.01}),
        lambda m: nvlink_100g_cluster(num_machines=m, gpus_per_machine=4),
        machine_counts=(2, 8),
        systems=[FP32, EspressoSystem],
    )
    def ratio(gpus):
        by_name = {p.system: p for p in points if p.num_gpus == gpus}
        return by_name["Espresso"].throughput / by_name["FP32"].throughput

    assert ratio(32) >= ratio(8) * 0.98


def test_upper_bound_gaps_nonnegative(medium_job):
    gaps = upper_bound_gaps(medium_job, systems=[FP32, EspressoSystem])
    assert set(gaps) == {"FP32", "Espresso"}
    for value in gaps.values():
        assert 0.0 <= value <= 100.0
    # Espresso sits closer to the bound than FP32.
    assert gaps["Espresso"] <= gaps["FP32"] + 1e-9


def test_cdf():
    values, fractions = cdf([3.0, 1.0, 2.0])
    np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
    np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])
    with pytest.raises(ValueError):
        cdf([])
