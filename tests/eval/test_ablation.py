"""Fig. 15 dimension-ablation tests."""

import pytest

from repro.eval.ablation import (
    DIMENSION_MECHANISMS,
    all_compression,
    cpu_only,
    dimension_ablation,
    full_espresso,
    gpu_only,
    inter_allgather,
    myopic_compression,
)


def test_full_espresso_dominates_every_mechanism(pcie_job):
    """Fig. 15's conclusion: four dimensions beat any crippled three."""
    reference = full_espresso(pcie_job)
    for dimension, mechanisms in DIMENSION_MECHANISMS.items():
        for name, mechanism in mechanisms.items():
            crippled = mechanism(pcie_job)
            assert reference >= crippled - 1e-9, (dimension, name)


def test_dimension_ablation_shape(medium_job):
    results = dimension_ablation(medium_job, dimension=2)
    assert set(results) == {"GPU compression", "CPU compression", "Espresso"}
    assert all(0 < v <= 1.0 + 1e-9 for v in results.values())


def test_dimension_validation(medium_job):
    with pytest.raises(ValueError):
        dimension_ablation(medium_job, dimension=5)


def test_all_compression_compresses_everything(medium_job):
    # Indirect check: the mechanism runs and yields a sane factor even
    # though forcing compression of every tensor may hurt.
    factor = all_compression(medium_job)
    assert 0 < factor <= 1.0 + 1e-9


def test_myopic_differs_from_interaction_aware(pcie_job):
    myopic = myopic_compression(pcie_job)
    reference = full_espresso(pcie_job)
    assert reference >= myopic - 1e-9


def test_single_device_mechanisms(medium_job):
    for mechanism in (gpu_only, cpu_only, inter_allgather):
        factor = mechanism(medium_job)
        assert 0 < factor <= 1.0 + 1e-9
