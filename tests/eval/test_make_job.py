"""Helpers of the experiment harness."""

from repro.cluster import pcie_25g_cluster
from repro.config import GCInfo
from repro.eval import make_job
from repro.models import get_model


def test_make_job_defaults_devices():
    job = make_job(get_model("lstm"), GCInfo("efsignsgd"), pcie_25g_cluster())
    assert job.system.gpu.is_gpu
    assert not job.system.cpu.is_gpu
    assert job.build_compressor().name == "efsignsgd"
