"""Additional engine behaviours: capacity overrides, timeline helpers."""

import pytest

from repro.sim import (
    COMM,
    COMPRESS,
    INTER,
    INTRA,
    Stage,
    TensorChain,
    compute_stage,
    simulate,
)


def _chain(i, *stages):
    return TensorChain(tensor_index=i, stages=[compute_stage(0.01), *stages])


def test_capacity_override_parallelizes_a_link():
    comm = Stage(resource=INTER, duration=0.05, kind=COMM, label="")
    chains = [_chain(0, comm), _chain(1, comm)]
    serial = simulate(chains)
    doubled = simulate(chains, capacities={INTER: 2})
    assert doubled.makespan < serial.makespan


def test_by_resource_sorted_by_start():
    comm_a = Stage(resource=INTRA, duration=0.02, kind=COMM, label="a")
    comm_b = Stage(resource=INTRA, duration=0.01, kind=COMM, label="b")
    timeline = simulate([_chain(0, comm_a), _chain(1, comm_b)])
    stages = timeline.by_resource(INTRA)
    assert [s.label for s in stages] == ["a", "b"]
    assert stages[0].start <= stages[1].start


def test_by_tensor_orders_by_stage_index():
    comp = Stage(resource="cpu", duration=0.01, kind=COMPRESS, label="")
    comm = Stage(resource=INTER, duration=0.01, kind=COMM, label="")
    timeline = simulate([_chain(0, comp, comm)])
    stages = timeline.by_tensor(0)
    assert [s.stage_index for s in stages] == [0, 1, 2]


def test_ready_time_recorded():
    comm = Stage(resource=INTER, duration=0.05, kind=COMM, label="")
    timeline = simulate([_chain(0, comm), _chain(1, comm)])
    second = [s for s in timeline.stages if s.tensor_index == 1 and s.kind == COMM][0]
    # Ready when its compute ended, started when the link freed.
    assert second.ready == pytest.approx(0.02)
    assert second.start == pytest.approx(0.06)
