"""Fault-injection layer tests: perturbation algebra and the invariant
battery over faulted timelines."""

import pytest

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.conformance import validate_under_faults
from repro.core.strategy import StrategyEvaluator, baseline_strategy
from repro.models import get_model
from repro.sim.faults import (
    CPUContention,
    DegradedLink,
    FaultModel,
    MessageLoss,
    StragglerGPU,
    default_ensemble,
    ensemble_by_name,
    retransmit_factors,
)


@pytest.fixture(scope="module")
def job():
    return JobConfig(
        model=get_model("lstm"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=pcie_25g_cluster(2, 4)),
    )


def test_nominal_model_is_identity(job):
    assert FaultModel.nominal().apply_to_job(job) is job or (
        FaultModel.nominal().apply_to_job(job) == job
    )


def test_straggler_scales_compute_and_gpu_device(job):
    perturbed = StragglerGPU(2.0).apply(job)
    assert perturbed.model.forward_time == job.model.forward_time * 2.0
    for before, after in zip(job.model.tensors, perturbed.model.tensors):
        assert after.compute_time == before.compute_time * 2.0
        assert after.num_elements == before.num_elements
    assert perturbed.system.gpu.throughput == job.system.gpu.throughput / 2.0
    assert (
        perturbed.system.gpu.launch_overhead
        == job.system.gpu.launch_overhead * 2.0
    )
    # The original job is untouched (faults never mutate).
    assert job.system.gpu.throughput != perturbed.system.gpu.throughput


def test_degraded_link_scopes(job):
    intra = DegradedLink("intra", bandwidth_scale=0.5, extra_latency=1e-5)
    inter = DegradedLink("inter", bandwidth_scale=0.25)
    a = intra.apply(job)
    assert a.system.cluster.intra_bw == job.system.cluster.intra_bw * 0.5
    assert a.system.cluster.intra_latency == pytest.approx(
        job.system.cluster.intra_latency + 1e-5
    )
    assert a.system.cluster.inter_bw == job.system.cluster.inter_bw
    b = inter.apply(job)
    assert b.system.cluster.inter_bw == job.system.cluster.inter_bw * 0.25
    assert b.system.cluster.intra_bw == job.system.cluster.intra_bw


def test_cpu_contention(job):
    perturbed = CPUContention(slowdown=3.0, stolen_workers=2).apply(job)
    assert perturbed.system.cpu.throughput == job.system.cpu.throughput / 3.0
    assert (
        perturbed.system.cpu.parallel_workers
        == max(1, job.system.cpu.parallel_workers - 2)
    )
    # Never drops below one worker.
    floor = CPUContention(stolen_workers=100).apply(job)
    assert floor.system.cpu.parallel_workers == 1


def test_retransmit_factors_math():
    assert retransmit_factors(0.0, 1e-3) == (1.0, 0.0)
    bw_scale, backoff = retransmit_factors(0.1, 1e-3)
    # E[transmissions] = 1/(1-p) -> bandwidth scales by (1-p).
    assert bw_scale == pytest.approx(0.9)
    # E[backoff] = base * p / (1 - 2p).
    assert backoff == pytest.approx(1e-3 * 0.1 / 0.8)
    with pytest.raises(ValueError):
        retransmit_factors(0.5, 1e-3)
    with pytest.raises(ValueError):
        retransmit_factors(-0.01, 1e-3)


def test_message_loss_inflates_alpha_beta(job):
    perturbed = MessageLoss(0.02).apply(job)
    cluster, base = perturbed.system.cluster, job.system.cluster
    assert cluster.inter_bw == pytest.approx(base.inter_bw * 0.98)
    assert cluster.inter_latency > base.inter_latency
    # A lossy link strictly slows every strategy that touches it.
    evaluator = StrategyEvaluator(job)
    faulted = StrategyEvaluator(perturbed)
    fp32 = baseline_strategy(job.model.num_tensors)
    assert faulted.iteration_time(fp32) > evaluator.iteration_time(fp32)


def test_fault_model_composes_in_order(job):
    composed = FaultModel(
        "mix", (StragglerGPU(1.5), DegradedLink("inter", 0.5))
    )
    perturbed = composed.apply_to_job(job)
    assert perturbed.model.forward_time == job.model.forward_time * 1.5
    assert perturbed.system.cluster.inter_bw == job.system.cluster.inter_bw * 0.5
    other = FaultModel("loss", (MessageLoss(0.01),))
    both = composed.compose(other)
    assert both.name == "mix+loss"
    assert len(both.faults) == 3


def test_fault_validation():
    with pytest.raises(ValueError):
        StragglerGPU(0.5)
    with pytest.raises(ValueError):
        DegradedLink("nowhere")
    with pytest.raises(ValueError):
        DegradedLink("intra", bandwidth_scale=0.0)
    with pytest.raises(ValueError):
        CPUContention(slowdown=0.9)
    with pytest.raises(ValueError):
        MessageLoss(0.7)
    with pytest.raises(ValueError):
        ensemble_by_name("no-such-ensemble")


def test_default_ensemble_shape():
    ensemble = default_ensemble()
    names = [fm.name for fm in ensemble]
    assert names[0] == "nominal"
    assert len(names) == len(set(names))
    # One member per fault class plus the compound state.
    assert {"straggler-1.5x", "slow-inter-50", "slow-intra-50",
            "cpu-contention", "lossy-inter-1pct", "degraded-mix"} <= set(names)
    assert ensemble_by_name("default")[0].is_nominal
    for fm in ensemble:
        assert fm.describe().startswith(fm.name)


def test_every_faulted_timeline_passes_invariant_battery(job):
    """The acceptance bar: faults perturb inputs, never the engine, so
    every faulted timeline clears the full ``sim/validate`` battery."""
    results = validate_under_faults(job, oracle=False)
    assert len(results) == len(default_ensemble())
    for fault_name, reports in results:
        for report in reports:
            assert report.ok, (
                f"{fault_name}/{report.name}: "
                f"{[str(v) for v in report.violations]}"
            )


@pytest.mark.slow
def test_faulted_timelines_match_oracle_nvlink():
    """Differential oracle over faulted jobs (slow suite)."""
    job = JobConfig(
        model=get_model("vgg16"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster(2, 4)),
    )
    for fault_name, reports in validate_under_faults(job, oracle=True):
        for report in reports:
            assert report.oracle_exact, f"{fault_name}/{report.name}"
            assert report.incremental_exact, f"{fault_name}/{report.name}"


def test_faulted_job_makespans_are_finite_and_ordered(job):
    """A degraded state is never faster than nominal for FP32 (FP32 uses
    every resource class the ensemble degrades except the CPU pool)."""
    fp32 = baseline_strategy(job.model.num_tensors)
    nominal_time = StrategyEvaluator(job).iteration_time(fp32)
    for fault_model in default_ensemble():
        evaluator = StrategyEvaluator(fault_model.apply_to_job(job))
        time = evaluator.iteration_time(fp32)
        assert time >= nominal_time or fault_model.name == "cpu-contention"
