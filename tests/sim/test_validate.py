"""The invariant checker: clean on real timelines, sharp on tampered ones."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.conformance import conformance_strategies, validate_job
from repro.core.tree import enumerate_options
from repro.models import available_models, get_model
from repro.sim import (
    COMM,
    COMPRESS,
    CPU,
    DECOMPRESS,
    GPU,
    INTER,
    INTRA,
    Stage,
    TensorChain,
    compute_stage,
    simulate,
)
from repro.sim.engine import Timeline
from repro.sim.validate import (
    ConformanceError,
    assert_valid,
    check_option_conservation,
    check_timeline,
)

durations = st.floats(0.0, 0.1)


def _sync_stage(draw_tuple):
    resource, duration, kind = draw_tuple
    return Stage(resource=resource, duration=duration, kind=kind, label="")


sync_stages = st.tuples(
    st.sampled_from([CPU, INTRA, INTER, GPU]),
    durations,
    st.sampled_from([COMM, COMPRESS, DECOMPRESS]),
).map(_sync_stage)

chain_lists = st.lists(
    st.tuples(durations, st.lists(sync_stages, max_size=4)),
    min_size=1,
    max_size=8,
)


def build(chains_spec):
    return [
        TensorChain(tensor_index=i, stages=[compute_stage(ct), *stages])
        for i, (ct, stages) in enumerate(chains_spec)
    ]


@given(chain_lists, st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_engine_timelines_are_conformant(chains_spec, cpu_capacity):
    chains = build(chains_spec)
    timeline = simulate(chains, cpu_capacity=cpu_capacity)
    assert check_timeline(
        timeline, chains=chains, cpu_capacity=cpu_capacity
    ) == []
    # assert_valid returns the timeline unchanged when clean.
    assert assert_valid(timeline, chains=chains, cpu_capacity=cpu_capacity) is (
        timeline
    )


# -- tamper detection ------------------------------------------------------
#
# Two tensors, each compute(1.0) -> inter-comm(2.0).  The engine schedules:
#   t0 compute [0, 1), t1 compute [1, 2),
#   t0 comm    [1, 3), t1 comm    [3, 5)   -> makespan 5.0


def _didactic():
    chains = [
        TensorChain(0, [compute_stage(1.0), Stage(INTER, 2.0, COMM, "ar")]),
        TensorChain(1, [compute_stage(1.0), Stage(INTER, 2.0, COMM, "ar")]),
    ]
    return chains, simulate(chains)


def _replace(timeline, predicate, **changes):
    stages = tuple(
        dataclasses.replace(s, **changes) if predicate(s) else s
        for s in timeline.stages
    )
    return Timeline(stages=stages, makespan=timeline.makespan)


def _invariants(violations):
    return {v.invariant for v in violations}


def test_detects_wrong_makespan():
    chains, timeline = _didactic()
    bad = Timeline(stages=timeline.stages, makespan=timeline.makespan + 1.0)
    assert _invariants(check_timeline(bad, chains=chains)) == {"makespan"}


def test_detects_resource_overlap():
    chains, timeline = _didactic()
    # Pull tensor 1's comm forward so it overlaps tensor 0's on INTER.
    bad = _replace(
        timeline,
        lambda s: s.tensor_index == 1 and s.stage_index == 1,
        start=2.0,
        end=4.0,
    )
    assert "no-overlap" in _invariants(check_timeline(bad, chains=chains))


def test_detects_fifo_inversion():
    chains, timeline = _didactic()
    # Swap dispatch order on INTER: tensor 1 (ready 2.0) runs [2, 4) while
    # tensor 0 (ready 1.0, higher priority) is made to wait until 4.0.
    bad = _replace(
        timeline,
        lambda s: s.tensor_index == 1 and s.stage_index == 1,
        start=2.0,
        end=4.0,
    )
    bad = _replace(
        bad,
        lambda s: s.tensor_index == 0 and s.stage_index == 1,
        start=4.0,
        end=6.0,
    )
    bad = Timeline(stages=bad.stages, makespan=6.0)
    assert "fifo-dispatch" in _invariants(check_timeline(bad, chains=chains))


def test_detects_broken_chain_precedence():
    chains, timeline = _didactic()
    # Tensor 1's comm claims readiness before its compute stage finished.
    bad = _replace(
        timeline,
        lambda s: s.tensor_index == 1 and s.stage_index == 1,
        ready=1.5,
    )
    assert "chain-precedence" in _invariants(check_timeline(bad, chains=chains))


def test_detects_start_before_ready():
    chains, timeline = _didactic()
    bad = _replace(
        timeline,
        lambda s: s.tensor_index == 1 and s.stage_index == 1,
        start=2.5,
        end=4.5,
        ready=3.0,
    )
    assert "start-after-ready" in _invariants(check_timeline(bad))


def test_detects_incomplete_chain():
    chains, timeline = _didactic()
    truncated = Timeline(stages=timeline.stages[:-1], makespan=3.0)
    assert "completeness" in _invariants(
        check_timeline(truncated, chains=chains)
    )


def test_detects_altered_duration():
    chains, timeline = _didactic()
    bad = _replace(
        timeline,
        lambda s: s.tensor_index == 0 and s.stage_index == 1,
        duration=1.0,
    )
    assert "completeness" in _invariants(check_timeline(bad, chains=chains))


def test_assert_valid_raises_with_all_violations():
    chains, timeline = _didactic()
    bad = Timeline(stages=timeline.stages, makespan=0.0)
    with pytest.raises(ConformanceError) as excinfo:
        assert_valid(bad, chains=chains)
    assert any(v.invariant == "makespan" for v in excinfo.value.violations)


# -- payload-size conservation ---------------------------------------------


def test_all_enumerated_options_conserve_payload():
    """Every option in the full search tree conserves payload size on a
    distributed cluster (both even and uneven divisions)."""
    cluster = nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)
    for num_elements in (1 << 20, 999_983):  # power of two and a prime
        for option in enumerate_options(mode="independent"):
            assert check_option_conservation(
                option, num_elements, cluster
            ) == [], option.describe()


def test_conservation_trivial_on_single_gpu():
    cluster = nvlink_100g_cluster(num_machines=1, gpus_per_machine=1)
    for option in enumerate_options(mode="uniform"):
        assert check_option_conservation(option, 4096, cluster) == []


# -- the zoo × preset suite × both testbeds (tier-1) -----------------------


@pytest.mark.parametrize("testbed", ["nvlink", "pcie"])
@pytest.mark.parametrize("model_name", available_models())
def test_zoo_uniform_suite_invariants(model_name, testbed):
    """Invariant checker passes on all six zoo models × every uniform
    preset strategy × both interconnects (engine-only: the oracle sweep
    lives in test_oracle.py under the slow marker)."""
    factory = nvlink_100g_cluster if testbed == "nvlink" else pcie_25g_cluster
    job = JobConfig(
        model=get_model(model_name),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=factory(num_machines=2, gpus_per_machine=4)),
    )
    reports = validate_job(job, oracle=False)
    assert len(reports) == len(conformance_strategies(job.model.num_tensors))
    for report in reports:
        assert not report.violations, (
            f"{model_name}/{testbed}/{report.name}: "
            + "; ".join(str(v) for v in report.violations)
        )
        assert report.incremental_exact, f"{model_name}/{testbed}/{report.name}"
