"""Discrete-event engine tests."""

import pytest

from repro.sim import (
    COMM,
    COMPRESS,
    COMPUTE,
    CPU,
    GPU,
    INTER,
    INTRA,
    Stage,
    TensorChain,
    compute_stage,
    make_chains,
    simulate,
)
from repro.sim.engine import simulate_makespan


def chain(i, *stages):
    return TensorChain(tensor_index=i, stages=[compute_stage(0.01), *stages])


def comm(duration, resource=INTER):
    return Stage(resource=resource, duration=duration, kind=COMM, label="c")


def test_single_chain_sequential():
    timeline = simulate([chain(0, comm(0.02))])
    assert timeline.makespan == pytest.approx(0.03)
    stages = timeline.by_tensor(0)
    assert [s.kind for s in stages] == [COMPUTE, COMM]
    assert stages[1].start == pytest.approx(stages[0].end)


def test_compute_stages_chain_across_tensors():
    timeline = simulate([chain(0), chain(1), chain(2)])
    computes = [s for s in timeline.stages if s.kind == COMPUTE]
    assert [s.start for s in computes] == pytest.approx([0.0, 0.01, 0.02])


def test_communication_overlaps_computation():
    """WFBP: T0's comm runs while T1 computes."""
    timeline = simulate([chain(0, comm(0.01)), chain(1, comm(0.01))])
    t0_comm = timeline.by_tensor(0)[1]
    t1_compute = timeline.by_tensor(1)[0]
    assert t0_comm.start < t1_compute.end
    assert timeline.makespan == pytest.approx(0.03)


def test_link_serializes_communications():
    timeline = simulate([chain(0, comm(0.05)), chain(1, comm(0.05))])
    comms = [s for s in timeline.stages if s.kind == COMM]
    assert comms[1].start == pytest.approx(comms[0].end)
    assert timeline.makespan == pytest.approx(0.01 + 0.05 + 0.05)


def test_gpu_compression_delays_backprop():
    """A GPU compression kernel ready before T1's compute runs first."""
    compress = Stage(resource=GPU, duration=0.02, kind=COMPRESS, label="gc")
    timeline = simulate([chain(0, compress), chain(1)])
    t1_compute = timeline.by_tensor(1)[0]
    # T1's compute waits for T0's compression on the shared GPU stream.
    assert t1_compute.start == pytest.approx(0.03)


def test_cpu_compression_does_not_delay_backprop():
    compress = Stage(resource=CPU, duration=0.02, kind=COMPRESS, label="cc")
    timeline = simulate([chain(0, compress), chain(1)])
    t1_compute = timeline.by_tensor(1)[0]
    assert t1_compute.start == pytest.approx(0.01)


def test_cpu_capacity_parallelism():
    compress = Stage(resource=CPU, duration=0.05, kind=COMPRESS, label="cc")
    serial = simulate([chain(0, compress), chain(1, compress)], cpu_capacity=1)
    parallel = simulate([chain(0, compress), chain(1, compress)], cpu_capacity=2)
    assert parallel.makespan < serial.makespan


def test_different_links_run_concurrently():
    timeline = simulate(
        [chain(0, comm(0.05, INTRA)), chain(1, comm(0.05, INTER))]
    )
    intra_op = timeline.by_resource(INTRA)[0]
    inter_op = timeline.by_resource(INTER)[0]
    assert intra_op.end > inter_op.start  # overlapping in time


def test_ready_order_respected_on_links():
    """Earlier-ready comm goes first even if enqueued later."""
    timeline = simulate(
        [chain(0, comm(0.001)), chain(1, comm(0.1)), chain(2, comm(0.001))]
    )
    comms = timeline.by_resource(INTER)
    assert [s.tensor_index for s in comms] == [0, 1, 2]


def test_makespan_fast_path_matches_full():
    chains = [chain(0, comm(0.02), comm(0.01, INTRA)), chain(1, comm(0.03))]
    assert simulate_makespan(chains) == pytest.approx(simulate(chains).makespan)


def test_no_resource_overlap():
    """No two stages on a capacity-1 resource may overlap."""
    chains = [
        chain(i, comm(0.005 * (i + 1)), comm(0.002, INTRA)) for i in range(6)
    ]
    timeline = simulate(chains)
    for resource in (GPU, INTRA, INTER):
        stages = timeline.by_resource(resource)
        for a, b in zip(stages, stages[1:]):
            assert b.start >= a.end - 1e-12


def test_empty_simulation_rejected():
    with pytest.raises(ValueError):
        simulate([])


def test_make_chains_validation():
    with pytest.raises(ValueError):
        make_chains([0.01], [[], []])


def test_chain_must_start_with_compute():
    with pytest.raises(ValueError, match="compute"):
        TensorChain(tensor_index=0, stages=[comm(0.01)])


def test_only_first_stage_computes():
    with pytest.raises(ValueError, match="first stage"):
        TensorChain(
            tensor_index=0, stages=[compute_stage(0.01), compute_stage(0.01)]
        )


def test_deterministic():
    chains = [chain(i, comm(0.004), comm(0.003, INTRA)) for i in range(5)]
    a = simulate(chains)
    b = simulate(chains)
    assert a.makespan == b.makespan
    assert [(s.start, s.end) for s in a.stages] == [(s.start, s.end) for s in b.stages]


def test_tensor_finish():
    timeline = simulate([chain(0, comm(0.02))])
    assert timeline.tensor_finish(0) == pytest.approx(0.03)
