"""Exactness of the incremental delta-simulator (DESIGN.md §5.2).

The fast evaluation layer is only admissible because a chain swap priced
by :class:`~repro.sim.incremental.IncrementalSimulator` is *bit-identical*
to re-simulating the whole job from scratch.  The property tests here
drive randomly generated stage chains — durations include zeros so that
several scheduling batches land on one instant, the regime where the
checkpoint/restore machinery is easiest to get wrong — through random
single and multi swaps and compare against the reference engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import simulate_makespan
from repro.sim.incremental import IncrementalSimulator
from repro.sim.stages import (
    COMM,
    CPU,
    GPU,
    INTER,
    INTRA,
    Stage,
    TensorChain,
    compute_stage,
)

# Zero durations are deliberate: they force several completion batches at
# the same instant, and ties between chains, which is where checkpoint
# placement and the reconvergence early-exit have historically broken.
DURATIONS = (0.0, 1.0, 1.5, 2.0, 3.0)
SYNC_RESOURCES = (GPU, CPU, INTRA, INTER)


def _sync_stage(resource: str, duration: float) -> Stage:
    return Stage(resource=resource, duration=duration, kind=COMM)


sync_stage_st = st.builds(
    _sync_stage,
    st.sampled_from(SYNC_RESOURCES),
    st.sampled_from(DURATIONS),
)

chain_tail_st = st.lists(sync_stage_st, min_size=0, max_size=5)


@st.composite
def jobs(draw):
    """A base chain set plus replacement chains for a subset of them."""
    num_chains = draw(st.integers(min_value=1, max_value=5))
    chains = []
    for i in range(num_chains):
        head = compute_stage(draw(st.sampled_from(DURATIONS[1:])))
        chains.append(TensorChain(i, [head] + draw(chain_tail_st)))
    swap_indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_chains - 1),
            min_size=1,
            max_size=num_chains,
            unique=True,
        )
    )
    replacements = []
    for index in swap_indices:
        old = list(chains[index].stages)
        # Half the replacements keep a random prefix of the old chain
        # (exercising the shared-prefix reuse path, including pure
        # truncations and no-op swaps); the rest are fully fresh tails.
        keep = draw(st.integers(min_value=1, max_value=len(old)))
        tail = draw(chain_tail_st)
        replacements.append((index, old[:keep] + tail))
    cpu_capacity = draw(st.sampled_from((1, 2, 4)))
    stride = draw(st.sampled_from((1, 2, 7, None)))
    return chains, replacements, cpu_capacity, stride


def _swapped(chains, replacements):
    out = list(chains)
    for index, stages in replacements:
        out[index] = TensorChain(chains[index].tensor_index, stages)
    return out


@settings(max_examples=300, deadline=None)
@given(jobs())
def test_swaps_match_full_simulation(job):
    """Incremental F(S) == full F(S), exactly, for arbitrary swaps."""
    chains, replacements, cpu_capacity, stride = job
    sim = IncrementalSimulator(
        chains, cpu_capacity=cpu_capacity, checkpoint_stride=stride
    )
    assert sim.base_makespan == simulate_makespan(
        chains, cpu_capacity=cpu_capacity
    )

    expected = simulate_makespan(
        _swapped(chains, replacements), cpu_capacity=cpu_capacity
    )
    assert sim.swap_chains(replacements) == expected

    # The resident base must be restored bit-exactly after every swap:
    # single swaps of each replacement, priced on the same simulator,
    # must still agree with from-scratch simulations.
    for index, stages in replacements:
        expected = simulate_makespan(
            _swapped(chains, [(index, stages)]), cpu_capacity=cpu_capacity
        )
        assert sim.swap_chain(index, stages) == expected


@settings(max_examples=100, deadline=None)
@given(jobs(), jobs())
def test_repeated_swaps_do_not_corrupt_the_base(job_a, job_b):
    """Back-to-back swap batches reuse one simulator without drift."""
    chains, replacements, cpu_capacity, stride = job_a
    _, other, _, _ = job_b
    # Swaps must preserve the leading compute stage, so graft job_a's.
    other = [
        (i, [chains[i].stages[0]] + list(stages[1:]))
        for i, stages in other
        if i < len(chains)
    ]
    sim = IncrementalSimulator(
        chains, cpu_capacity=cpu_capacity, checkpoint_stride=stride
    )
    for batch in (replacements, other, replacements):
        if not batch:
            continue
        expected = simulate_makespan(
            _swapped(chains, batch), cpu_capacity=cpu_capacity
        )
        assert sim.swap_chains(batch) == expected


def test_mid_instant_checkpoint_regression():
    """Checkpoints must snapshot before the *first* batch of an instant.

    Zero-duration stages create several completion batches at one
    instant; a snapshot taken between them captures successors already
    dispatched with the *base* chain layout, so a replay restoring there
    skipped the swap entirely and returned the base makespan (12.5
    instead of 8.5 on this chain set, found by fuzzing with stride=2).
    """
    chains = [
        TensorChain(0, [compute_stage(3.0), _sync_stage(INTER, 0.0)]),
        TensorChain(
            1,
            [
                compute_stage(1.5),
                _sync_stage(INTRA, 2.0),
                _sync_stage(INTRA, 0.0),
                _sync_stage(CPU, 3.0),
                _sync_stage(CPU, 2.0),
                _sync_stage(INTER, 1.0),
            ],
        ),
        TensorChain(2, [compute_stage(2.0), _sync_stage(INTER, 1.0)]),
        TensorChain(3, [compute_stage(2.0)]),
    ]
    replacement = [compute_stage(1.5), _sync_stage(INTRA, 2.0)]
    sim = IncrementalSimulator(chains, cpu_capacity=4, checkpoint_stride=2)
    expected = simulate_makespan(
        _swapped(chains, [(1, replacement)]), cpu_capacity=4
    )
    assert expected == 8.5
    assert sim.swap_chain(1, replacement) == 8.5
    assert sim.base_makespan == 12.5


def test_noop_swap_returns_base_makespan():
    chains = [
        TensorChain(0, [compute_stage(1.0), _sync_stage(INTER, 2.0)]),
        TensorChain(1, [compute_stage(2.0), _sync_stage(CPU, 1.5)]),
    ]
    sim = IncrementalSimulator(chains)
    assert sim.swap_chain(0, list(chains[0].stages)) == sim.base_makespan
    assert (
        sim.swap_chains([(i, list(c.stages)) for i, c in enumerate(chains)])
        == sim.base_makespan
    )


def test_swap_validation_errors():
    chains = [TensorChain(0, [compute_stage(1.0), _sync_stage(INTER, 2.0)])]
    sim = IncrementalSimulator(chains)
    with pytest.raises(ValueError, match="out of range"):
        sim.swap_chain(1, [compute_stage(1.0)])
    with pytest.raises(ValueError, match="duplicate"):
        sim.swap_chains(
            [(0, [compute_stage(1.0)]), (0, [compute_stage(1.0)])]
        )
    with pytest.raises(ValueError, match="at least one stage"):
        sim.swap_chain(0, [])
    # The leading compute stage is pinned: a swap may only change the
    # synchronization tail (the planner never changes backprop).
    with pytest.raises(ValueError):
        sim.swap_chain(0, [compute_stage(9.0)])
