"""Chrome-trace (Trace Event Format) exporter tests."""

import io
import json

from repro.sim import (
    COMM,
    INTER,
    Stage,
    TensorChain,
    chrome_trace,
    chrome_trace_events,
    compute_stage,
    simulate,
    write_chrome_trace,
)
from repro.sim.stages import RESOURCES


def _timeline():
    chains = [
        TensorChain(0, [compute_stage(1.0), Stage(INTER, 2.0, COMM, "ar-0")]),
        TensorChain(1, [compute_stage(1.0), Stage(INTER, 2.0, COMM, "ar-1")]),
    ]
    return simulate(chains)


def test_one_complete_event_per_stage_plus_thread_metadata():
    timeline = _timeline()
    events = chrome_trace_events(timeline)
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(timeline.stages)
    assert len(metadata) == len(RESOURCES)
    assert {e["args"]["name"] for e in metadata} == set(RESOURCES)
    assert all(e["name"] == "thread_name" for e in metadata)


def test_timestamps_are_microseconds():
    timeline = _timeline()
    by_name = {
        e["name"]: e for e in chrome_trace_events(timeline) if e["ph"] == "X"
    }
    # Tensor 0's allreduce runs [1.0 s, 3.0 s) -> ts 1e6 us, dur 2e6 us.
    assert by_name["ar-0"]["ts"] == 1.0e6
    assert by_name["ar-0"]["dur"] == 2.0e6
    assert by_name["ar-0"]["cat"] == "comm"
    assert by_name["ar-0"]["args"]["tensor"] == 0


def test_events_share_one_pid_with_per_resource_tids():
    events = chrome_trace_events(_timeline())
    assert len({e["pid"] for e in events}) == 1
    used_tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert used_tids  # at least gpu + inter in the didactic job
    assert used_tids <= {e["tid"] for e in events if e["ph"] == "M"}


def test_chrome_trace_wrapper_metadata():
    timeline = _timeline()
    payload = chrome_trace(timeline)
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"]["stages"] == len(timeline.stages)
    assert payload["otherData"]["makespan_us"] == timeline.makespan * 1e6


def test_write_to_path_and_file_object(tmp_path):
    timeline = _timeline()
    path = tmp_path / "trace.json"
    write_chrome_trace(timeline, str(path))
    from_path = json.loads(path.read_text(encoding="utf-8"))

    buffer = io.StringIO()
    write_chrome_trace(timeline, buffer)
    from_file = json.loads(buffer.getvalue())

    assert from_path == from_file == chrome_trace(timeline)
