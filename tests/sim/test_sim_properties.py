"""Hypothesis property tests for the DES engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    COMM,
    COMPRESS,
    CPU,
    DECOMPRESS,
    GPU,
    INTER,
    INTRA,
    Stage,
    TensorChain,
    compute_stage,
    simulate,
)
from repro.sim.engine import simulate_makespan

durations = st.floats(0.0, 0.1)


def _sync_stage(draw_tuple):
    resource, duration, kind = draw_tuple
    return Stage(resource=resource, duration=duration, kind=kind, label="")


sync_stages = st.tuples(
    st.sampled_from([CPU, INTRA, INTER, GPU]),
    durations,
    st.sampled_from([COMM, COMPRESS, DECOMPRESS]),
).map(_sync_stage)

chain_lists = st.lists(
    st.tuples(durations, st.lists(sync_stages, max_size=4)),
    min_size=1,
    max_size=8,
)


def build(chains_spec):
    return [
        TensorChain(tensor_index=i, stages=[compute_stage(ct), *stages])
        for i, (ct, stages) in enumerate(chains_spec)
    ]


@given(chain_lists, st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_all_stages_scheduled_once(chains_spec, cpu_capacity):
    chains = build(chains_spec)
    timeline = simulate(chains, cpu_capacity=cpu_capacity)
    expected = sum(len(c.stages) for c in chains)
    assert len(timeline.stages) == expected


@given(chain_lists, st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_chain_order_and_no_overlap(chains_spec, cpu_capacity):
    chains = build(chains_spec)
    timeline = simulate(chains, cpu_capacity=cpu_capacity)
    # Within a chain, stages run in order.
    for chain in chains:
        stages = timeline.by_tensor(chain.tensor_index)
        for a, b in zip(stages, stages[1:]):
            assert b.start >= a.end - 1e-12
    # Serial resources never overlap.  Zero-duration stages may share an
    # instant with a boundary, so order by (start, end).
    for resource in (GPU, INTRA, INTER):
        stages = sorted(timeline.by_resource(resource), key=lambda s: (s.start, s.end))
        for a, b in zip(stages, stages[1:]):
            assert b.start >= a.end - 1e-12
    # Makespan is the max end.
    assert timeline.makespan >= max(s.end for s in timeline.stages) - 1e-12


@given(chain_lists)
@settings(max_examples=80, deadline=None)
def test_makespan_lower_bounds(chains_spec):
    """Makespan >= total compute and >= each resource's busy time."""
    chains = build(chains_spec)
    timeline = simulate(chains)
    total_compute = sum(spec[0] for spec in chains_spec)
    assert timeline.makespan >= total_compute - 1e-9
    for resource in (GPU, INTRA, INTER):
        busy = sum(s.duration for s in timeline.by_resource(resource))
        assert timeline.makespan >= busy - 1e-9


@given(chain_lists, st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_fast_path_agrees(chains_spec, cpu_capacity):
    chains = build(chains_spec)
    assert simulate_makespan(chains, cpu_capacity=cpu_capacity) == simulate(
        chains, cpu_capacity=cpu_capacity
    ).makespan


@given(chain_lists)
@settings(max_examples=60, deadline=None)
def test_makespan_monotone_in_durations(chains_spec):
    """Doubling one stage's duration never shortens the makespan.

    (A monotone scheduler property that holds for FIFO-by-readiness with
    fixed priorities on this chain-structured DAG.)
    """
    chains = build(chains_spec)
    base = simulate_makespan(chains)
    longer_spec = [
        (ct * 2, [Stage(s.resource, s.duration * 2, s.kind, s.label) for s in stages])
        for ct, stages in chains_spec
    ]
    longer = simulate_makespan(build(longer_spec))
    assert longer >= base - 1e-12
