"""Vectorized batch pricing layer (DESIGN.md §5.7).

The contract under test: everything ``repro.sim.batch`` returns is
bit-identical to the scalar engine — ``batch_swap_makespans`` equals a
per-candidate ``swap_chains_flat`` loop float for float, the lower
bounds never exceed the exact swapped makespan, and ``price_options``'s
bound-driven pruning changes *which* candidates get exact times but
never the batch winner, its time, or its ties.
"""

from __future__ import annotations

import pytest

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core import Espresso
from repro.core.algorithm import device_candidate_options
from repro.core.strategy import StrategyEvaluator
from repro.models import synthetic_model
from repro.sim import batch as batch_module
from repro.sim.batch import (
    batch_swap_makespans,
    numpy_available,
    suffix_lower_bounds,
)
from repro.utils.units import MB, MS

OPTIONS = device_candidate_options()


def _jobs():
    model = synthetic_model(
        "batch-eval",
        [
            (int(1 * MB / 4), 3 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(32 * MB / 4), 8 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(64 * MB / 4), 10 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(128 * MB / 4), 12 * MS),
        ],
        forward_time=15 * MS,
    )
    # NVLink exercises intra+inter routing; PCIe shifts the bottleneck
    # and (with CPU options) the capacity-4 multi-worker resource.
    return [
        JobConfig(
            model=model,
            gc=GCInfo("dgc", {"ratio": 0.01}),
            system=SystemInfo(
                cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)
            ),
        ),
        JobConfig(
            model=model,
            gc=GCInfo("efsignsgd"),
            system=SystemInfo(
                cluster=pcie_25g_cluster(num_machines=4, gpus_per_machine=4)
            ),
        ),
    ]


def _resident(job):
    """A fast evaluator with its incremental engine resident on the
    baseline strategy, plus that base strategy."""
    evaluator = StrategyEvaluator(job, fast=True)
    base = evaluator.baseline()
    evaluator.iteration_time(base)
    return evaluator, base


def _unique_variants(evaluator, index):
    """Distinct candidate flat chains for one tensor (the batch layer's
    input after price_options dedupes)."""
    variants, seen = [], set()
    for option in OPTIONS:
        res, dur = evaluator._flat_chain(index, option)
        signature = (tuple(res), tuple(dur))
        if signature not in seen:
            seen.add(signature)
            variants.append((res, dur))
    return variants


@pytest.mark.parametrize("job", _jobs(), ids=("nvlink", "pcie"))
def test_batch_swap_equals_scalar_swaps(job):
    """batch_swap_makespans == [swap_chains_flat(one) ...], exactly."""
    evaluator, _ = _resident(job)
    inc = evaluator._inc
    for index in range(job.model.num_tensors):
        variants = _unique_variants(evaluator, index)
        expected = [
            inc.swap_chains_flat([(index, res, dur)]) for res, dur in variants
        ]
        assert batch_swap_makespans(inc, index, variants) == expected


def test_batch_swap_zero_duration_candidate_falls_back():
    """A candidate with a zero-duration stage is re-priced through the
    scalar replay (the fixed-order argument needs positive durations) —
    and still returns the scalar float."""
    evaluator, _ = _resident(_jobs()[0])
    inc = evaluator._inc
    index = 3
    variants = [
        (res, dur) for res, dur in _unique_variants(evaluator, index)
        if len(res) > 1
    ]
    res, dur = variants[0]
    zeroed = (list(res), [dur[0]] + [0.0] * (len(dur) - 1))
    variants.append(zeroed)
    expected = [
        inc.swap_chains_flat([(index, r, d)]) for r, d in variants
    ]
    assert batch_swap_makespans(inc, index, variants) == expected


def test_batch_swap_validation_matches_scalar():
    """Invalid inputs raise the same ValueError the scalar path raises."""
    evaluator, _ = _resident(_jobs()[0])
    inc = evaluator._inc
    res, dur = evaluator._flat_chain(2, OPTIONS[0])
    for index, variants in [
        (99, [(res, dur)]),                              # index out of range
        (2, [((), ())]),                                 # empty chain
        (2, [([res[0]] * 1025, [dur[0]] * 1025)]),       # too many stages
        (2, [([1 - res[0]] + list(res[1:]), dur)]),      # leading stage swapped
        (2, [(res, [dur[0] + 1.0] + list(dur[1:]))]),    # leading dur changed
    ]:
        with pytest.raises(ValueError):
            inc.swap_chains_flat([(index, *variants[0])])
        with pytest.raises(ValueError):
            batch_swap_makespans(inc, index, variants)


@pytest.mark.parametrize("job", _jobs(), ids=("nvlink", "pcie"))
def test_suffix_lower_bounds_are_sound(job):
    """Every lower bound <= the exact swapped makespan."""
    if not numpy_available():
        pytest.skip("numpy unavailable: no bounds to test")
    evaluator, _ = _resident(job)
    inc = evaluator._inc
    for index in range(job.model.num_tensors):
        variants = _unique_variants(evaluator, index)
        bounds = suffix_lower_bounds(inc, index, variants)
        assert len(bounds) == len(variants)
        for (res, dur), bound in zip(variants, bounds):
            exact = inc.swap_chains_flat([(index, res, dur)])
            assert bound <= exact, (index, res, dur)


@pytest.mark.parametrize("job", _jobs(), ids=("nvlink", "pcie"))
def test_price_options_bound_preserves_winner_and_ties(job):
    """Bounded pricing returns exact times for the batch minimum and all
    its ties; pruned entries provably cannot matter to a min-taking
    caller."""
    evaluator, base = _resident(job)
    reference, _ = _resident(job)
    base_time = evaluator.iteration_time(base)
    for index in range(job.model.num_tensors):
        full = reference.price_options(base, index, OPTIONS)
        bounded = evaluator.price_options(
            base, index, OPTIONS, bound=base_time
        )
        assert all(time is not None for time in full)
        best = min(full)
        priced = [time for time in bounded if time is not None]
        if best < base_time:
            # The winner and every candidate tying it survive, exact.
            assert min(priced) == best
        for j, time in enumerate(bounded):
            if time is not None:
                assert time == full[j]
            else:
                # Sound cut: the exact time can neither beat the bound
                # nor win/tie the batch minimum.
                assert full[j] >= base_time or full[j] > best


def test_price_options_stats_accounting():
    """Counter bookkeeping: every candidate lands in exactly one bucket
    (resident/memo hit, dedup, pruned, or simulated)."""
    evaluator, base = _resident(_jobs()[0])
    stats_before = (
        evaluator.stats.batch_calls,
        evaluator.stats.batch_candidates,
    )
    base_time = evaluator.iteration_time(base)
    evaluator.price_options(base, 1, OPTIONS, bound=base_time)
    stats = evaluator.stats
    assert stats.batch_calls == stats_before[0] + 1
    assert stats.batch_candidates == stats_before[1] + len(OPTIONS)
    assert 0 <= stats.batch_pruned <= stats.batch_candidates
    assert 0 <= stats.batch_prune_rate <= 1.0
    assert stats.batch_fallbacks == 0  # bounded path never runs the walk


def _select(job, monkeypatch=None, vectorized=True):
    if not vectorized:
        monkeypatch.setattr(batch_module, "_np", None)
    result = Espresso(job).select_strategy()
    return result


def test_planner_stats_consistent_scalar_vs_vectorized(monkeypatch):
    """select_strategy() with numpy masked out (pure scalar pricing)
    makes bit-identical decisions, and the batch counters describe the
    same candidate stream; only pruning differs (no numpy, no bounds)."""
    job = _jobs()[0]
    fast = _select(job)
    with monkeypatch.context() as patch:
        scalar = _select(job, patch, vectorized=False)
    assert scalar.strategy.options == fast.strategy.options
    assert scalar.iteration_time == fast.iteration_time
    s_fast, s_scalar = fast.stats, scalar.stats
    # Identical candidate stream in: same pricing calls, same F(S)
    # volume.  (Dedup and memo hits legitimately shift between the two
    # runs — the scalar run memoizes candidates the vectorized run
    # prunes, so later duplicates hit the memo before the per-call
    # dedup map; only the *sum of ways a candidate avoids simulation*
    # is comparable, and the plan equality above is the real contract.)
    assert s_scalar.batch_calls == s_fast.batch_calls
    assert s_scalar.batch_candidates == s_fast.batch_candidates
    assert s_scalar.fs_calls == s_fast.fs_calls
    # Without numpy there are no bounds, hence no pruning — and the
    # planner's bounded path never engages the batch walk, hence no
    # order-divergence fallbacks on either side.
    assert s_scalar.batch_pruned == 0
    assert s_scalar.batch_fallbacks == 0
    assert s_fast.batch_fallbacks == 0
    for stats in (s_fast, s_scalar):
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        assert 0.0 <= stats.prefix_reuse_fraction <= 1.0
        assert stats.batch_pruned + stats.batch_dedup_hits <= (
            stats.batch_candidates
        )
