"""Stage / chain vocabulary validation."""

import pytest

from repro.sim.stages import (
    COMM,
    COMPUTE,
    GPU,
    INTER,
    Stage,
    TensorChain,
    compute_stage,
    make_chains,
)


def test_stage_validation():
    with pytest.raises(ValueError, match="resource"):
        Stage(resource="tpu", duration=1.0, kind=COMM)
    with pytest.raises(ValueError, match="kind"):
        Stage(resource=GPU, duration=1.0, kind="quantize")
    with pytest.raises(ValueError):
        Stage(resource=GPU, duration=-1.0, kind=COMM)


def test_compute_stage_helper():
    stage = compute_stage(0.01)
    assert stage.resource == GPU
    assert stage.kind == COMPUTE
    assert stage.duration == 0.01


def test_chain_requires_stages():
    with pytest.raises(ValueError, match="at least one"):
        TensorChain(tensor_index=0, stages=[])


def test_make_chains_indexes_in_order():
    comm = Stage(resource=INTER, duration=0.01, kind=COMM)
    chains = make_chains([0.01, 0.02], [[comm], []])
    assert [c.tensor_index for c in chains] == [0, 1]
    assert len(chains[0].stages) == 2
    assert len(chains[1].stages) == 1
