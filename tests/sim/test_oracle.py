"""Differential testing: engine vs naive oracle vs incremental simulator.

The three simulators implement the same scheduling model with radically
different data structures (heaps + checkpoints, flat O(n²) scans,
resident-array delta replay).  These tests assert **exact float
equality** between them — not approximate agreement — because the
planner compares candidate strategies by exact floats and an ulp of
drift could flip a decision.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.conformance import validate_job
from repro.models import available_models, get_model
from repro.sim import (
    COMM,
    COMPRESS,
    CPU,
    DECOMPRESS,
    GPU,
    INTER,
    INTRA,
    Stage,
    TensorChain,
    compute_stage,
    simulate,
)
from repro.sim.engine import simulate_makespan
from repro.sim.incremental import IncrementalSimulator
from repro.sim.oracle import reference_makespan, simulate_reference

durations = st.floats(0.0, 0.1)


def _sync_stage(draw_tuple):
    resource, duration, kind = draw_tuple
    return Stage(resource=resource, duration=duration, kind=kind, label="")


sync_stages = st.tuples(
    st.sampled_from([CPU, INTRA, INTER, GPU]),
    durations,
    st.sampled_from([COMM, COMPRESS, DECOMPRESS]),
).map(_sync_stage)

chain_lists = st.lists(
    st.tuples(durations, st.lists(sync_stages, max_size=4)),
    min_size=1,
    max_size=8,
)


def build(chains_spec):
    return [
        TensorChain(tensor_index=i, stages=[compute_stage(ct), *stages])
        for i, (ct, stages) in enumerate(chains_spec)
    ]


@given(chain_lists, st.integers(1, 4))
@settings(max_examples=120, deadline=None)
def test_oracle_matches_engine_exactly(chains_spec, cpu_capacity):
    """Full-Timeline equality: every float, every stage, same order."""
    chains = build(chains_spec)
    engine = simulate(chains, cpu_capacity=cpu_capacity)
    oracle = simulate_reference(chains, cpu_capacity=cpu_capacity)
    assert oracle == engine
    assert oracle.makespan == engine.makespan
    assert reference_makespan(chains, cpu_capacity=cpu_capacity) == (
        simulate_makespan(chains, cpu_capacity=cpu_capacity)
    )


@given(chain_lists, st.lists(sync_stages, max_size=4), st.data())
@settings(max_examples=120, deadline=None)
def test_incremental_swap_matches_oracle(chains_spec, new_sync, data):
    """A mid-run chain swap agrees with re-simulating from scratch —
    both against the engine and against the naive oracle."""
    chains = build(chains_spec)
    index = data.draw(st.integers(0, len(chains) - 1))
    # The swap keeps the leading compute stage (the incremental
    # simulator's resumable-prefix contract) and replaces the sync tail.
    compute = chains[index].stages[0]
    new_stages = [compute, *new_sync]

    incremental = IncrementalSimulator(chains)
    swapped_makespan = incremental.swap_chain(index, new_stages)

    swapped_chains = list(chains)
    swapped_chains[index] = TensorChain(
        tensor_index=chains[index].tensor_index, stages=new_stages
    )
    assert swapped_makespan == simulate_makespan(swapped_chains)
    assert swapped_makespan == reference_makespan(swapped_chains)
    # The swap must not have perturbed the resident base.
    assert incremental.base_makespan == reference_makespan(chains)


@given(chain_lists, st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_incremental_base_timeline_matches_oracle(chains_spec, cpu_capacity):
    chains = build(chains_spec)
    incremental = IncrementalSimulator(chains, cpu_capacity=cpu_capacity)
    oracle = simulate_reference(chains, cpu_capacity=cpu_capacity)
    assert incremental.base_timeline() == oracle
    assert incremental.base_makespan == oracle.makespan


def _zoo_job(model_name, testbed):
    factory = nvlink_100g_cluster if testbed == "nvlink" else pcie_25g_cluster
    return JobConfig(
        model=get_model(model_name),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(
            cluster=factory(num_machines=2, gpus_per_machine=4)
        ),
    )


@pytest.mark.slow
@pytest.mark.parametrize("testbed", ["nvlink", "pcie"])
@pytest.mark.parametrize("model_name", available_models())
def test_zoo_oracle_sweep(model_name, testbed):
    """O(n²) oracle equality over the whole zoo × uniform preset suite."""
    for report in validate_job(_zoo_job(model_name, testbed), oracle=True):
        assert report.oracle_exact, (
            f"{model_name}/{testbed}/{report.name}: "
            f"engine timeline != reference simulation"
        )
        assert report.incremental_exact
        assert not report.violations


@pytest.mark.parametrize("model_name", ["lstm", "vgg16"])
def test_zoo_oracle_fast_subset(model_name):
    """Default-on fast subset of the oracle sweep (smallest two models)."""
    for report in validate_job(_zoo_job(model_name, "nvlink"), oracle=True):
        assert report.ok, f"{model_name}/{report.name} failed conformance"
