"""Timeline-metric tests: intervals, overheads, throughput."""

import pytest

from repro.models import synthetic_model
from repro.cluster import nvlink_100g_cluster
from repro.sim import (
    COMM,
    COMPRESS,
    INTER,
    Stage,
    TensorChain,
    communication_overhead,
    communication_time,
    compression_overhead,
    compression_time,
    compute_stage,
    idle_gaps,
    iteration_time,
    merge_intervals,
    scaling_factor,
    simulate,
    subtract_intervals,
    throughput,
    total_length,
)


def test_merge_intervals():
    assert merge_intervals([(0, 1), (2, 3), (0.5, 2.5)]) == [(0, 3)]
    assert merge_intervals([(1, 1), (2, 3)]) == [(2, 3)]  # empty dropped
    assert merge_intervals([]) == []


def test_total_length_overlapping():
    assert total_length([(0, 2), (1, 3)]) == pytest.approx(3.0)


def test_subtract_intervals():
    remaining = subtract_intervals([(0, 10)], [(2, 4), (6, 7)])
    assert remaining == [(0, 2), (4, 6), (7, 10)]


def test_subtract_full_cover():
    assert subtract_intervals([(1, 2)], [(0, 5)]) == []


def _timeline(stages_per_tensor):
    chains = [
        TensorChain(tensor_index=i, stages=[compute_stage(0.01), *stages])
        for i, stages in enumerate(stages_per_tensor)
    ]
    return simulate(chains)


def test_paper_overhead_definitions():
    """T0's comm overlaps T1's compute -> zero o_comm for that part."""
    comm = Stage(resource=INTER, duration=0.01, kind=COMM, label="")
    timeline = _timeline([[comm], []])
    # T0 comm runs (0.01, 0.02); T1 compute runs (0.01, 0.02): full overlap.
    assert communication_time(timeline) == pytest.approx(0.01)
    assert communication_overhead(timeline) == pytest.approx(0.0, abs=1e-12)


def test_exposed_communication_counts_as_overhead():
    comm = Stage(resource=INTER, duration=0.05, kind=COMM, label="")
    timeline = _timeline([[], [comm]])
    # The last tensor's comm has nothing to hide behind.
    assert communication_overhead(timeline) == pytest.approx(0.05)


def test_compression_overhead_hides_behind_comm():
    comm = Stage(resource=INTER, duration=0.05, kind=COMM, label="")
    comp = Stage(resource="cpu", duration=0.03, kind=COMPRESS, label="")
    timeline = _timeline([[comm], [comp]])
    assert compression_time(timeline) == pytest.approx(0.03)
    # T1's CPU compression (0.02..0.05) hides behind T0's comm (0.01..0.06).
    assert compression_overhead(timeline) == pytest.approx(0.0, abs=1e-12)


def test_idle_gaps_detected():
    comm = Stage(resource=INTER, duration=0.005, kind=COMM, label="")
    chains = [
        TensorChain(tensor_index=0, stages=[compute_stage(0.01), comm]),
        TensorChain(tensor_index=1, stages=[compute_stage(0.05), comm]),
    ]
    timeline = simulate(chains)
    gaps = idle_gaps(timeline, INTER)
    assert len(gaps) == 1
    start, end = gaps[0]
    assert start == pytest.approx(0.015)
    assert end == pytest.approx(0.06)


def test_iteration_and_throughput_and_scaling():
    model = synthetic_model("m", [(1000, 0.02)], forward_time=0.01, batch_size=8)
    comm = Stage(resource=INTER, duration=0.01, kind=COMM, label="")
    timeline = _timeline([[comm]])
    iteration = iteration_time(timeline, model)
    cluster = nvlink_100g_cluster(num_machines=2, gpus_per_machine=2)
    assert throughput(model, cluster, iteration) == pytest.approx(
        8 * 4 / iteration
    )
    assert scaling_factor(model, iteration) == pytest.approx(0.03 / iteration)
    with pytest.raises(ValueError):
        throughput(model, cluster, 0.0)
