"""Cluster topology tests."""

import pytest

from repro.cluster import (
    ClusterSpec,
    nvlink_100g_cluster,
    pcie_25g_cluster,
    single_gpu,
)


def test_nvlink_preset_matches_paper_testbed():
    cluster = nvlink_100g_cluster()
    assert cluster.num_machines == 8
    assert cluster.gpus_per_machine == 8
    assert cluster.total_gpus == 64
    assert cluster.interconnect == "nvlink"
    # NVLink is far faster than the NIC.
    assert cluster.intra_bw > 5 * cluster.inter_bw


def test_pcie_preset_bandwidth_ordering():
    cluster = pcie_25g_cluster()
    assert cluster.interconnect == "pcie"
    # PCIe intra is still faster than 25 Gbps Ethernet.
    assert cluster.intra_bw > cluster.inter_bw


def test_inter_bandwidth_below_line_rate():
    # TCP efficiency: effective NIC bandwidth < line rate.
    assert nvlink_100g_cluster().inter_bw < 12.5e9


def test_single_gpu_is_not_distributed():
    cluster = single_gpu()
    assert not cluster.is_distributed
    assert not cluster.has_intra_phase
    assert not cluster.has_inter_phase


def test_phase_flags():
    cluster = ClusterSpec(
        num_machines=1, gpus_per_machine=4, intra_bw=1e9, inter_bw=1e9
    )
    assert cluster.has_intra_phase
    assert not cluster.has_inter_phase
    assert cluster.is_distributed


def test_with_machines_scales():
    cluster = nvlink_100g_cluster().with_machines(2)
    assert cluster.num_machines == 2
    assert cluster.total_gpus == 16
    assert cluster.intra_bw == nvlink_100g_cluster().intra_bw


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_machines": 0, "gpus_per_machine": 8, "intra_bw": 1e9, "inter_bw": 1e9},
        {"num_machines": 1, "gpus_per_machine": 0, "intra_bw": 1e9, "inter_bw": 1e9},
        {"num_machines": 1, "gpus_per_machine": 1, "intra_bw": 0, "inter_bw": 1e9},
        {"num_machines": 1, "gpus_per_machine": 1, "intra_bw": 1e9, "inter_bw": -1},
        {
            "num_machines": 1,
            "gpus_per_machine": 1,
            "intra_bw": 1e9,
            "inter_bw": 1e9,
            "intra_latency": -1e-6,
        },
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        ClusterSpec(**kwargs)
