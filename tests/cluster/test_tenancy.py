"""Fleet vocabulary + the contention projection's conservation laws.

The hypothesis properties pin the two contracts the joint planner
depends on: the fleet-induced ``DegradedLink`` factors are
mass-conserving (the bandwidth taken from a tenant equals the other
tenants' offered wire traffic, whenever the clamp is inactive) and
bit-identical across any ordering of the job list.
"""

import itertools
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.cluster.tenancy import (
    FleetSpec,
    LinkLoad,
    MIN_BANDWIDTH_SHARE,
    TenantSpec,
    contention_models,
    link_load,
    load_fleet,
    save_fleet,
)
from repro.core.strategy import StrategyEvaluator, baseline_strategy
from repro.sim.faults import CPUContention, DegradedLink


def make_fleet(machines=2, gpus=2, testbed="nvlink"):
    factory = nvlink_100g_cluster if testbed == "nvlink" else pcie_25g_cluster
    return FleetSpec(
        cluster=factory(num_machines=machines, gpus_per_machine=gpus),
        tenants=(
            TenantSpec(name="a", model="lstm", gc="dgc", ratio=0.01),
            TenantSpec(name="b", model="lstm", gc="efsignsgd"),
        ),
    )


def scale_of(model) -> float:
    for fault in model.faults:
        if isinstance(fault, DegradedLink):
            return fault.bandwidth_scale
    return 1.0


def stolen_of(model) -> int:
    for fault in model.faults:
        if isinstance(fault, CPUContention):
            return fault.stolen_workers
    return 0


# -- spec vocabulary -------------------------------------------------------


def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec(name="", model="lstm")
    with pytest.raises(ValueError):
        TenantSpec(name="a", model="not-a-model")
    with pytest.raises(ValueError):
        TenantSpec(name="a", model="lstm", ratio=0.0)
    with pytest.raises(ValueError):
        TenantSpec(name="a", model="lstm", ratio=1.5)
    tenant = TenantSpec(name="a", model="lstm", gc="topk", ratio=0.01)
    assert tenant.gc_info().params["ratio"] == 0.01


def test_tenant_job_is_ordinary_job():
    fleet = make_fleet()
    job = fleet.tenants[0].job(fleet.cluster)
    assert job.model.name == "lstm"
    assert job.gc.algorithm == "dgc"
    assert job.system.cluster == fleet.cluster


def test_tenant_bad_gc_params_surface_at_spec_time():
    tenant = TenantSpec(
        name="a", model="lstm", gc="dgc", gc_params={"ratio": 7.0}
    )
    with pytest.raises(ValueError):
        tenant.job(nvlink_100g_cluster(2, 2))


def test_fleet_spec_rejects_duplicates_and_empty():
    cluster = nvlink_100g_cluster(2, 2)
    with pytest.raises(ValueError):
        FleetSpec(cluster=cluster, tenants=())
    with pytest.raises(ValueError):
        FleetSpec(
            cluster=cluster,
            tenants=(
                TenantSpec(name="a", model="lstm"),
                TenantSpec(name="a", model="vgg16"),
            ),
        )


def test_fleet_round_trip_and_unknown_keys(tmp_path):
    fleet = make_fleet()
    path = tmp_path / "fleet.json"
    save_fleet(fleet, path)
    loaded = load_fleet(path)
    assert loaded == fleet

    data = fleet.to_dict()
    data["surprise"] = 1
    with pytest.raises(ValueError, match="surprise"):
        FleetSpec.from_dict(data)

    tenant_data = fleet.tenants[0].to_dict()
    tenant_data["typo"] = True
    with pytest.raises(ValueError, match="typo"):
        TenantSpec.from_dict(tenant_data, index=0)


def test_fleet_from_dict_testbed_form_and_conflicts():
    fleet = FleetSpec.from_dict(
        {
            "testbed": "pcie",
            "machines": 2,
            "gpus": 2,
            "tenants": [{"name": "a", "model": "lstm"}],
        }
    )
    assert fleet.cluster == pcie_25g_cluster(2, 2)
    with pytest.raises(ValueError, match="not both"):
        FleetSpec.from_dict(
            {
                "testbed": "pcie",
                "cluster": make_fleet().to_dict()["cluster"],
                "tenants": [{"name": "a", "model": "lstm"}],
            }
        )
    with pytest.raises(ValueError, match="testbed"):
        FleetSpec.from_dict(
            {"testbed": "token-ring", "tenants": [{"name": "a", "model": "lstm"}]}
        )
    with pytest.raises(ValueError, match="tenants"):
        FleetSpec.from_dict({"testbed": "pcie", "tenants": []})
    with pytest.raises(KeyError):
        make_fleet().tenant("nobody")


# -- contention projection: hypothesis properties --------------------------

CLUSTER = nvlink_100g_cluster(2, 2)

loads_strategy = st.lists(
    st.floats(0.0, CLUSTER.inter_bw, allow_nan=False), min_size=2, max_size=6
).map(
    lambda rates: [
        LinkLoad(
            tenant=f"t{i}",
            inter_utilization=rate / CLUSTER.inter_bw,
            inter_rate=rate,
            cpu_utilization=0.0,
        )
        for i, rate in enumerate(rates)
    ]
)


@given(loads_strategy)
@settings(max_examples=200, deadline=None)
def test_degraded_link_factors_are_mass_conserving(loads):
    """Whenever the [min_share, 1] clamp is inactive, the bandwidth the
    projection takes from tenant i, ``(1 - scale_i) * inter_bw``, equals
    the sum of the other tenants' offered wire bytes/second."""
    models = contention_models(loads, CLUSTER)
    for load in loads:
        cross = math.fsum(
            other.inter_rate for other in loads if other.tenant != load.tenant
        )
        scale = scale_of(models[load.tenant])
        unclamped = 1.0 - cross / CLUSTER.inter_bw
        if MIN_BANDWIDTH_SHARE <= unclamped <= 1.0:
            imposed = (1.0 - scale) * CLUSTER.inter_bw
            assert math.isclose(imposed, cross, rel_tol=1e-12, abs_tol=1e-3)
        else:
            # Clamped: the scale sits exactly on the active bound.
            expected = min(1.0, max(MIN_BANDWIDTH_SHARE, unclamped))
            assert scale == expected
        assert MIN_BANDWIDTH_SHARE <= scale <= 1.0


@given(loads_strategy, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_projection_deterministic_across_orderings(loads, rng):
    """Any permutation of the job list yields bit-identical factors."""
    reference = contention_models(loads, CLUSTER)
    shuffled = list(loads)
    rng.shuffle(shuffled)
    permuted = contention_models(shuffled, CLUSTER)
    assert set(permuted) == set(reference)
    for name in reference:
        assert scale_of(permuted[name]) == scale_of(reference[name])
        assert stolen_of(permuted[name]) == stolen_of(reference[name])


def test_projection_deterministic_exhaustive_permutations():
    """Exact-equality determinism over every ordering of a real fleet's
    loads (not just sampled shuffles)."""
    fleet = make_fleet()
    jobs = fleet.jobs()
    loads = []
    for name in sorted(jobs):
        strategy = baseline_strategy(jobs[name].model.num_tensors)
        timeline = StrategyEvaluator(jobs[name]).timeline(strategy)
        loads.append(link_load(name, jobs[name], timeline))
    reference = contention_models(loads, fleet.cluster)
    for permutation in itertools.permutations(loads):
        models = contention_models(list(permutation), fleet.cluster)
        for name in reference:
            assert scale_of(models[name]) == scale_of(reference[name])


def test_real_fleet_mass_conservation():
    """With real simulated timelines: the cross-traffic imposed on each
    tenant equals the sum of the other jobs' wire bytes per second."""
    fleet = make_fleet(testbed="pcie")
    jobs = fleet.jobs()
    loads = {}
    for name in sorted(jobs):
        strategy = baseline_strategy(jobs[name].model.num_tensors)
        timeline = StrategyEvaluator(jobs[name]).timeline(strategy)
        loads[name] = link_load(name, jobs[name], timeline)
        # Busy fraction of a capacity-1 link is a fraction.
        assert 0.0 <= loads[name].inter_utilization <= 1.0
        assert loads[name].inter_rate <= fleet.cluster.inter_bw
    models = contention_models(list(loads.values()), fleet.cluster)
    for name, load in loads.items():
        cross = math.fsum(
            other.inter_rate
            for other_name, other in loads.items()
            if other_name != name
        )
        scale = scale_of(models[name])
        unclamped = 1.0 - cross / fleet.cluster.inter_bw
        if MIN_BANDWIDTH_SHARE <= unclamped <= 1.0:
            assert math.isclose(
                (1.0 - scale) * fleet.cluster.inter_bw,
                cross,
                rel_tol=1e-12,
                abs_tol=1e-3,
            )


def test_contention_models_validation():
    load = LinkLoad("a", 0.5, 1.0, 0.0)
    with pytest.raises(ValueError, match="min_share"):
        contention_models([load], CLUSTER, min_share=0.0)
    with pytest.raises(ValueError, match="duplicate"):
        contention_models([load, load], CLUSTER)


def test_cpu_contention_steals_whole_workers():
    loads = [
        LinkLoad("a", 0.0, 0.0, 0.9),
        LinkLoad("b", 0.0, 0.0, 0.8),
        LinkLoad("c", 0.0, 0.0, 0.4),
    ]
    models = contention_models(loads, CLUSTER)
    # a sees floor(0.8 + 0.4) = 1 stolen worker, c floor(0.9 + 0.8) = 1.
    assert stolen_of(models["a"]) == 1
    assert stolen_of(models["b"]) == 1
    assert stolen_of(models["c"]) == 1
    # No wire traffic: no DegradedLink fault.
    assert scale_of(models["a"]) == 1.0


def test_link_load_rejects_degenerate_iteration():
    import dataclasses

    fleet = make_fleet()
    job = fleet.tenants[0].job(fleet.cluster)
    timeline = StrategyEvaluator(job).timeline(
        baseline_strategy(job.model.num_tensors)
    )
    broken = dataclasses.replace(
        timeline, makespan=-(job.model.forward_time + 1.0)
    )
    with pytest.raises(ValueError, match="non-positive"):
        link_load("a", job, broken)
