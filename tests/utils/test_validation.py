"""Argument-validation helper tests."""

import pytest

from repro.utils.validation import check_non_negative, check_positive


def test_check_positive_passes_through():
    assert check_positive("x", 3.5) == 3.5


@pytest.mark.parametrize("bad", [0, -1, -0.001])
def test_check_positive_rejects(bad):
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", bad)


def test_check_non_negative_accepts_zero():
    assert check_non_negative("y", 0.0) == 0.0


def test_check_non_negative_rejects_negative():
    with pytest.raises(ValueError, match="y must be >= 0"):
        check_non_negative("y", -1e-9)


def test_check_finite_passes_through():
    from repro.utils.validation import check_finite

    assert check_finite("z", 1.5) == 1.5
    assert check_finite("z", 0.0) == 0.0


@pytest.mark.parametrize(
    "bad", [float("nan"), float("inf"), float("-inf")]
)
def test_check_finite_rejects(bad):
    from repro.utils.validation import check_finite

    with pytest.raises(ValueError, match="z must be finite"):
        check_finite("z", bad)


def test_nan_slips_past_non_negative():
    """Documents why check_finite exists: NaN compares false to
    everything, so `value < 0` does not reject it."""
    import math

    assert math.isnan(check_non_negative("y", float("nan")))
