"""ASCII table renderer tests."""

import pytest

from repro.utils.tables import render_table


def test_render_basic_alignment():
    out = render_table(["name", "x"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "long-name" in lines[3]
    # All data rows have the same width.
    assert len(lines[2]) == len(lines[3])


def test_render_with_title():
    out = render_table(["a"], [[1]], title="My table")
    assert out.splitlines()[0] == "My table"


def test_render_rejects_ragged_rows():
    with pytest.raises(ValueError, match="columns"):
        render_table(["a", "b"], [[1]])


def test_render_empty_rows():
    out = render_table(["col"], [])
    assert "col" in out
    assert len(out.splitlines()) == 2  # header + rule only
