"""Unit-conversion and formatting tests."""

import pytest

from repro.utils.units import (
    GB,
    KB,
    MB,
    MS,
    US,
    GbpsToBytesPerSec,
    format_bytes,
    format_seconds,
)


def test_size_constants_are_binary_powers():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_time_constants():
    assert US == pytest.approx(1e-6)
    assert MS == pytest.approx(1e-3)


def test_gbps_conversion_100g():
    # 100 Gbit/s = 12.5e9 bytes/s.
    assert GbpsToBytesPerSec(100.0) == pytest.approx(12.5e9)


def test_gbps_conversion_zero():
    assert GbpsToBytesPerSec(0.0) == 0.0


@pytest.mark.parametrize(
    "value,expected",
    [
        (512, "512.0 B"),
        (2048, "2.0 KB"),
        (3 * MB, "3.0 MB"),
        (int(1.5 * GB), "1.5 GB"),
    ],
)
def test_format_bytes(value, expected):
    assert format_bytes(value) == expected


def test_format_bytes_terabytes():
    assert format_bytes(2 * 1024 * GB) == "2.0 TB"


@pytest.mark.parametrize(
    "value,expected",
    [
        (7200.0, "2.0 h"),
        (2.5, "2.50 s"),
        (0.0123, "12.3 ms"),
        (45e-6, "45.0 us"),
    ],
)
def test_format_seconds(value, expected):
    assert format_seconds(value) == expected
