"""GraVAC-style adaptive ratio control on the convergence harness.

The controller watches windowed training loss, walks the active ratio
along a ladder through the *shared* compressor object (one assignment
retunes every worker), and — when given a DegradationTable — replans
each move through the budgeted replan path.
"""

from __future__ import annotations

import pytest

from repro.cluster import pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.robust import DegradationTable
from repro.models import get_model
from repro.sim.faults import RatioChange
from repro.training import AdaptiveRatioController
from repro.training.chaos import TrainingJobSpec

LADDER = (0.01, 0.05, 0.1, 0.5)


def _trainer(gc="dgc", ratio=0.1, steps=16):
    spec = TrainingJobSpec(
        gc=gc, ratio=ratio, workers=2, steps=steps, eval_every=steps,
        samples=120, features=8, classes=2, informative=4, hidden=8,
    )
    return spec.build_trainer()


def test_controller_requires_ratio_knob():
    with pytest.raises(ValueError, match="ratio"):
        AdaptiveRatioController(_trainer(gc="efsignsgd"))
    with pytest.raises(ValueError, match="window"):
        AdaptiveRatioController(_trainer(), window=0)
    with pytest.raises(ValueError, match="relax_threshold"):
        AdaptiveRatioController(
            _trainer(), tighten_threshold=0.0, relax_threshold=0.1
        )
    with pytest.raises(ValueError, match="ladder"):
        AdaptiveRatioController(_trainer(), ladder=(0.1, 1.5))


def test_controller_changes_active_ratio_during_training():
    """The convergence-harness gate: over a short real training run the
    controller demonstrably moves the active ratio, and the move lands
    on the shared compressor (not a private copy)."""
    trainer = _trainer()
    controller = AdaptiveRatioController(
        trainer, ladder=LADDER, window=2,
        tighten_threshold=0.005, relax_threshold=0.0,
    )
    start = controller.ratio
    for _ in range(16):
        loss = trainer.train_step()
        controller.observe(loss)
    assert controller.decisions, "controller never moved the ratio"
    assert controller.ratio == trainer.compressor.ratio
    moves = {d.direction for d in controller.decisions}
    assert moves <= {"tighten", "relax"}
    for decision in controller.decisions:
        assert decision.ratio in controller.ladder
        assert decision.previous != decision.ratio
        assert decision.compression_gain >= 1.0
        assert decision.summary()
    # At least one decision actually moved off the starting rung.
    assert any(d.ratio != start for d in controller.decisions)


def test_controller_replans_within_budget():
    """Every accepted move replans through DegradationTable.replan and
    answers inside the handed budget."""
    job = JobConfig(
        model=get_model("lstm"),
        gc=GCInfo("dgc", {"ratio": 0.1}),
        system=SystemInfo(
            cluster=pcie_25g_cluster(num_machines=2, gpus_per_machine=4)
        ),
    )
    table = DegradationTable.build(job)
    trainer = _trainer()
    controller = AdaptiveRatioController(
        trainer, ladder=LADDER, window=2, tighten_threshold=0.005,
        table=table, replan_budget_seconds=30.0,
    )
    for _ in range(12):
        controller.observe(trainer.train_step())
    assert controller.decisions
    for decision in controller.decisions:
        assert decision.replan is not None
        assert decision.replan.within_budget
        assert len(decision.replan.strategy) == job.model.num_tensors


def test_ratio_change_fault_perturbs_job_not_engine():
    job = JobConfig(
        model=get_model("lstm"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(
            cluster=pcie_25g_cluster(num_machines=2, gpus_per_machine=4)
        ),
    )
    fault = RatioChange(0.05)
    perturbed = fault.apply(job)
    assert perturbed.gc.params["ratio"] == 0.05
    assert perturbed.model == job.model
    assert job.gc.params["ratio"] == 0.01  # original untouched
    assert "0.05" in fault.describe()
    with pytest.raises(ValueError):
        RatioChange(0.0)


def test_compression_gain_tracks_ratio():
    trainer = _trainer(ratio=0.1)
    controller = AdaptiveRatioController(trainer, ladder=LADDER)
    coarse = controller.compression_gain()
    trainer.compressor.ratio = 0.01
    fine = controller.compression_gain()
    assert fine > coarse  # smaller ratio, fewer wire bytes, more gain
