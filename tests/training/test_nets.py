"""Numpy MLP tests, including a numerical gradient check."""

import numpy as np
import pytest

from repro.training import MLP


def test_parameter_names_stable():
    mlp = MLP(num_features=8, num_classes=3, hidden=16)
    assert mlp.parameter_names() == [
        "fc1.weight",
        "fc1.bias",
        "fc2.weight",
        "fc2.bias",
        "fc3.weight",
        "fc3.bias",
    ]


def test_predict_shape():
    mlp = MLP(num_features=8, num_classes=3, hidden=16)
    x = np.random.default_rng(0).standard_normal((10, 8))
    assert mlp.predict(x).shape == (10,)


def test_loss_decreases_under_gradient_steps():
    rng = np.random.default_rng(1)
    mlp = MLP(num_features=6, num_classes=2, hidden=12, seed=1)
    x = rng.standard_normal((64, 6)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)
    first_loss, _ = mlp.loss_and_gradients(x, y)
    for _ in range(60):
        _, grads = mlp.loss_and_gradients(x, y)
        mlp.apply_update({k: 0.3 * g for k, g in grads.items()})
    final_loss, _ = mlp.loss_and_gradients(x, y)
    assert final_loss < first_loss * 0.5


def test_gradients_match_finite_differences():
    rng = np.random.default_rng(2)
    mlp = MLP(num_features=4, num_classes=3, hidden=5, seed=2)
    x = rng.standard_normal((8, 4)).astype(np.float32)
    y = rng.integers(0, 3, size=8)
    _, grads = mlp.loss_and_gradients(x, y)
    eps = 1e-3
    for name in ("fc1.weight", "fc3.bias"):
        param = mlp.params[name]
        flat_index = 3 % param.size
        idx = np.unravel_index(flat_index, param.shape)
        original = param[idx]
        param[idx] = original + eps
        loss_plus, _ = mlp.loss_and_gradients(x, y)
        param[idx] = original - eps
        loss_minus, _ = mlp.loss_and_gradients(x, y)
        param[idx] = original
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert grads[name][idx] == pytest.approx(numeric, rel=0.05, abs=1e-4)


def test_clone_and_load_round_trip():
    mlp = MLP(num_features=4, num_classes=2, hidden=4, seed=3)
    snapshot = mlp.clone_params()
    mlp.apply_update({k: np.ones_like(v) for k, v in mlp.params.items()})
    assert not np.allclose(mlp.params["fc1.weight"], snapshot["fc1.weight"])
    mlp.load_params(snapshot)
    np.testing.assert_array_equal(mlp.params["fc1.weight"], snapshot["fc1.weight"])
