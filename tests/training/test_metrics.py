"""Classification metric tests."""

import numpy as np
import pytest

from repro.training import accuracy, macro_f1


def test_accuracy_basic():
    assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)


def test_accuracy_validation():
    with pytest.raises(ValueError):
        accuracy(np.array([1]), np.array([1, 2]))
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_macro_f1_perfect():
    labels = np.array([0, 1, 2, 0, 1, 2])
    assert macro_f1(labels, labels) == pytest.approx(1.0)


def test_macro_f1_known_value():
    predictions = np.array([0, 0, 1, 1])
    labels = np.array([0, 1, 1, 1])
    # class 0: P=0.5 R=1 F1=2/3 ; class 1: P=1 R=2/3 F1=0.8.
    assert macro_f1(predictions, labels) == pytest.approx((2 / 3 + 0.8) / 2)


def test_macro_f1_handles_missing_class():
    predictions = np.array([0, 0, 0])
    labels = np.array([0, 1, 0])
    value = macro_f1(predictions, labels)
    assert 0.0 < value < 1.0
