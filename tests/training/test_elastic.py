"""Elastic membership tests: re-shard, residual conservation, replan."""

import numpy as np
import pytest

from repro.cluster import pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.robust import DegradationTable
from repro.models import get_model
from repro.training.chaos import (
    TrainingJobSpec,
    diff_fingerprints,
    fingerprint,
)
from repro.training.checkpoint import (
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
)
from repro.training.elastic import (
    ElasticController,
    MembershipEvent,
    MembershipFault,
    membership_model,
)

SPEC = TrainingJobSpec(
    gc="topk", ratio=0.2, workers=3, steps=12, eval_every=4,
    checkpoint_every=2, samples=150, features=8, classes=2, informative=4,
    hidden=8,
)


def test_event_validation():
    with pytest.raises(ValueError):
        MembershipEvent(step=-1, workers=2)
    with pytest.raises(ValueError):
        MembershipEvent(step=4, workers=0)


def test_controller_validation():
    with pytest.raises(ValueError, match="strictly increasing"):
        ElasticController([MembershipEvent(4, 2), MembershipEvent(4, 3)])
    with pytest.raises(ValueError, match="budget_seconds"):
        ElasticController([MembershipEvent(4, 2)], budget_seconds=0.0)


def test_membership_fault_perturbs_cluster_only():
    job = JobConfig(
        model=get_model("lstm"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=pcie_25g_cluster(4, 2)),
    )
    fault = MembershipFault(num_machines=2)
    perturbed = fault.apply(job)
    assert perturbed.system.cluster.num_machines == 2
    assert job.system.cluster.num_machines == 4  # original untouched
    assert perturbed.model is job.model
    assert "2 machines" in fault.describe()
    with pytest.raises(ValueError):
        MembershipFault(num_machines=0)
    model = membership_model(5)
    assert model.name == "membership-5"
    assert model.faults[0].num_machines == 5


def test_set_membership_reshards_and_conserves_residual_mass():
    trainer = SPEC.build_trainer()
    trainer.train(4, eval_every=4)
    totals_before = trainer.residual_totals()
    assert any(np.any(v) for v in totals_before.values())  # top-k left mass
    trainer.set_membership(5)
    assert trainer.workers == 5
    assert len(trainer.shard_sizes) == 5
    assert sum(trainer.shard_sizes) == trainer.dataset.train_x.shape[0]
    totals_after = trainer.residual_totals()
    assert set(totals_after) == set(totals_before)
    for key, before in totals_before.items():
        np.testing.assert_allclose(
            totals_after[key], before, rtol=0, atol=1e-5
        )


def test_set_membership_same_count_is_noop():
    trainer = SPEC.build_trainer()
    trainer.train(2, eval_every=2)
    feedback = trainer._feedback
    trainer.set_membership(SPEC.workers)
    assert trainer._feedback is feedback  # untouched, not rebuilt


def test_controller_applies_events_and_logs():
    trainer = SPEC.build_trainer()
    controller = ElasticController(
        [MembershipEvent(4, 5), MembershipEvent(8, 2)]
    )
    curve = controller.run(trainer, SPEC.steps, eval_every=SPEC.eval_every)
    assert trainer.step == SPEC.steps
    assert trainer.workers == 2
    assert curve.steps[-1] == SPEC.steps
    assert len(controller.log) == 2
    first, second = controller.log
    assert (first.step, first.old_workers, first.new_workers) == (4, 3, 5)
    assert (second.step, second.old_workers, second.new_workers) == (8, 5, 2)
    assert first.shard_sizes == (23, 23, 22, 22, 22)
    assert first.residual_mass_error < 1e-5
    assert first.within_budget is None  # no table configured
    assert "3 -> 5 workers" in first.summary()
    assert "workers" in controller.log.summary()
    assert len(ElasticController([]).log) == 0
    assert ElasticController([]).log.summary() == "no membership changes"


def test_elastic_run_is_deterministic():
    def run():
        trainer = SPEC.build_trainer()
        ElasticController(
            [MembershipEvent(3, 1), MembershipEvent(7, 4)]
        ).run(trainer, SPEC.steps, eval_every=SPEC.eval_every)
        return fingerprint(trainer)

    assert diff_fingerprints(run(), run()) == []


def test_past_events_skipped_on_resume():
    trainer = SPEC.build_trainer()
    trainer.train(6, eval_every=3)
    controller = ElasticController(
        [MembershipEvent(2, 5), MembershipEvent(9, 4)]
    )
    controller.run(trainer, SPEC.steps - 6, eval_every=SPEC.eval_every)
    # The step-2 event is history (a restored run already reflects it);
    # only the step-9 change applies.
    assert [record.step for record in controller.log] == [9]
    assert trainer.workers == 4


def test_boundary_event_applied_only_when_not_reflected():
    trainer = SPEC.build_trainer()
    trainer.train(4, eval_every=4)
    controller = ElasticController([MembershipEvent(4, 5)])
    controller.run(trainer, 2, eval_every=2)
    assert trainer.workers == 5
    # Re-running the same controller state (a torn-checkpoint restore
    # that already has 5 workers) must not re-apply the event.
    again = ElasticController([MembershipEvent(4, 5)])
    resumed = SPEC.build_trainer()
    resumed.train(4, eval_every=4)
    resumed.set_membership(5)
    again.run(resumed, 2, eval_every=2)
    assert len(again.log) == 0


def test_boundary_checkpoint_republished_with_new_membership(tmp_path):
    trainer = SPEC.build_trainer()
    controller = ElasticController([MembershipEvent(4, 5)])
    controller.run(
        trainer,
        6,
        eval_every=SPEC.eval_every,
        checkpoint_dir=tmp_path,
        checkpoint_every=2,
    )
    # The step-4 checkpoint was overwritten after the change: a crash
    # right after the event cannot resurrect the 3-worker state.
    assert latest_valid_checkpoint(tmp_path) is not None
    boundary = [
        state
        for state in map(load_checkpoint, list_checkpoints(tmp_path))
        if state["step"] == 4
    ]
    assert boundary and boundary[0]["workers"] == 5


def test_replan_within_budget_via_degradation_table():
    job = JobConfig(
        model=get_model("lstm"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=pcie_25g_cluster(3, 2)),
    )
    table = DegradationTable.build(job)
    trainer = SPEC.build_trainer()
    controller = ElasticController([MembershipEvent(3, 2)], table=table)
    controller.run(trainer, 5, eval_every=5)
    (record,) = controller.log
    assert record.replan is not None
    assert record.replan.budget_seconds == controller._replan_budget()
    assert record.within_budget is True
    assert record.replan.seconds <= record.replan.budget_seconds
    assert "replanned via" in record.summary()
    # An explicit budget is honoured verbatim.
    explicit = ElasticController(
        [MembershipEvent(3, 2)], table=table, budget_seconds=30.0
    )
    assert explicit._replan_budget() == 30.0
