"""Chaos-replay tests: kill the trainer, restart it, demand equality.

The SIGKILL drills spawn real subprocesses (each one a fresh
interpreter), so the spec here is deliberately tiny.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.training.chaos import (
    TrainingJobSpec,
    corrupt_file,
    corruption_drill,
    diff_fingerprints,
    fingerprint,
    run_inprocess,
    run_sigkill,
    run_uninterrupted,
    sample_crash_steps,
)
from repro.training.checkpoint import list_checkpoints

SRC = str(Path(__file__).resolve().parents[2] / "src")

SPEC = TrainingJobSpec(
    gc="dgc", workers=2, steps=14, eval_every=4, checkpoint_every=3,
    samples=120, features=8, classes=2, informative=4, hidden=8,
)

#: The composition demanded by the issue: chaos kills layered on top of
#: a flaky compressor, a scripted per-tensor fault, and worker dropout.
FAULTY_SPEC = TrainingJobSpec(
    gc="topk", ratio=0.2, workers=3, steps=14, eval_every=4,
    checkpoint_every=3, samples=120, features=8, classes=2, informative=4,
    hidden=8, flaky_fail_calls=(7,), fault_specs=(("fc2.weight", 5, 2),),
    worker_dropout=((2, 6),),
)


def test_spec_json_round_trip():
    assert TrainingJobSpec.from_json(FAULTY_SPEC.to_json()) == FAULTY_SPEC
    with pytest.raises(ValueError):
        TrainingJobSpec(steps=0)
    with pytest.raises(ValueError):
        TrainingJobSpec(checkpoint_every=0)


def test_sample_crash_steps_deterministic_and_in_range():
    a = sample_crash_steps(20, 3, seed=5)
    assert a == sample_crash_steps(20, 3, seed=5)
    assert len(a) == 3 == len(set(a))
    assert all(1 <= step < 20 for step in a)
    assert a == tuple(sorted(a))
    assert sample_crash_steps(20, 3, seed=6) != a
    assert sample_crash_steps(1, 3, seed=5) == ()
    assert sample_crash_steps(20, 0, seed=5) == ()
    # More kills than candidate steps clamps, not raises.
    assert len(sample_crash_steps(4, 99, seed=5)) == 3


def test_fingerprint_detects_state_drift():
    trainer = SPEC.build_trainer()
    trainer.train(4, eval_every=4)
    before = fingerprint(trainer)
    assert diff_fingerprints(before, fingerprint(trainer)) == []
    trainer.train(2, eval_every=2)
    drifted = diff_fingerprints(before, fingerprint(trainer))
    assert "step" in drifted and "params" in drifted


def test_inprocess_recovery_is_equivalent(tmp_path):
    baseline = run_uninterrupted(SPEC)
    crashes = sample_crash_steps(SPEC.steps, 2, seed=3)
    result = run_inprocess(SPEC, crashes, tmp_path, baseline)
    assert result.equivalent, result.summary()
    assert result.crash_steps == crashes
    assert len(result.recoveries) == len(crashes)
    for recovery in result.recoveries:
        assert 0 <= recovery.restored_step <= recovery.crash_step
        assert recovery.recomputed_steps >= 0
    assert "EQUIVALENT" in result.summary()


def test_inprocess_composes_with_fault_injection(tmp_path):
    baseline = run_uninterrupted(FAULTY_SPEC)
    crashes = sample_crash_steps(FAULTY_SPEC.steps, 3, seed=9)
    result = run_inprocess(FAULTY_SPEC, crashes, tmp_path, baseline)
    assert result.equivalent, result.summary()
    # The drill actually exercised the fault machinery, not a quiet run.
    assert baseline["fault_log"]
    assert baseline["backoff_seconds"] > 0


def test_sigkill_recovery_is_equivalent(tmp_path):
    baseline = run_uninterrupted(SPEC)
    crashes = sample_crash_steps(SPEC.steps, 2, seed=3)
    result = run_sigkill(SPEC, crashes, tmp_path, baseline)
    assert result.equivalent, result.summary()
    assert len(result.recoveries) == len(crashes)
    assert (tmp_path / "fingerprint.json").exists()


@pytest.mark.slow
def test_sigkill_composes_with_fault_injection(tmp_path):
    baseline = run_uninterrupted(FAULTY_SPEC)
    crashes = sample_crash_steps(FAULTY_SPEC.steps, 2, seed=11)
    result = run_sigkill(FAULTY_SPEC, crashes, tmp_path, baseline)
    assert result.equivalent, result.summary()


def test_corruption_drill_falls_back_and_recovers(tmp_path):
    baseline = run_uninterrupted(SPEC)
    result = corruption_drill(SPEC, tmp_path, baseline)
    assert result.equivalent, result.summary()
    (recovery,) = result.recoveries
    # Fallback skipped the (corrupted) newest checkpoint: the restore
    # point is strictly older than the newest written one.
    assert recovery.restored_step < recovery.crash_step


def test_corrupt_file_flips_exactly_one_byte(tmp_path):
    target = tmp_path / "blob"
    target.write_bytes(bytes(range(32)))
    corrupt_file(target, offset_fraction=0.5)
    blob = target.read_bytes()
    assert len(blob) == 32
    assert sum(a != b for a, b in zip(blob, bytes(range(32)))) == 1
    empty = tmp_path / "empty"
    empty.write_bytes(b"")
    with pytest.raises(ValueError):
        corrupt_file(empty)


def test_worker_exits_2_when_every_checkpoint_is_corrupt(tmp_path):
    """All-corrupt checkpoint state is refused with exit 2 and a
    one-line diagnostic — never a silent restart from scratch."""
    trainer = SPEC.build_trainer()
    trainer.train(
        6, eval_every=3, checkpoint_dir=tmp_path, checkpoint_every=2
    )
    for path in list_checkpoints(tmp_path):
        corrupt_file(path)
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.training.chaos_worker",
            "--job", SPEC.to_json(),
            "--dir", str(tmp_path),
            "--out", str(tmp_path / "fp.json"),
        ],
        env=dict(os.environ, PYTHONPATH=SRC),
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 2, result.stderr
    diagnostic = result.stderr.strip()
    assert diagnostic.startswith("error: ")
    assert "\n" not in diagnostic
    assert "corrupt" in diagnostic
