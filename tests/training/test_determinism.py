"""Cross-process determinism of the training engine.

Random-k's shared coordinate seed used to be derived from ``hash((step,
name))`` — Python randomizes string hashing per process (PYTHONHASHSEED),
so two launches of the "same" job sampled different coordinates.  The
seed now comes from ``zlib.crc32``; this regression test trains the same
job in two subprocesses with different hash seeds and demands identical
parameters.
"""

import os
import subprocess
import sys
import zlib
from pathlib import Path

from repro.compression import RandomK
from repro.training import DataParallelTrainer, make_classification

SRC = str(Path(__file__).resolve().parents[2] / "src")

TRAIN_SCRIPT = """
import hashlib
from repro.compression import RandomK
from repro.training import DataParallelTrainer, make_classification

dataset = make_classification(samples=400, features=16, classes=3,
                              informative=8, seed=7)
trainer = DataParallelTrainer(dataset, compressor=RandomK(ratio=0.1),
                              workers=2, seed=3)
trainer.train(steps=12, eval_every=12)
digest = hashlib.sha256()
for name in sorted(trainer.model.params):
    digest.update(name.encode())
    digest.update(trainer.model.params[name].tobytes())
print(digest.hexdigest())
"""


def train_digest(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
    result = subprocess.run(
        [sys.executable, "-c", TRAIN_SCRIPT],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_training_identical_across_hash_seeds():
    """Same job, different PYTHONHASHSEED -> bitwise-identical params."""
    digests = {train_digest(seed) for seed in ("0", "1", "random")}
    assert len(digests) == 1, digests


def test_shared_seed_is_crc32_not_hash():
    dataset = make_classification(samples=200, features=16, classes=2,
                                  informative=8, seed=1)
    trainer = DataParallelTrainer(dataset, compressor=RandomK(ratio=0.1),
                                  workers=2, seed=1)
    trainer._step = 17
    expected = zlib.crc32(b"17:fc1.weight") & 0x7FFFFFFF
    assert trainer._shared_seed("fc1.weight") == expected


def test_shared_seed_varies_by_step_and_tensor():
    dataset = make_classification(samples=200, features=16, classes=2,
                                  informative=8, seed=1)
    trainer = DataParallelTrainer(dataset, compressor=RandomK(ratio=0.1),
                                  workers=2, seed=1)
    a = trainer._shared_seed("fc1.weight")
    b = trainer._shared_seed("fc2.weight")
    trainer._step = 1
    c = trainer._shared_seed("fc1.weight")
    assert len({a, b, c}) == 3
