"""Cross-process determinism of the training engine.

Random-k's shared coordinate seed used to be derived from ``hash((step,
name))`` — Python randomizes string hashing per process (PYTHONHASHSEED),
so two launches of the "same" job sampled different coordinates.  The
seed now comes from ``zlib.crc32``; this regression test trains the same
job in two subprocesses with different hash seeds and demands identical
parameters.
"""

import os
import subprocess
import sys
import zlib
from pathlib import Path

from repro.compression import RandomK
from repro.training import DataParallelTrainer, make_classification

SRC = str(Path(__file__).resolve().parents[2] / "src")

TRAIN_SCRIPT = """
import hashlib
from repro.compression import RandomK
from repro.training import DataParallelTrainer, make_classification

dataset = make_classification(samples=400, features=16, classes=3,
                              informative=8, seed=7)
trainer = DataParallelTrainer(dataset, compressor=RandomK(ratio=0.1),
                              workers=2, seed=3)
trainer.train(steps=12, eval_every=12)
digest = hashlib.sha256()
for name in sorted(trainer.model.params):
    digest.update(name.encode())
    digest.update(trainer.model.params[name].tobytes())
print(digest.hexdigest())
"""


def train_digest(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
    result = subprocess.run(
        [sys.executable, "-c", TRAIN_SCRIPT],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_training_identical_across_hash_seeds():
    """Same job, different PYTHONHASHSEED -> bitwise-identical params."""
    digests = {train_digest(seed) for seed in ("0", "1", "random")}
    assert len(digests) == 1, digests


def test_shared_seed_is_crc32_not_hash():
    dataset = make_classification(samples=200, features=16, classes=2,
                                  informative=8, seed=1)
    trainer = DataParallelTrainer(dataset, compressor=RandomK(ratio=0.1),
                                  workers=2, seed=1)
    trainer._step = 17
    expected = zlib.crc32(b"17:fc1.weight") & 0x7FFFFFFF
    assert trainer._shared_seed("fc1.weight") == expected


def test_worker_batch_draws_are_counter_based():
    """Worker i's mini-batch at step s is a pure function of (seed, i,
    s) — pinned to golden indices so a change to the keying scheme (or
    a regression to a shared sequential stream) fails loudly."""
    import numpy as np

    dataset = make_classification(samples=100, features=8, classes=2,
                                  informative=4, seed=9)
    trainer = DataParallelTrainer(dataset, workers=2, batch_size=4, seed=5)
    golden = {
        (0, 0): [25, 30, 0, 30],
        (0, 1): [33, 28, 21, 14],
        (1, 0): [4, 28, 28, 17],
        (1, 1): [32, 32, 10, 20],
    }
    for (worker, step), expected in golden.items():
        trainer._step = step
        x, y = trainer._shards[worker]
        bx, by = trainer._worker_batch(worker)
        np.testing.assert_array_equal(bx, x[expected])
        np.testing.assert_array_equal(by, y[expected])
    # Draw order is irrelevant: worker 1 alone sees the same batch it
    # saw when worker 0 drew first (the old shared-stream design broke
    # exactly this).
    trainer._step = 0
    again_x, again_y = trainer._worker_batch(1)
    np.testing.assert_array_equal(
        again_x, trainer._shards[1][0][golden[(1, 0)]]
    )


def test_shared_seed_varies_by_step_and_tensor():
    dataset = make_classification(samples=200, features=16, classes=2,
                                  informative=8, seed=1)
    trainer = DataParallelTrainer(dataset, compressor=RandomK(ratio=0.1),
                                  workers=2, seed=1)
    a = trainer._shared_seed("fc1.weight")
    b = trainer._shared_seed("fc2.weight")
    trainer._step = 1
    c = trainer._shared_seed("fc1.weight")
    assert len({a, b, c}) == 3
