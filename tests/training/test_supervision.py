"""Training supervision: fault injection, retry with backoff, graceful
per-tensor degradation to ``NoCompression``, and worker dropout.

The load-bearing contract here is error-feedback preservation across the
degradation boundary: when a compressor faults, the accumulated residual
must be neither dropped nor applied twice.
"""

import numpy as np
import pytest

from repro.compression import DGC, NoCompression, RandomK
from repro.compression.error_feedback import ErrorFeedback
from repro.training import (
    CompressorFault,
    CompressorFaultSpec,
    DataParallelTrainer,
    FlakyCompressor,
    TrainingSupervisor,
    make_classification,
)


@pytest.fixture(scope="module")
def dataset():
    return make_classification(samples=800, features=16, classes=3,
                               informative=8, seed=7)


def params_digest(trainer):
    return {
        name: value.tobytes() for name, value in trainer.model.params.items()
    }


# -- scripted injection ----------------------------------------------------


def test_permanent_fault_degrades_only_affected_tensor(dataset):
    supervisor = TrainingSupervisor(
        compressor_faults=(CompressorFaultSpec("fc1.weight", step=3),),
        retry_backoff=0.01,
    )
    trainer = DataParallelTrainer(
        dataset, compressor=DGC(ratio=0.1), workers=3, seed=5,
        supervisor=supervisor,
    )
    curve = trainer.train(steps=20, eval_every=10)
    assert trainer.degraded_tensors == {"fc1.weight"}
    # max_retries=2 -> 3 failing attempts logged at the fault step; the
    # first worker degrades the tensor globally, so later workers go
    # straight to the fallback without re-probing the broken compressor.
    assert len(supervisor.fault_log) == 3
    assert all(t == "fc1.weight" for _, t, _ in supervisor.fault_log)
    # Backoff charged for retries 1 and 2: 0.01 * (1 + 2).
    assert supervisor.backoff_seconds == pytest.approx(0.01 * 3)
    # The run completes and the time axis includes the retry stalls.
    assert curve.seconds[-1] == pytest.approx(
        20 * trainer.step_seconds + supervisor.backoff_seconds
    )


def test_transient_fault_heals_without_degradation(dataset):
    supervisor = TrainingSupervisor(
        compressor_faults=(
            CompressorFaultSpec("fc3.bias", step=2, failures=1),
        ),
        retry_backoff=0.01,
    )
    trainer = DataParallelTrainer(
        dataset, compressor=DGC(ratio=0.1), workers=2, seed=5,
        supervisor=supervisor,
    )
    trainer.train(steps=10, eval_every=10)
    assert trainer.degraded_tensors == set()
    assert len(supervisor.fault_log) == 1
    assert supervisor.backoff_seconds == pytest.approx(0.01)


def test_degraded_run_keeps_replicas_bitwise_identical(dataset):
    """Degradation decisions are global, so a faulted run is still
    deterministic and bitwise-reproducible."""
    def run():
        supervisor = TrainingSupervisor(
            compressor_faults=(CompressorFaultSpec("fc2.weight", step=1),),
            retry_backoff=0.0,
        )
        trainer = DataParallelTrainer(
            dataset, compressor=RandomK(ratio=0.1), workers=4, seed=9,
            supervisor=supervisor,
        )
        trainer.train(steps=15, eval_every=15)
        return trainer

    a, b = run(), run()
    assert a.degraded_tensors == b.degraded_tensors == {"fc2.weight"}
    da, db = params_digest(a), params_digest(b)
    assert da.keys() == db.keys()
    for name in da:
        assert da[name] == db[name], name


def test_faulted_run_still_converges(dataset):
    supervisor = TrainingSupervisor(
        compressor_faults=(CompressorFaultSpec("fc1.weight", step=0),),
        retry_backoff=0.0,
    )
    curve = DataParallelTrainer(
        dataset, compressor=DGC(ratio=0.1), workers=4, seed=1, momentum=0.5,
        supervisor=supervisor,
    ).train(steps=150, eval_every=50)
    assert curve.final_accuracy > 0.7
    assert curve.train_loss[-1] < curve.train_loss[0]


# -- error-feedback preservation (satellite: residual contract) ------------


def test_failed_compress_leaves_residual_untouched():
    feedback = ErrorFeedback(DGC(ratio=0.25))
    grad = np.linspace(-1.0, 1.0, 64, dtype=np.float32)
    feedback.compress("t", grad, seed=1)
    before = feedback.residual("t")
    assert before is not None and np.any(before != 0.0)
    flaky = FlakyCompressor(DGC(ratio=0.25), fail_from=0)
    with pytest.raises(CompressorFault):
        feedback.compress("t", grad, seed=2, compressor=flaky)
    after = feedback.residual("t")
    np.testing.assert_array_equal(before, after)


def test_fallback_flushes_residual_once_then_zeroes():
    """The NoCompression fallback sees gradient + residual exactly once:
    the wire tensor equals their sum, and the stored residual becomes
    zero (nothing left to double-apply next step)."""
    feedback = ErrorFeedback(DGC(ratio=0.25))
    grad = np.linspace(-1.0, 1.0, 64, dtype=np.float32)
    feedback.compress("t", grad, seed=1)
    residual = feedback.residual("t")
    fallback = NoCompression()
    compressed = feedback.compress("t", grad, seed=2, compressor=fallback)
    wire = feedback.decompress(compressed, compressor=fallback)
    np.testing.assert_allclose(wire, grad + residual, rtol=0, atol=0)
    np.testing.assert_array_equal(feedback.residual("t"), np.zeros_like(grad))


def test_degradation_preserves_error_feedback_end_to_end(dataset):
    """Across the trainer's degradation boundary, no gradient signal is
    lost: the degraded run's updates equal a hand-computed schedule where
    the residual at the fault step is flushed into the exact update."""
    compressor = DGC(ratio=0.1)
    fault_step = 4
    supervisor = TrainingSupervisor(
        compressor_faults=(CompressorFaultSpec("fc1.weight", fault_step),),
        max_retries=0, retry_backoff=0.0,
    )
    trainer = DataParallelTrainer(
        dataset, compressor=compressor, workers=1, seed=3,
        supervisor=supervisor,
    )

    # Mirror trainer: same model/stream, error feedback applied by hand.
    mirror = DataParallelTrainer(dataset, compressor=compressor, workers=1,
                                 seed=3)
    feedback = ErrorFeedback(compressor)
    fallback = NoCompression()
    for step in range(fault_step + 2):
        x, y = mirror._worker_batch(0)
        _, grads = mirror.model.loss_and_gradients(x, y)
        updates = {}
        for name, grad in grads.items():
            seed = mirror._shared_seed(name)
            use_fallback = name == "fc1.weight" and step >= fault_step
            comp = fallback if use_fallback else None
            wire = feedback.decompress(
                feedback.compress(name, grad, seed=seed, compressor=comp),
                compressor=comp,
            )
            mirror._velocity[name] = (
                mirror.momentum * mirror._velocity[name] + wire
            )
            updates[name] = mirror.learning_rate * mirror._velocity[name]
        mirror.model.apply_update(updates)
        mirror._step += 1
        trainer.train_step()

    assert trainer.degraded_tensors == {"fc1.weight"}
    expected, actual = params_digest(mirror), params_digest(trainer)
    for name in expected:
        assert expected[name] == actual[name], name


# -- faults originating inside the compressor ------------------------------


def test_flaky_compressor_fault_origin(dataset):
    """A fault raised by the compressor itself (not the injection hook)
    takes the same retry/degrade path."""
    flaky = FlakyCompressor(DGC(ratio=0.1), fail_calls=(2,))
    trainer = DataParallelTrainer(
        dataset, compressor=flaky, workers=1, seed=5,
        supervisor=TrainingSupervisor(retry_backoff=0.0),
    )
    trainer.train(steps=5, eval_every=5)
    assert flaky.faults_raised == 1
    assert trainer.degraded_tensors == set()  # transient: retry healed it
    assert len(trainer.supervisor.fault_log) == 1


def test_flaky_compressor_permanent_failure_degrades(dataset):
    flaky = FlakyCompressor(DGC(ratio=0.1), fail_from=0)
    trainer = DataParallelTrainer(
        dataset, compressor=flaky, workers=1, seed=5,
        supervisor=TrainingSupervisor(max_retries=1, retry_backoff=0.0),
    )
    trainer.train(steps=3, eval_every=3)
    # Every tensor degraded (the compressor never works again).
    assert trainer.degraded_tensors == set(trainer.model.params)


# -- worker dropout --------------------------------------------------------


def test_worker_dropout_membership(dataset):
    supervisor = TrainingSupervisor(worker_dropout={1: 5, 3: 5})
    trainer = DataParallelTrainer(
        dataset, workers=4, seed=2, supervisor=supervisor,
    )
    assert supervisor.active_workers(4, 4) == [0, 1, 2, 3]
    assert supervisor.active_workers(5, 4) == [0, 2]
    curve = trainer.train(steps=10, eval_every=10)
    assert len(curve.test_accuracy) == 1  # run completed


def test_all_workers_dropped_raises(dataset):
    supervisor = TrainingSupervisor(worker_dropout={0: 2, 1: 2})
    trainer = DataParallelTrainer(
        dataset, workers=2, seed=2, supervisor=supervisor,
    )
    trainer.train(steps=2, eval_every=2)
    with pytest.raises(RuntimeError, match="all 2 workers dropped"):
        trainer.train_step()


def test_supervisor_validation():
    with pytest.raises(ValueError):
        TrainingSupervisor(max_retries=-1)
    with pytest.raises(ValueError):
        TrainingSupervisor(retry_backoff=-0.1)
    with pytest.raises(ValueError):
        TrainingSupervisor(worker_dropout={-1: 3})
    with pytest.raises(ValueError):
        CompressorFaultSpec("t", step=-1)
    with pytest.raises(ValueError):
        CompressorFaultSpec("t", failures=0)
