"""Crash-consistent checkpointing tests (DESIGN.md §5.6).

Covers the on-disk format's self-validation matrix, the newest-valid
fallback policy, schema-mismatch refusal, and — the core claim — that
restore is *bit-identical*: ``train(N)`` equals train-to-``k`` →
checkpoint → restore → train-to-``N``, for every compressor in the
registry, property-tested over the split point, including runs with
fault injection active.
"""

import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.registry import available_compressors
from repro.training.chaos import (
    TrainingJobSpec,
    diff_fingerprints,
    fingerprint,
)
from repro.training.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    checkpoint_path,
    checkpoint_step,
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)

#: A tiny job: every test trains a few steps of a 12-feature MLP.
SPEC = TrainingJobSpec(
    gc="dgc", workers=2, steps=10, eval_every=3, checkpoint_every=2,
    samples=120, features=8, classes=2, informative=4, hidden=8,
)

FAULTY_SPEC = TrainingJobSpec(
    gc="topk", ratio=0.2, workers=3, steps=10, eval_every=3,
    checkpoint_every=2, samples=120, features=8, classes=2, informative=4,
    hidden=8, flaky_fail_calls=(5,), fault_specs=(("fc2.weight", 3, 2),),
    worker_dropout=((2, 4),),
)


# -- on-disk format ------------------------------------------------------


def test_save_load_round_trip(tmp_path):
    state = {"step": 7, "blob": b"\x00\x01", "nested": {"a": [1.5, 2.5]}}
    path = checkpoint_path(tmp_path, 7)
    save_checkpoint(path, state)
    assert load_checkpoint(path) == state
    assert checkpoint_step(path) == 7


def test_checkpoint_path_validation(tmp_path):
    with pytest.raises(ValueError):
        checkpoint_path(tmp_path, -1)
    assert checkpoint_step("not-a-checkpoint.bin") is None


def test_save_leaves_no_temporaries(tmp_path):
    save_checkpoint(checkpoint_path(tmp_path, 1), {"step": 1})
    leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".ckpt"]
    assert leftovers == []


@pytest.mark.parametrize(
    "injure, expect",
    [
        (lambda blob: blob[:4], "truncated header"),
        (lambda blob: b"WRONGMAG" + blob[8:], "bad magic"),
        (
            lambda blob: blob[:8] + struct.pack("<I", 99) + blob[12:],
            "format version 99",
        ),
        (lambda blob: blob[:-3], "truncated body"),
        (
            lambda blob: blob[:30] + bytes([blob[30] ^ 0xFF]) + blob[31:],
            "CRC mismatch",
        ),
    ],
)
def test_corruption_matrix(tmp_path, injure, expect):
    """Every injury class is refused with a one-line diagnostic."""
    path = checkpoint_path(tmp_path, 3)
    save_checkpoint(path, {"step": 3, "payload": list(range(64))})
    path.write_bytes(injure(path.read_bytes()))
    with pytest.raises(CheckpointError) as excinfo:
        load_checkpoint(path)
    message = str(excinfo.value)
    assert expect in message
    assert "\n" not in message  # one line, CLI prints it verbatim


def test_undecodable_and_non_dict_bodies(tmp_path):
    path = tmp_path / "ckpt-00000001.ckpt"
    body = b"\x80\x04this is not a pickle"
    header = struct.Struct("<8sIIQ").pack(
        MAGIC, FORMAT_VERSION, __import__("zlib").crc32(body), len(body)
    )
    path.write_bytes(header + body)
    with pytest.raises(CheckpointError, match="undecodable body"):
        load_checkpoint(path)
    body = pickle.dumps([1, 2, 3])
    header = struct.Struct("<8sIIQ").pack(
        MAGIC, FORMAT_VERSION, __import__("zlib").crc32(body), len(body)
    )
    path.write_bytes(header + body)
    with pytest.raises(CheckpointError, match="not a state dict"):
        load_checkpoint(path)


def test_missing_and_directory_paths(tmp_path):
    with pytest.raises(CheckpointError, match="not found"):
        load_checkpoint(tmp_path / "ckpt-00000009.ckpt")
    target = tmp_path / "ckpt-00000009.ckpt"
    target.mkdir()
    with pytest.raises(CheckpointError, match="is a directory"):
        load_checkpoint(target)


# -- directory scanning and fallback -------------------------------------


def test_list_checkpoints_orders_and_filters(tmp_path):
    for step in (4, 12, 8):
        save_checkpoint(checkpoint_path(tmp_path, step), {"step": step})
    (tmp_path / ".ckpt-00000099.ckpt.tmp.123").write_bytes(b"torn write")
    (tmp_path / "notes.txt").write_text("ignore me")
    paths = list_checkpoints(tmp_path)
    assert [checkpoint_step(p) for p in paths] == [12, 8, 4]
    assert list_checkpoints(tmp_path / "missing") == []


def test_latest_valid_falls_back_past_corruption(tmp_path):
    for step in (2, 4, 6):
        save_checkpoint(checkpoint_path(tmp_path, step), {"step": step})
    newest = checkpoint_path(tmp_path, 6)
    newest.write_bytes(newest.read_bytes()[:-5])
    path, state, skipped = latest_valid_checkpoint(tmp_path)
    assert checkpoint_step(path) == 4
    assert state == {"step": 4}
    assert [checkpoint_step(p) for p, _ in skipped] == [6]


def test_latest_valid_ignores_stray_temp_files(tmp_path):
    """Leftover temporaries from crashed writers are not candidates.

    A writer that died between ``open`` and ``os.replace`` leaves a
    ``.ckpt-*.tmp.<pid>`` file behind.  The scanner must neither serve
    it nor report it as a skipped corruption — it was never published.
    """
    for step in (2, 4):
        save_checkpoint(checkpoint_path(tmp_path, step), {"step": step})
    # Temp names both older- and newer-looking than the real newest.
    (tmp_path / ".ckpt-00000001.ckpt.tmp.111").write_bytes(b"")
    (tmp_path / ".ckpt-00000099.ckpt.tmp.222").write_bytes(b"\x00" * 64)
    path, state, skipped = latest_valid_checkpoint(tmp_path)
    assert checkpoint_step(path) == 4
    assert state == {"step": 4}
    assert skipped == []


def test_latest_valid_survives_concurrent_half_snapshot(tmp_path):
    """A snapshot torn mid-write is skipped, not trusted.

    Simulates a writer that was killed *after* ``os.replace`` published
    a partially flushed file (the pathological case a non-atomic
    filesystem can produce): the newest ``.ckpt`` holds a complete
    header but only half its body, and the writer's temp file is still
    sitting next to it.  Restore must fall back to the newest valid
    snapshot and list only the torn one as skipped.
    """
    for step in (3, 6):
        save_checkpoint(checkpoint_path(tmp_path, step), {"step": step})
    torn = checkpoint_path(tmp_path, 9)
    save_checkpoint(torn, {"step": 9, "payload": list(range(256))})
    blob = torn.read_bytes()
    header_size = struct.Struct("<8sIIQ").size
    torn.write_bytes(blob[: header_size + (len(blob) - header_size) // 2])
    (tmp_path / ".ckpt-00000009.ckpt.tmp.333").write_bytes(blob[:40])
    path, state, skipped = latest_valid_checkpoint(tmp_path)
    assert checkpoint_step(path) == 6
    assert state == {"step": 6}
    assert [checkpoint_step(p) for p, _ in skipped] == [9]
    assert "truncated body" in str(skipped[0][1])


def test_latest_valid_empty_directory_is_fresh_start(tmp_path):
    assert latest_valid_checkpoint(tmp_path) is None


def test_all_corrupt_raises_instead_of_silent_restart(tmp_path):
    for step in (1, 2):
        path = checkpoint_path(tmp_path, step)
        save_checkpoint(path, {"step": step})
        path.write_bytes(b"garbage")
    with pytest.raises(CheckpointError, match="all 2 candidates corrupt"):
        latest_valid_checkpoint(tmp_path)


# -- trainer round-trip --------------------------------------------------


def test_schema_mismatch_refused(tmp_path):
    trainer = SPEC.build_trainer()
    trainer.train(4, eval_every=2)
    trainer.save(tmp_path)
    other = TrainingJobSpec(
        **{**SPEC.__dict__, "hidden": SPEC.hidden * 2}
    ).build_trainer()
    with pytest.raises(CheckpointError, match="hidden"):
        other.resume_from(tmp_path)


def test_double_train_records_final_evaluation():
    """Satellite regression: the final-eval condition used to compare the
    absolute step counter to the *relative* step budget, so any second
    ``train()`` call silently dropped its last curve point."""
    trainer = SPEC.build_trainer()
    first = trainer.train(4, eval_every=3)
    second = trainer.train(4, eval_every=3)
    assert first.steps == [3, 4]
    assert second.steps == [6, 8]  # 8 is the absolute target: recorded
    assert trainer.curve.steps == [3, 4, 6, 8]


def test_supervisor_and_flaky_counters_round_trip(tmp_path):
    """Backoff seconds, fault log, scripted-fault consumption, and the
    FlakyCompressor call counter all survive restore."""
    trainer = FAULTY_SPEC.build_trainer()
    trainer.train(6, eval_every=3, checkpoint_dir=tmp_path, checkpoint_every=2)
    assert trainer.supervisor.backoff_seconds > 0
    assert trainer.supervisor.fault_log
    resumed = FAULTY_SPEC.build_trainer()
    restored = resumed.resume_from(tmp_path)
    assert restored is not None
    assert resumed.step == 6
    assert resumed.supervisor.backoff_seconds == trainer.supervisor.backoff_seconds
    assert resumed.supervisor.fault_log == trainer.supervisor.fault_log
    assert resumed.compressor.calls == trainer.compressor.calls
    assert resumed.degraded_tensors == trainer.degraded_tensors


def _crash_split_resume(spec, split, directory):
    """Run ``spec`` interrupted at ``split``, then resume to the target.

    A crash-style split: the first life dies mid-flight (checkpointing
    every step, so the restore point is exactly ``split``) and the
    second life trains to the same absolute target — the equivalence
    the chaos harness quantifies over.
    """
    from repro.training.engine import SimulatedCrash

    first = spec.build_trainer()
    try:
        first.train(
            spec.steps,
            eval_every=spec.eval_every,
            checkpoint_dir=directory,
            checkpoint_every=1,
            crash_at=split,
        )
    except SimulatedCrash:
        pass
    resumed = spec.build_trainer()
    assert resumed.resume_from(directory) is not None
    assert resumed.step == split
    resumed.train(spec.steps - split, eval_every=spec.eval_every)
    return resumed


@settings(max_examples=8, deadline=None)
@given(split=st.integers(min_value=1, max_value=SPEC.steps - 1),
       data=st.data())
def test_bit_identical_resume_property(tmp_path_factory, split, data):
    """train(N) == crash at k -> restore -> train to N, bit-for-bit,
    for every registry compressor and any split point — curve, params,
    velocity, residuals, supervisor accounting, everything."""
    gc = data.draw(st.sampled_from(available_compressors()), label="gc")
    spec = TrainingJobSpec(**{**SPEC.__dict__, "gc": gc})
    straight = spec.build_trainer()
    straight.train(spec.steps, eval_every=spec.eval_every)
    expected = fingerprint(straight)

    resumed = _crash_split_resume(
        spec, split, tmp_path_factory.mktemp("resume")
    )
    assert diff_fingerprints(expected, fingerprint(resumed)) == []


@pytest.mark.parametrize("split", [2, 5, 9])
def test_bit_identical_resume_with_fault_injection(tmp_path, split):
    """The property holds while faults fire: flaky compressor, scripted
    per-tensor faults (degradation), and worker dropout."""
    straight = FAULTY_SPEC.build_trainer()
    straight.train(FAULTY_SPEC.steps, eval_every=FAULTY_SPEC.eval_every)
    expected = fingerprint(straight)
    resumed = _crash_split_resume(FAULTY_SPEC, split, tmp_path)
    assert diff_fingerprints(expected, fingerprint(resumed)) == []


def test_explicit_split_matches_except_extra_eval(tmp_path):
    """An *explicit* train(k) -> save -> restore -> train(N-k) matches
    the straight run on all model/supervisor state; the only visible
    difference is the extra curve point train(k) records at its own
    call target k (documented ``train`` semantics)."""
    straight = SPEC.build_trainer()
    straight.train(SPEC.steps, eval_every=SPEC.eval_every)
    expected = fingerprint(straight)

    split = 4  # not a multiple of eval_every=3: forces the extra point
    first = SPEC.build_trainer()
    first.train(split, eval_every=SPEC.eval_every)
    first.save(tmp_path)
    resumed = SPEC.build_trainer()
    assert resumed.resume_from(tmp_path) is not None
    resumed.train(SPEC.steps - split, eval_every=SPEC.eval_every)
    actual = fingerprint(resumed)
    assert diff_fingerprints(expected, actual) == ["curve"]
    assert actual["curve"]["steps"] == sorted(
        expected["curve"]["steps"] + [split]
    )
    # Model state at shared eval points is identical: accuracies agree.
    shared = {
        step: accuracy
        for step, accuracy in zip(
            actual["curve"]["steps"], actual["curve"]["test_accuracy"]
        )
        if step != split
    }
    assert shared == dict(
        zip(expected["curve"]["steps"], expected["curve"]["test_accuracy"])
    )


def test_resume_from_empty_directory_returns_none(tmp_path):
    trainer = SPEC.build_trainer()
    assert trainer.resume_from(tmp_path) is None
    assert trainer.step == 0
