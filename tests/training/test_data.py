"""Synthetic dataset tests."""

import numpy as np
import pytest

from repro.training import make_classification, shard_dataset


def test_dataset_shapes():
    data = make_classification(samples=400, features=16, classes=3, seed=1)
    assert data.train_x.shape == (300, 16)
    assert data.test_x.shape == (100, 16)
    assert data.num_features == 16
    assert data.num_classes == 3


def test_labels_cover_all_classes():
    data = make_classification(samples=600, classes=4, seed=2)
    assert set(np.unique(data.train_y)) == {0, 1, 2, 3}


def test_deterministic_by_seed():
    a = make_classification(seed=5)
    b = make_classification(seed=5)
    np.testing.assert_array_equal(a.train_x, b.train_x)
    c = make_classification(seed=6)
    assert not np.array_equal(a.train_x, c.train_x)


def test_task_is_learnable_but_not_trivial():
    """A nearest-prototype classifier beats chance but noise keeps it
    from being perfect."""
    data = make_classification(samples=1000, classes=4, noise=0.6, seed=3)
    informative = 16
    centroids = np.stack(
        [
            data.train_x[data.train_y == c, :informative].mean(axis=0)
            for c in range(4)
        ]
    )
    distance = np.linalg.norm(
        data.test_x[:, None, :informative] - centroids[None], axis=2
    )
    accuracy = np.mean(np.argmin(distance, axis=1) == data.test_y)
    assert 0.7 < accuracy <= 1.0


def test_sharding_partitions_everything():
    data = make_classification(samples=400, seed=4)
    shards = shard_dataset(data, workers=3)
    assert len(shards) == 3
    total = sum(x.shape[0] for x, _ in shards)
    assert total == data.train_x.shape[0]


def test_sharding_is_deterministic():
    """shard_dataset is a pure function of (dataset, workers) — the
    property elastic membership and crash recovery both lean on."""
    data = make_classification(samples=400, seed=4)
    first = shard_dataset(data, workers=3)
    second = shard_dataset(data, workers=3)
    for (xa, ya), (xb, yb) in zip(first, second):
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)


def test_sharding_covers_exhaustively_and_disjointly():
    """Concatenating the shards in worker order reproduces the training
    set exactly: every sample assigned once, none duplicated or lost."""
    data = make_classification(samples=401, seed=4)  # non-divisible
    shards = shard_dataset(data, workers=3)
    np.testing.assert_array_equal(
        np.concatenate([x for x, _ in shards]), data.train_x
    )
    np.testing.assert_array_equal(
        np.concatenate([y for _, y in shards]), data.train_y
    )


@pytest.mark.parametrize("workers", range(1, 9))
def test_sharding_stable_for_1_to_8_workers(workers):
    data = make_classification(samples=400, seed=4)
    shards = shard_dataset(data, workers=workers)
    sizes = [x.shape[0] for x, _ in shards]
    assert len(shards) == workers
    assert sum(sizes) == data.train_x.shape[0]
    assert max(sizes) - min(sizes) <= 1  # balanced contiguous split
    np.testing.assert_array_equal(
        np.concatenate([x for x, _ in shards]), data.train_x
    )


def test_validation():
    with pytest.raises(ValueError):
        make_classification(features=4, informative=8)
    data = make_classification(samples=100)
    with pytest.raises(ValueError):
        shard_dataset(data, workers=0)
