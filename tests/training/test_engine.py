"""Data-parallel training engine tests (§5.4 mechanics)."""

import numpy as np
import pytest

from repro.compression import DGC, EFSignSGD, NoCompression, RandomK
from repro.training import DataParallelTrainer, make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(samples=1200, features=24, classes=3, seed=11)


def test_fp32_training_converges(dataset):
    trainer = DataParallelTrainer(dataset, workers=4, seed=1)
    curve = trainer.train(steps=150, eval_every=50)
    assert curve.final_accuracy > 0.8
    assert curve.train_loss[-1] < curve.train_loss[0]


def test_compressed_training_matches_fp32(dataset):
    """Fig. 16's claim: error-feedback GC preserves accuracy.

    Moderate momentum: high momentum amplifies the bursty error-feedback
    updates of aggressive sparsifiers (the reason DGC pairs compression
    with gradient clipping in the paper's setting).
    """
    fp32 = DataParallelTrainer(dataset, workers=4, seed=1, momentum=0.5).train(150, 50)
    for compressor in (DGC(ratio=0.05), EFSignSGD(), RandomK(ratio=0.05)):
        curve = DataParallelTrainer(
            dataset, compressor=compressor, workers=4, seed=1, momentum=0.5
        ).train(150, 50)
        assert curve.final_accuracy >= fp32.final_accuracy - 0.08, compressor.name


def test_single_worker_equals_plain_sgd(dataset):
    a = DataParallelTrainer(dataset, workers=1, seed=2).train(30, 10)
    b = DataParallelTrainer(dataset, workers=1, seed=2).train(30, 10)
    assert a.test_accuracy == b.test_accuracy  # deterministic


def test_step_seconds_drive_time_axis(dataset):
    trainer = DataParallelTrainer(dataset, workers=2, step_seconds=0.5, seed=3)
    curve = trainer.train(steps=40, eval_every=20)
    assert curve.steps == [20, 40]
    assert curve.seconds == [10.0, 20.0]


def test_time_to_accuracy(dataset):
    trainer = DataParallelTrainer(dataset, workers=2, step_seconds=1.0, seed=4)
    curve = trainer.train(steps=120, eval_every=20)
    reachable = curve.time_to_accuracy(0.5)
    assert reachable is not None
    assert curve.time_to_accuracy(2.0) is None


def test_no_compression_default(dataset):
    trainer = DataParallelTrainer(dataset, compressor=None, workers=2)
    assert isinstance(trainer.compressor, NoCompression)


def test_validation(dataset):
    with pytest.raises(ValueError):
        DataParallelTrainer(dataset, workers=0)
    trainer = DataParallelTrainer(dataset, workers=1)
    with pytest.raises(ValueError):
        trainer.train(steps=0)


def test_curve_requires_evaluations():
    from repro.training.engine import TrainingCurve

    with pytest.raises(ValueError):
        TrainingCurve().final_accuracy
