"""Wire vocabulary: fingerprints, digests, request/response codecs."""

import json

import pytest

from repro.service.api import (
    PlanRequest,
    PlanResponse,
    RequestError,
    decode_message,
    encode_message,
    family_key,
    job_fingerprint,
    strategy_digest,
)
from repro.core.presets import inter_allgather_option
from repro.core.options import Device
from repro.core.strategy import baseline_strategy


def test_fingerprint_ignores_spelling():
    # Explicit defaults and omitted defaults describe the same job.
    a = PlanRequest(model="lstm", machines=2, gpus=4)
    b = PlanRequest(
        model="lstm", gc="dgc", testbed="nvlink", machines=2, gpus=4,
        request_id="different-id", deadline_s=1.0,
    )
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_distinguishes_every_input_axis():
    base = PlanRequest(model="lstm", machines=2, gpus=4)
    for variant in (
        PlanRequest(model="vgg16", machines=2, gpus=4),
        PlanRequest(model="lstm", machines=4, gpus=4),
        PlanRequest(model="lstm", machines=2, gpus=2),
        PlanRequest(model="lstm", machines=2, gpus=4, gc="randomk"),
        PlanRequest(model="lstm", machines=2, gpus=4, ratio=0.05),
        PlanRequest(model="lstm", machines=2, gpus=4, testbed="pcie"),
    ):
        assert variant.fingerprint() != base.fingerprint()


def test_family_key_ignores_cluster():
    a = PlanRequest(model="lstm", ratio=0.01, machines=2, gpus=4)
    b = PlanRequest(model="lstm", ratio=0.01, machines=8, gpus=8,
                    testbed="pcie")
    assert a.family() == b.family()
    assert a.fingerprint() != b.fingerprint()
    assert PlanRequest(model="lstm", ratio=0.05).family() != a.family()


def test_inline_model_config_matches_zoo_name():
    from repro.config import model_to_dict
    from repro.models import get_model

    named = PlanRequest(model="lstm", machines=2, gpus=2)
    inline = PlanRequest(
        model_config=model_to_dict(get_model("lstm")), machines=2, gpus=2
    )
    assert named.fingerprint() == inline.fingerprint()


def test_build_job_rejects_bad_fields():
    with pytest.raises(RequestError, match="unknown model"):
        PlanRequest(model="nosuch").build_job()
    with pytest.raises(RequestError, match="unknown testbed"):
        PlanRequest(testbed="infiniband").build_job()
    with pytest.raises(RequestError, match="machines/gpus"):
        PlanRequest(machines=0).build_job()
    with pytest.raises(RequestError, match="unknown key"):
        PlanRequest(
            model_config={"name": "m", "tensorz": []}
        ).build_job()


def test_build_job_rejects_bad_ratio_fields():
    with pytest.raises(RequestError, match="ratios"):
        PlanRequest(model="lstm", ratios=[0.1, 2.0]).build_job()
    with pytest.raises(RequestError, match="error_budget"):
        PlanRequest(model="lstm", error_budget=1.5).build_job()
    with pytest.raises(RequestError, match="ratio"):
        # Compressor kwargs are validated at build time, not plan time.
        PlanRequest(model="lstm", gc="dgc", ratio=0.0).build_job()


def test_fingerprint_backward_compatible_with_ratio_axes():
    """Digests minted before the ratio dimension existed stay valid:
    the payload only grows keys when the new axes are actually set."""
    base = PlanRequest(model="lstm", machines=2, gpus=4)
    laddered = PlanRequest(
        model="lstm", machines=2, gpus=4, ratios=[0.001, 0.01]
    )
    budgeted = PlanRequest(
        model="lstm", machines=2, gpus=4, error_budget=0.5
    )
    assert base.fingerprint() == job_fingerprint(base.build_job())
    assert laddered.fingerprint() != base.fingerprint()
    assert budgeted.fingerprint() != base.fingerprint()
    assert laddered.fingerprint() != budgeted.fingerprint()


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(RequestError, match="unknown key"):
        PlanRequest.from_dict({"model": "lstm", "deadline": 1.0})
    # "op" is wire framing, not a request field.
    request = PlanRequest.from_dict({"op": "plan", "model": "lstm"})
    assert request.model == "lstm"


def test_request_round_trip():
    request = PlanRequest(model="vgg16", ratio=0.05, machines=2, gpus=2,
                          deadline_s=2.5, request_id="r9")
    again = PlanRequest.from_dict(request.to_dict())
    assert again == request


def test_strategy_digest_is_value_equality():
    fp32 = baseline_strategy(4)
    assert strategy_digest(fp32) == strategy_digest(baseline_strategy(4))
    compressed = fp32.replace(2, inter_allgather_option(Device.GPU))
    assert strategy_digest(compressed) != strategy_digest(fp32)


def test_job_fingerprint_matches_request_fingerprint():
    request = PlanRequest(model="lstm", machines=2, gpus=4)
    assert job_fingerprint(request.build_job()) == request.fingerprint()
    assert family_key(request.build_job()) == request.family()


def test_response_round_trip_and_codec():
    response = PlanResponse(
        request_id="a", status="ok", source="fresh",
        iteration_time=0.1, baseline_iteration_time=0.2,
        strategy_digest="abc", options=("x", "y"), attempts=2,
    )
    frame = encode_message(response.to_dict())
    assert frame.endswith(b"\n")
    again = PlanResponse.from_dict(decode_message(frame))
    assert again.options == ("x", "y")
    assert again.speedup_over_fp32 == pytest.approx(2.0)
    assert again.ok


def test_decode_message_rejects_garbage():
    with pytest.raises(RequestError, match="undecodable frame"):
        decode_message(b"{nope\n")
    with pytest.raises(RequestError, match="JSON object"):
        decode_message(json.dumps([1, 2]).encode())
