"""The asyncio planning server: admission, retries, breaker, drain.

Every test drives a real :class:`PlanningServer` inside ``asyncio.run``
on a small job (lstm on 2x2) so a fresh plan costs tens of
milliseconds.  Chaos injection is the failure source — deterministic
per (request id, attempt), so each scenario is scripted, not flaky.
"""

import asyncio
import dataclasses
import json

import pytest

from repro.core import Espresso
from repro.service.api import PlanRequest, strategy_digest
from repro.service.resilience import ChaosSchedule, OPEN, RetryPolicy
from repro.service.server import PlanningServer, ServerConfig


def make_server(**overrides) -> PlanningServer:
    fields = dict(workers=2, queue_limit=8, default_deadline_s=10.0)
    fields.update(overrides)
    return PlanningServer(ServerConfig(**fields))


def plan_msg(request_id: str, **overrides) -> dict:
    message = dict(op="plan", model="lstm", gc="dgc", ratio=0.01,
                   machines=2, gpus=2, request_id=request_id)
    message.update(overrides)
    return message


async def drain(server: PlanningServer) -> None:
    server.request_drain("test over")
    await server.wait_drained()


def test_fresh_then_cached_and_bit_identical():
    async def scenario():
        server = make_server()
        await server.start()
        first = await server.dispatch(plan_msg("a"))
        second = await server.dispatch(plan_msg("b"))
        await drain(server)
        return first, second

    first, second = asyncio.run(scenario())
    assert first["status"] == "ok" and first["source"] == "fresh"
    assert not first["degraded"]
    assert second["source"] == "cache" and not second["degraded"]
    assert second["strategy_digest"] == first["strategy_digest"]
    # The served plan IS the plan a direct planner run selects.
    request = PlanRequest.from_dict(plan_msg("x"))
    direct = Espresso(request.build_job()).select_strategy()
    assert first["strategy_digest"] == strategy_digest(direct.strategy)
    assert first["iteration_time"] == direct.iteration_time


def test_tcp_wire_end_to_end():
    async def scenario():
        server = make_server()
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        for message in (plan_msg("a"), {"op": "health"}, {"op": "drain"}):
            writer.write((json.dumps(message) + "\n").encode())
        await writer.drain()
        frames = [json.loads(await reader.readline()) for _ in range(3)]
        writer.close()
        await server.wait_drained()
        return frames

    frames = asyncio.run(scenario())
    by_kind = {f.get("op", "plan"): f for f in frames}
    assert by_kind["plan"]["status"] == "ok"
    assert by_kind["health"]["ready"] is True
    assert by_kind["drain"]["status"] == "draining"


def test_killed_evaluator_retries_with_backoff_and_heals():
    async def scenario():
        # kill_attempts=1: attempt 0 dies, the retry succeeds.
        server = make_server(
            chaos=ChaosSchedule(seed=0, kill_rate=1.0, kill_attempts=1),
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
        )
        await server.start()
        response = await server.dispatch(plan_msg("a"))
        stats = server.stats
        await drain(server)
        return response, stats

    response, stats = asyncio.run(scenario())
    assert response["status"] == "ok" and response["source"] == "fresh"
    assert not response["degraded"]
    assert response["attempts"] == 2
    assert stats.worker_failures == 1 and stats.retries == 1


def test_retries_exhausted_degrades_to_heuristic():
    async def scenario():
        # Kills never heal; the breaker threshold is high so this is
        # purely the retries-exhausted path.
        server = make_server(
            chaos=ChaosSchedule(seed=0, kill_rate=1.0, kill_attempts=99),
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
            breaker_threshold=10,
        )
        await server.start()
        response = await server.dispatch(plan_msg("a"))
        stats = server.stats
        await drain(server)
        return response, stats

    response, stats = asyncio.run(scenario())
    assert response["status"] == "ok"
    assert response["degraded"] is True
    assert response["source"] == "heuristic"
    assert "retries exhausted" in response["reason"]
    assert stats.worker_failures == 3  # initial + 2 retries
    assert stats.heuristic_serves == 1


def test_deadline_miss_degrades_within_budget():
    async def scenario():
        # Every evaluation stalls 5s against a 0.2s deadline: the
        # cancel seam must abort it and the ladder must answer.
        server = make_server(
            chaos=ChaosSchedule(seed=0, slow_rate=1.0, slow_seconds=5.0),
            default_deadline_s=0.2,
        )
        await server.start()
        response = await server.dispatch(plan_msg("a"))
        stats = server.stats
        await drain(server)
        return response, stats

    response, stats = asyncio.run(scenario())
    assert response["status"] == "ok" and response["degraded"] is True
    assert response["source"] == "heuristic"
    assert "deadline" in response["reason"]
    assert stats.deadline_misses == 1
    # Answered promptly after the miss, not after the 5s stall.
    assert response["elapsed_s"] < 2.0


def test_stale_cache_preferred_over_heuristic():
    async def scenario():
        server = make_server(default_deadline_s=10.0)
        await server.start()
        # Warm the family with a 2x2 plan...
        await server.dispatch(plan_msg("warm"))
        # ...then break planning and ask for the same family on a
        # different cluster: the stale plan must be served, degraded.
        server.config = dataclasses.replace(
            server.config,
            chaos=ChaosSchedule(seed=0, kill_rate=1.0, kill_attempts=99),
            retry=RetryPolicy(max_retries=0, backoff_base=0.01),
        )
        response = await server.dispatch(plan_msg("other", gpus=4))
        await drain(server)
        return response

    response = asyncio.run(scenario())
    assert response["status"] == "ok" and response["degraded"] is True
    assert response["source"] == "stale-cache"


def test_breaker_opens_then_probe_recovers():
    async def scenario():
        server = make_server(
            chaos=ChaosSchedule(seed=0, kill_rate=1.0, kill_attempts=99),
            retry=RetryPolicy(max_retries=0, backoff_base=0.01),
            breaker_threshold=2,
            breaker_cooldown_s=0.05,
        )
        await server.start()
        first = await server.dispatch(plan_msg("a"))
        second = await server.dispatch(plan_msg("b"))
        opened_state = server.breaker.state
        # While open (within cooldown) the planner is bypassed.
        third = await server.dispatch(plan_msg("c"))
        planned_before = server.stats.fresh
        # Heal the planner, wait out the cooldown: the next request is
        # the half-open probe and closes the breaker.
        server.config = dataclasses.replace(server.config, chaos=None)
        await asyncio.sleep(0.06)
        fourth = await server.dispatch(plan_msg("d"))
        closed_state = server.breaker.state
        await drain(server)
        return (first, second, opened_state, third, planned_before,
                fourth, closed_state, server.breaker.probes)

    (first, second, opened_state, third, planned_before,
     fourth, closed_state, probes) = asyncio.run(scenario())
    assert first["degraded"] and second["degraded"]
    assert opened_state == OPEN
    assert third["degraded"] and "circuit breaker open" in third["reason"]
    assert planned_before == 0
    assert fourth["status"] == "ok" and fourth["source"] == "fresh"
    assert not fourth["degraded"]
    assert closed_state == "closed"
    assert probes == 1


def test_saturated_queue_fast_fails_with_diagnostic():
    async def scenario():
        # One worker stuck in a 0.5s stall, queue of 1: the burst's
        # tail must be refused immediately, not silently parked.
        server = make_server(
            workers=1,
            queue_limit=1,
            chaos=ChaosSchedule(seed=0, slow_rate=1.0, slow_seconds=0.5),
        )
        await server.start()
        tasks = [
            asyncio.ensure_future(server.dispatch(plan_msg(f"r{i}")))
            for i in range(5)
        ]
        responses = await asyncio.gather(*tasks)
        await drain(server)
        return responses

    responses = asyncio.run(scenario())
    rejected = [r for r in responses if r["status"] == "rejected"]
    assert rejected, "a 5-deep burst into worker+queue=2 must refuse some"
    assert all("queue saturated" in r["reason"] for r in rejected)
    assert all("retry later" in r["reason"] for r in rejected)
    answered = [r for r in responses if r["status"] == "ok"]
    assert len(answered) + len(rejected) == 5


def test_queue_expired_request_is_not_charged_to_the_breaker():
    async def scenario():
        # First request stalls the single worker past the second
        # request's whole 10ms budget; the second must be answered via
        # the ladder without blaming the evaluator.
        server = make_server(
            workers=1,
            chaos=ChaosSchedule(seed=0, slow_rate=1.0, slow_seconds=0.3),
        )
        await server.start()
        slow = asyncio.ensure_future(server.dispatch(plan_msg("slow")))
        await asyncio.sleep(0.02)
        # A *different* job (no exact cache hit possible) with a budget
        # the queue wait alone consumes.
        quick = await server.dispatch(
            plan_msg("quick", gpus=4, deadline_s=0.01)
        )
        await slow
        stats = server.stats
        failures = server.breaker.consecutive_failures
        await drain(server)
        return quick, stats, failures

    quick, stats, failures = asyncio.run(scenario())
    assert quick["status"] == "ok" and quick["degraded"] is True
    assert "in queue" in quick["reason"]
    assert stats.queue_expired == 1
    assert failures == 0


def test_drain_finishes_inflight_and_refuses_new():
    async def scenario():
        server = make_server(
            chaos=ChaosSchedule(seed=0, slow_rate=1.0, slow_seconds=0.2),
        )
        await server.start()
        inflight = asyncio.ensure_future(server.dispatch(plan_msg("a")))
        await asyncio.sleep(0.05)
        server.request_drain("SIGTERM test")
        not_ready = server.health()["ready"]
        late = await server.dispatch(plan_msg("b"))
        finished = await inflight
        await server.wait_drained()
        return finished, late, not_ready

    finished, late, not_ready = asyncio.run(scenario())
    assert finished["status"] == "ok"  # in-flight work completed
    assert late["status"] == "rejected"
    assert "draining" in late["reason"]
    assert not_ready is False  # a draining server reports unready


def test_malformed_requests_get_one_line_errors():
    async def scenario():
        server = make_server()
        await server.start()
        unknown_model = await server.dispatch(plan_msg("a", model="nosuch"))
        unknown_key = await server.dispatch(
            {"op": "plan", "request_id": "b", "modle": "lstm"}
        )
        unknown_op = await server.dispatch({"op": "explode"})
        garbage = await server.dispatch_line(b"{not json\n")
        await drain(server)
        return unknown_model, unknown_key, unknown_op, garbage

    unknown_model, unknown_key, unknown_op, garbage = asyncio.run(scenario())
    assert unknown_model["status"] == "error"
    assert "unknown model" in unknown_model["reason"]
    assert unknown_model["request_id"] == "a"
    assert unknown_key["status"] == "error"
    assert "unknown key" in unknown_key["reason"]
    assert unknown_op["status"] == "error"
    assert garbage["status"] == "error"
    for response in (unknown_model, unknown_key, unknown_op, garbage):
        assert "\n" not in response["reason"]


def test_health_and_stats_report_the_pipeline():
    async def scenario():
        server = make_server()
        await server.start()
        await server.dispatch(plan_msg("a"))
        await server.dispatch(plan_msg("b"))
        health = server.health()
        stats = await server.dispatch({"op": "stats"})
        await drain(server)
        return health, stats

    health, stats = asyncio.run(scenario())
    assert health["status"] == "ok" and health["ready"]
    assert health["served"] == 2
    assert health["breaker"]["state"] == "closed"
    assert stats["fresh"] == 1 and stats["cache_hits"] == 1
    assert stats["cache"]["hit_rate"] == pytest.approx(0.5)
    assert stats["received"] == 2
