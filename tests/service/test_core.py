"""PlanningCore, the strategy cache, the heuristic, the cancel seam."""

import pytest

from repro.core import Espresso
from repro.core.strategy import StrategyEvaluator
from repro.service.api import PlanRequest, strategy_digest
from repro.service.core import (
    PlanningCore,
    StrategyCache,
    heuristic_plan,
    make_entry,
    run_systems,
    validate_suite,
)
from repro.service.resilience import (
    CancelToken,
    Deadline,
    DeadlineExceeded,
)


def small_request(**overrides):
    fields = dict(model="lstm", gc="dgc", ratio=0.01, machines=2, gpus=2)
    fields.update(overrides)
    return PlanRequest(**fields)


# -- PlanningCore -----------------------------------------------------------


def test_plan_request_matches_direct_espresso_bit_for_bit():
    request = small_request()
    entry = PlanningCore().plan_request(request)
    direct = Espresso(request.build_job()).select_strategy()
    assert entry.digest == strategy_digest(direct.strategy)
    assert entry.options_text == tuple(
        o.describe() for o in direct.strategy.options
    )
    assert entry.iteration_time == direct.iteration_time
    assert entry.baseline_iteration_time == direct.baseline_iteration_time


def test_cancel_seam_aborts_selection_from_inside_the_evaluator():
    # An already-expired deadline: the very first F(S) pricing call
    # must raise out of the planner instead of finishing the search.
    class Expired:
        def __call__(self):
            raise DeadlineExceeded("deadline of 0.001s exceeded")

    with pytest.raises(DeadlineExceeded):
        PlanningCore().plan_job(
            small_request().build_job(), cancel_check=Expired()
        )


def test_cancel_token_seam_with_fake_clock():
    clock_value = [0.0]
    deadline = Deadline(0.5, clock=lambda: clock_value[0])
    token = CancelToken(deadline)
    clock_value[0] = 1.0  # expire mid-flight
    with pytest.raises(DeadlineExceeded):
        PlanningCore().plan_job(
            small_request().build_job(), cancel_check=token.check
        )


# -- StrategyCache ----------------------------------------------------------


def entry_for(request):
    job = request.build_job()
    result = Espresso(job).select_strategy()
    return make_entry(
        job, result.strategy, result.iteration_time,
        result.baseline_iteration_time,
    )


def test_cache_exact_hit_and_miss_accounting():
    cache = StrategyCache()
    entry = entry_for(small_request())
    assert cache.get(entry.fingerprint) is None
    cache.put(entry)
    hit = cache.get(entry.fingerprint)
    assert hit is entry
    assert hit.hits == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_cache_stale_family_serves_other_cluster():
    cache = StrategyCache()
    cached = entry_for(small_request(machines=2, gpus=2))
    cache.put(cached)
    other = small_request(machines=4, gpus=2)
    assert cache.get(other.fingerprint()) is None
    stale = cache.get_stale(other.family())
    assert stale is cached
    assert cache.stale_hits == 1
    # A different (model, gc) family finds nothing.
    assert cache.get_stale(small_request(ratio=0.05).family()) is None


def test_cache_lru_eviction_cleans_family_index():
    cache = StrategyCache(max_entries=1)
    first = entry_for(small_request(machines=2, gpus=2))
    second = entry_for(small_request(machines=2, gpus=2, ratio=0.05))
    cache.put(first)
    cache.put(second)  # evicts first (capacity 1)
    assert len(cache) == 1
    assert cache.evictions == 1
    assert cache.get_stale(first.family) is None
    assert cache.get_stale(second.family) is second


def test_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        StrategyCache(max_entries=0)


# -- heuristic_plan ---------------------------------------------------------


def test_heuristic_never_worse_than_fp32_and_prices_honestly():
    job = small_request(machines=2, gpus=4).build_job()
    strategy, iteration_time, baseline_time = heuristic_plan(job)
    assert iteration_time <= baseline_time
    # The reported time is the evaluator's, not an estimate.
    assert iteration_time == pytest.approx(
        StrategyEvaluator(job).iteration_time(strategy)
    )


def test_heuristic_on_single_gpu_returns_baseline():
    job = small_request(machines=1, gpus=1).build_job()
    strategy, iteration_time, baseline_time = heuristic_plan(job)
    assert not strategy.compressed_indices
    assert iteration_time == baseline_time


def test_heuristic_is_deterministic():
    job = small_request(machines=2, gpus=4).build_job()
    first = heuristic_plan(job)
    second = heuristic_plan(job)
    assert strategy_digest(first[0]) == strategy_digest(second[0])
    assert first[1:] == second[1:]


# -- relocated CLI helpers --------------------------------------------------


def test_run_systems_serial_matches_shape():
    from repro.baselines import FP32, HiPress

    job = small_request().build_job()
    results, reason = run_systems(job, [FP32, HiPress], jobs=1)
    assert [r.name for r in results] == ["FP32", "HiPress"]
    assert reason is None  # no fan-out requested, nothing was downgraded


def test_validate_suite_serial_reports():
    from repro.core.conformance import conformance_strategies

    job = small_request().build_job()
    named = conformance_strategies(job.model.num_tensors)[:2]
    reports, reason = validate_suite(job, named, oracle=False, jobs=1)
    assert [r.name for r in reports] == [name for name, _ in named]
    assert all(r.ok for r in reports)
    assert reason is None
