"""Deadlines, retry backoff, the circuit breaker, chaos determinism."""

import pytest

from repro.service.resilience import (
    CLOSED,
    HALF_OPEN,
    KILL,
    OPEN,
    SLOW,
    CancelToken,
    ChaosSchedule,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RequestCancelled,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- Deadline / CancelToken -------------------------------------------------


def test_deadline_counts_down_and_raises():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    assert deadline.remaining() == pytest.approx(1.0)
    deadline.check()  # within budget: no raise
    clock.advance(0.5)
    assert not deadline.expired()
    clock.advance(0.6)
    assert deadline.expired()
    with pytest.raises(DeadlineExceeded, match="deadline of 1.000s exceeded"):
        deadline.check()


def test_unbounded_deadline_never_expires():
    clock = FakeClock()
    deadline = Deadline(None, clock=clock)
    clock.advance(1e9)
    assert deadline.remaining() == float("inf")
    deadline.check()


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        Deadline(0.0)


def test_cancel_token_explicit_cancel_beats_deadline():
    clock = FakeClock()
    token = CancelToken(Deadline(10.0, clock=clock))
    token.check()
    token.cancel("drain")
    with pytest.raises(RequestCancelled, match="drain"):
        token.check()


def test_cancel_token_defers_to_deadline():
    clock = FakeClock()
    token = CancelToken(Deadline(1.0, clock=clock))
    clock.advance(2.0)
    with pytest.raises(DeadlineExceeded):
        token.check()


# -- RetryPolicy ------------------------------------------------------------


def test_retry_policy_doubles_and_caps():
    policy = RetryPolicy(max_retries=5, backoff_base=0.05, backoff_cap=0.15)
    assert policy.delay(1) == pytest.approx(0.05)
    assert policy.delay(2) == pytest.approx(0.10)
    assert policy.delay(3) == pytest.approx(0.15)  # capped, not 0.20
    assert policy.delay(4) == pytest.approx(0.15)


def test_retry_policy_rejects_negative_retries():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)


# -- CircuitBreaker ---------------------------------------------------------


def make_breaker(clock, threshold=3, cooldown=2.0):
    return CircuitBreaker(
        failure_threshold=threshold, cooldown_s=cooldown, clock=clock
    )


def test_breaker_opens_after_k_consecutive_failures():
    clock = FakeClock()
    breaker = make_breaker(clock)
    for _ in range(2):
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.opens == 1


def test_success_resets_the_consecutive_count():
    clock = FakeClock()
    breaker = make_breaker(clock)
    for _ in range(10):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # never 3 in a row
    assert breaker.state == CLOSED


def test_breaker_half_open_single_probe_then_close():
    clock = FakeClock()
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    assert not breaker.allow()  # still cooling down
    clock.advance(2.0)
    assert breaker.allow()  # the probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # only ONE probe at a time
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.probes == 1


def test_breaker_probe_failure_reopens_and_restarts_cooldown():
    clock = FakeClock()
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(2.0)
    assert breaker.allow()
    breaker.record_failure()  # probe fails
    assert breaker.state == OPEN
    assert breaker.opens == 2
    clock.advance(1.0)
    assert not breaker.allow()  # cooldown restarted at the probe failure
    clock.advance(1.0)
    assert breaker.allow()


def test_breaker_snapshot_fields():
    breaker = make_breaker(FakeClock())
    snap = breaker.snapshot()
    assert snap["state"] == CLOSED
    assert snap["failure_threshold"] == 3
    assert set(snap) >= {"opens", "probes", "failures", "successes"}


def test_breaker_validates_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=-1.0)


# -- ChaosSchedule ----------------------------------------------------------


def test_chaos_is_deterministic_per_request_and_attempt():
    chaos = ChaosSchedule(seed=7, kill_rate=0.3, slow_rate=0.3)
    actions = [chaos.action(f"req-{i}", 0) for i in range(200)]
    again = [chaos.action(f"req-{i}", 0) for i in range(200)]
    assert actions == again
    assert KILL in actions and SLOW in actions and None in actions


def test_chaos_seed_changes_the_schedule():
    a = ChaosSchedule(seed=1, kill_rate=0.5)
    b = ChaosSchedule(seed=2, kill_rate=0.5)
    ids = [f"req-{i}" for i in range(100)]
    assert [a.action(i, 0) for i in ids] != [b.action(i, 0) for i in ids]


def test_chaos_kill_attempts_gate_heals_retries():
    chaos = ChaosSchedule(seed=0, kill_rate=1.0, kill_attempts=1)
    assert chaos.action("x", 0) == KILL
    assert chaos.action("x", 1) is None  # the retry heals


def test_chaos_inactive_when_rates_zero():
    chaos = ChaosSchedule(seed=0)
    assert not chaos.active
    assert chaos.action("x", 0) is None


def test_chaos_validates_rates():
    with pytest.raises(ValueError):
        ChaosSchedule(kill_rate=1.5)
