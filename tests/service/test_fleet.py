"""The service's ``op: "fleet"`` path: same deadline/breaker machinery
as single-job plans, with the per-tenant heuristic fleet as the
degraded rung."""

import asyncio

import pytest

from repro.core.fleet import plan_fleet
from repro.service.api import FleetRequest, FleetResponse, strategy_digest
from repro.service.resilience import ChaosSchedule, RetryPolicy
from repro.service.server import PlanningServer, ServerConfig


def make_server(**overrides) -> PlanningServer:
    fields = dict(workers=2, queue_limit=8, default_deadline_s=30.0)
    fields.update(overrides)
    return PlanningServer(ServerConfig(**fields))


def fleet_msg(request_id: str, **overrides) -> dict:
    message = dict(
        op="fleet",
        tenants=[
            {"name": "a", "model": "lstm", "gc": "dgc", "ratio": 0.01},
            {"name": "b", "model": "lstm", "gc": "efsignsgd"},
        ],
        testbed="nvlink",
        machines=2,
        gpus=2,
        request_id=request_id,
    )
    message.update(overrides)
    return message


async def drain(server: PlanningServer) -> None:
    server.request_drain("test over")
    await server.wait_drained()


def test_fleet_fresh_matches_direct_joint_plan():
    async def scenario():
        server = make_server()
        await server.start()
        response = await server.dispatch(fleet_msg("a"))
        await drain(server)
        return response

    response = asyncio.run(scenario())
    assert response["status"] == "ok"
    assert response["source"] == "fresh"
    assert not response["degraded"]
    assert response["mode"] in ("joint", "selfish")
    assert (
        response["aggregate_throughput"]
        >= response["selfish_aggregate_throughput"]
    )
    assert response["worst_slowdown"] >= 1.0 - 1e-12

    # The served assignment IS the assignment a direct joint plan picks.
    request = FleetRequest.from_dict(fleet_msg("x"))
    direct = plan_fleet(request.build_fleet(), max_rounds=request.max_rounds)
    by_name = {t["name"]: t for t in response["tenants"]}
    assert set(by_name) == {"a", "b"}
    for plan in direct.tenants:
        served = by_name[plan.name]
        assert served["strategy_digest"] == strategy_digest(plan.strategy)
        assert served["iteration_time"] == pytest.approx(plan.contended_time)
        assert served["slowdown"] == pytest.approx(plan.slowdown)
        assert served["source"] == plan.source
    assert response["mode"] == direct.mode

    # The fingerprint is a pure function of the planning inputs.
    assert response["fingerprint"] == FleetRequest.from_dict(
        fleet_msg("other-id")
    ).fingerprint()


def test_fleet_malformed_requests_get_one_line_errors():
    async def scenario():
        server = make_server()
        await server.start()
        responses = {
            "unknown-key": await server.dispatch(
                fleet_msg("a", bogus=True)
            ),
            "empty-tenants": await server.dispatch(
                fleet_msg("b", tenants=[])
            ),
            "bad-testbed": await server.dispatch(
                fleet_msg("c", testbed="token-ring")
            ),
            "bad-rounds": await server.dispatch(
                fleet_msg("d", max_rounds=0)
            ),
            "bad-ratio": await server.dispatch(
                fleet_msg(
                    "e",
                    tenants=[
                        {"name": "a", "model": "lstm", "gc": "dgc",
                         "ratio": 7.0}
                    ],
                )
            ),
        }
        await drain(server)
        return responses

    responses = asyncio.run(scenario())
    for label, response in responses.items():
        assert response["status"] == "error", label
        assert response["reason"], label
        assert "\n" not in response["reason"], label
    assert "bogus" in responses["unknown-key"]["reason"]
    assert "tenants" in responses["empty-tenants"]["reason"]
    assert "token-ring" in responses["bad-testbed"]["reason"]
    assert "max_rounds" in responses["bad-rounds"]["reason"]


def test_fleet_queue_expired_deadline_degrades_without_breaker_charge():
    async def scenario():
        server = make_server()
        await server.start()
        response = await server.dispatch(
            fleet_msg("a", deadline_s=1e-6)
        )
        stats = server.stats
        failures = server.breaker.consecutive_failures
        await drain(server)
        return response, stats, failures

    response, stats, failures = asyncio.run(scenario())
    assert response["status"] == "ok"
    assert response["degraded"] is True
    assert response["source"] == "heuristic"
    assert response["mode"] == "heuristic"
    assert "in queue" in response["reason"]
    assert stats.queue_expired == 1
    assert stats.heuristic_serves == 1
    # Queue time is not an evaluator failure: breaker untouched.
    assert failures == 0
    # The degraded rung still prices tenants under their own contention.
    for tenant in response["tenants"]:
        assert tenant["source"] == "heuristic"
        assert tenant["slowdown"] >= 1.0 - 1e-12


def test_fleet_killed_evaluator_retries_and_heals():
    async def scenario():
        server = make_server(
            chaos=ChaosSchedule(seed=0, kill_rate=1.0, kill_attempts=1),
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
        )
        await server.start()
        response = await server.dispatch(fleet_msg("a"))
        stats = server.stats
        await drain(server)
        return response, stats

    response, stats = asyncio.run(scenario())
    assert response["status"] == "ok"
    assert response["source"] == "fresh"
    assert not response["degraded"]
    assert response["attempts"] == 2
    assert stats.worker_failures == 1 and stats.retries == 1


def test_fleet_response_round_trip():
    response = FleetResponse(
        request_id="r",
        mode="joint",
        aggregate_throughput=10.0,
        tenants=({"name": "a"},),
    )
    data = response.to_dict()
    assert isinstance(data["tenants"], list)
    assert "reason" not in data  # None fields dropped on the wire
    rebuilt = FleetResponse.from_dict(data)
    assert rebuilt.tenants == ({"name": "a"},)
    assert rebuilt.ok
