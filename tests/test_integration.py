"""Cross-module integration tests: the full pipeline end to end."""

import pytest

from repro import (
    Espresso,
    GCInfo,
    JobConfig,
    SystemInfo,
    load_job,
    save_cluster,
    save_gc,
    save_model,
)
from repro.baselines import ALL_SYSTEMS, UpperBound
from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.compression import create_compressor
from repro.core.strategy import StrategyEvaluator
from repro.models import get_model, synthetic_model
from repro.profiling import average_traces, collect_traces
from repro.sim.metrics import communication_overhead, compression_overhead
from repro.training import DataParallelTrainer, make_classification
from repro.utils.units import MB, MS


def test_config_files_to_plan(tmp_path):
    """Fig. 6's flow: three config files in, strategy out."""
    model = synthetic_model(
        "pipeline", [(int(64 * MB / 4), 8 * MS), (int(16 * MB / 4), 6 * MS)]
    )
    traced, _ = average_traces(model, collect_traces(model, iterations=20, seed=3))
    save_model(traced, tmp_path / "model.json")
    save_gc(GCInfo("efsignsgd"), tmp_path / "gc.json")
    save_cluster(pcie_25g_cluster(num_machines=2), tmp_path / "system.json")
    job = load_job(tmp_path / "model.json", tmp_path / "gc.json", tmp_path / "system.json")
    result = Espresso(job).select_strategy()
    assert result.iteration_time <= result.baseline_iteration_time + 1e-12


@pytest.mark.parametrize("gc_name,params", [
    ("dgc", {"ratio": 0.01}),
    ("randomk", {"ratio": 0.01}),
    ("efsignsgd", {}),
    ("qsgd", {"levels": 255}),
    ("terngrad", {}),
    ("fp16", {}),
])
def test_every_algorithm_plans_on_a_real_model(gc_name, params):
    """Each registered GC algorithm flows through planner + simulator."""
    job = JobConfig(
        model=get_model("lstm"),
        gc=GCInfo(gc_name, params),
        system=SystemInfo(cluster=nvlink_100g_cluster(num_machines=2)),
    )
    result = Espresso(job).select_strategy()
    assert result.iteration_time > 0
    assert result.speedup_over_fp32 >= 1.0


def test_overheads_shrink_under_espresso(pcie_job):
    """Espresso reduces o_comm without exploding o_comp (§3's framing)."""
    evaluator = StrategyEvaluator(pcie_job)
    fp32_timeline = evaluator.timeline(evaluator.baseline())
    result = Espresso(pcie_job).select_strategy()
    espresso_timeline = evaluator.timeline(result.strategy)
    assert communication_overhead(espresso_timeline) < communication_overhead(
        fp32_timeline
    )
    total_overhead_fp32 = communication_overhead(fp32_timeline)
    total_overhead_esp = communication_overhead(
        espresso_timeline
    ) + compression_overhead(espresso_timeline)
    assert total_overhead_esp < total_overhead_fp32


def test_selected_strategy_trains_to_convergence(medium_job):
    """The strategy's compressor actually trains a model: plan with the
    simulator, train with the numpy engine, using the same GC config."""
    result = Espresso(medium_job).select_strategy()
    assert result.compressed_indices  # the job is comm-bound enough
    compressor = medium_job.build_compressor()
    dataset = make_classification(samples=800, features=16, classes=3, seed=2)
    curve = DataParallelTrainer(
        dataset, compressor=compressor, workers=4, momentum=0.5, seed=2,
        step_seconds=result.iteration_time,
    ).train(steps=120, eval_every=40)
    assert curve.final_accuracy > 0.75
    assert curve.seconds[-1] == pytest.approx(120 * result.iteration_time)


def test_all_systems_agree_on_single_gpu():
    """With one GPU there is nothing to synchronize: every system's
    iteration time equals the pure compute time."""
    from repro.cluster import single_gpu

    job = JobConfig(
        model=synthetic_model("solo", [(int(4 * MB / 4), 5 * MS)]),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=single_gpu()),
    )
    expected = job.model.iteration_compute_time
    for system_cls in ALL_SYSTEMS + (UpperBound,):
        result = system_cls().run(job)
        assert result.iteration_time == pytest.approx(expected)
        assert result.scaling_factor == pytest.approx(1.0)


def test_compressor_round_trip_matches_plan_sizes():
    """The wire sizes the cost models charge equal what the real numpy
    kernels emit."""
    import numpy as np

    for gc_name, params in (("dgc", {"ratio": 0.01}), ("efsignsgd", {})):
        compressor = create_compressor(gc_name, **params)
        tensor = np.random.default_rng(0).standard_normal(100_000).astype("float32")
        compressed = compressor.compress(tensor, seed=1)
        assert compressed.nbytes == compressor.compressed_nbytes(tensor.size)
