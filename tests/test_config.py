"""Config round-trip tests (the three Fig. 6 input files)."""

import pytest

from repro.cluster import pcie_25g_cluster
from repro.config import (
    GCInfo,
    SystemInfo,
    load_cluster,
    load_gc,
    load_job,
    load_model,
    save_cluster,
    save_gc,
    save_model,
)
from repro.models import get_model, synthetic_model


def test_model_round_trip(tmp_path):
    model = get_model("lstm")
    path = tmp_path / "model.json"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded == model


def test_cluster_round_trip(tmp_path):
    cluster = pcie_25g_cluster(num_machines=3)
    path = tmp_path / "cluster.json"
    save_cluster(cluster, path)
    assert load_cluster(path) == cluster


def test_gc_round_trip(tmp_path):
    gc = GCInfo("dgc", {"ratio": 0.02})
    path = tmp_path / "gc.json"
    save_gc(gc, path)
    loaded = load_gc(path)
    assert loaded == gc
    compressor = loaded.build()
    assert compressor.name == "dgc"
    assert compressor.ratio == 0.02


def test_load_job_assembles_everything(tmp_path):
    save_model(synthetic_model("j", [(1000, 0.01)]), tmp_path / "m.json")
    save_gc(GCInfo("efsignsgd"), tmp_path / "g.json")
    save_cluster(pcie_25g_cluster(), tmp_path / "s.json")
    job = load_job(tmp_path / "m.json", tmp_path / "g.json", tmp_path / "s.json")
    assert job.model.name == "j"
    assert job.gc.algorithm == "efsignsgd"
    assert job.system.cluster.interconnect == "pcie"
    assert job.build_compressor().name == "efsignsgd"


def test_system_info_defaults():
    info = SystemInfo(cluster=pcie_25g_cluster())
    assert info.gpu.is_gpu
    assert not info.cpu.is_gpu


def test_gc_unknown_algorithm_fails_at_build():
    gc = GCInfo("nonexistent")
    with pytest.raises(ValueError):
        gc.build()


# -- unknown-key rejection (typo'd inputs must not silently default) -------


def test_model_config_rejects_unknown_keys():
    from repro.config import model_from_dict, model_to_dict

    data = model_to_dict(get_model("lstm"))
    data["forward_tiem"] = 0.01  # typo'd optional key
    with pytest.raises(ValueError, match=r"'forward_tiem'"):
        model_from_dict(data)


def test_model_tensor_rejects_unknown_keys():
    from repro.config import model_from_dict, model_to_dict

    data = model_to_dict(synthetic_model("m", [(1000, 0.01)]))
    data["tensors"][0]["num_elments"] = 5
    with pytest.raises(ValueError, match=r"tensor #0.*'num_elments'"):
        model_from_dict(data)


def test_cluster_config_rejects_unknown_keys():
    from repro.config import cluster_from_dict, cluster_to_dict

    data = cluster_to_dict(pcie_25g_cluster())
    data["inter_latencey"] = 1e-3
    with pytest.raises(ValueError) as excinfo:
        cluster_from_dict(data)
    message = str(excinfo.value)
    assert "'inter_latencey'" in message
    # The diagnostic teaches the fix: it lists the accepted spelling.
    assert "inter_latency" in message


def test_gc_config_rejects_unknown_keys():
    from repro.config import gc_from_dict

    with pytest.raises(ValueError, match=r"'ratio'"):
        gc_from_dict({"algorithm": "dgc", "ratio": 0.01})  # belongs in params


def test_config_must_be_json_object():
    from repro.config import cluster_from_dict

    with pytest.raises(ValueError, match="JSON object, got list"):
        cluster_from_dict([1, 2])
