"""Config round-trip tests (the three Fig. 6 input files)."""

import pytest

from repro.cluster import pcie_25g_cluster
from repro.config import (
    GCInfo,
    SystemInfo,
    load_cluster,
    load_gc,
    load_job,
    load_model,
    save_cluster,
    save_gc,
    save_model,
)
from repro.models import get_model, synthetic_model


def test_model_round_trip(tmp_path):
    model = get_model("lstm")
    path = tmp_path / "model.json"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded == model


def test_cluster_round_trip(tmp_path):
    cluster = pcie_25g_cluster(num_machines=3)
    path = tmp_path / "cluster.json"
    save_cluster(cluster, path)
    assert load_cluster(path) == cluster


def test_gc_round_trip(tmp_path):
    gc = GCInfo("dgc", {"ratio": 0.02})
    path = tmp_path / "gc.json"
    save_gc(gc, path)
    loaded = load_gc(path)
    assert loaded == gc
    compressor = loaded.build()
    assert compressor.name == "dgc"
    assert compressor.ratio == 0.02


def test_load_job_assembles_everything(tmp_path):
    save_model(synthetic_model("j", [(1000, 0.01)]), tmp_path / "m.json")
    save_gc(GCInfo("efsignsgd"), tmp_path / "g.json")
    save_cluster(pcie_25g_cluster(), tmp_path / "s.json")
    job = load_job(tmp_path / "m.json", tmp_path / "g.json", tmp_path / "s.json")
    assert job.model.name == "j"
    assert job.gc.algorithm == "efsignsgd"
    assert job.system.cluster.interconnect == "pcie"
    assert job.build_compressor().name == "efsignsgd"


def test_system_info_defaults():
    info = SystemInfo(cluster=pcie_25g_cluster())
    assert info.gpu.is_gpu
    assert not info.cpu.is_gpu


def test_gc_unknown_algorithm_fails_at_build():
    gc = GCInfo("nonexistent")
    with pytest.raises(ValueError):
        gc.build()
