"""Hypothesis property tests for the compression algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    DGC,
    EFSignSGD,
    ErrorFeedback,
    FP16,
    QSGD,
    RandomK,
    TernGrad,
    TopK,
)

finite_arrays = st.lists(
    st.floats(
        min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False,
        width=32,
    ),
    min_size=1,
    max_size=300,
).map(lambda xs: np.asarray(xs, dtype=np.float32))

sparsifier = st.sampled_from([RandomK, TopK, DGC])
ratios = st.sampled_from([0.01, 0.1, 0.5, 1.0])


@given(finite_arrays, sparsifier, ratios, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_sparsifier_output_subset_of_input(array, cls, ratio, seed):
    """Kept coordinates carry exact input values; the rest are zero."""
    compressor = cls(ratio=ratio)
    restored = compressor.decompress(compressor.compress(array, seed=seed)).ravel()
    mask = restored != 0.0
    np.testing.assert_array_equal(restored[mask], array.ravel()[mask])


@given(finite_arrays, sparsifier, ratios, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_sparsifier_wire_size_deterministic(array, cls, ratio, seed):
    compressor = cls(ratio=ratio)
    compressed = compressor.compress(array, seed=seed)
    assert compressed.nbytes == compressor.compressed_nbytes(array.size)
    # Sparsifiers ship 8 bytes per kept element (value + index), so they
    # shrink the payload strictly below ratio 0.5.
    if ratio <= 0.25 and array.size >= 16:
        assert compressed.nbytes <= array.size * 4


@given(
    st.integers(min_value=1, max_value=10_000_000),
    st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    sparsifier,
)
@settings(max_examples=120, deadline=None)
def test_sparse_wire_size_monotone_in_ratio(num_elements, r1, r2, cls):
    """compressed_nbytes never shrinks when the ratio grows.

    The old ``int(round(n * ratio))`` used banker's rounding, which is
    not monotone in the ratio — a planner walking a ratio ladder could
    see a *larger* ratio price *fewer* wire bytes and pick an option
    whose error model was priced on the wrong k.
    """
    lo, hi = sorted((r1, r2))
    assert (
        cls(ratio=lo).compressed_nbytes(num_elements)
        <= cls(ratio=hi).compressed_nbytes(num_elements)
    )


@given(finite_arrays, sparsifier, ratios, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_sparse_wire_size_matches_kept_elements(array, cls, ratio, seed):
    """compressed_nbytes agrees with the k the compressor actually keeps."""
    from repro.compression.randomk import sparse_elements

    compressor = cls(ratio=ratio)
    restored = compressor.decompress(
        compressor.compress(array, seed=seed)
    ).ravel()
    k = sparse_elements(array.size, ratio)
    # value + index per kept element, exactly k of them on the wire.
    assert compressor.compressed_nbytes(array.size) == 8 * k
    # The compressor cannot keep more coordinates than k (duplicated
    # input values can make fewer *distinct* nonzeros, never more).
    assert int(np.count_nonzero(restored)) <= k
    assert 1 <= k <= array.size


@given(
    st.integers(min_value=1, max_value=10_000_000),
    st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    sparsifier,
)
@settings(max_examples=60, deadline=None)
def test_error_energy_in_unit_interval(num_elements, ratio, cls):
    """The planner's per-tensor error model is a fraction in [0, 1)."""
    energy = cls(ratio=ratio).error_energy(num_elements)
    assert 0.0 <= energy < 1.0
    # Keeping everything discards nothing.
    assert cls(ratio=1.0).error_energy(num_elements) == 0.0


@given(finite_arrays)
@settings(max_examples=60, deadline=None)
def test_signsgd_magnitude_constant(array):
    restored = EFSignSGD().decompress(EFSignSGD().compress(array))
    scale = float(np.mean(np.abs(array)))
    np.testing.assert_allclose(np.abs(restored), scale, rtol=1e-5, atol=1e-6)


@given(finite_arrays, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_qsgd_bounded_by_norm(array, seed):
    q = QSGD(levels=15)
    restored = q.decompress(q.compress(array, seed=seed))
    norm = np.linalg.norm(array)
    assert np.all(np.abs(restored) <= norm * (1 + 1e-5))


@given(finite_arrays, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_terngrad_bounded_by_max(array, seed):
    tg = TernGrad()
    restored = tg.decompress(tg.compress(array, seed=seed))
    assert np.all(np.abs(restored) <= np.max(np.abs(array)) * (1 + 1e-5))


@given(finite_arrays)
@settings(max_examples=60, deadline=None)
def test_fp16_error_bounded(array):
    restored = FP16().decompress(FP16().compress(array))
    # fp16 relative error is ~2^-11 for in-range values.
    np.testing.assert_allclose(restored, array, rtol=2e-3, atol=1e-4)


@given(
    st.lists(finite_arrays, min_size=1, max_size=10),
    st.sampled_from([TopK(0.3), EFSignSGD(), RandomK(0.3)]),
)
@settings(max_examples=40, deadline=None)
def test_error_feedback_telescopes(gradients, compressor):
    """sum(sent) + residual == sum(gradients), for any gradient stream."""
    size = max(g.size for g in gradients)
    gradients = [np.resize(g, size) for g in gradients]
    ef = ErrorFeedback(compressor)
    total = np.zeros(size, dtype=np.float64)
    sent = np.zeros(size, dtype=np.float64)
    for step, grad in enumerate(gradients):
        total += grad
        sent += ef.decompress(ef.compress("k", grad, seed=step))
    np.testing.assert_allclose(
        sent + ef.residual("k"), total, rtol=1e-3, atol=1e-2
    )
