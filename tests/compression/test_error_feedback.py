"""Error-feedback wrapper tests."""

import numpy as np
import pytest

from repro.compression import EFSignSGD, ErrorFeedback, NoCompression, TopK


def test_residual_is_compression_error():
    ef = ErrorFeedback(TopK(ratio=0.25))
    grad = np.array([4.0, -3.0, 1.0, 0.5], dtype=np.float32)
    compressed = ef.compress("t", grad)
    restored = ef.decompress(compressed)
    np.testing.assert_allclose(ef.residual("t"), grad - restored, atol=1e-6)


def test_residual_reenters_next_step():
    ef = ErrorFeedback(TopK(ratio=0.25))
    grad = np.array([4.0, -3.0, 1.0, 0.5], dtype=np.float32)
    ef.compress("t", grad)
    residual = ef.residual("t")
    # Second step with a zero gradient: the accumulator is the residual,
    # so whatever gets transmitted comes from it.
    compressed = ef.compress("t", np.zeros_like(grad))
    restored = ef.decompress(compressed)
    np.testing.assert_allclose(
        restored + ef.residual("t"), residual, atol=1e-6
    )


def test_telescoping_sum_preserves_mass():
    """Over many steps, sum(transmitted) == sum(gradients) - final residual."""
    rng = np.random.default_rng(3)
    ef = ErrorFeedback(TopK(ratio=0.2))
    total_grad = np.zeros(64, dtype=np.float32)
    total_sent = np.zeros(64, dtype=np.float32)
    for _ in range(50):
        grad = rng.standard_normal(64).astype(np.float32)
        total_grad += grad
        total_sent += ef.decompress(ef.compress("w", grad))
    np.testing.assert_allclose(
        total_sent + ef.residual("w"), total_grad, atol=1e-3
    )


def test_identity_compressor_keeps_zero_residual():
    ef = ErrorFeedback(NoCompression())
    grad = np.array([1.0, 2.0], dtype=np.float32)
    ef.compress("t", grad)
    np.testing.assert_allclose(ef.residual("t"), np.zeros(2), atol=1e-7)


def test_residuals_tracked_per_key():
    ef = ErrorFeedback(EFSignSGD())
    # Magnitudes differ within each tensor, so sign quantization errs.
    ef.compress("a", np.array([1.0, -3.0], dtype=np.float32))
    ef.compress("b", np.array([5.0, 1.0], dtype=np.float32))
    assert ef.residual("a") is not None
    assert ef.residual("b") is not None
    assert not np.allclose(ef.residual("a"), ef.residual("b"))
    assert ef.residual("never-seen") is None


def test_reset_clears_state():
    ef = ErrorFeedback(EFSignSGD())
    ef.compress("a", np.ones(4, dtype=np.float32))
    ef.reset()
    assert ef.residual("a") is None


def test_residual_copy_is_defensive():
    ef = ErrorFeedback(TopK(ratio=0.5))
    ef.compress("t", np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32))
    snapshot = ef.residual("t")
    snapshot[:] = 99.0
    assert not np.allclose(ef.residual("t"), 99.0)
