"""Compressor registry tests."""

import pytest

from repro.compression import (
    Compressor,
    available_compressors,
    create_compressor,
    register_compressor,
)
from repro.compression.registry import _FACTORIES


def test_all_paper_algorithms_registered():
    names = available_compressors()
    for required in ("randomk", "dgc", "efsignsgd", "none"):
        assert required in names


def test_create_with_params():
    dgc = create_compressor("dgc", ratio=0.05)
    assert dgc.ratio == 0.05
    assert dgc.name == "dgc"


def test_unknown_name_raises_with_choices():
    with pytest.raises(ValueError, match="available"):
        create_compressor("zstd")


def test_register_custom_compressor():
    class Custom(Compressor):
        name = "custom-test"

        def compress(self, tensor, seed=None):
            raise NotImplementedError

        def decompress(self, compressed):
            raise NotImplementedError

        def compressed_nbytes(self, num_elements):
            return num_elements

    try:
        register_compressor("custom-test", Custom)
        assert isinstance(create_compressor("custom-test"), Custom)
        with pytest.raises(ValueError, match="already registered"):
            register_compressor("custom-test", Custom)
    finally:
        _FACTORIES.pop("custom-test", None)
