"""Compressor registry tests."""

import pytest

from repro.compression import (
    Compressor,
    available_compressors,
    create_compressor,
    register_compressor,
)
from repro.compression.registry import _FACTORIES


def test_all_paper_algorithms_registered():
    names = available_compressors()
    for required in ("randomk", "dgc", "efsignsgd", "none"):
        assert required in names


def test_create_with_params():
    dgc = create_compressor("dgc", ratio=0.05)
    assert dgc.ratio == 0.05
    assert dgc.name == "dgc"


def test_unknown_name_raises_with_choices():
    with pytest.raises(ValueError, match="available"):
        create_compressor("zstd")


def test_typoed_kwarg_names_accepted_parameters():
    """A misspelled parameter is diagnosed, not swallowed by TypeError."""
    with pytest.raises(ValueError, match=r"unknown parameter\(s\) 'ration'"):
        create_compressor("dgc", ration=0.01)
    with pytest.raises(ValueError, match="accepted: ratio"):
        create_compressor("topk", ration=0.01)


def test_out_of_range_param_wrapped_with_compressor_name():
    """Factory validation errors carry which compressor rejected them."""
    with pytest.raises(ValueError, match="randomk"):
        create_compressor("randomk", ratio=0.0)
    with pytest.raises(ValueError, match="qsgd"):
        create_compressor("qsgd", levels=0)


def test_var_keyword_factory_skips_kwarg_check():
    """A **kwargs factory opts out of signature-based diagnostics."""

    def factory(**kwargs):
        compressor = create_compressor("none")
        compressor.extras = kwargs
        return compressor

    try:
        register_compressor("kwargs-test", factory)
        compressor = create_compressor("kwargs-test", anything_goes=1)
        assert compressor.extras == {"anything_goes": 1}
    finally:
        _FACTORIES.pop("kwargs-test", None)


def test_register_custom_compressor():
    class Custom(Compressor):
        name = "custom-test"

        def compress(self, tensor, seed=None):
            raise NotImplementedError

        def decompress(self, compressed):
            raise NotImplementedError

        def compressed_nbytes(self, num_elements):
            return num_elements

    try:
        register_compressor("custom-test", Custom)
        assert isinstance(create_compressor("custom-test"), Custom)
        with pytest.raises(ValueError, match="already registered"):
            register_compressor("custom-test", Custom)
    finally:
        _FACTORIES.pop("custom-test", None)
