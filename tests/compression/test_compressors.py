"""Behavioural tests for every GC algorithm."""

import numpy as np
import pytest

from repro.compression import (
    DGC,
    EFSignSGD,
    FP16,
    NoCompression,
    QSGD,
    RandomK,
    TernGrad,
    TopK,
)
from repro.compression.base import FP32_BYTES

ALL = [
    NoCompression(),
    RandomK(ratio=0.1),
    TopK(ratio=0.1),
    DGC(ratio=0.1),
    EFSignSGD(),
    QSGD(levels=255),
    TernGrad(),
    FP16(),
]


@pytest.fixture
def gradient():
    rng = np.random.default_rng(42)
    return rng.standard_normal(4096).astype(np.float32)


@pytest.mark.parametrize("compressor", ALL, ids=lambda c: c.name)
def test_round_trip_shape_and_dtype(compressor, gradient):
    compressed = compressor.compress(gradient, seed=1)
    restored = compressor.decompress(compressed)
    assert restored.shape == gradient.shape
    assert restored.dtype == np.float32


@pytest.mark.parametrize("compressor", ALL, ids=lambda c: c.name)
def test_multidimensional_tensors(compressor):
    rng = np.random.default_rng(0)
    tensor = rng.standard_normal((16, 8, 4)).astype(np.float32)
    restored = compressor.decompress(compressor.compress(tensor, seed=2))
    assert restored.shape == (16, 8, 4)


@pytest.mark.parametrize("compressor", ALL, ids=lambda c: c.name)
def test_wire_size_matches_model(compressor, gradient):
    compressed = compressor.compress(gradient, seed=3)
    assert compressed.nbytes == compressor.compressed_nbytes(gradient.size)


@pytest.mark.parametrize("compressor", ALL, ids=lambda c: c.name)
def test_empty_tensor_rejected(compressor):
    with pytest.raises(ValueError):
        compressor.compress(np.array([], dtype=np.float32))


def test_no_compression_is_exact(gradient):
    none = NoCompression()
    restored = none.decompress(none.compress(gradient))
    np.testing.assert_array_equal(restored, gradient)
    assert none.compression_ratio(gradient.size) == 1.0


def test_fp16_near_exact(gradient):
    fp16 = FP16()
    restored = fp16.decompress(fp16.compress(gradient))
    np.testing.assert_allclose(restored, gradient, rtol=1e-3, atol=1e-3)
    assert fp16.compression_ratio(gradient.size) == 0.5


class TestSparsifiers:
    @pytest.mark.parametrize(
        "compressor", [RandomK(0.05), TopK(0.05), DGC(0.05)], ids=lambda c: c.name
    )
    def test_sparsity_level(self, compressor, gradient):
        restored = compressor.decompress(compressor.compress(gradient, seed=7))
        kept = np.count_nonzero(restored)
        assert kept <= int(round(gradient.size * 0.05)) + 1

    def test_topk_keeps_largest(self, gradient):
        topk = TopK(ratio=0.01)
        restored = topk.decompress(topk.compress(gradient))
        kept_indices = np.flatnonzero(restored)
        threshold = np.min(np.abs(gradient[kept_indices]))
        dropped = np.delete(np.abs(gradient), kept_indices)
        assert np.all(dropped <= threshold + 1e-7)

    def test_topk_values_preserved_exactly(self, gradient):
        topk = TopK(ratio=0.02)
        restored = topk.decompress(topk.compress(gradient))
        kept = np.flatnonzero(restored)
        np.testing.assert_array_equal(restored[kept], gradient[kept])

    def test_dgc_selects_mostly_large_values(self, gradient):
        dgc = DGC(ratio=0.02)
        restored = dgc.decompress(dgc.compress(gradient, seed=5))
        kept = np.flatnonzero(restored)
        # DGC's sampled threshold should mostly agree with exact top-k.
        exact = set(
            np.argpartition(np.abs(gradient), gradient.size - kept.size)[-kept.size:]
        )
        overlap = len(exact & set(kept)) / kept.size
        assert overlap > 0.6

    def test_randomk_same_seed_same_indices(self, gradient):
        rk = RandomK(ratio=0.05)
        a = rk.compress(gradient, seed=11)
        b = rk.compress(gradient * 2.0, seed=11)
        np.testing.assert_array_equal(a.payload["indices"], b.payload["indices"])

    def test_randomk_different_seed_different_indices(self, gradient):
        rk = RandomK(ratio=0.05)
        a = rk.compress(gradient, seed=11)
        b = rk.compress(gradient, seed=12)
        assert not np.array_equal(a.payload["indices"], b.payload["indices"])

    def test_randomk_rescale_unbiased_scaling(self, gradient):
        rk = RandomK(ratio=0.5, rescale=True)
        restored = rk.decompress(rk.compress(gradient, seed=3))
        kept = np.flatnonzero(restored)
        np.testing.assert_allclose(
            restored[kept], gradient[kept] * 2.0, rtol=1e-4
        )

    def test_ratio_validation(self):
        for cls in (RandomK, TopK, DGC):
            with pytest.raises(ValueError):
                cls(ratio=0.0)
            with pytest.raises(ValueError):
                cls(ratio=1.5)

    def test_tiny_tensor_keeps_at_least_one(self):
        tensor = np.array([3.0, -1.0], dtype=np.float32)
        for compressor in (RandomK(0.01), TopK(0.01), DGC(0.01)):
            restored = compressor.decompress(compressor.compress(tensor, seed=1))
            assert np.count_nonzero(restored) >= 1


class TestQuantizers:
    def test_efsignsgd_signs_preserved(self, gradient):
        ef = EFSignSGD()
        restored = ef.decompress(ef.compress(gradient))
        nonzero = np.abs(gradient) > 1e-8
        assert np.all(np.sign(restored[nonzero]) == np.sign(gradient[nonzero]))

    def test_efsignsgd_scale_is_mean_magnitude(self, gradient):
        ef = EFSignSGD()
        compressed = ef.compress(gradient)
        assert compressed.metadata["scale"] == pytest.approx(
            float(np.mean(np.abs(gradient)))
        )

    def test_efsignsgd_wire_is_one_bit_per_element(self):
        ef = EFSignSGD()
        assert ef.compressed_nbytes(8000) == 1000 + FP32_BYTES
        # ~32x compression for large tensors.
        assert ef.compression_ratio(1 << 20) < 1 / 30

    def test_qsgd_unbiased(self):
        rng = np.random.default_rng(5)
        tensor = rng.standard_normal(512).astype(np.float32)
        q = QSGD(levels=15)
        samples = 400
        restored = np.mean(
            [q.decompress(q.compress(tensor, seed=s)) for s in range(samples)],
            axis=0,
        )
        # Per-coordinate std <= norm/levels; allow 5 sigma of the mean.
        tolerance = 5 * float(np.linalg.norm(tensor)) / 15 / np.sqrt(samples)
        np.testing.assert_allclose(restored, tensor, atol=tolerance)

    def test_qsgd_zero_tensor(self):
        q = QSGD(levels=255)
        zero = np.zeros(64, dtype=np.float32)
        np.testing.assert_array_equal(q.decompress(q.compress(zero)), zero)

    def test_qsgd_bits_per_element(self):
        assert QSGD(levels=255).bits_per_element == 9
        assert QSGD(levels=1).bits_per_element == 2

    def test_terngrad_values_are_ternary(self, gradient):
        tg = TernGrad()
        compressed = tg.compress(gradient, seed=9)
        assert set(np.unique(compressed.payload["ternary"])) <= {-1, 0, 1}
        restored = tg.decompress(compressed)
        scale = compressed.metadata["scale"]
        assert set(np.round(np.unique(restored) / scale).astype(int)) <= {-1, 0, 1}

    def test_terngrad_unbiased(self):
        rng = np.random.default_rng(6)
        tensor = rng.standard_normal(256).astype(np.float32)
        tg = TernGrad()
        samples = 600
        restored = np.mean(
            [tg.decompress(tg.compress(tensor, seed=s)) for s in range(samples)],
            axis=0,
        )
        # Per-coordinate variance <= scale * |x|; allow 5 sigma.
        scale = float(np.max(np.abs(tensor)))
        sigma = np.sqrt(scale * np.abs(tensor) + 1e-9) / np.sqrt(samples)
        assert np.all(np.abs(restored - tensor) <= 5 * sigma + 1e-3)

    def test_terngrad_zero_tensor(self):
        tg = TernGrad()
        zero = np.zeros(32, dtype=np.float32)
        np.testing.assert_array_equal(tg.decompress(tg.compress(zero)), zero)


@pytest.mark.parametrize("compressor", ALL, ids=lambda c: c.name)
def test_compression_ratio_deterministic_in_size(compressor):
    # §4.3: deterministic compression ratio given a tensor size.
    assert compressor.compressed_nbytes(10_000) == compressor.compressed_nbytes(
        10_000
    )


def test_compression_ratio_requires_positive_size():
    with pytest.raises(ValueError):
        NoCompression().compression_ratio(0)
