"""ModelProfile / TensorProfile invariants."""

import pytest

from repro.models import ModelProfile, TensorProfile, synthetic_model
from repro.models.base import build_profile


def test_distance_to_output_convention():
    """Paper Fig. 9: the tensor computed last is closest to the output."""
    model = synthetic_model("m", [(100, 0.01), (100, 0.01), (100, 0.01)])
    assert model.distance_to_output(2) == 0
    assert model.distance_to_output(0) == 2


def test_distance_out_of_range():
    model = synthetic_model("m", [(100, 0.01)])
    with pytest.raises(IndexError):
        model.distance_to_output(1)


def test_totals():
    model = synthetic_model("m", [(1000, 0.01), (500, 0.02)])
    assert model.total_bytes == 1500 * 4
    assert model.backward_time == pytest.approx(0.03)
    assert model.iteration_compute_time == pytest.approx(0.03 + model.forward_time)


def test_single_gpu_throughput():
    model = synthetic_model("m", [(100, 0.05)], forward_time=0.05, batch_size=10)
    assert model.single_gpu_throughput() == pytest.approx(100.0)


def test_build_profile_normalizes_weights():
    model = build_profile(
        "n",
        [("a", 10, 1.0), ("b", 10, 3.0)],
        backward_time=0.4,
        forward_time=0.1,
        batch_size=1,
        sample_unit="images",
        dataset="d",
    )
    assert model.tensors[0].compute_time == pytest.approx(0.1)
    assert model.tensors[1].compute_time == pytest.approx(0.3)


def test_build_profile_rejects_zero_weights():
    with pytest.raises(ValueError, match="positive sum"):
        build_profile(
            "n",
            [("a", 10, 0.0)],
            backward_time=0.4,
            forward_time=0.1,
            batch_size=1,
            sample_unit="images",
            dataset="d",
        )


def test_tensor_profile_validation():
    with pytest.raises(ValueError):
        TensorProfile(name="t", num_elements=0, compute_time=0.1)
    with pytest.raises(ValueError):
        TensorProfile(name="t", num_elements=10, compute_time=-0.1)


def test_model_profile_validation():
    tensor = TensorProfile(name="t", num_elements=10, compute_time=0.1)
    with pytest.raises(ValueError):
        ModelProfile(name="m", tensors=(), forward_time=0.1, batch_size=1)
    with pytest.raises(ValueError):
        ModelProfile(name="m", tensors=(tensor,), forward_time=0.0, batch_size=1)
    with pytest.raises(ValueError):
        ModelProfile(name="m", tensors=(tensor,), forward_time=0.1, batch_size=0)
