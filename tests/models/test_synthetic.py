"""Synthetic / didactic model builders."""

import pytest

from repro.models import synthetic_model, three_tensor_job, two_tensor_job, uniform_model


def test_synthetic_model_order_and_names():
    model = synthetic_model("s", [(10, 0.001), (20, 0.002)])
    assert [t.name for t in model.tensors] == ["T0", "T1"]
    assert model.tensors[1].num_elements == 20


def test_three_tensor_job_shape():
    model = three_tensor_job()
    assert model.num_tensors == 3
    sizes = [t.num_elements for t in model.tensors]
    assert sizes[2] > sizes[0]  # T2 is the big, late tensor


def test_two_tensor_job_parameterized():
    model = two_tensor_job(t0_mb=10.0, t1_mb=2.0)
    assert model.num_tensors == 2
    assert model.tensors[0].nbytes == pytest.approx(10 * 2**20, rel=1e-6)


def test_uniform_model():
    model = uniform_model(5, tensor_mb=4.0, compute_ms=2.0)
    assert model.num_tensors == 5
    assert len({t.num_elements for t in model.tensors}) == 1
    assert model.backward_time == pytest.approx(0.010)
