"""Model zoo tests: the paper's Table 4 / Table 5 characteristics."""

import pytest

from repro.models import available_models, get_model

#: Paper Table 5 tensor counts and Table 4 model sizes (MB).
PAPER = {
    "vgg16": (32, 528),
    "resnet101": (314, 170),
    "ugatit": (148, 2559),
    "bert-base": (207, 420),
    "gpt2": (148, 475),
    "lstm": (10, 328),
}


def test_all_six_models_available():
    assert set(available_models()) == set(PAPER)


@pytest.mark.parametrize("name", list(PAPER))
def test_tensor_counts_match_table5(name):
    model = get_model(name)
    assert model.num_tensors == PAPER[name][0]


@pytest.mark.parametrize("name", list(PAPER))
def test_model_sizes_match_table4(name):
    model = get_model(name)
    paper_mb = PAPER[name][1]
    assert model.size_mb == pytest.approx(paper_mb, rel=0.06)


@pytest.mark.parametrize("name", list(PAPER))
def test_profiles_are_well_formed(name):
    model = get_model(name)
    assert model.backward_time > 0
    assert model.forward_time > 0
    # Backward is the larger share of an iteration.
    assert model.backward_time > model.forward_time
    names = [t.name for t in model.tensors]
    assert len(names) == len(set(names)), "tensor names must be unique"
    assert all(t.num_elements >= 1 for t in model.tensors)


def test_nlp_models_use_token_units():
    for name in ("bert-base", "gpt2", "lstm"):
        assert get_model(name).sample_unit == "tokens"
    for name in ("vgg16", "resnet101", "ugatit"):
        assert get_model(name).sample_unit == "images"


def test_bert_has_few_distinct_sizes():
    """Fig. 11: BERT-base tensors share a handful of sizes."""
    model = get_model("bert-base")
    distinct = {t.num_elements for t in model.tensors}
    assert len(distinct) <= 15
    # The dominant sizes repeat 12x (once per encoder layer) or more.
    from collections import Counter

    counts = Counter(t.num_elements for t in model.tensors)
    assert max(counts.values()) >= 12


def test_unknown_model_rejected():
    with pytest.raises(ValueError, match="available"):
        get_model("alexnet")


def test_profiles_deterministic():
    a = get_model("gpt2")
    b = get_model("gpt2")
    assert a == b
