"""Compression time-model tests."""

import pytest

from repro.compression import DGC, EFSignSGD, NoCompression
from repro.profiling import (
    CompressionTimeModel,
    fit_linear,
    measure_compressor,
    time_model,
    v100_gpu,
    xeon_cpu,
)
from repro.utils.units import MB


def test_zero_work_factor_is_free():
    model = time_model(v100_gpu(), NoCompression())
    assert model.compress_time(100 * MB) == 0.0
    assert model.decompress_time(100 * MB) == 0.0
    assert model.aggregate_time(100 * MB) == 0.0


def test_launch_overhead_dominates_tiny_tensors():
    """Fig. 10's driver: GPU compression of tiny tensors is mostly launch."""
    model = time_model(v100_gpu(), DGC(ratio=0.01))
    tiny = model.compress_time(1024)
    assert tiny == pytest.approx(v100_gpu().launch_overhead, rel=0.05)


def test_times_grow_linearly_in_size():
    model = time_model(v100_gpu(), DGC(ratio=0.01))
    t1 = model.compress_time(16 * MB)
    t2 = model.compress_time(32 * MB)
    # Slope positive, intercept shared.
    assert t2 - t1 == pytest.approx(
        model.work_factor * 16 * MB / v100_gpu().throughput
    )


def test_cpu_pays_transfer():
    cpu = xeon_cpu()
    model = time_model(cpu, EFSignSGD())
    nbytes = 64 * MB
    expected_transfer = nbytes / cpu.transfer_bw
    without_transfer = cpu.launch_overhead + nbytes / cpu.throughput
    assert model.compress_time(nbytes) == pytest.approx(
        without_transfer + expected_transfer
    )
    # Decompression transfers the dense result back.
    assert model.decompress_time(nbytes) > expected_transfer


def test_decompress_cheaper_than_compress_on_gpu():
    model = time_model(v100_gpu(), DGC(ratio=0.01))
    assert model.decompress_time(64 * MB) < model.compress_time(64 * MB)


def test_aggregate_time_positive():
    model = time_model(v100_gpu(), DGC(ratio=0.01))
    assert model.aggregate_time(64 * MB) > 0


def test_negative_bytes_rejected():
    model = time_model(v100_gpu(), DGC(ratio=0.01))
    with pytest.raises(ValueError):
        model.compress_time(-1)


def test_fit_linear_recovers_line():
    fit = fit_linear([0, 10, 20], [1.0, 2.0, 3.0])
    assert fit.intercept == pytest.approx(1.0)
    assert fit.slope == pytest.approx(0.1)
    assert fit(30) == pytest.approx(4.0)


def test_fit_linear_validation():
    with pytest.raises(ValueError):
        fit_linear([1], [1])
    with pytest.raises(ValueError):
        fit_linear([1, 2], [1])


def test_measure_compressor_runs_real_kernels():
    results = measure_compressor(EFSignSGD(), [1024, 8192], repeats=3)
    assert set(results) == {1024, 8192}
    for compress_time, decompress_time in results.values():
        assert compress_time > 0
        assert decompress_time > 0


def test_measure_compressor_validation():
    with pytest.raises(ValueError):
        measure_compressor(EFSignSGD(), [64], repeats=0)
