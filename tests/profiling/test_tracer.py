"""Execution-trace collection / averaging tests (§4.3)."""

import pytest

from repro.models import synthetic_model
from repro.profiling import average_traces, collect_traces


@pytest.fixture
def model():
    return synthetic_model("t", [(1000, 0.010), (2000, 0.020), (500, 0.005)])


def test_traces_have_model_shape(model):
    traces = collect_traces(model, iterations=10, seed=1)
    assert len(traces) == 10
    for iteration in traces:
        assert len(iteration) == model.num_tensors
        assert [r.tensor_name for r in iteration] == [t.name for t in model.tensors]


def test_traces_are_contiguous(model):
    traces = collect_traces(model, iterations=3, seed=2)
    for iteration in traces:
        clock = 0.0
        for record in iteration:
            assert record.start == pytest.approx(clock)
            assert record.end > record.start
            clock = record.end


def test_zero_jitter_reproduces_profile(model):
    traces = collect_traces(model, iterations=5, jitter=0.0)
    averaged, std = average_traces(model, traces)
    assert std == pytest.approx(0.0, abs=1e-12)
    for original, rebuilt in zip(model.tensors, averaged.tensors):
        assert rebuilt.compute_time == pytest.approx(original.compute_time)


def test_averaging_converges_to_profile(model):
    traces = collect_traces(model, iterations=300, jitter=0.03, seed=3)
    averaged, std = average_traces(model, traces)
    assert std < 0.05  # the paper's "< 5% normalized std"
    for original, rebuilt in zip(model.tensors, averaged.tensors):
        assert rebuilt.compute_time == pytest.approx(
            original.compute_time, rel=0.02
        )


def test_validation(model):
    with pytest.raises(ValueError):
        collect_traces(model, iterations=0)
    with pytest.raises(ValueError):
        collect_traces(model, jitter=1.5)
    with pytest.raises(ValueError):
        average_traces(model, [])
    other = synthetic_model("other", [(10, 0.01)])
    with pytest.raises(ValueError):
        average_traces(other, collect_traces(model, iterations=2))
