"""Device-profile tests."""

import pytest

from repro.profiling import DeviceProfile, v100_gpu, xeon_cpu


def test_gpu_profile_shape():
    gpu = v100_gpu()
    assert gpu.is_gpu
    assert gpu.transfer_bw is None
    assert gpu.parallel_workers == 1
    assert gpu.launch_overhead > 0


def test_cpu_profile_shape():
    cpu = xeon_cpu()
    assert not cpu.is_gpu
    assert cpu.transfer_bw is not None
    assert cpu.parallel_workers >= 2
    # CPU streaming pass is slower than the GPU's.
    assert cpu.throughput < v100_gpu().throughput
    # But its launch overhead is smaller (no kernel launch).
    assert cpu.launch_overhead < v100_gpu().launch_overhead


def test_invalid_profiles():
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="tpu", launch_overhead=0, throughput=1)
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="gpu", launch_overhead=-1, throughput=1)
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="gpu", launch_overhead=0, throughput=0)
    with pytest.raises(ValueError):
        DeviceProfile(
            name="x", kind="cpu", launch_overhead=0, throughput=1, parallel_workers=0
        )
