"""End-to-end planner tests."""

import pytest

from repro.core import Espresso
from repro.core.options import Device


def test_espresso_improves_or_matches_fp32(medium_job):
    result = Espresso(medium_job).select_strategy()
    assert result.iteration_time <= result.baseline_iteration_time + 1e-12
    assert result.speedup_over_fp32 >= 1.0


def test_espresso_compresses_comm_bound_job(pcie_job):
    result = Espresso(pcie_job).select_strategy()
    assert len(result.compressed_indices) > 0
    assert result.speedup_over_fp32 > 1.05


def test_result_accounting(medium_job):
    result = Espresso(medium_job).select_strategy()
    assert result.selection_seconds >= (
        result.gpu_selection_seconds
        + result.offload_selection_seconds
        + result.refinement_seconds
    ) - 1e-6
    assert result.refinement_sweeps_run >= 1
    assert set(result.cpu_indices) | set(result.gpu_indices) == set(
        result.compressed_indices
    )
    assert set(result.cpu_indices).isdisjoint(result.gpu_indices)


def test_summary_readable(medium_job):
    summary = Espresso(medium_job).select_strategy().summary()
    assert "Espresso selected compression" in summary
    assert "ms" in summary


def test_custom_candidates_respected(medium_job):
    from repro.core.presets import inter_allgather_option

    only = [inter_allgather_option(Device.CPU)]
    result = Espresso(medium_job, candidates=only).select_strategy()
    for index in result.compressed_indices:
        assert result.strategy[index].uses_device(Device.CPU)


def test_deterministic_selection(medium_job):
    a = Espresso(medium_job).select_strategy()
    b = Espresso(medium_job).select_strategy()
    assert a.iteration_time == pytest.approx(b.iteration_time)
    assert [o.describe() for o in a.strategy.options] == [
        o.describe() for o in b.strategy.options
    ]


def test_no_refinement_mode(medium_job):
    result = Espresso(medium_job, refinement_sweeps=0).select_strategy()
    assert result.refinement_sweeps_run == 0
    assert result.iteration_time <= result.baseline_iteration_time + 1e-12
