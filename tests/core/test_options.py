"""CompressionOption / Action tests."""

import pytest

from repro.core.options import (
    Action,
    ActionTask,
    CompressionOption,
    Device,
    Phase,
    RoutineName,
    no_compression_option,
    validate_option,
)
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)


def test_action_comm_requires_routine():
    with pytest.raises(ValueError, match="routine"):
        Action(task=ActionTask.COMM, phase=Phase.INTER)


def test_action_comp_requires_device():
    with pytest.raises(ValueError, match="device"):
        Action(task=ActionTask.COMP, phase=Phase.INTER)


def test_action_comm_rejects_device():
    with pytest.raises(ValueError):
        Action(
            task=ActionTask.COMM,
            phase=Phase.INTER,
            routine=RoutineName.ALLREDUCE,
            device=Device.GPU,
        )


def test_no_compression_option_properties():
    option = no_compression_option()
    assert not option.compresses
    assert not option.compresses_intra
    assert not option.compresses_inter
    assert option.devices == ()
    assert validate_option(option) == []


def test_flat_no_compression():
    option = no_compression_option(flat=True)
    assert option.flat
    assert validate_option(option) == []


def test_preset_options_valid():
    for builder in (
        inter_allgather_option,
        inter_alltoall_option,
        double_compression_option,
    ):
        for device in (Device.GPU, Device.CPU):
            option = builder(device)
            assert validate_option(option) == []
            assert option.compresses
            assert option.compresses_inter


def test_double_compression_touches_both_scopes():
    option = double_compression_option(Device.GPU)
    assert option.compresses_intra
    assert option.compresses_inter


def test_inter_only_options_do_not_compress_intra():
    assert not inter_allgather_option(Device.GPU).compresses_intra
    assert not inter_alltoall_option(Device.CPU).compresses_intra


def test_with_device_moves_every_device_task():
    option = double_compression_option(Device.GPU)
    moved = option.with_device(Device.CPU)
    assert moved.devices == (Device.CPU,) * len(option.devices)
    assert moved.uses_device(Device.CPU)
    assert not moved.uses_device(Device.GPU)
    # Communication structure untouched.
    assert [a.task for a in moved.actions] == [a.task for a in option.actions]


def test_describe_readable():
    text = inter_allgather_option(Device.GPU).describe()
    assert "inter:comm_comp[allgather]" in text
    assert text.startswith("hier:")


def test_validate_catches_pairing_violation():
    option = CompressionOption(
        actions=(
            Action(ActionTask.COMM1, Phase.FLAT, routine=RoutineName.REDUCE_SCATTER),
            Action(ActionTask.COMM2, Phase.FLAT, routine=RoutineName.BROADCAST),
        ),
        flat=True,
    )
    problems = validate_option(option)
    assert any("pairs with" in p for p in problems)


def test_validate_catches_compressed_comm_on_dense_payload():
    option = CompressionOption(
        actions=(
            Action(ActionTask.COMM_C, Phase.FLAT, routine=RoutineName.ALLGATHER),
        ),
        flat=True,
    )
    problems = validate_option(option)
    assert any("dense payload" in p for p in problems)


def test_validate_catches_missing_final_decompress():
    option = CompressionOption(
        actions=(
            Action(ActionTask.COMP, Phase.FLAT, device=Device.GPU),
            Action(ActionTask.COMM_C, Phase.FLAT, routine=RoutineName.ALLGATHER),
        ),
        flat=True,
    )
    problems = validate_option(option)
    assert any("compressed payload" in p for p in problems)


def test_validate_catches_phase_mixing():
    option = CompressionOption(
        actions=(
            Action(ActionTask.COMM, Phase.INTER, routine=RoutineName.ALLREDUCE),
        ),
        flat=True,
    )
    problems = validate_option(option)
    assert any("flat option contains" in p for p in problems)
