"""Algorithm 1 tests (GPU compression decision)."""

import pytest

from repro.core.algorithm import (
    IMPROVEMENT_EPSILON,
    CandidatePrefilter,
    device_candidate_options,
    gpu_candidate_options,
    gpu_compression_decision,
    prefilter_candidates,
    refinement_sweep,
    sorted_tensor_groups,
)
from repro.core.options import Device, canonical_key, no_compression_option
from repro.core.parallel import best_priced
from repro.models import synthetic_model
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.strategy import StrategyEvaluator
from repro.utils.units import MB, MS


def test_gpu_candidates_all_compress_on_gpu():
    for option in gpu_candidate_options():
        assert option.compresses
        assert all(d is Device.GPU for d in option.devices)


def test_device_candidates_include_both():
    candidates = device_candidate_options()
    assert any(o.uses_device(Device.GPU) for o in candidates)
    assert any(o.uses_device(Device.CPU) for o in candidates)


def test_sorted_tensor_groups_order(small_cluster):
    """Property #2: descending size; within a group, closest-to-output
    (computed last) first."""
    model = synthetic_model(
        "g",
        [
            (1000, 1 * MS),
            (5000, 1 * MS),
            (1000, 1 * MS),
            (9000, 1 * MS),
        ],
    )
    job = JobConfig(
        model=model, gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )
    groups = sorted_tensor_groups(StrategyEvaluator(job))
    assert [g[0] for g in groups[:2]] == [3, 1]  # largest sizes first
    # Size-1000 group: index 2 (distance 1) before index 0 (distance 3).
    assert groups[2] == [2, 0]


def test_prefilter_keeps_both_device_classes(medium_evaluator):
    candidates = device_candidate_options()
    kept = prefilter_candidates(
        medium_evaluator.compiler, candidates, int(8 * MB / 4), per_device=2
    )
    assert len(kept) < len(candidates)
    assert any(o.uses_device(Device.GPU) for o in kept)
    assert any(o.uses_device(Device.CPU) for o in kept)


def test_prefilter_disabled_returns_all(medium_evaluator):
    candidates = device_candidate_options()
    kept = prefilter_candidates(
        medium_evaluator.compiler, candidates, 1000, per_device=0
    )
    assert kept == candidates


def test_algorithm1_never_worse_than_fp32(medium_evaluator):
    fp32 = medium_evaluator.iteration_time(medium_evaluator.baseline())
    result = gpu_compression_decision(medium_evaluator)
    assert result.iteration_time <= fp32 + 1e-12
    assert result.evaluations > 0


def test_algorithm1_compresses_on_communication_bound_job(pcie_job):
    evaluator = StrategyEvaluator(pcie_job)
    result = gpu_compression_decision(evaluator)
    assert len(result.strategy.compressed_indices) > 0


def test_algorithm1_ruled_out_tensors_stay_uncompressed(medium_evaluator):
    result = gpu_compression_decision(medium_evaluator)
    for index in result.ruled_out:
        assert not result.strategy[index].compresses


def test_algorithm1_respects_candidate_restriction(medium_evaluator):
    from repro.core.presets import inter_allgather_option

    only = [inter_allgather_option(Device.GPU)]
    result = gpu_compression_decision(medium_evaluator, candidates=only)
    for index in result.strategy.compressed_indices:
        assert result.strategy[index] is only[0]


def test_refinement_sweep_never_regresses(medium_evaluator):
    result = gpu_compression_decision(medium_evaluator)
    swept, swept_time, improved = refinement_sweep(
        medium_evaluator, result.strategy, device_candidate_options()
    )
    assert swept_time <= result.iteration_time + 1e-12
    if not improved:
        assert swept_time == pytest.approx(result.iteration_time)


def test_refinement_sweep_compares_residents_by_value(medium_evaluator):
    """Regression: the sweep used to compare candidates to the resident
    option by identity (``option is best_option``), so a value-equal but
    distinct object — e.g. a fresh ``no_compression_option()`` vs the
    baseline's resident one — was re-priced for every tensor.  With the
    value (canonical key) comparison, a candidate set that only contains
    the resident option prices nothing at all."""
    base = medium_evaluator.baseline()
    before = medium_evaluator.evaluations
    swept, swept_time, improved = refinement_sweep(
        medium_evaluator, base, [no_compression_option()]
    )
    assert not improved
    assert swept.options == base.options
    # Exactly one F(S) call: the initial pricing of the base itself.
    # Under the identity bug this was 1 + 2 per tensor (the prefiltered
    # copy and the appended keep-plain both survived the filter).
    assert medium_evaluator.evaluations - before == 1


def test_best_priced_breaks_time_ties_by_canonical_key():
    """Exact time ties resolve by canonical option key, not input order."""
    from repro.core.presets import inter_allgather_option, inter_alltoall_option

    a = inter_allgather_option(Device.GPU)
    b = inter_alltoall_option(Device.GPU)
    priced = [(1.0, canonical_key(a), a), (1.0, canonical_key(b), b)]
    winner_key = min(canonical_key(a), canonical_key(b))
    assert best_priced(priced)[1] == winner_key
    assert best_priced(list(reversed(priced)))[1] == winner_key
    # A strictly better time always beats a smaller key.
    c = (0.5, max(canonical_key(a), canonical_key(b)), b)
    assert best_priced(priced + [c]) == c


def test_tie_break_independent_of_candidate_order(medium_job, monkeypatch):
    """When every candidate prices identically, the sweep must pick the
    same option regardless of candidate enumeration order (regression:
    the serial loops used to keep the first enumerated improvement)."""
    candidates = device_candidate_options()
    outcomes = []
    for ordered in (candidates, list(reversed(candidates))):
        evaluator = StrategyEvaluator(medium_job)
        base = evaluator.baseline()
        tied_time = evaluator.iteration_time(base) - 1.0
        # Patch the pricing seam the decision loops consume (the batch
        # layer would otherwise simulate — and prune — for real).
        monkeypatch.setattr(
            evaluator,
            "price_options",
            lambda b, i, opts, bound=None, _t=tied_time: [_t] * len(opts),
        )
        swept, swept_time, improved = refinement_sweep(
            evaluator, base, ordered, prefilter_per_device=0
        )
        assert improved
        outcomes.append(tuple(canonical_key(o) for o in swept.options))
    assert outcomes[0] == outcomes[1]
    # And the winner is the canonical-key minimum of the tied field.
    chosen = [k for k in outcomes[0] if k != canonical_key(no_compression_option())]
    assert chosen
    assert chosen[0] == min(canonical_key(o) for o in candidates)


def test_sub_epsilon_improvement_is_rejected(medium_evaluator, monkeypatch):
    """Both decision loops share IMPROVEMENT_EPSILON: a move improving
    the incumbent by less than it never displaces the strategy."""
    base = medium_evaluator.baseline()
    best = medium_evaluator.iteration_time(base)
    monkeypatch.setattr(
        medium_evaluator,
        "price_options",
        lambda b, i, opts, bound=None: [best - IMPROVEMENT_EPSILON / 2]
        * len(opts),
    )
    swept, swept_time, improved = refinement_sweep(
        medium_evaluator, base, device_candidate_options()
    )
    assert not improved
    assert swept.options == base.options
    assert swept_time == best


def test_prefilter_rejects_mismatched_candidate_set(medium_evaluator):
    """The per-size cache keys on num_elements alone, so serving a phase
    with a different candidate set must be a loud error."""
    prefilter = CandidatePrefilter(
        medium_evaluator.compiler, device_candidate_options()
    )
    prefilter.ensure_compatible(device_candidate_options())  # same set: ok
    with pytest.raises(ValueError, match="different candidate set"):
        prefilter.ensure_compatible(gpu_candidate_options())
    with pytest.raises(ValueError, match="different candidate set"):
        gpu_compression_decision(
            medium_evaluator,
            candidates=gpu_candidate_options(),
            prefilter=prefilter,
        )
    with pytest.raises(ValueError, match="different candidate set"):
        refinement_sweep(
            medium_evaluator,
            medium_evaluator.baseline(),
            gpu_candidate_options(),
            prefilter=prefilter,
        )


def test_compute_bound_job_declines_compression(small_cluster):
    """A tiny model on a fast network: compression can only hurt."""
    model = synthetic_model("small", [(int(0.2 * MB / 4), 30 * MS)] * 3)
    job = JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )
    evaluator = StrategyEvaluator(job)
    result = gpu_compression_decision(evaluator)
    fp32 = evaluator.iteration_time(evaluator.baseline())
    assert result.iteration_time <= fp32 + 1e-12
    # The FP32 timeline here is compute-bound; GC brings ~no gain.
    assert result.iteration_time >= fp32 * 0.95
