"""Algorithm 1 tests (GPU compression decision)."""

import pytest

from repro.core.algorithm import (
    device_candidate_options,
    gpu_candidate_options,
    gpu_compression_decision,
    prefilter_candidates,
    refinement_sweep,
    sorted_tensor_groups,
)
from repro.core.options import Device
from repro.models import synthetic_model
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.strategy import StrategyEvaluator
from repro.utils.units import MB, MS


def test_gpu_candidates_all_compress_on_gpu():
    for option in gpu_candidate_options():
        assert option.compresses
        assert all(d is Device.GPU for d in option.devices)


def test_device_candidates_include_both():
    candidates = device_candidate_options()
    assert any(o.uses_device(Device.GPU) for o in candidates)
    assert any(o.uses_device(Device.CPU) for o in candidates)


def test_sorted_tensor_groups_order(small_cluster):
    """Property #2: descending size; within a group, closest-to-output
    (computed last) first."""
    model = synthetic_model(
        "g",
        [
            (1000, 1 * MS),
            (5000, 1 * MS),
            (1000, 1 * MS),
            (9000, 1 * MS),
        ],
    )
    job = JobConfig(
        model=model, gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )
    groups = sorted_tensor_groups(StrategyEvaluator(job))
    assert [g[0] for g in groups[:2]] == [3, 1]  # largest sizes first
    # Size-1000 group: index 2 (distance 1) before index 0 (distance 3).
    assert groups[2] == [2, 0]


def test_prefilter_keeps_both_device_classes(medium_evaluator):
    candidates = device_candidate_options()
    kept = prefilter_candidates(
        medium_evaluator.compiler, candidates, int(8 * MB / 4), per_device=2
    )
    assert len(kept) < len(candidates)
    assert any(o.uses_device(Device.GPU) for o in kept)
    assert any(o.uses_device(Device.CPU) for o in kept)


def test_prefilter_disabled_returns_all(medium_evaluator):
    candidates = device_candidate_options()
    kept = prefilter_candidates(
        medium_evaluator.compiler, candidates, 1000, per_device=0
    )
    assert kept == candidates


def test_algorithm1_never_worse_than_fp32(medium_evaluator):
    fp32 = medium_evaluator.iteration_time(medium_evaluator.baseline())
    result = gpu_compression_decision(medium_evaluator)
    assert result.iteration_time <= fp32 + 1e-12
    assert result.evaluations > 0


def test_algorithm1_compresses_on_communication_bound_job(pcie_job):
    evaluator = StrategyEvaluator(pcie_job)
    result = gpu_compression_decision(evaluator)
    assert len(result.strategy.compressed_indices) > 0


def test_algorithm1_ruled_out_tensors_stay_uncompressed(medium_evaluator):
    result = gpu_compression_decision(medium_evaluator)
    for index in result.ruled_out:
        assert not result.strategy[index].compresses


def test_algorithm1_respects_candidate_restriction(medium_evaluator):
    from repro.core.presets import inter_allgather_option

    only = [inter_allgather_option(Device.GPU)]
    result = gpu_compression_decision(medium_evaluator, candidates=only)
    for index in result.strategy.compressed_indices:
        assert result.strategy[index] is only[0]


def test_refinement_sweep_never_regresses(medium_evaluator):
    result = gpu_compression_decision(medium_evaluator)
    swept, swept_time, improved = refinement_sweep(
        medium_evaluator, result.strategy, device_candidate_options()
    )
    assert swept_time <= result.iteration_time + 1e-12
    if not improved:
        assert swept_time == pytest.approx(result.iteration_time)


def test_compute_bound_job_declines_compression(small_cluster):
    """A tiny model on a fast network: compression can only hurt."""
    model = synthetic_model("small", [(int(0.2 * MB / 4), 30 * MS)] * 3)
    job = JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )
    evaluator = StrategyEvaluator(job)
    result = gpu_compression_decision(evaluator)
    fp32 = evaluator.iteration_time(evaluator.baseline())
    assert result.iteration_time <= fp32 + 1e-12
    # The FP32 timeline here is compute-bound; GC brings ~no gain.
    assert result.iteration_time >= fp32 * 0.95
