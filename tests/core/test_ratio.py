"""Ratio as a planner dimension (DESIGN.md §5.10).

The claims that make the ratio ladder safe to ship:

* ladder expansion is pure option algebra (`with_ratio` /
  `ladder_options`) and every expanded option passes the static
  validator;
* ratio-laddered timelines pass the unmodified invariant battery and
  the O(n²) differential oracle — a pinned ratio only changes wire
  bytes, never the simulator's rules;
* the laddered planner is a portfolio: it never loses to the
  fixed-ratio planner, on synthetic jobs and on every zoo model;
* the L-GreCo-style error budget is enforced — the committed strategy's
  element-weighted error energy never exceeds the budget, and a zero
  budget forbids lossy compression outright.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.algorithm import ErrorBudget, device_candidate_options
from repro.core.conformance import validate_strategy
from repro.core.espresso import Espresso
from repro.core.options import (
    DEFAULT_RATIO_LADDER,
    Device,
    canonical_key,
    ladder_options,
    no_compression_option,
    validate_option,
)
from repro.core.presets import inter_allgather_option
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.models import available_models, get_model, synthetic_model
from repro.utils.units import MB, MS

LADDER = (0.001, 0.01, 0.1)


def _job(gc="dgc", machines=2, use_nvlink=True):
    model = synthetic_model(
        "ratio-test",
        [
            (int(1 * MB / 4), 3 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(32 * MB / 4), 8 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(128 * MB / 4), 12 * MS),
        ],
        forward_time=15 * MS,
    )
    cluster = (
        nvlink_100g_cluster(num_machines=machines, gpus_per_machine=4)
        if use_nvlink
        else pcie_25g_cluster(num_machines=machines, gpus_per_machine=4)
    )
    return JobConfig(
        model=model,
        gc=GCInfo(gc, {"ratio": 0.01} if gc != "efsignsgd" else {}),
        system=SystemInfo(cluster=cluster),
    )


# -- option algebra ----------------------------------------------------------


def test_with_ratio_is_part_of_option_value():
    option = inter_allgather_option(Device.GPU)
    pinned = option.with_ratio(0.05)
    assert pinned != option
    assert canonical_key(pinned) != canonical_key(option)
    assert pinned.ratio == 0.05
    assert "[r=0.05]" in pinned.describe()
    # Pinning the current value is the identity (same object).
    assert pinned.with_ratio(0.05) is pinned
    assert pinned.with_ratio(None).ratio is None
    with pytest.raises(ValueError):
        option.with_ratio(0.0)
    with pytest.raises(ValueError):
        option.with_ratio(1.5)


def test_with_device_preserves_pinned_ratio():
    """Offload moves devices via with_device; the pin must survive."""
    pinned = inter_allgather_option(Device.GPU).with_ratio(0.005)
    moved = pinned.with_device(Device.CPU)
    assert moved.ratio == 0.005


def test_ladder_options_expand_only_compressing_options():
    base = [no_compression_option(), inter_allgather_option(Device.GPU)]
    expanded = ladder_options(base, LADDER)
    # plain passes through; the compressing option contributes itself
    # (job-default ratio) plus one pinned variant per rung.
    assert len(expanded) == 1 + 1 + len(LADDER)
    assert expanded.count(no_compression_option()) == 1
    ratios = {option.ratio for option in expanded if option.compresses}
    assert ratios == {None, *LADDER}
    with pytest.raises(ValueError):
        ladder_options(base, (0.1, 2.0))


def test_laddered_candidates_pass_static_validator():
    for option in ladder_options(
        device_candidate_options(), DEFAULT_RATIO_LADDER
    ):
        assert validate_option(option) == []


def test_validate_option_rejects_ratio_on_plain():
    plain = no_compression_option()
    bad = plain.__class__(
        actions=plain.actions, flat=plain.flat, ratio=0.01
    )
    problems = validate_option(bad)
    assert any("non-compressing" in problem for problem in problems)


# -- ErrorBudget accounting --------------------------------------------------


def test_error_budget_accounting():
    job = _job()
    evaluator = StrategyEvaluator(job)
    budget = ErrorBudget(evaluator, 0.5)
    n = job.model.num_tensors
    fp32 = baseline_strategy(n)
    # FP32 carries zero error and is always admissible.
    assert budget.strategy_error(fp32) == 0.0
    assert budget.admits_strategy(fp32)
    # A uniformly compressed strategy at dgc ratio=0.01 has per-tensor
    # error (1 - k/n)^2 < 1, identical for every tensor, so the
    # element-weighted mean equals the per-tensor value.
    option = inter_allgather_option(Device.GPU)
    uniform = CompressionStrategy(options=(option,) * n)
    per_tensor = [
        budget.weighted_error(i, option)
        / job.model.tensors[i].num_elements
        for i in range(n)
    ]
    assert all(0.0 < e < 1.0 for e in per_tensor)
    expected = sum(
        budget.weighted_error(i, option) for i in range(n)
    ) / sum(t.num_elements for t in job.model.tensors)
    assert budget.strategy_error(uniform) == pytest.approx(expected)
    # admits() prices a single-index swap without committing it.
    assert budget.admits(fp32, 0, option) == budget.admits_strategy(
        fp32.replace(0, option)
    )
    with pytest.raises(ValueError):
        ErrorBudget(evaluator, -0.1)
    with pytest.raises(ValueError):
        ErrorBudget(evaluator, 1.1)


def test_zero_budget_forbids_lossy_compression():
    job = _job()
    result = Espresso(job, error_budget=0.0).select_strategy()
    assert result.strategy_error == 0.0
    budget = ErrorBudget(StrategyEvaluator(job), 0.0)
    assert budget.admits_strategy(result.strategy)


def test_committed_strategy_respects_budget():
    job = _job(use_nvlink=False)
    for cap in (0.3, 0.7, 1.0):
        result = Espresso(job, error_budget=cap).select_strategy()
        assert result.strategy_error is not None
        assert result.strategy_error <= cap + 1e-12
        assert result.error_budget == cap
        if cap > 0.0:
            assert 0.0 <= result.error_budget_utilization <= 1.0
    # A tighter budget can only cost time, never gain it.
    tight = Espresso(job, error_budget=0.3).select_strategy()
    loose = Espresso(job, error_budget=1.0).select_strategy()
    assert tight.iteration_time >= loose.iteration_time


# -- invariant battery + O(n²) oracle over laddered timelines ---------------


@given(
    st.lists(
        st.sampled_from([None, *LADDER]), min_size=5, max_size=5
    ),
    st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_laddered_timelines_pass_invariants_and_oracle(ratios, use_nvlink):
    """Any per-tensor ratio assignment simulates cleanly: the unmodified
    invariant battery, the O(n²) reference oracle, and the incremental
    simulator all agree on the laddered timeline."""
    job = _job(use_nvlink=use_nvlink)
    base = inter_allgather_option(Device.GPU)
    options = tuple(
        no_compression_option() if index == 2
        else (base if ratio is None else base.with_ratio(ratio))
        for index, ratio in enumerate(ratios)
    )
    strategy = CompressionStrategy(options=options)
    report = validate_strategy(
        StrategyEvaluator(job), strategy, name="laddered"
    )
    assert report.ok, report.violations
    assert report.oracle_exact and report.incremental_exact


def test_pinned_ratio_changes_wire_bytes_not_structure():
    """Two timelines differing only in a pinned ratio have the same
    stage structure; the smaller ratio is never slower on comm."""
    job = _job()
    evaluator = StrategyEvaluator(job)
    base = inter_allgather_option(Device.GPU)
    n = job.model.num_tensors
    small = CompressionStrategy(options=(base.with_ratio(0.001),) * n)
    large = CompressionStrategy(options=(base.with_ratio(0.1),) * n)
    t_small = evaluator.timeline(small)
    t_large = evaluator.timeline(large)
    assert len(t_small.stages) == len(t_large.stages)
    assert evaluator.iteration_time(small) <= evaluator.iteration_time(
        large
    )


# -- portfolio guarantee -----------------------------------------------------


def test_ladder_never_loses_to_fixed_ratio_synthetic():
    for use_nvlink in (True, False):
        job = _job(use_nvlink=use_nvlink)
        fixed = Espresso(job).select_strategy()
        laddered = Espresso(job, ratios=LADDER).select_strategy()
        assert laddered.iteration_time <= fixed.iteration_time
        # The inner fixed-ratio pipeline is bit-identical to the
        # standalone fixed planner: the portfolio's floor is exact.
        assert laddered.fixed_ratio_iteration_time == fixed.iteration_time


def test_ladder_noop_for_ratio_free_compressor():
    """efsignsgd has no ratio knob: the ladder collapses to a plain run
    and reports itself un-laddered."""
    job = _job(gc="efsignsgd")
    fixed = Espresso(job).select_strategy()
    laddered = Espresso(job, ratios=LADDER).select_strategy()
    assert not laddered.ratio_laddered
    assert laddered.fixed_ratio_iteration_time is None
    assert laddered.iteration_time == fixed.iteration_time
    assert laddered.strategy.options == fixed.strategy.options


def test_ratio_schedule_reports_pins():
    job = _job(use_nvlink=False)
    result = Espresso(job, ratios=LADDER).select_strategy()
    schedule = result.ratio_schedule
    assert len(schedule) == job.model.num_tensors
    for index, ratio in enumerate(schedule):
        assert ratio == result.strategy[index].ratio
        if ratio is not None:
            assert ratio in LADDER


@pytest.mark.slow
@pytest.mark.parametrize("model_name", available_models())
def test_ladder_never_loses_to_fixed_ratio_on_zoo(model_name):
    """The acceptance gate: on every zoo model, the ratio-aware plan is
    never worse than the fixed-ratio plan it generalizes."""
    job = JobConfig(
        model=get_model(model_name),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster()),
    )
    fixed = Espresso(job).select_strategy()
    laddered = Espresso(
        job, ratios=DEFAULT_RATIO_LADDER
    ).select_strategy()
    assert laddered.iteration_time <= fixed.iteration_time
    assert laddered.fixed_ratio_iteration_time == fixed.iteration_time
