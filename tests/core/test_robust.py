"""Robust strategy selection, sensitivity sweeps, and the degradation
table's bounded-time replan path."""

import pytest

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.robust import (
    CVAR,
    WORST_CASE,
    DegradationTable,
    ReplanLedger,
    cvar,
    robust_select,
    sensitivity_sweep,
    worst_case,
)
from repro.core.strategy import StrategyEvaluator, baseline_strategy
from repro.models import get_model
from repro.sim.faults import FaultModel, StragglerGPU, default_ensemble


def make_job(model="vgg16", testbed="nvlink", machines=2, gpus=4):
    cluster = (
        nvlink_100g_cluster(machines, gpus)
        if testbed == "nvlink"
        else pcie_25g_cluster(machines, gpus)
    )
    return JobConfig(
        model=get_model(model),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=cluster),
    )


def test_worst_case_and_cvar_math():
    times = [3.0, 1.0, 4.0, 2.0]
    assert worst_case(times) == 4.0
    assert cvar(times, alpha=1.0) == pytest.approx(2.5)  # plain mean
    assert cvar(times, alpha=0.25) == 4.0  # 1-element tail = worst case
    assert cvar(times, alpha=0.5) == pytest.approx(3.5)  # mean of {4, 3}
    with pytest.raises(ValueError):
        worst_case([])
    with pytest.raises(ValueError):
        cvar(times, alpha=0.0)
    with pytest.raises(ValueError):
        cvar(times, alpha=1.5)


def test_sensitivity_sweep_shape_and_nominal_column():
    job = make_job("lstm", "pcie")
    fp32 = baseline_strategy(job.model.num_tensors)
    report = sensitivity_sweep(job, [("fp32", fp32)])
    ensemble = default_ensemble()
    assert report.fault_names == tuple(fm.name for fm in ensemble)
    entry = report.strategy("fp32")
    assert len(entry.times) == len(ensemble)
    # The "nominal" ensemble member is the unperturbed job.
    expected = StrategyEvaluator(job).iteration_time(fp32)
    assert entry.time_under("nominal") == expected
    assert entry.nominal_time == expected
    assert entry.overhead_under("nominal") == pytest.approx(0.0)
    # Worst fault is a real ensemble member with positive overhead.
    assert entry.worst_fault in report.fault_names
    assert entry.worst_time >= expected
    with pytest.raises(KeyError):
        report.strategy("missing")
    with pytest.raises(KeyError):
        entry.time_under("missing")


def test_sensitivity_sweep_rejects_empty_inputs():
    job = make_job("lstm", "pcie")
    fp32 = baseline_strategy(job.model.num_tensors)
    with pytest.raises(ValueError):
        sensitivity_sweep(job, [])
    with pytest.raises(ValueError):
        sensitivity_sweep(job, [("fp32", fp32)], ensemble=[])


def test_sensitivity_sweep_check_validates_faulted_timelines():
    job = make_job("lstm", "pcie")
    fp32 = baseline_strategy(job.model.num_tensors)
    report = sensitivity_sweep(job, [("fp32", fp32)], check=True)
    # One validated timeline per ensemble member.
    assert report.timelines_checked == len(default_ensemble())


def test_robust_select_never_worse_than_default():
    """The robust winner's objective is <= the default plan's objective:
    the default strategy is always in the candidate pool."""
    for testbed in ("nvlink", "pcie"):
        result = robust_select(make_job("vgg16", testbed))
        assert result.objective == WORST_CASE
        assert result.objective_value <= result.default_objective_value
        assert result.candidates_evaluated >= len(default_ensemble())
        assert len(result.per_fault_times) == len(default_ensemble())
        assert result.selection_seconds > 0.0


def test_robust_select_differs_from_default_on_vgg16():
    """Acceptance criterion: on the documented preset, robust selection
    picks a *different* strategy whose worst case strictly improves on
    the nominal plan's worst case (PCIe testbed).  On NVLink the
    tie-break/epsilon-unified planner already produces a nominal plan
    matching the robust winner's worst case, so the decision moves on
    the nominal-time tie-break instead."""
    result = robust_select(make_job("vgg16", "pcie"))
    assert result.differs_from_default
    assert result.objective_value < result.default_objective_value
    assert result.candidate_name != "espresso-nominal"
    assert "replaces the nominal plan" in result.summary()

    nvlink = robust_select(make_job("vgg16", "nvlink"))
    assert nvlink.differs_from_default
    assert nvlink.objective_value <= nvlink.default_objective_value


def test_robust_select_can_confirm_nominal_plan():
    """On presets where the nominal plan is already robust, the sweep
    confirms it instead of churning the decision."""
    result = robust_select(make_job("lstm", "nvlink"))
    assert not result.differs_from_default
    assert result.objective_value == result.default_objective_value
    assert "confirms the nominal plan" in result.summary()


def test_robust_select_cvar_objective():
    result = robust_select(
        make_job("vgg16", "nvlink"), objective=CVAR, cvar_alpha=0.5
    )
    assert result.objective == CVAR
    assert result.objective_value <= result.default_objective_value
    with pytest.raises(ValueError):
        robust_select(make_job("lstm", "pcie"), objective="median")
    with pytest.raises(ValueError):
        robust_select(make_job("lstm", "pcie"), ensemble=[])


def test_degradation_table_build_and_lookup():
    job = make_job("lstm", "pcie")
    table = DegradationTable.build(job)
    assert set(table.entries) == {fm.name for fm in default_ensemble()}
    assert table.max_plan_seconds > 0.0
    entry = table.lookup("straggler-1.5x")
    assert entry.fault_name == "straggler-1.5x"
    # The precomputed plan is priced on the state it was planned for.
    perturbed = StragglerGPU(1.5).apply(job)
    assert entry.iteration_time == pytest.approx(
        StrategyEvaluator(perturbed).iteration_time(entry.strategy)
    )
    with pytest.raises(KeyError):
        table.lookup("unknown-fault")


def test_replan_zero_budget_skips_full_planner():
    job = make_job("lstm", "pcie")
    table = DegradationTable.build(job)
    fault = FaultModel("straggler-2x", (StragglerGPU(2.0),))
    result = table.replan(fault, budget_seconds=0.0)
    assert not result.used_full_planner
    assert result.source.startswith(("table:", "portfolio:"))
    # Never worse than the best precomputed fallback on the new state.
    evaluator = StrategyEvaluator(fault.apply_to_job(job))
    best_table = min(
        evaluator.iteration_time(entry.strategy)
        for entry in table.entries.values()
    )
    assert result.iteration_time <= best_table


def test_replan_generous_budget_runs_full_planner():
    job = make_job("lstm", "pcie")
    table = DegradationTable.build(job)
    fault = FaultModel("straggler-2x", (StragglerGPU(2.0),))
    fast = table.replan(fault, budget_seconds=0.0)
    full = table.replan(fault, budget_seconds=60.0)
    assert full.used_full_planner
    # A fresh plan can only improve on the precomputed pool.
    assert full.iteration_time <= fast.iteration_time


def test_replan_for_known_state_matches_table_entry():
    """Replanning for a state the table already covers is at least as
    good as that state's own precomputed entry."""
    job = make_job("lstm", "pcie")
    table = DegradationTable.build(job)
    for fault_model in default_ensemble():
        result = table.replan(fault_model, budget_seconds=0.0)
        entry = table.lookup(fault_model.name)
        assert result.iteration_time <= entry.iteration_time + 1e-12


# -- cumulative replan budget (ReplanLedger) -------------------------------


def test_replan_ledger_validation():
    with pytest.raises(ValueError, match="total_seconds"):
        ReplanLedger(total_seconds=0.0)
    ledger = ReplanLedger(total_seconds=1.0)
    with pytest.raises(ValueError):
        ledger.charge(-0.1)
    ledger.charge(0.4)
    assert ledger.remaining() == pytest.approx(0.6)
    assert not ledger.exhausted
    ledger.charge(2.0)
    assert ledger.remaining() == 0.0
    assert ledger.exhausted
    assert ledger.events == 2


def test_replan_ledger_caps_back_to_back_membership_storm():
    """Regression for the replan budget accounting: ``budget_seconds``
    alone is per-event, so a storm of back-to-back membership faults
    historically spent ``events x budget`` in full planner runs.  A
    shared ledger makes the budget cumulative: once the remainder drops
    below the table's worst plan time, later replans stop running the
    full planner but still answer from the precomputed pool."""
    from repro.training.elastic import membership_model

    job = make_job("lstm", "pcie")
    table = DegradationTable.build(job)
    storm = [membership_model(3 if i % 2 == 0 else 4) for i in range(6)]

    # Without a ledger every event pays full price — the old behaviour.
    unledgered = [table.replan(fm, budget_seconds=60.0) for fm in storm]
    assert all(r.used_full_planner for r in unledgered)

    ledger = ReplanLedger(total_seconds=2.5 * table.max_plan_seconds)
    results = []
    for fault_model in storm:
        results.append(
            table.replan(fault_model, budget_seconds=60.0, ledger=ledger)
        )

    # Early events still afford the full planner...
    assert results[0].used_full_planner
    # ...but the cumulative cap kicks in before the storm ends.
    assert not results[-1].used_full_planner
    assert any(not r.used_full_planner for r in results)
    # Every replan still answers, never silently stale.
    for result in results:
        assert result.strategy is not None
        assert result.iteration_time > 0.0
        assert result.source.startswith(
            ("table:", "portfolio:", "full-plan")
        )
        # The effective budget never exceeds the per-event one.
        assert result.budget_seconds <= 60.0
    # The accounting is exact: every call charged its wall-clock.
    assert ledger.events == len(storm)
    assert ledger.spent_seconds == pytest.approx(
        sum(r.seconds for r in results)
    )
    # Total spend is bounded by the ledger plus one in-flight replan,
    # not by events x budget.
    assert ledger.spent_seconds < ledger.total_seconds + max(
        r.seconds for r in results
    )


def test_replan_exhausted_ledger_flags_over_budget():
    from repro.training.elastic import membership_model

    job = make_job("lstm", "pcie")
    table = DegradationTable.build(job)
    ledger = ReplanLedger(total_seconds=1e-9)
    result = table.replan(
        membership_model(3), budget_seconds=60.0, ledger=ledger
    )
    # Still answers from the precomputed pool...
    assert result.strategy is not None
    assert not result.used_full_planner
    # ...but reports the blown budget so callers degrade explicitly.
    assert not result.within_budget
