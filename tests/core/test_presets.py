"""Preset option-pipeline tests."""

from repro.core.options import ActionTask, Device, Phase, validate_option
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)


def test_inter_allgather_is_single_compression():
    option = inter_allgather_option(Device.GPU)
    comps = [a for a in option.actions if a.task is ActionTask.COMP]
    assert len(comps) == 1
    assert comps[0].phase is Phase.INTER


def test_inter_alltoall_recompresses():
    option = inter_alltoall_option(Device.CPU)
    comps = [a for a in option.actions if a.task is ActionTask.COMP]
    assert len(comps) == 2  # first step + re-compression of the aggregate


def test_inter_alltoall_without_recompression():
    option = inter_alltoall_option(Device.GPU, recompress=False)
    comps = [a for a in option.actions if a.task is ActionTask.COMP]
    assert len(comps) == 1
    assert validate_option(option) == []


def test_double_compression_compresses_three_times():
    option = double_compression_option(Device.GPU)
    comps = [a for a in option.actions if a.task is ActionTask.COMP]
    assert len(comps) == 3  # intra1, recompress, inter second-step
    phases = {a.phase for a in comps}
    assert Phase.INTRA1 in phases and Phase.INTER in phases


def test_presets_exist_in_enumerated_tree():
    """Every preset pipeline is one of the tree's enumerated paths."""
    from repro.core.tree import enumerate_options

    tree = {
        tuple((a.task, a.phase, a.routine) for a in o.actions)
        for o in enumerate_options(mode="uniform")
    }
    for builder in (inter_allgather_option, inter_alltoall_option,
                    double_compression_option):
        option = builder(Device.GPU)
        key = tuple((a.task, a.phase, a.routine) for a in option.actions)
        assert key in tree, builder.__name__
