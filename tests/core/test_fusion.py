"""Fusion groups as a planner dimension (DESIGN.md §5.8).

The equivalence claims that make fusion safe to ship:

* the singleton (no-fusion) plan's fused model *is* the original model,
  so fused and unfused single-tensor-group plans are bit-identical;
* every fused timeline passes the unmodified invariant battery and
  differential oracle (a fused group is simply a tensor to the sim);
* the joint search is deterministic and ``--jobs N`` parallel planning
  stays bit-identical to serial with fusion enabled;
* loaded plans whose boundaries no longer match the model trace are
  refused (StalePlanError, exit 2 in the CLI).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core import Espresso
from repro.core.algorithm import fusion_boundary_sweep
from repro.core.conformance import validate_strategy
from repro.core.fusion import (
    FusionPlanner,
    PlanArtifact,
    StalePlanError,
    candidate_plans,
    estimate_alpha_beta,
    fused_job,
    fused_model,
    load_plan,
    mgwfbp_plan,
    save_plan,
    uniform_buffer_plan,
)
from repro.core.options import Device, canonical_key, no_compression_option
from repro.core.presets import inter_allgather_option
from repro.core.robust import DegradationTable, DegradationEntry
from repro.core.strategy import (
    CompressionStrategy,
    FusedStrategy,
    FusionPlan,
    StrategyEvaluator,
)
from repro.models import synthetic_model
from repro.utils.units import MB, MS


def _job(num_machines: int = 2) -> JobConfig:
    model = synthetic_model(
        "fusion-test",
        [
            (int(1 * MB / 4), 3 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(32 * MB / 4), 8 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(64 * MB / 4), 10 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(128 * MB / 4), 12 * MS),
        ],
        forward_time=15 * MS,
    )
    return JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(
            cluster=nvlink_100g_cluster(
                num_machines=num_machines, gpus_per_machine=4
            )
        ),
    )


JOB = _job()
N = JOB.model.num_tensors


def boundaries_st(n: int):
    """Random valid fusion boundaries over ``n`` tensors."""
    return st.lists(
        st.integers(min_value=1, max_value=n - 1),
        unique=True,
        max_size=n - 1,
    ).map(lambda interior: (0, *sorted(interior)))


# -- FusionPlan structure ----------------------------------------------------


@given(boundaries_st(N))
def test_plan_partition_is_exact(boundaries):
    plan = FusionPlan(num_tensors=N, boundaries=boundaries)
    groups = plan.groups()
    # Contiguous, exhaustive, non-overlapping.
    assert groups[0][0] == 0 and groups[-1][1] == N
    for (_, stop), (start, _) in zip(groups, groups[1:]):
        assert stop == start
    assert sum(plan.group_sizes()) == N
    for g, (start, stop) in enumerate(groups):
        for index in range(start, stop):
            assert plan.group_of(index) == g
    assert FusionPlan.from_sizes(plan.group_sizes()) == plan


def test_plan_rejects_malformed_boundaries():
    with pytest.raises(ValueError):
        FusionPlan(num_tensors=4, boundaries=(1, 2))  # must start at 0
    with pytest.raises(ValueError):
        FusionPlan(num_tensors=4, boundaries=(0, 2, 2))  # not increasing
    with pytest.raises(ValueError):
        FusionPlan(num_tensors=4, boundaries=(0, 4))  # out of range


# -- fusion as a model transformation ---------------------------------------


def test_singleton_fused_model_is_the_original_model():
    plan = FusionPlan.singleton(N)
    assert fused_model(JOB.model, plan) == JOB.model
    assert fused_job(JOB, plan) == JOB


@given(boundaries_st(N))
def test_fused_model_conserves_payload(boundaries):
    plan = FusionPlan(num_tensors=N, boundaries=boundaries)
    fused = fused_model(JOB.model, plan)
    assert fused.num_tensors == plan.num_groups
    assert fused.total_bytes == JOB.model.total_bytes
    for (start, stop), tensor in zip(plan.groups(), fused.tensors):
        assert tensor.num_elements == sum(
            t.num_elements for t in JOB.model.tensors[start:stop]
        )


# -- fused timelines pass the unmodified conformance stack ------------------


@settings(max_examples=10, deadline=None)
@given(boundaries_st(N), st.integers(min_value=0, max_value=2))
def test_fused_timelines_pass_invariants_and_oracle(boundaries, which):
    """Invariant battery + differential oracle + incremental exactness
    accept fused timelines unchanged."""
    plan = FusionPlan(num_tensors=N, boundaries=boundaries)
    job = fused_job(JOB, plan)
    option = [
        no_compression_option(),
        inter_allgather_option(Device.GPU),
        Espresso(job).select_strategy().strategy[0],
    ][which]
    strategy = CompressionStrategy(options=(option,) * plan.num_groups)
    report = validate_strategy(StrategyEvaluator(job), strategy, name="fused")
    assert report.ok, report.violations
    assert report.oracle_exact and report.incremental_exact


def test_selected_fused_strategy_passes_conformance():
    result = FusionPlanner(JOB).select_strategy()
    job = fused_job(JOB, result.plan)
    report = validate_strategy(
        StrategyEvaluator(job), result.strategy, name="selected"
    )
    assert report.ok, report.violations
    assert report.oracle_exact and report.incremental_exact


# -- equivalence: fused singleton == plain Espresso -------------------------


def test_pinned_singleton_plan_is_bit_identical_to_espresso():
    plain = Espresso(JOB).select_strategy()
    pinned = FusionPlanner(
        JOB, plan=FusionPlan.singleton(N)
    ).select_strategy()
    assert pinned.iteration_time == plain.iteration_time
    assert pinned.result.strategy.options == plain.strategy.options
    assert pinned.fused.per_tensor_options() == plain.strategy.options


def test_portfolio_never_loses_to_no_fusion():
    plain = Espresso(JOB).select_strategy()
    result = FusionPlanner(JOB).select_strategy()
    assert result.no_fusion_time == plain.iteration_time
    assert result.iteration_time <= plain.iteration_time


def test_selection_is_deterministic():
    first = FusionPlanner(JOB).select_strategy()
    second = FusionPlanner(JOB).select_strategy()
    assert first.fused.fingerprint() == second.fused.fingerprint()
    assert first.iteration_time == second.iteration_time


def test_parallel_fusion_search_bit_identical_to_serial():
    """--jobs N with fusion enabled selects the exact serial decision
    (real worker pools via oversubscribe, even on a 1-core host)."""
    serial = FusionPlanner(JOB).select_strategy()
    parallel = FusionPlanner(JOB, jobs=3, oversubscribe=True).select_strategy()
    assert parallel.fused.fingerprint() == serial.fused.fingerprint()
    assert parallel.iteration_time == serial.iteration_time


def test_fusion_ratio_ladder_parallel_bit_identical():
    """--fusion --ratios --jobs N: the laddered joint search selects the
    exact serial decision, and never loses to the fixed-ratio search."""
    kwargs = dict(ratios=(0.001, 0.01, 0.1))
    serial = FusionPlanner(JOB, **kwargs).select_strategy()
    parallel = FusionPlanner(
        JOB, jobs=3, oversubscribe=True, **kwargs
    ).select_strategy()
    assert parallel.fused.fingerprint() == serial.fused.fingerprint()
    assert parallel.iteration_time == serial.iteration_time
    fixed = FusionPlanner(JOB).select_strategy()
    assert serial.iteration_time <= fixed.iteration_time


def test_fusion_error_budget_respected():
    """Under --fusion --error-budget the committed fused strategy's
    element-weighted error stays within budget."""
    from repro.core.algorithm import ErrorBudget

    budget = 0.5
    result = FusionPlanner(JOB, error_budget=budget).select_strategy()
    evaluator = StrategyEvaluator(fused_job(JOB, result.plan))
    tracker = ErrorBudget(evaluator, budget)
    assert tracker.admits_strategy(result.strategy)


# -- candidate generators ----------------------------------------------------


def test_candidate_plans_lead_with_no_fusion_and_dedup():
    plans = candidate_plans(JOB)
    assert plans[0][0] == "none" and plans[0][1].is_singleton
    seen = [plan.boundaries for _, plan in plans]
    assert len(seen) == len(set(seen))


def test_alpha_beta_and_generators():
    alpha, beta = estimate_alpha_beta(JOB)
    assert alpha > 0.0 and beta > 0.0
    # A huge launch latency merges everything; a tiny one merges nothing.
    assert mgwfbp_plan(JOB.model, alpha=1e9).num_groups == 1
    assert mgwfbp_plan(JOB.model, alpha=1e-12).num_groups == N
    total = sum(t.num_elements for t in JOB.model.tensors)
    assert uniform_buffer_plan(JOB.model, total).num_groups == 1
    assert uniform_buffer_plan(JOB.model, 1).num_groups == N


def test_single_gpu_cluster_has_no_fusion_candidates():
    job = JobConfig(
        model=JOB.model,
        gc=JOB.gc,
        system=SystemInfo(
            cluster=nvlink_100g_cluster(num_machines=1, gpus_per_machine=1)
        ),
    )
    assert estimate_alpha_beta(job) == (0.0, 0.0)
    assert [name for name, _ in candidate_plans(job)] == ["none"]


# -- boundary refinement sweep ----------------------------------------------


def test_boundary_sweep_never_worsens():
    plan = FusionPlan.singleton(N)
    options = (no_compression_option(),) * N
    base_time = StrategyEvaluator(JOB).iteration_time(
        CompressionStrategy(options=options)
    )
    new_plan, new_options, swept_time, trials, accepts = fusion_boundary_sweep(
        JOB, plan, options, sweeps=3
    )
    assert swept_time <= base_time
    assert trials >= accepts
    assert len(new_options) == new_plan.num_groups
    # The swept time is honest: re-pricing the returned decision from
    # scratch reproduces it exactly.
    check = StrategyEvaluator(fused_job(JOB, new_plan)).iteration_time(
        CompressionStrategy(options=new_options)
    )
    assert check == swept_time


# -- brute force ground truth ------------------------------------------------


def test_brute_force_fusion_matches_partitioned_search():
    from repro.baselines.bruteforce import (
        brute_force_fusion_search,
        brute_force_search,
    )

    model = synthetic_model(
        "fusion-tiny",
        [
            (int(4 * MB / 4), 4 * MS),
            (int(1 * MB / 4), 3 * MS),
            (int(16 * MB / 4), 6 * MS),
        ],
        forward_time=8 * MS,
    )
    job = JobConfig(model=model, gc=JOB.gc, system=JOB.system)
    options = [no_compression_option(), inter_allgather_option(Device.GPU)]
    result = brute_force_fusion_search(job, options)
    assert result.partitions == 2 ** (model.num_tensors - 1)
    # The joint optimum is never worse than the best unfused strategy
    # (the singleton partition is one of the enumerated partitions) ...
    unfused = brute_force_search(StrategyEvaluator(job), options)
    assert result.iteration_time <= unfused.iteration_time
    # ... and never better than physically re-simulating its decision.
    check = StrategyEvaluator(
        fused_job(job, result.fused.plan)
    ).iteration_time(result.fused.as_strategy())
    assert check == result.iteration_time
    # The heuristic planner is bounded below by the exact joint optimum.
    planned = FusionPlanner(job).select_strategy()
    assert result.iteration_time <= planned.iteration_time


# -- stale-plan guards -------------------------------------------------------


def test_artifact_round_trip_and_stale_refusal(tmp_path):
    result = FusionPlanner(JOB).select_strategy()
    artifact = PlanArtifact.from_result(JOB, result)
    path = tmp_path / "plan.json"
    save_plan(path, artifact)
    loaded = load_plan(path)
    assert loaded == artifact
    loaded.check_against(JOB.model)  # fresh: no raise
    assert loaded.plan() == result.plan

    other = synthetic_model(
        "fusion-other", [(int(1 * MB / 4), 3 * MS)] * 4, forward_time=8 * MS
    )
    with pytest.raises(StalePlanError):
        loaded.check_against(other)
    # Same tensor count, different trace: still stale.
    resized = synthetic_model(
        "fusion-resized",
        [(t.num_elements + 1, t.compute_time) for t in JOB.model.tensors],
        forward_time=15 * MS,
    )
    with pytest.raises(StalePlanError):
        loaded.check_against(resized)


def test_artifact_v2_round_trips_ratio_fields(tmp_path):
    """The v2 schema carries ratio_schedule and error_budget through a
    save/load cycle; a v1 artifact (no ratio fields) still loads."""
    import json as json_module

    result = FusionPlanner(
        JOB, ratios=(0.001, 0.01, 0.1), error_budget=0.9
    ).select_strategy()
    artifact = PlanArtifact.from_result(JOB, result)
    assert artifact.schema == "espresso-plan/v2"
    assert len(artifact.ratio_schedule) == result.plan.num_groups
    assert artifact.error_budget == 0.9
    path = tmp_path / "plan.json"
    save_plan(path, artifact)
    loaded = load_plan(path)
    assert loaded == artifact
    assert loaded.ratio_schedule == artifact.ratio_schedule

    # Strip the v2 fields and downgrade the schema tag: still loads.
    data = json_module.loads(path.read_text(encoding="utf-8"))
    data["schema"] = "espresso-plan/v1"
    del data["ratio_schedule"]
    del data["error_budget"]
    path.write_text(json_module.dumps(data), encoding="utf-8")
    v1 = load_plan(path)
    assert v1.ratio_schedule == ()
    assert v1.error_budget is None
    v1.check_against(JOB.model)  # fresh: no raise


def test_load_plan_refuses_garbage(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(StalePlanError):
        load_plan(path)
    path.write_text('{"schema": "espresso-plan/v1"}')
    with pytest.raises(StalePlanError):
        load_plan(path)


def test_planner_refuses_mismatched_pinned_plan():
    with pytest.raises(StalePlanError):
        FusionPlanner(JOB, plan=FusionPlan.singleton(N + 1))


def test_degradation_table_replan_refuses_stale_fusion_plan():
    from repro.sim.faults import ensemble_by_name

    fault = ensemble_by_name("default")[0]
    stale = DegradationTable(
        job=JOB, fusion_plan=FusionPlan.singleton(N + 3)
    )
    with pytest.raises(StalePlanError):
        stale.replan(fault, budget_seconds=0.0)
    # An entry whose strategy length no longer matches the trace is
    # refused too (a cached table outliving a model change).
    mangled = DegradationTable(job=JOB)
    mangled.entries["bogus"] = DegradationEntry(
        fault_name="bogus",
        strategy=CompressionStrategy(
            options=(no_compression_option(),) * (N - 1)
        ),
        iteration_time=1.0,
        plan_seconds=0.0,
    )
    with pytest.raises(StalePlanError):
        mangled.replan(fault, budget_seconds=0.0)


def test_degradation_table_replans_under_fusion_plan():
    from repro.sim.faults import ensemble_by_name

    plan = candidate_plans(JOB)[-1][1]  # a real multi-tensor grouping
    table = DegradationTable.build(
        JOB, ensemble=ensemble_by_name("default")[:2], fusion_plan=plan
    )
    assert all(
        len(entry.strategy) == plan.num_groups
        for entry in table.entries.values()
    )
    result = table.replan(
        ensemble_by_name("default")[0], budget_seconds=0.0
    )
    assert len(result.strategy) == plan.num_groups
    assert result.iteration_time > 0.0


# -- CLI surface -------------------------------------------------------------


def test_cli_stale_plan_exits_2(tmp_path, capsys):
    from repro.cli import main

    artifact = PlanArtifact(
        model_name="fusion-test",
        num_tensors=5,
        tensor_elements=(1, 2, 3, 4, 5),
        boundaries=(0, 2),
    )
    path = tmp_path / "stale.json"
    save_plan(path, artifact)
    code = main(["plan", "--model", "vgg16", "--load", str(path)])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: stale plan:")
    assert err.count("\n") == 1  # one-line diagnostic


def test_cli_save_requires_fusion(capsys):
    from repro.cli import main

    code = main(["plan", "--model", "vgg16", "--save", "/tmp/x.json"])
    assert code == 2
