"""CompressionStrategy and StrategyEvaluator tests."""

import pytest

from repro.core.options import Device
from repro.core.presets import inter_allgather_option
from repro.core.strategy import CompressionStrategy, baseline_strategy


def test_baseline_strategy_all_uncompressed():
    strategy = baseline_strategy(5)
    assert len(strategy) == 5
    assert strategy.compressed_indices == []


def test_replace_is_functional():
    strategy = baseline_strategy(3)
    option = inter_allgather_option(Device.GPU)
    updated = strategy.replace(1, option)
    assert updated.compressed_indices == [1]
    assert strategy.compressed_indices == []  # original untouched


def test_device_indices():
    strategy = baseline_strategy(4)
    strategy = strategy.replace(0, inter_allgather_option(Device.GPU))
    strategy = strategy.replace(2, inter_allgather_option(Device.CPU))
    assert strategy.device_indices(Device.GPU) == [0]
    assert strategy.device_indices(Device.CPU) == [2]


def test_empty_strategy_rejected():
    with pytest.raises(ValueError):
        CompressionStrategy(options=())


def test_evaluator_fp32_iteration(tiny_evaluator, tiny_model):
    iteration = tiny_evaluator.iteration_time(tiny_evaluator.baseline())
    # Iteration >= pure compute, < compute + all comm serial.
    assert iteration >= tiny_model.iteration_compute_time
    assert iteration < 10 * tiny_model.iteration_compute_time


def test_evaluator_timeline_matches_fast_path(tiny_evaluator, tiny_model):
    strategy = tiny_evaluator.baseline()
    timeline = tiny_evaluator.timeline(strategy)
    assert tiny_evaluator.iteration_time(strategy) == pytest.approx(
        tiny_model.forward_time + timeline.makespan
    )


def test_evaluator_rejects_wrong_length(tiny_evaluator):
    with pytest.raises(ValueError, match="covers"):
        tiny_evaluator.iteration_time(baseline_strategy(99))


def test_evaluator_counts_evaluations(tiny_evaluator):
    before = tiny_evaluator.evaluations
    tiny_evaluator.iteration_time(tiny_evaluator.baseline())
    tiny_evaluator.timeline(tiny_evaluator.baseline())
    assert tiny_evaluator.evaluations == before + 2


def test_compression_changes_iteration_time(medium_evaluator):
    baseline = medium_evaluator.baseline()
    option = inter_allgather_option(Device.GPU)
    compressed = baseline
    for i in range(len(baseline)):
        compressed = compressed.replace(i, option)
    assert medium_evaluator.iteration_time(compressed) != pytest.approx(
        medium_evaluator.iteration_time(baseline)
    )


def test_throughput_and_scaling(medium_evaluator, medium_model, small_cluster):
    strategy = medium_evaluator.baseline()
    iteration = medium_evaluator.iteration_time(strategy)
    assert medium_evaluator.throughput(strategy) == pytest.approx(
        medium_model.batch_size * small_cluster.total_gpus / iteration
    )
    assert 0 < medium_evaluator.scaling_factor(strategy) <= 1.0


def test_describe_lists_every_tensor(tiny_evaluator):
    text = tiny_evaluator.baseline().describe()
    assert text.count("\n") == 2  # three tensors, three lines
