"""Decision-tree enumeration tests (Fig. 8 / Table 3)."""

import pytest

from repro.core.options import (
    ActionTask,
    Device,
    Phase,
    ROUTINE_PAIRING,
    RoutineName,
    validate_option,
)
from repro.core.tree import enumerate_options, search_space_size, structural_paths


def test_every_enumerated_option_is_valid():
    for mode in ("uniform", "gpu", "cpu"):
        for option in enumerate_options(mode=mode):
            assert validate_option(option) == [], option.describe()


def test_structural_path_count_stable():
    # Documented in DESIGN.md / EXPERIMENTS.md; a change means the tree
    # shape changed and the docs must be updated.
    assert len(structural_paths()) == 82


def test_search_space_magnitude():
    """Independent device assignment yields a Table 3-scale |C|
    (thousands, like the paper's 4341)."""
    size = search_space_size("independent")
    assert 1000 < size < 20000


def test_uniform_counts():
    options = enumerate_options(mode="uniform")
    compressed = [o for o in options if o.compresses]
    dense = [o for o in options if not o.compresses]
    # Every compressed structural path appears twice (GPU + CPU).
    assert len(compressed) % 2 == 0
    assert len(dense) + len(compressed) == len(options)
    # The dense paths include the canonical FP32 hierarchical option.
    assert any(not o.flat and len(o.actions) == 3 for o in dense)


def test_gpu_mode_uses_only_gpu():
    for option in enumerate_options(mode="gpu"):
        assert all(d is Device.GPU for d in option.devices)


def test_cpu_mode_uses_only_cpu():
    for option in enumerate_options(mode="cpu"):
        assert all(d is Device.CPU for d in option.devices)


def test_include_flags():
    no_flat = enumerate_options(mode="gpu", include_flat=False)
    assert all(not option.flat for option in no_flat)
    no_rooted = enumerate_options(mode="gpu", include_rooted=False)
    rooted = {RoutineName.REDUCE, RoutineName.BROADCAST, RoutineName.GATHER}
    for option in no_rooted:
        assert not any(a.routine in rooted for a in option.actions if a.routine)


def test_routine_pairing_enforced_in_paths():
    """Pruning rule 3: every divisible scheme's steps pair correctly."""
    for option in enumerate_options(mode="uniform"):
        stack = []
        for action in option.actions:
            if action.task in (ActionTask.COMM1, ActionTask.COMM1_C):
                stack.append(action.routine)
            elif action.task in (ActionTask.COMM2, ActionTask.COMM2_C):
                first = stack.pop()
                assert action.routine is ROUTINE_PAIRING[first]


def test_intra_always_divisible():
    """Dimension 4: hierarchical intra phases never use indivisible
    schemes (no Allreduce / standalone compressed Allgather in INTRA1)."""
    for option in enumerate_options(mode="uniform"):
        for action in option.actions:
            if action.phase is Phase.INTRA1:
                assert action.task not in (ActionTask.COMM, ActionTask.COMM_C)


def test_compressed_comm_only_after_comp():
    """State machine sanity is already in validate_option; spot-check the
    four Dimension-1/3 combinations all exist."""
    options = enumerate_options(mode="uniform")
    assert any(o.flat and not o.compresses for o in options)
    assert any(o.flat and o.compresses for o in options)
    assert any(not o.flat and not o.compresses for o in options)
    assert any(not o.flat and o.compresses_intra and o.compresses_inter for o in options)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="device mode"):
        enumerate_options(mode="tpu")


def test_enumeration_deterministic():
    a = [o.describe() for o in enumerate_options(mode="uniform")]
    b = [o.describe() for o in enumerate_options(mode="uniform")]
    assert a == b
