"""Property tests: ``--jobs N`` is bit-identical to the serial planner.

The determinism contract of DESIGN.md §5.5, checked end to end: for any
job and any worker count, the parallel planner selects the same strategy
(option for option), reports the same iteration time, and materializes
the same timeline as ``jobs=1``.  Pools run ``oversubscribe=True`` so
the multi-process merge path is exercised even on a single-core host
(where the default clamp would silently fall back to serial).

The random-job property uses small synthetic models to keep the fork +
replica cost per example low; the slow-marked zoo sweep covers the real
models (scripts/check.sh runs it nightly).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.espresso import Espresso
from repro.core.robust import robust_select
from repro.core.strategy import StrategyEvaluator
from repro.models import available_models, get_model, synthetic_model
from repro.utils.units import MB, MS

_GC_CHOICES = (
    GCInfo("dgc", {"ratio": 0.01}),
    GCInfo("efsignsgd"),
    GCInfo("randomk", {"ratio": 0.01}),
)
_SIZES_MB = (0.5, 2, 8, 32, 96)

tensor_specs = st.lists(
    st.tuples(st.sampled_from(_SIZES_MB), st.integers(2, 10)),
    min_size=2,
    max_size=5,
)
gc_indices = st.integers(0, len(_GC_CHOICES) - 1)
worker_counts = st.sampled_from([2, 4])
nvlink = st.booleans()


def _job(specs, gc_index, use_nvlink):
    model = synthetic_model(
        "prop",
        [(int(size_mb * MB / 4), compute * MS) for size_mb, compute in specs],
    )
    cluster = (
        nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)
        if use_nvlink
        else pcie_25g_cluster(num_machines=2, gpus_per_machine=4)
    )
    return JobConfig(
        model=model,
        gc=_GC_CHOICES[gc_index],
        system=SystemInfo(cluster=cluster),
    )


def _assert_identical(job, jobs, check=False):
    serial = Espresso(job, check=check).select_strategy()
    parallel = Espresso(
        job, check=check, jobs=jobs, oversubscribe=True
    ).select_strategy()
    assert parallel.strategy.options == serial.strategy.options
    assert parallel.iteration_time == serial.iteration_time
    assert parallel.baseline_iteration_time == serial.baseline_iteration_time
    # Same strategy through the same simulator: the materialized
    # timelines must be event-for-event identical.
    evaluator = StrategyEvaluator(job)
    assert evaluator.timeline(parallel.strategy) == evaluator.timeline(
        serial.strategy
    )
    return serial, parallel


@given(tensor_specs, gc_indices, nvlink, worker_counts)
@settings(max_examples=6, deadline=None)
def test_parallel_planner_bit_identical_on_random_jobs(
    specs, gc_index, use_nvlink, jobs
):
    _assert_identical(_job(specs, gc_index, use_nvlink), jobs)


@given(tensor_specs, nvlink, worker_counts,
       st.sampled_from([None, 0.9, 0.5]))
@settings(max_examples=4, deadline=None)
def test_parallel_ratio_ladder_bit_identical(specs, use_nvlink, jobs, budget):
    """`plan --ratios [--error-budget] --jobs N`: the ratio-laddered
    pipeline (and its fixed-ratio portfolio twin) fan out through the
    same pool and the decision does not move."""
    job = _job(specs, 0, use_nvlink)  # dgc: has the ratio knob
    kwargs = dict(ratios=(0.001, 0.01, 0.1), error_budget=budget)
    serial = Espresso(job, **kwargs).select_strategy()
    parallel = Espresso(
        job, jobs=jobs, oversubscribe=True, **kwargs
    ).select_strategy()
    assert parallel.strategy.options == serial.strategy.options
    assert parallel.iteration_time == serial.iteration_time
    assert parallel.ratio_schedule == serial.ratio_schedule
    assert parallel.strategy_error == serial.strategy_error
    assert parallel.fixed_ratio_iteration_time == (
        serial.fixed_ratio_iteration_time
    )


def test_parallel_planner_bit_identical_with_check(tiny_job):
    """`plan --check --jobs N`: the invariant checker stays green and
    changes nothing about the selection."""
    _assert_identical(tiny_job, jobs=2, check=True)


def test_parallel_robust_bit_identical(tiny_job):
    """`plan --robust --jobs N`: member plans and the ensemble sweep fan
    out, the decision does not move."""
    serial = robust_select(tiny_job)
    for jobs in (2, 4):
        parallel = robust_select(tiny_job, jobs=jobs, oversubscribe=True)
        assert parallel.strategy.options == serial.strategy.options
        assert parallel.objective_value == serial.objective_value
        assert parallel.candidate_name == serial.candidate_name


@pytest.mark.slow
@pytest.mark.parametrize("model_name", available_models())
def test_parallel_planner_bit_identical_on_zoo(model_name):
    """The full preset zoo, serial vs `--jobs 4`, on the paper's NVLink
    testbed — the acceptance gate of the parallel layer."""
    job = JobConfig(
        model=get_model(model_name),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster()),
    )
    _assert_identical(job, jobs=4)
