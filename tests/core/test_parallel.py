"""Deterministic parallel execution layer tests (DESIGN.md §5.5).

The pools here run with ``oversubscribe=True`` on purpose: the default
core-count clamp would otherwise deactivate them on a single-core CI
host and every "parallel" assertion would silently exercise the serial
path.  Oversubscribed pools cost wall-clock, not correctness — the
merge contract is what these tests pin down.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.bruteforce import brute_force_search
from repro.core.algorithm import device_candidate_options
from repro.core.espresso import Espresso
from repro.core.options import canonical_key, no_compression_option
from repro.core.parallel import (
    MIN_FANOUT_CANDIDATES,
    EvaluatorPool,
    WorkerPool,
    WorkerPoolError,
    available_cores,
    best_priced,
    price_candidates,
)
from repro.core.presets import inter_allgather_option
from repro.core.robust import robust_select, sensitivity_sweep
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.options import Device
from repro.models import synthetic_model
from repro.utils.units import MB, MS


def _boom(task):
    raise ValueError(f"worker failure for {task!r}")


def _boom_once(task):
    """Fail the batch's first execution, succeed on the re-run.

    An O_EXCL marker file stands in for transient worker death: exactly
    one task of the first generation claims it and dies, failing that
    batch; the restarted pool finds the marker and completes.  (Per-item
    markers would be racy — items the failed ``map`` never reached
    would then die on the re-run too.)  Module-level so spawn hosts can
    pickle it.
    """
    directory, value = task
    marker = os.path.join(directory, "failed-once")
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return value * 10
    raise ValueError(f"transient failure for {value!r}")


@pytest.fixture
def bruteforce_job(small_cluster):
    """Two tensors x three options: a 16-strategy enumeration."""
    model = synthetic_model(
        "bf", [(int(48 * MB / 4), 8 * MS), (int(16 * MB / 4), 6 * MS)]
    )
    return JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )


# -- WorkerPool mechanics --------------------------------------------------


def test_available_cores_positive():
    assert available_cores() >= 1


def test_single_job_pool_is_inactive():
    pool = WorkerPool(1)
    assert not pool.active
    with pytest.raises(WorkerPoolError):
        pool.run(abs, [1])


def test_pool_clamps_requested_jobs_to_core_count():
    requested = available_cores() + 7
    pool = WorkerPool(requested)
    assert pool.requested_jobs == requested
    assert pool.jobs <= available_cores()
    if pool.jobs <= 1:
        assert not pool.active
        assert "core" in pool.disabled_reason


def test_oversubscribed_pool_runs_and_keeps_order():
    with WorkerPool(2, oversubscribe=True) as pool:
        assert pool.jobs == 2
        assert pool.active
        assert pool.run(abs, [-3, 4, -5]) == [3, 4, 5]


def test_pool_failure_disables_permanently():
    with WorkerPool(2, oversubscribe=True) as pool:
        with pytest.raises(WorkerPoolError):
            pool.run(_boom, [1, 2])
        assert not pool.active
        assert "ValueError" in pool.disabled_reason
        assert "after 1 pool restart" in pool.disabled_reason


def test_pool_restarts_once_and_heals_transient_failure(tmp_path):
    """Satellite regression: a single transient batch failure used to
    latch the pool serial for the process lifetime.  Now the pool tears
    down, backs off, rebuilds, and re-runs the batch — callers never
    see the hiccup."""
    with WorkerPool(2, oversubscribe=True) as pool:
        pool.restart_backoff = 0.001  # keep the test fast
        tasks = [(str(tmp_path), i) for i in range(3)]
        assert pool.run(_boom_once, tasks) == [0, 10, 20]
        assert pool.restarts == 1
        assert pool.active
        assert pool.disabled_reason is None
        # The healed pool keeps serving later batches.
        assert pool.run(abs, [-7]) == [7]


def test_pool_restart_budget_is_one():
    """A second failing batch after a consumed restart goes straight to
    serial — no unbounded rebuild loops."""
    with WorkerPool(2, oversubscribe=True) as pool:
        pool.restart_backoff = 0.001
        with pytest.raises(WorkerPoolError):
            pool.run(_boom, [1])
        assert pool.restarts == 1
        assert not pool.active


def test_evaluator_pool_degrades_on_unpicklable_job(monkeypatch):
    """Spawn-only hosts must ship the job by pickle, so an unpicklable
    job degrades the pool to serial with a readable reason."""
    import repro.core.parallel as parallel_module

    monkeypatch.setattr(
        parallel_module.multiprocessing,
        "get_all_start_methods",
        lambda: ["spawn"],
    )
    pool = EvaluatorPool(2, job=lambda: None, vocab=[])
    assert not pool.active
    assert pool.jobs == 1
    assert "picklable" in pool.disabled_reason


def test_evaluator_pool_fork_shares_unpicklable_job():
    """Fork hosts hand workers the parent's objects directly via the
    fork-shared registry — no pickling, so even an unpicklable job
    parallelizes.  The registry entry is released on close()."""
    import multiprocessing

    import repro.core.parallel as parallel_module

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("host has no fork start method")
    pool = EvaluatorPool(2, job=lambda: None, vocab=[], oversubscribe=True)
    try:
        assert pool.active
        assert pool._fork_token in parallel_module._FORK_SHARED
    finally:
        pool.close()
    assert pool._fork_token not in parallel_module._FORK_SHARED


def test_best_priced_total_order():
    plain = no_compression_option()
    entries = [
        (2.0, canonical_key(plain), plain),
        (1.0, 99, plain),
        (1.0, 7, plain),
    ]
    assert best_priced(entries) == (1.0, 7, plain)
    assert best_priced(list(reversed(entries))) == (1.0, 7, plain)


# -- candidate pricing -----------------------------------------------------


def _pricing_pool(job, candidates, jobs=2):
    return EvaluatorPool(
        jobs,
        job=job,
        fast=True,
        check=False,
        vocab=[*candidates, no_compression_option()],
        oversubscribe=True,
    )


def test_price_candidates_parallel_matches_serial(medium_job):
    candidates = device_candidate_options()
    assert len(candidates) >= MIN_FANOUT_CANDIDATES
    serial_evaluator = StrategyEvaluator(medium_job)
    base = serial_evaluator.baseline()
    serial = price_candidates(serial_evaluator, base, 3, candidates)

    parallel_evaluator = StrategyEvaluator(medium_job)
    with _pricing_pool(medium_job, candidates) as pool:
        assert pool.active
        parallel = price_candidates(
            parallel_evaluator, parallel_evaluator.baseline(), 3,
            candidates, pool=pool,
        )
    assert parallel == serial  # bit-identical times, same keys, same objects
    assert best_priced(parallel) == best_priced(serial)


def test_parallel_pricing_populates_stats_and_eval_counts(medium_job):
    candidates = device_candidate_options()
    evaluator = StrategyEvaluator(medium_job)
    base = evaluator.baseline()
    with _pricing_pool(medium_job, candidates) as pool:
        price_candidates(evaluator, base, 0, candidates, pool=pool)
    stats = evaluator.stats
    assert stats.parallel_tasks >= 2  # one span per worker
    assert stats.fanout_seconds > 0.0
    worker_total = sum(stats.worker_evaluations.values())
    assert worker_total == len(candidates)
    # Worker evaluations are folded into the parent's Table-5 counter.
    assert evaluator.evaluations >= worker_total


def test_small_batches_stay_in_process(medium_job):
    evaluator = StrategyEvaluator(medium_job)
    base = evaluator.baseline()
    few = device_candidate_options()[: MIN_FANOUT_CANDIDATES - 1]
    with _pricing_pool(medium_job, device_candidate_options()) as pool:
        price_candidates(evaluator, base, 0, few, pool=pool)
    assert evaluator.stats.parallel_tasks == 0


def test_broken_pool_falls_back_to_serial_pricing(medium_job):
    candidates = device_candidate_options()
    evaluator = StrategyEvaluator(medium_job)
    base = evaluator.baseline()
    serial = price_candidates(evaluator, base, 0, candidates)
    with _pricing_pool(medium_job, candidates) as pool:
        pool.disable("injected breakage")
        fallback = price_candidates(
            evaluator, base, 0, candidates, pool=pool
        )
    assert fallback == serial


# -- whole-planner equivalence ---------------------------------------------


def test_espresso_parallel_bit_identical(medium_job):
    serial = Espresso(medium_job).select_strategy()
    parallel = Espresso(
        medium_job, jobs=2, oversubscribe=True
    ).select_strategy()
    assert parallel.strategy.options == serial.strategy.options
    assert parallel.iteration_time == serial.iteration_time
    assert parallel.stats.parallel_jobs == 2
    assert parallel.stats.parallel_tasks > 0
    assert serial.stats.parallel_jobs == 1


def test_espresso_clamps_jobs_by_default(medium_job):
    requested = available_cores() + 3
    result = Espresso(medium_job, jobs=requested).select_strategy()
    assert result.stats.parallel_jobs <= available_cores()
    serial = Espresso(medium_job).select_strategy()
    assert result.strategy.options == serial.strategy.options
    assert result.iteration_time == serial.iteration_time


# -- brute-force fan-out ---------------------------------------------------


def test_bruteforce_parallel_matches_serial(bruteforce_job):
    candidates = [
        inter_allgather_option(Device.GPU),
        inter_allgather_option(Device.CPU),
        no_compression_option(),
    ]
    serial_eval = StrategyEvaluator(bruteforce_job)
    serial = brute_force_search(serial_eval, candidates)
    parallel_eval = StrategyEvaluator(bruteforce_job)
    parallel = brute_force_search(
        parallel_eval, candidates, jobs=2, oversubscribe=True
    )
    assert parallel.iteration_time == serial.iteration_time
    assert (
        tuple(canonical_key(o) for o in parallel.strategy.options)
        == tuple(canonical_key(o) for o in serial.strategy.options)
    )
    # Both scans price every combo exactly once: 3^2 = 9 evaluations.
    assert parallel.evaluations == serial.evaluations == 9
    assert parallel_eval.evaluations == serial_eval.evaluations


# -- robust-planning fan-outs ----------------------------------------------


def test_sensitivity_sweep_parallel_matches_serial(medium_job):
    n = medium_job.model.num_tensors
    strategies = [
        ("fp32", baseline_strategy(n)),
        (
            "uniform-allgather-gpu",
            CompressionStrategy(
                options=(inter_allgather_option(Device.GPU),) * n
            ),
        ),
    ]
    serial = sensitivity_sweep(medium_job, strategies, check=True)
    parallel = sensitivity_sweep(
        medium_job, strategies, check=True, jobs=2, oversubscribe=True
    )
    assert parallel.fault_names == serial.fault_names
    assert parallel.strategies == serial.strategies
    assert parallel.timelines_checked == serial.timelines_checked


def test_robust_select_parallel_matches_serial(tiny_job):
    serial = robust_select(tiny_job)
    parallel = robust_select(tiny_job, jobs=2, oversubscribe=True)
    assert parallel.strategy.options == serial.strategy.options
    assert parallel.objective_value == serial.objective_value
    assert parallel.candidate_name == serial.candidate_name
    assert parallel.candidates_evaluated == serial.candidates_evaluated
    assert parallel.per_fault_times == serial.per_fault_times
