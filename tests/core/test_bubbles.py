"""Bubble-detection tests (Property #1, Fig. 9)."""

import pytest

from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.bubbles import communication_bubbles, tensors_before_bubbles
from repro.core.strategy import StrategyEvaluator
from repro.models import synthetic_model
from repro.utils.units import MB, MS


def make_evaluator(tensors, cluster):
    job = JobConfig(
        model=synthetic_model("bubble-job", tensors),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=cluster),
    )
    return StrategyEvaluator(job)


def test_bubble_detected_between_distant_tensors(small_cluster):
    """T0 is tiny and early; T1's compute takes long -> link idles."""
    evaluator = make_evaluator(
        [(int(4 * MB / 4), 2 * MS), (int(4 * MB / 4), 60 * MS)], small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    bubbles = communication_bubbles(timeline)
    assert any(bubbles.values()), "expected an idle gap on some link"
    before = tensors_before_bubbles(timeline)
    assert 0 in before
    assert 1 not in before


def test_saturated_link_has_only_the_leading_bubble(small_cluster):
    """Huge tensors back to back: once the inter link starts it never
    drains — the only idle interval is the leading readiness gap while
    backprop produces the first gradient."""
    evaluator = make_evaluator(
        [(int(256 * MB / 4), 5 * MS)] * 4, small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    bubbles = communication_bubbles(timeline)
    first_inter_start = min(
        s.start for s in timeline.stages if s.resource == "inter"
    )
    for start, end in bubbles.get("inter", []):
        assert start == 0.0 and end <= first_inter_start + 1e-12, (
            "saturated link must not have bubbles after its first stage"
        )
    before = tensors_before_bubbles(timeline)
    # Nothing on the saturated link is shielded: a leading bubble starts
    # at t=0, before every tensor's communication.
    assert before == set()


def test_leading_idle_interval_is_a_bubble(small_cluster):
    """Regression: the idle interval before a link's *first* stage is a
    readiness gap like any other.  The cursor used to start at the first
    stage's end, so a link that idled for a long first backprop stage
    reported no bubble at all."""
    evaluator = make_evaluator(
        [(int(4 * MB / 4), 60 * MS), (int(4 * MB / 4), 2 * MS)], small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    bubbles = communication_bubbles(timeline)
    for resource in ("intra", "inter"):
        stages = [s for s in timeline.stages if s.resource == resource]
        if not stages:
            continue
        first_start = min(s.start for s in stages)
        assert first_start >= 60 * MS  # gated on the first backprop stage
        gaps = bubbles.get(resource, [])
        assert (0.0, first_start) in gaps, (
            f"leading readiness gap on {resource} not reported"
        )
    # A bubble starting at t=0 precedes every communication, so it must
    # not shield the last tensor (whose comms nothing follows).
    assert 1 not in tensors_before_bubbles(timeline)


def test_min_bubble_filters_noise(small_cluster):
    evaluator = make_evaluator(
        [(int(4 * MB / 4), 2 * MS), (int(4 * MB / 4), 60 * MS)], small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    assert communication_bubbles(timeline, min_bubble=10.0) == {}
    assert tensors_before_bubbles(timeline, min_bubble=10.0) == set()


def test_self_inflicted_gap_is_not_a_bubble(small_cluster):
    """A gap in front of a divisible scheme's second step (waiting on the
    tensor's own intermediate re-compression) must not shield others."""
    from repro.core.options import Device
    from repro.core.presets import inter_alltoall_option

    evaluator = make_evaluator(
        [(int(8 * MB / 4), 2 * MS), (int(512 * MB / 4), 10 * MS)], small_cluster
    )
    strategy = evaluator.baseline().replace(
        1, inter_alltoall_option(Device.CPU)
    )
    timeline = evaluator.timeline(strategy)
    bubbles = communication_bubbles(timeline).get("inter", [])
    # Find T1's inter comm stages; any gap between its alltoall and its
    # allgather must not be classified as a bubble.
    t1_inter = [
        s
        for s in timeline.stages
        if s.tensor_index == 1 and s.resource == "inter"
    ]
    if len(t1_inter) >= 2:
        for start, end in bubbles:
            assert not (
                t1_inter[0].end - 1e-12 <= start and end <= t1_inter[1].start + 1e-12
            )


def test_flat_bubble_shield_matches_timeline_path(medium_job):
    """Remove()'s fast path (flat arrays off the incremental engine)
    returns the exact set the Timeline-based detector returns, for every
    evaluator mode and across strategies and thresholds."""
    from repro.core.algorithm import device_candidate_options
    from repro.core.bubbles import tensors_before_bubbles_flat

    fast = StrategyEvaluator(medium_job, fast=True)
    slow = StrategyEvaluator(medium_job, fast=False)
    checked = StrategyEvaluator(medium_job, fast=True, check=True)
    options = device_candidate_options()
    strategies = [fast.baseline()]
    for spread, option in enumerate(options):
        strategies.append(
            strategies[0].replace(spread % medium_job.model.num_tensors, option)
        )
    for strategy in strategies:
        for min_bubble in (0.0, 1e-4, 5.0):
            expected = tensors_before_bubbles(
                slow.timeline(strategy), min_bubble=min_bubble
            )
            assert fast.tensors_before_bubbles(strategy, min_bubble) == expected
            assert checked.tensors_before_bubbles(strategy, min_bubble) == (
                expected
            )
            # The flat detector itself, straight off the engine's arrays.
            fast._ensure_base(strategy.fingerprint(), strategy)
            assert tensors_before_bubbles_flat(
                fast._inc.task_view(), min_bubble=min_bubble
            ) == expected
