"""Bubble-detection tests (Property #1, Fig. 9)."""

import pytest

from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core.bubbles import communication_bubbles, tensors_before_bubbles
from repro.core.strategy import StrategyEvaluator
from repro.models import synthetic_model
from repro.utils.units import MB, MS


def make_evaluator(tensors, cluster):
    job = JobConfig(
        model=synthetic_model("bubble-job", tensors),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=cluster),
    )
    return StrategyEvaluator(job)


def test_bubble_detected_between_distant_tensors(small_cluster):
    """T0 is tiny and early; T1's compute takes long -> link idles."""
    evaluator = make_evaluator(
        [(int(4 * MB / 4), 2 * MS), (int(4 * MB / 4), 60 * MS)], small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    bubbles = communication_bubbles(timeline)
    assert any(bubbles.values()), "expected an idle gap on some link"
    before = tensors_before_bubbles(timeline)
    assert 0 in before
    assert 1 not in before


def test_saturated_link_has_no_bubbles(small_cluster):
    """Huge tensors back to back: the inter link never drains."""
    evaluator = make_evaluator(
        [(int(256 * MB / 4), 5 * MS)] * 4, small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    bubbles = communication_bubbles(timeline)
    assert "inter" not in bubbles
    before = tensors_before_bubbles(timeline)
    # Nothing on the saturated link is shielded.
    assert before == set()


def test_min_bubble_filters_noise(small_cluster):
    evaluator = make_evaluator(
        [(int(4 * MB / 4), 2 * MS), (int(4 * MB / 4), 60 * MS)], small_cluster
    )
    timeline = evaluator.timeline(evaluator.baseline())
    assert communication_bubbles(timeline, min_bubble=10.0) == {}
    assert tensors_before_bubbles(timeline, min_bubble=10.0) == set()


def test_self_inflicted_gap_is_not_a_bubble(small_cluster):
    """A gap in front of a divisible scheme's second step (waiting on the
    tensor's own intermediate re-compression) must not shield others."""
    from repro.core.options import Device
    from repro.core.presets import inter_alltoall_option

    evaluator = make_evaluator(
        [(int(8 * MB / 4), 2 * MS), (int(512 * MB / 4), 10 * MS)], small_cluster
    )
    strategy = evaluator.baseline().replace(
        1, inter_alltoall_option(Device.CPU)
    )
    timeline = evaluator.timeline(strategy)
    bubbles = communication_bubbles(timeline).get("inter", [])
    # Find T1's inter comm stages; any gap between its alltoall and its
    # allgather must not be classified as a bubble.
    t1_inter = [
        s
        for s in timeline.stages
        if s.tensor_index == 1 and s.resource == "inter"
    ]
    if len(t1_inter) >= 2:
        for start, end in bubbles:
            assert not (
                t1_inter[0].end - 1e-12 <= start and end <= t1_inter[1].start + 1e-12
            )
