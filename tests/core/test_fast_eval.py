"""Equivalence of the fast evaluation layer (DESIGN.md §5.2).

The memo cache and incremental delta-simulation must be invisible to the
planner: every F(S) answered by the fast layer equals the from-scratch
answer bit-for-bit, and ``Espresso.select_strategy()`` makes identical
decisions with the layer on or off.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import nvlink_100g_cluster
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.core import Espresso
from repro.core.algorithm import device_candidate_options
from repro.core.options import canonical_key, no_compression_option
from repro.core.strategy import CompressionStrategy, StrategyEvaluator
from repro.models import get_model, synthetic_model
from repro.utils.units import MB, MS


def _job() -> JobConfig:
    model = synthetic_model(
        "fast-eval",
        [
            (int(1 * MB / 4), 3 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(32 * MB / 4), 8 * MS),
            (int(8 * MB / 4), 6 * MS),
            (int(64 * MB / 4), 10 * MS),
            (int(2 * MB / 4), 4 * MS),
            (int(128 * MB / 4), 12 * MS),
        ],
        forward_time=15 * MS,
    )
    return JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(
            cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)
        ),
    )


JOB = _job()
OPTIONS = device_candidate_options()
N = JOB.model.num_tensors

# Long-lived evaluators on purpose: the fast one accumulates a memo
# cache and rebases its resident simulation across examples, which is
# exactly the state the equivalence claim must survive.
FAST = StrategyEvaluator(JOB, fast=True)
SLOW = StrategyEvaluator(JOB, fast=False)

option_st = st.sampled_from(OPTIONS)
strategy_st = st.lists(option_st, min_size=N, max_size=N).map(
    lambda options: CompressionStrategy(options=tuple(options))
)


@settings(max_examples=60, deadline=None)
@given(strategy_st, st.integers(min_value=0, max_value=N - 1), option_st)
def test_incremental_fs_equals_full_fs(base, index, option):
    """F(S) and the delta form agree with from-scratch simulation."""
    assert FAST.iteration_time(base) == SLOW.iteration_time(base)
    assert FAST.iteration_time_delta(base, index, option) == (
        SLOW.iteration_time_delta(base, index, option)
    )


@settings(max_examples=20, deadline=None)
@given(strategy_st)
def test_fast_timeline_equals_engine_timeline(strategy):
    """timeline() rebuilt from the resident base matches the engine's
    record-collecting simulation field for field (exact floats)."""
    assert FAST.timeline(strategy) == SLOW.timeline(strategy)


@settings(max_examples=30, deadline=None)
@given(
    strategy_st,
    st.dictionaries(
        st.integers(min_value=0, max_value=N - 1), option_st, min_size=1
    ),
)
def test_incremental_multi_fs_equals_full_fs(base, replacement_map):
    """The multi-tensor delta form (Algorithm 2's shape) agrees too."""
    replacements = sorted(replacement_map.items())
    assert FAST.iteration_time_multi(base, replacements) == (
        SLOW.iteration_time_multi(base, replacements)
    )


def test_espresso_identical_with_fast_eval_on_and_off():
    """select_strategy() is bit-identical with the memo cache on or off."""
    for name in ("lstm", "vgg16"):
        job = JobConfig(
            model=get_model(name),
            gc=GCInfo("dgc", {"ratio": 0.01}),
            system=SystemInfo(
                cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)
            ),
        )
        fast = Espresso(job, fast_eval=True).select_strategy()
        slow = Espresso(job, fast_eval=False).select_strategy()
        assert fast.iteration_time == slow.iteration_time
        assert fast.baseline_iteration_time == slow.baseline_iteration_time
        assert fast.strategy.options == slow.strategy.options


def test_canonical_keys_identify_option_values():
    """Equal option values share a key; distinct values never collide.

    Regression guard for the ``id(option)``-keyed caches the canonical
    keys replaced: a garbage-collected trial option's recycled ``id()``
    could alias a stale cache entry, and value-equal duplicates (two
    ``no_compression_option()`` calls) missed each other's entries.
    """
    a = no_compression_option()
    b = no_compression_option()
    assert a is not b
    assert canonical_key(a) == canonical_key(b)
    keys = {canonical_key(option) for option in OPTIONS}
    assert len(keys) == len(set(OPTIONS))
    # Fingerprints are tuples of canonical keys, so strategies built
    # from equal values at different times hit the same memo entry.
    first = CompressionStrategy(options=(a,) * N)
    second = CompressionStrategy(options=(no_compression_option(),) * N)
    assert first.fingerprint() == second.fingerprint()
    evaluator = StrategyEvaluator(JOB, fast=True)
    time_first = evaluator.iteration_time(first)
    hits_before = evaluator.stats.cache_hits
    assert evaluator.iteration_time(second) == time_first
    assert evaluator.stats.cache_hits == hits_before + 1


def test_stats_instrumentation_counts():
    """The planner reports its fast-layer counters on the result."""
    job = JobConfig(
        model=get_model("lstm"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(
            cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=4)
        ),
    )
    result = Espresso(job, fast_eval=True).select_strategy()
    stats = result.stats
    assert stats.fs_calls > 0
    assert stats.incremental_sims > 0
    assert stats.cache_hits > 0
    assert 0.0 <= stats.cache_hit_rate <= 1.0
    assert 0.0 <= stats.prefix_reuse_fraction <= 1.0
    assert stats.events_reused > 0
    # The breakdown covers the whole selection wall-clock.
    assert result.selection_seconds >= (
        result.gpu_selection_seconds
        + result.offload_selection_seconds
        + result.refinement_seconds
    ) * 0.999

    slow = Espresso(job, fast_eval=False).select_strategy()
    assert slow.stats.incremental_sims == 0
    assert slow.stats.cache_hits == 0
    assert slow.stats.full_sims > 0


def test_repricing_identical_chains_needs_no_simulation():
    """Regression: the answered-without-simulation rate has a floor when
    identical chains are re-priced.

    BENCH_planner.json once reported cache_hit_rate ~0.001 on deep
    homogeneous models — not because reuse was absent, but because the
    metric counted only memo hits while dedup and sound lower-bound
    prunes (the mechanisms that replaced those memo lookups in the
    batch pricing layer) answered 20-40% of requests simulation-free.
    Re-pricing the exact same (base, index, options) request must not
    simulate anything, and the combined rate must clear a real floor.
    """
    evaluator = StrategyEvaluator(JOB, fast=True)
    base = evaluator.baseline()
    index = N - 1
    first = evaluator.price_options(base, index, list(OPTIONS))
    sims = evaluator.stats.full_sims + evaluator.stats.incremental_sims
    hits = evaluator.stats.cache_hits
    second = evaluator.price_options(base, index, list(OPTIONS))
    assert second == first
    # Zero new simulations: every candidate came from the memo.
    assert evaluator.stats.full_sims + evaluator.stats.incremental_sims == sims
    assert evaluator.stats.cache_hits == hits + len(OPTIONS)
    # The honest combined rate clears a floor a memo-only metric missed.
    assert evaluator.stats.cache_hit_rate >= 0.3, evaluator.stats
    assert evaluator.stats.memo_hit_rate > 0.0
    assert evaluator.stats.cache_hit_rate >= evaluator.stats.memo_hit_rate
