"""User-constraint pruning tests (§4.2.2 extensibility)."""

from repro.core.options import ActionTask, Device
from repro.core.tree import constrain_options, enumerate_options


def _all():
    return enumerate_options(mode="uniform")


def test_max_compression_ops():
    limited = constrain_options(_all(), max_compression_ops=1)
    for option in limited:
        comp_ops = sum(1 for a in option.actions if a.task is ActionTask.COMP)
        assert comp_ops <= 1
    # The single-compression paths (and all dense paths) survive.
    assert any(o.compresses for o in limited)
    assert any(not o.compresses for o in limited)
    assert len(limited) < len(_all())


def test_zero_compression_ops_keeps_only_dense():
    dense_only = constrain_options(_all(), max_compression_ops=0)
    assert dense_only
    assert all(not o.compresses for o in dense_only)


def test_disallow_intra_compression():
    limited = constrain_options(_all(), allow_intra_compression=False)
    assert all(not o.compresses_intra for o in limited)
    assert any(o.compresses_inter for o in limited)


def test_disallow_flat():
    limited = constrain_options(_all(), allow_flat=False)
    assert all(not o.flat for o in limited)


def test_device_restriction():
    cpu_only = constrain_options(_all(), devices=[Device.CPU])
    for option in cpu_only:
        assert all(d is Device.CPU for d in option.devices)
    assert any(option.compresses for option in cpu_only)


def test_constraints_compose():
    limited = constrain_options(
        _all(),
        max_compression_ops=1,
        allow_intra_compression=False,
        allow_flat=False,
        devices=[Device.GPU],
    )
    for option in limited:
        assert not option.flat
        assert not option.compresses_intra
        assert all(d is Device.GPU for d in option.devices)


def test_constrained_espresso_runs(medium_job):
    """Constrained candidate sets plug straight into the planner."""
    from repro.core import Espresso

    candidates = [
        o
        for o in constrain_options(_all(), max_compression_ops=1, allow_flat=False)
        if o.compresses
    ]
    result = Espresso(medium_job, candidates=candidates).select_strategy()
    assert result.iteration_time <= result.baseline_iteration_time + 1e-12
    for index in result.compressed_indices:
        comp_ops = sum(
            1
            for a in result.strategy[index].actions
            if a.task is ActionTask.COMP
        )
        assert comp_ops <= 1
