"""Hypothesis property tests for the plan compiler.

Invariants checked over the *entire* enumerated option space x random
tensor sizes x random cluster shapes: compilation never fails, durations
are finite and non-negative, compressed options beat the FP32 option on
inter-machine traffic for large tensors, and CPU-device options never
occupy the GPU stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterSpec
from repro.compression import DGC, EFSignSGD
from repro.core.options import Device, no_compression_option
from repro.core.plan import PlanCompiler
from repro.core.tree import enumerate_options
from repro.profiling import v100_gpu, xeon_cpu
from repro.sim.stages import COMM, GPU, INTER

_OPTIONS = enumerate_options(mode="uniform")

clusters = st.builds(
    ClusterSpec,
    num_machines=st.integers(1, 16),
    gpus_per_machine=st.integers(1, 8),
    intra_bw=st.floats(1e9, 2e11),
    inter_bw=st.floats(1e8, 2e10),
)
sizes = st.integers(1, 1 << 28)
option_indices = st.integers(0, len(_OPTIONS) - 1)
compressors = st.sampled_from([DGC(ratio=0.01), EFSignSGD()])


@given(option_indices, sizes, clusters, compressors)
@settings(max_examples=150, deadline=None)
def test_every_option_compiles_everywhere(index, num_elements, cluster, compressor):
    compiler = PlanCompiler(
        cluster=cluster, compressor=compressor, gpu=v100_gpu(), cpu=xeon_cpu()
    )
    stages = compiler.stages(_OPTIONS[index], num_elements)
    for stage in stages:
        assert stage.duration >= 0.0
        assert stage.duration < float("inf")
    if not cluster.is_distributed:
        assert stages == []


@given(option_indices, st.integers(1 << 22, 1 << 27), clusters)
@settings(max_examples=100, deadline=None)
def test_inter_compression_reduces_inter_time(index, num_elements, cluster):
    """An option whose *entire* inter phase is compressed moves fewer
    bytes across machines than FP32, for large tensors (DGC 1%).

    Options that mix a dense first step with a compressed second step
    (e.g. Reduce + compressed Broadcast) are excluded: at two machines
    the dense step alone already matches the FP32 allreduce's cost.
    """
    from repro.core.options import ActionTask, Phase

    if cluster.num_machines < 2:
        return
    option = _OPTIONS[index]
    if not option.compresses_inter or option.flat:
        return
    dense_inter = any(
        a.phase is Phase.INTER
        and a.task in (ActionTask.COMM, ActionTask.COMM1, ActionTask.COMM2)
        for a in option.actions
    )
    if dense_inter:
        return
    compiler = PlanCompiler(
        cluster=cluster, compressor=DGC(ratio=0.01), gpu=v100_gpu(), cpu=xeon_cpu()
    )
    fp32_inter = sum(
        s.duration
        for s in compiler.stages(no_compression_option(), num_elements)
        if s.resource == INTER
    )
    option_inter = sum(
        s.duration
        for s in compiler.stages(option, num_elements)
        if s.resource == INTER
    )
    assert option_inter <= fp32_inter + 1e-9


@given(option_indices, sizes, clusters)
@settings(max_examples=100, deadline=None)
def test_cpu_options_never_touch_gpu_stream(index, num_elements, cluster):
    option = _OPTIONS[index]
    if option.devices and all(d is Device.CPU for d in option.devices):
        compiler = PlanCompiler(
            cluster=cluster,
            compressor=EFSignSGD(),
            gpu=v100_gpu(),
            cpu=xeon_cpu(),
        )
        stages = compiler.stages(option, num_elements)
        assert all(s.resource != GPU for s in stages)


@given(option_indices, st.integers(1, 1 << 26), clusters)
@settings(max_examples=100, deadline=None)
def test_stage_durations_monotone_in_size(index, num_elements, cluster):
    """Doubling the tensor never reduces any aggregate stage cost."""
    compiler = PlanCompiler(
        cluster=cluster, compressor=DGC(ratio=0.01), gpu=v100_gpu(), cpu=xeon_cpu()
    )
    option = _OPTIONS[index]
    small = sum(s.duration for s in compiler.stages(option, num_elements))
    large = sum(s.duration for s in compiler.stages(option, num_elements * 2))
    assert large >= small - 1e-12
