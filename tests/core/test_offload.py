"""Algorithm 2 tests: grouping, Lemma 1, and Theorem 1 vs brute force."""

import pytest

from repro.baselines.bruteforce import brute_force_offload_search
from repro.core.algorithm import gpu_compression_decision
from repro.core.offload import (
    apply_offload_counts,
    cpu_offload_decision,
    offload_groups,
)
from repro.core.options import Device
from repro.core.presets import inter_allgather_option
from repro.core.strategy import StrategyEvaluator
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.models import synthetic_model
from repro.utils.units import MB, MS


@pytest.fixture
def offload_evaluator(small_cluster):
    """Six tensors, two size classes, all GPU-compressed."""
    model = synthetic_model(
        "offload-job",
        [(int(32 * MB / 4), 6 * MS)] * 3 + [(int(8 * MB / 4), 4 * MS)] * 3,
    )
    job = JobConfig(
        model=model,
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=small_cluster),
    )
    return StrategyEvaluator(job)


def gpu_strategy(evaluator):
    option = inter_allgather_option(Device.GPU)
    strategy = evaluator.baseline()
    for i in range(len(strategy)):
        strategy = strategy.replace(i, option)
    return strategy


def test_groups_by_size_and_option(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator)
    groups = offload_groups(offload_evaluator, strategy)
    assert len(groups) == 2
    assert [len(g) for g in groups] == [3, 3]
    assert groups[0].size > groups[1].size


def test_group_members_sorted_farthest_first(offload_evaluator):
    """Lemma 1 order: descending distance to output = ascending index."""
    strategy = gpu_strategy(offload_evaluator)
    groups = offload_groups(offload_evaluator, strategy)
    for group in groups:
        assert list(group.members) == sorted(group.members)


def test_uncompressed_tensors_excluded(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator).replace(
        0, offload_evaluator.baseline()[0]
    )
    groups = offload_groups(offload_evaluator, strategy)
    members = [i for g in groups for i in g.members]
    assert 0 not in members


def test_apply_offload_counts(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator)
    groups = offload_groups(offload_evaluator, strategy)
    offloaded = apply_offload_counts(strategy, groups, [2, 0])
    cpu_indices = offloaded.device_indices(Device.CPU)
    assert cpu_indices == list(groups[0].members[:2])


def test_apply_offload_counts_validation(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator)
    groups = offload_groups(offload_evaluator, strategy)
    with pytest.raises(ValueError):
        apply_offload_counts(strategy, groups, [99, 0])
    with pytest.raises(ValueError):
        apply_offload_counts(strategy, groups, [0])


def test_offload_never_worse(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator)
    base = offload_evaluator.iteration_time(strategy)
    result = cpu_offload_decision(offload_evaluator, strategy)
    assert result.iteration_time <= base + 1e-12
    assert result.exhaustive
    assert result.combinations == 16


def test_theorem1_matches_brute_force(offload_evaluator):
    """Algorithm 2's group-count enumeration == full 2^n subset search."""
    strategy = gpu_strategy(offload_evaluator)
    result = cpu_offload_decision(offload_evaluator, strategy)
    brute = brute_force_offload_search(
        offload_evaluator, strategy, indices=list(range(6))
    )
    assert result.iteration_time == pytest.approx(
        brute.iteration_time, rel=1e-9
    )
    assert brute.evaluations == 64


def test_offload_with_no_compressed_tensors(offload_evaluator):
    strategy = offload_evaluator.baseline()
    result = cpu_offload_decision(offload_evaluator, strategy)
    assert result.counts == ()
    assert result.strategy is strategy


def test_coordinate_descent_fallback(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator)
    exhaustive = cpu_offload_decision(offload_evaluator, strategy)
    swept = cpu_offload_decision(offload_evaluator, strategy, max_evaluations=2)
    assert not swept.exhaustive
    # The sweep is a heuristic but must never regress below no-offload.
    base = offload_evaluator.iteration_time(strategy)
    assert swept.iteration_time <= base + 1e-12
    assert swept.iteration_time >= exhaustive.iteration_time - 1e-12


def test_offloaded_indices_property(offload_evaluator):
    strategy = gpu_strategy(offload_evaluator)
    result = cpu_offload_decision(offload_evaluator, strategy)
    assert set(result.offloaded_indices) == set(
        result.strategy.device_indices(Device.CPU)
    )


def test_canonical_key_collision_raises(offload_evaluator, monkeypatch):
    """Regression: a canonical_key collision used to silently overwrite a
    group's option with the last member's — corrupting the Lemma-1 group
    if the colliding options ever compiled to different chains.  Now it
    fails loudly."""
    import repro.core.offload as offload_mod
    from repro.core.presets import inter_alltoall_option

    strategy = gpu_strategy(offload_evaluator)
    # Two *unequal* options on same-size tensors...
    strategy = strategy.replace(1, inter_alltoall_option(Device.GPU))
    # ...forced onto one key by breaking the interning.
    monkeypatch.setattr(offload_mod, "canonical_key", lambda option: 0)
    with pytest.raises(ValueError, match="canonical_key collision"):
        offload_groups(offload_evaluator, strategy)


def test_mixed_options_form_distinct_groups(offload_evaluator):
    """Equal sizes but unequal options must never share a group."""
    from repro.core.presets import inter_alltoall_option

    strategy = gpu_strategy(offload_evaluator)
    strategy = strategy.replace(1, inter_alltoall_option(Device.GPU))
    groups = offload_groups(offload_evaluator, strategy)
    for group in groups:
        for index in group.members:
            assert strategy[index] == group.option
    assert len(groups) == 3  # (big, allgather), (big, alltoall), (small, ...)


def test_canonical_key_is_value_interned():
    """canonical_key agreement must coincide with option equality — the
    property offload_groups' collision guard assumes (hypothesis sweep
    over independently rebuilt option objects)."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.core.options import CompressionOption, canonical_key
    from repro.core.tree import enumerate_options

    options = enumerate_options(mode="uniform")

    @given(st.integers(0, len(options) - 1), st.integers(0, len(options) - 1))
    @settings(max_examples=200, deadline=None)
    def check(i, j):
        a, b = options[i], options[j]
        # A structurally equal clone built from scratch shares the key.
        clone = CompressionOption(actions=tuple(a.actions), flat=a.flat)
        assert canonical_key(clone) == canonical_key(a)
        assert (canonical_key(a) == canonical_key(b)) == (a == b)

    check()
