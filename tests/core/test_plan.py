"""Plan-compiler tests: options -> priced stage chains."""

import pytest

from repro.cluster import ClusterSpec, nvlink_100g_cluster, single_gpu
from repro.compression import DGC, EFSignSGD, NoCompression
from repro.core.options import Device, no_compression_option
from repro.core.plan import PlanCompiler
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.core.tree import enumerate_options
from repro.profiling import v100_gpu, xeon_cpu
from repro.sim.stages import COMM, COMPRESS, CPU, DECOMPRESS, GPU, INTER, INTRA
from repro.utils.units import MB


def make_compiler(cluster=None, compressor=None):
    return PlanCompiler(
        cluster=cluster or nvlink_100g_cluster(num_machines=4, gpus_per_machine=4),
        compressor=compressor or DGC(ratio=0.01),
        gpu=v100_gpu(),
        cpu=xeon_cpu(),
    )


ELEMENTS = int(64 * MB / 4)


def test_fp32_option_stages():
    compiler = make_compiler()
    stages = compiler.stages(no_compression_option(), ELEMENTS)
    assert [s.resource for s in stages] == [INTRA, INTER, INTRA]
    assert all(s.kind == COMM for s in stages)
    assert all(s.duration > 0 for s in stages)


def test_single_gpu_needs_no_sync():
    compiler = make_compiler(cluster=single_gpu())
    assert compiler.stages(no_compression_option(), ELEMENTS) == []


def test_single_machine_drops_inter_phase():
    cluster = ClusterSpec(
        num_machines=1, gpus_per_machine=8, intra_bw=1e11, inter_bw=1e10
    )
    compiler = make_compiler(cluster=cluster)
    stages = compiler.stages(no_compression_option(), ELEMENTS)
    assert [s.resource for s in stages] == [INTRA, INTRA]


def test_compression_reduces_inter_time():
    compiler = make_compiler()
    plain = compiler.stages(no_compression_option(), ELEMENTS)
    compressed = compiler.stages(inter_allgather_option(Device.GPU), ELEMENTS)
    plain_inter = sum(s.duration for s in plain if s.resource == INTER)
    comp_inter = sum(s.duration for s in compressed if s.resource == INTER)
    assert comp_inter < plain_inter / 5


def test_gpu_option_uses_gpu_resource():
    compiler = make_compiler()
    stages = compiler.stages(inter_allgather_option(Device.GPU), ELEMENTS)
    device_stages = [s for s in stages if s.kind in (COMPRESS, DECOMPRESS)]
    assert device_stages
    assert all(s.resource == GPU for s in device_stages)


def test_cpu_option_uses_cpu_resource():
    compiler = make_compiler()
    stages = compiler.stages(inter_allgather_option(Device.CPU), ELEMENTS)
    device_stages = [s for s in stages if s.kind in (COMPRESS, DECOMPRESS)]
    assert all(s.resource == CPU for s in device_stages)


def test_cpu_compression_slower_than_gpu():
    compiler = make_compiler()
    gpu_comp = [
        s
        for s in compiler.stages(inter_allgather_option(Device.GPU), ELEMENTS)
        if s.kind == COMPRESS
    ][0]
    cpu_comp = [
        s
        for s in compiler.stages(inter_allgather_option(Device.CPU), ELEMENTS)
        if s.kind == COMPRESS
    ][0]
    assert cpu_comp.duration > gpu_comp.duration


def test_divisible_scheme_cheaper_comm_more_compression():
    """Fig. 5's trade-off: divisible schemes save bytes, cost extra
    compression operations."""
    compiler = make_compiler()
    indivisible = compiler.stages(inter_allgather_option(Device.GPU), ELEMENTS)
    divisible = compiler.stages(inter_alltoall_option(Device.GPU), ELEMENTS)
    indiv_comm = sum(
        s.duration for s in indivisible if s.resource == INTER
    )
    div_comm = sum(s.duration for s in divisible if s.resource == INTER)
    assert div_comm < indiv_comm
    indiv_ops = sum(1 for s in indivisible if s.kind == COMPRESS)
    div_ops = sum(1 for s in divisible if s.kind == COMPRESS)
    assert div_ops > indiv_ops


def test_double_compression_reduces_intra_traffic():
    compiler = make_compiler()
    inter_only = compiler.stages(inter_alltoall_option(Device.GPU), ELEMENTS)
    both = compiler.stages(double_compression_option(Device.GPU), ELEMENTS)
    intra_inter_only = sum(s.duration for s in inter_only if s.resource == INTRA)
    intra_both = sum(s.duration for s in both if s.resource == INTRA)
    assert intra_both < intra_inter_only


def test_no_compression_algorithm_has_zero_device_cost():
    compiler = make_compiler(compressor=NoCompression())
    stages = compiler.stages(no_compression_option(), ELEMENTS)
    assert all(s.kind == COMM for s in stages)


def test_every_tree_option_compiles():
    compiler = make_compiler(compressor=EFSignSGD())
    for option in enumerate_options(mode="uniform"):
        stages = compiler.stages(option, ELEMENTS)
        assert all(s.duration >= 0 for s in stages)


def test_stage_cache_reuses_results():
    compiler = make_compiler()
    option = inter_allgather_option(Device.GPU)
    first = compiler.stages(option, ELEMENTS)
    second = compiler.stages(option, ELEMENTS)
    assert first is second


def test_invalid_size_rejected():
    compiler = make_compiler()
    with pytest.raises(ValueError):
        compiler.stages(no_compression_option(), 0)


def test_quantizer_compresses_more_than_sparsifier_at_1pct():
    """DGC at 1% ships ~2% of bytes (values+indices); EFSignSGD ~3%."""
    dgc = make_compiler(compressor=DGC(ratio=0.01))
    sign = make_compiler(compressor=EFSignSGD())
    option = inter_allgather_option(Device.GPU)
    dgc_inter = sum(
        s.duration for s in dgc.stages(option, ELEMENTS) if s.resource == INTER
    )
    sign_inter = sum(
        s.duration for s in sign.stages(option, ELEMENTS) if s.resource == INTER
    )
    assert dgc_inter < sign_inter
