"""Upper Bound tests."""

import pytest

from repro.core import Espresso
from repro.core.bounds import (
    FreeCompression,
    upper_bound_evaluator,
    upper_bound_iteration_time,
    upper_bound_throughput,
)


def test_free_compression_wraps_sizes():
    from repro.compression import DGC

    inner = DGC(ratio=0.01)
    free = FreeCompression(inner)
    assert free.work_factor == 0.0
    assert free.compressed_nbytes(10_000) == inner.compressed_nbytes(10_000)
    assert free.name == "free-dgc"


def test_free_evaluator_has_no_compression_cost(medium_job):
    from repro.core.presets import inter_allgather_option
    from repro.core.options import Device

    evaluator = upper_bound_evaluator(medium_job)
    option = inter_allgather_option(Device.GPU)
    stages = evaluator.compiler.stages(option, 1 << 20)
    assert all(s.duration == 0.0 for s in stages if s.kind != "comm")


def test_upper_bound_dominates_espresso(medium_job):
    bound = upper_bound_iteration_time(medium_job)
    result = Espresso(medium_job).select_strategy()
    assert bound <= result.iteration_time * 1.001


def test_upper_bound_dominates_fp32(medium_job, pcie_job):
    for job in (medium_job, pcie_job):
        from repro.core.strategy import StrategyEvaluator

        evaluator = StrategyEvaluator(job)
        fp32 = evaluator.iteration_time(evaluator.baseline())
        assert upper_bound_iteration_time(job) <= fp32 + 1e-12


def test_upper_bound_at_least_compute_time(medium_job):
    assert (
        upper_bound_iteration_time(medium_job)
        >= medium_job.model.iteration_compute_time - 1e-12
    )


def test_upper_bound_throughput_consistent(medium_job):
    iteration = upper_bound_iteration_time(medium_job)
    assert upper_bound_throughput(medium_job) == pytest.approx(
        medium_job.model.batch_size
        * medium_job.system.cluster.total_gpus
        / iteration
    )
