"""Joint fleet planning: fixed point, oscillation -> CVaR, portfolio
guarantee, and churn with budgeted replans.

The acceptance criteria of the fleet subsystem live here: joint
planning never worse than selfish on aggregate throughput for every
shipped job mix, every contended timeline passing the unmodified
invariant battery, and a churn drill where every replan either fits
its budget or degrades explicitly.
"""

from types import SimpleNamespace

import pytest

from repro.cluster import nvlink_100g_cluster
from repro.cluster.tenancy import FleetSpec, TenantSpec
from repro.core.fleet import (
    FleetChurnController,
    FleetEvent,
    evaluate_assignment,
    example_mixes,
    fleet_churn_ensemble,
    plan_fleet,
)
from repro.core.presets import inter_allgather_option
from repro.core.robust import ReplanLedger
from repro.core.options import Device
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.service.api import strategy_digest


def lstm_pair() -> FleetSpec:
    return example_mixes()["lstm-pair"]


def light_strategy(num_tensors: int) -> CompressionStrategy:
    option = inter_allgather_option(Device.GPU)
    return CompressionStrategy(options=tuple(option for _ in range(num_tensors)))


class QuickPlanner:
    """Cheap deterministic planner: always the all-compressed strategy."""

    def __init__(self, job):
        self.job = job
        self.evaluator = StrategyEvaluator(job)

    def select_strategy(self):
        strategy = light_strategy(self.job.model.num_tensors)
        return SimpleNamespace(
            strategy=strategy,
            iteration_time=self.evaluator.iteration_time(strategy),
        )


class FlipFlopPlanner:
    """Heavy on a pristine link, light on a degraded one.

    Engineered to cycle: the heavy (FP32) assignment crushes the shared
    link, which makes every planner switch to light; the light
    assignment frees the link, which makes every planner switch back.
    """

    def __init__(self, job):
        self.job = job
        self.evaluator = StrategyEvaluator(job)
        nominal_bw = nvlink_100g_cluster(2, 2).inter_bw
        # Between the ~0.76 scale a heavy assignment induces and the
        # ~0.99 a light one does, so the preference flips every round.
        self.contended = job.system.cluster.inter_bw < 0.9 * nominal_bw

    def select_strategy(self):
        n = self.job.model.num_tensors
        strategy = light_strategy(n) if self.contended else baseline_strategy(n)
        return SimpleNamespace(
            strategy=strategy,
            iteration_time=self.evaluator.iteration_time(strategy),
        )


# -- the joint planner -----------------------------------------------------


def test_shipped_mixes_joint_never_worse_than_selfish():
    """Acceptance criterion: for every shipped job mix, the joint plan's
    aggregate throughput is >= the selfish plan's, and every per-tenant
    contended timeline passes the unmodified invariant battery."""
    for name, fleet in example_mixes().items():
        result = plan_fleet(fleet, check=True)
        assert (
            result.aggregate_throughput
            >= result.selfish_aggregate_throughput
        ), name
        # check=True validated both the joint and the selfish
        # evaluation: one contended timeline per tenant each.
        assert result.timelines_checked == 2 * len(fleet.tenants), name
        for plan in result.tenants:
            # A contended link can only slow a tenant down.
            assert plan.slowdown >= 1.0 - 1e-12, (name, plan.name)
            assert plan.throughput > 0.0


def test_plan_fleet_converges_on_lstm_pair():
    result = plan_fleet(lstm_pair())
    assert result.converged
    assert not result.oscillated
    assert result.mode == "joint"
    assert result.rounds >= 1
    assert all(plan.source == "joint" for plan in result.tenants)
    assert result.plan_seconds > 0.0
    assert result.tenant("a").name == "a"
    with pytest.raises(KeyError):
        result.tenant("nobody")
    assert "converged" in result.summary()


def test_single_tenant_fleet_sees_no_contention():
    fleet = FleetSpec(
        cluster=nvlink_100g_cluster(2, 2),
        tenants=(TenantSpec(name="solo", model="lstm", gc="dgc", ratio=0.01),),
    )
    result = plan_fleet(fleet)
    plan = result.tenant("solo")
    assert plan.contention.is_nominal
    assert plan.slowdown == pytest.approx(1.0)


def test_oscillation_detector_falls_back_to_cvar():
    result = plan_fleet(lstm_pair(), planner_factory=FlipFlopPlanner)
    assert result.oscillated
    assert not result.converged
    # Portfolio guarantee holds regardless of which assignment ships.
    assert (
        result.aggregate_throughput >= result.selfish_aggregate_throughput
    )
    if result.mode == "joint":
        assert all(plan.source == "cvar" for plan in result.tenants)
    else:
        assert all(plan.source == "selfish" for plan in result.tenants)


def test_round_limit_without_cycle_also_falls_back():
    result = plan_fleet(
        lstm_pair(), planner_factory=FlipFlopPlanner, max_rounds=1
    )
    assert not result.converged
    assert result.rounds == 1
    assert (
        result.aggregate_throughput >= result.selfish_aggregate_throughput
    )


def test_plan_fleet_parallel_matches_serial_bit_identical():
    """Satellite: fleet --jobs N is bit-identical to serial planning."""
    fleet = lstm_pair()
    serial = plan_fleet(fleet, jobs=1)
    parallel = plan_fleet(fleet, jobs=2)
    assert serial.parallel_disabled_reason is None
    for name in ("a", "b"):
        assert strategy_digest(
            parallel.tenant(name).strategy
        ) == strategy_digest(serial.tenant(name).strategy)
        assert parallel.tenant(name).contended_time == pytest.approx(
            serial.tenant(name).contended_time
        )
    assert parallel.aggregate_throughput == pytest.approx(
        serial.aggregate_throughput
    )
    assert parallel.mode == serial.mode
    assert parallel.rounds == serial.rounds


def test_plan_fleet_validation():
    with pytest.raises(ValueError, match="max_rounds"):
        plan_fleet(lstm_pair(), max_rounds=0)
    fleet = lstm_pair()
    with pytest.raises(ValueError, match="no strategy"):
        evaluate_assignment(fleet, {})


def test_evaluate_assignment_check_runs_invariant_battery():
    fleet = lstm_pair()
    strategies = {
        name: baseline_strategy(job.model.num_tensors)
        for name, job in fleet.jobs().items()
    }
    evaluation = evaluate_assignment(fleet, strategies, check=True)
    assert evaluation.timelines_checked == len(fleet.tenants)
    assert evaluation.aggregate_throughput > 0.0


def test_cancel_check_aborts_planning():
    class Cancelled(Exception):
        pass

    def cancel():
        raise Cancelled()

    with pytest.raises(Cancelled):
        plan_fleet(lstm_pair(), cancel_check=cancel)


# -- churn -----------------------------------------------------------------


def test_fleet_event_validation():
    with pytest.raises(ValueError, match="kind"):
        FleetEvent(kind="resize")
    with pytest.raises(ValueError, match="tenant spec"):
        FleetEvent(kind="arrive")
    with pytest.raises(ValueError, match="tenant name"):
        FleetEvent(kind="depart")
    arrive = FleetEvent(
        kind="arrive", tenant=TenantSpec(name="x", model="lstm")
    )
    assert arrive.tenant_name == "x"
    assert arrive.describe() == "arrive:x"
    assert FleetEvent(kind="depart", name="x").describe() == "depart:x"


def test_churn_drill_all_replans_within_budget_or_degraded():
    """Acceptance criterion: a churn drill (arrivals + departures)
    completes every replan within budget or degrades explicitly — no
    crashes, no silently stale plans."""
    controller = FleetChurnController(
        lstm_pair(), planner_factory=QuickPlanner
    )
    report = controller.run(
        [
            FleetEvent(
                kind="arrive",
                tenant=TenantSpec(name="c", model="lstm", gc="topk", ratio=0.01),
            ),
            FleetEvent(kind="depart", name="a"),
            FleetEvent(
                kind="arrive",
                tenant=TenantSpec(name="d", model="lstm", gc="fp16"),
            ),
            FleetEvent(kind="depart", name="c"),
        ]
    )
    assert len(report.records) == 4
    assert report.all_accounted
    assert report.ledger.events == len(report.replans)
    # Membership bookkeeping: final fleet is {b, d}.
    assert controller.fleet.names == ("b", "d")
    assert set(controller.strategies()) == {"b", "d"}
    for replan in report.replans:
        assert replan.iteration_time > 0.0
        if not replan.degraded:
            assert replan.within_budget
            assert replan.source.startswith(
                ("table:", "portfolio:", "full-plan")
            )
    assert "replan(s)" in report.summary()


def test_churn_exhausted_ledger_degrades_to_selfish_explicitly():
    controller = FleetChurnController(
        lstm_pair(),
        planner_factory=QuickPlanner,
        budget_seconds=60.0,
        ledger=ReplanLedger(total_seconds=1e-9),
    )
    record = controller.apply(
        FleetEvent(
            kind="arrive",
            tenant=TenantSpec(name="c", model="lstm", gc="topk", ratio=0.01),
        )
    )
    assert all(r.degraded for r in record.replans)
    assert all(r.source == "degraded:selfish" for r in record.replans)
    assert all(not r.within_budget for r in record.replans)
    assert controller.report.degraded_fraction == 1.0
    assert controller.report.all_accounted
    # The live assignment IS the admission-time selfish plan.
    for name, strategy in controller.strategies().items():
        assert strategy_digest(strategy) == strategy_digest(
            controller._selfish[name]
        )


def test_churn_membership_errors_are_loud():
    controller = FleetChurnController(
        lstm_pair(), planner_factory=QuickPlanner
    )
    with pytest.raises(ValueError, match="unknown tenant"):
        controller.apply(FleetEvent(kind="depart", name="ghost"))
    with pytest.raises(ValueError, match="already admitted"):
        controller.apply(
            FleetEvent(kind="arrive", tenant=TenantSpec(name="a", model="lstm"))
        )
    controller.apply(FleetEvent(kind="depart", name="a"))
    with pytest.raises(ValueError, match="at least one tenant"):
        controller.apply(FleetEvent(kind="depart", name="b"))
    with pytest.raises(ValueError, match="budget_seconds"):
        FleetChurnController(
            lstm_pair(), planner_factory=QuickPlanner, budget_seconds=0.0
        )


def test_churn_ensemble_is_a_pressure_ladder():
    ensemble = fleet_churn_ensemble()
    assert ensemble[0].is_nominal
    assert len(ensemble) >= 3
    names = [model.name for model in ensemble]
    assert len(set(names)) == len(names)
