"""Setup shim for environments without the `wheel` package (offline PEP-660
editable installs need bdist_wheel; `python setup.py develop` does not)."""
from setuptools import setup

setup()
