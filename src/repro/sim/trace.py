"""Chrome-trace (``chrome://tracing`` / Perfetto JSON) timeline export.

Turns a simulated :class:`~repro.sim.engine.Timeline` into the Trace
Event Format consumed by ``chrome://tracing``, Perfetto UI, and
``speedscope`` — one named thread per simulator resource (gpu, cpu,
intra, inter), one complete ("X") event per scheduled stage.  This is
the visual counterpart of the invariant checker: a human can see the
bubbles, contention, and chain precedence the planner reasons about.

Timestamps are emitted in microseconds (the format's native unit); the
simulator works in seconds.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from repro.sim.engine import Timeline
from repro.sim.stages import RESOURCES

#: Trace-viewer process id used for all events (one simulated worker).
_PID = 0

#: Stable color names per stage kind (Chrome tracing's palette).
_KIND_COLORS = {
    "compute": "thread_state_running",
    "compress": "thread_state_iowait",
    "decompress": "thread_state_unknown",
    "aggregate": "light_memory_dump",
    "comm": "detailed_memory_dump",
}

_SECONDS_TO_US = 1e6


def chrome_trace_events(timeline: Timeline) -> List[dict]:
    """The timeline as a list of Trace Event Format dicts."""
    tids = {name: i for i, name in enumerate(RESOURCES)}
    events: List[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": resource},
        }
        for resource, tid in tids.items()
    ]
    for stage in timeline.stages:
        event = {
            "ph": "X",
            "pid": _PID,
            "tid": tids[stage.resource],
            "ts": stage.start * _SECONDS_TO_US,
            "dur": stage.duration * _SECONDS_TO_US,
            "name": stage.label or stage.kind,
            "cat": stage.kind,
            "args": {
                "tensor": stage.tensor_index,
                "stage": stage.stage_index,
                "ready": stage.ready * _SECONDS_TO_US,
                "kind": stage.kind,
            },
        }
        color = _KIND_COLORS.get(stage.kind)
        if color is not None:
            event["cname"] = color
        events.append(event)
    return events


def chrome_trace(timeline: Timeline) -> dict:
    """The full JSON-object form (``traceEvents`` + metadata)."""
    return {
        "traceEvents": chrome_trace_events(timeline),
        "displayTimeUnit": "ms",
        "otherData": {
            "makespan_us": timeline.makespan * _SECONDS_TO_US,
            "stages": len(timeline.stages),
        },
    }


def write_chrome_trace(timeline: Timeline, destination: Union[str, IO[str]]) -> None:
    """Write the trace JSON to a path or an open text file."""
    payload = chrome_trace(timeline)
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
