"""Incremental re-simulation of chain substitutions (delta F(S)).

Espresso's planner evaluates thousands of candidate strategies that
differ from a resident *base* strategy in one (or a few) tensors:
Algorithm 1's GetBestOption loop, the refinement sweeps, and Lemma-1
offloading all generate single- or few-tensor replacements.  Replaying
the full discrete-event simulation from t=0 for every candidate wastes
the prefix the trial shares with the base run.

The engine's scheduling is deterministic FIFO-by-readiness (see
:mod:`repro.sim.engine`), so the trial trajectory is *identical* to the
base trajectory up to the first instant a swapped tensor's replacement
stages can enter a ready queue.  A chain's synchronization pipeline
becomes ready exactly when its backprop compute stage completes; a swap
that preserves the compute stage therefore cannot influence anything
scheduled before that completion.

:class:`IncrementalSimulator` runs the base chains once, snapshotting
the scheduler state (free workers, ready heaps, in-flight events,
makespan) at event-batch boundaries, and prices a candidate by restoring
the latest snapshot taken no later than the divergence instant and
replaying only the suffix.  The replay executes the same float
operations in the same order as a from-scratch simulation of the trial
chains, so the returned makespan is bit-identical to
:func:`repro.sim.engine.simulate_makespan` — the hypothesis property
test in ``tests/sim/test_incremental.py`` proves the equivalence.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import ScheduledStage, Timeline
from repro.sim.stages import COMM, CPU, RESOURCES, Stage, TensorChain

#: Scheduler snapshot: (free workers, ready heaps, in-flight events,
#: makespan so far, dispatch sequence counter, completions processed).
_Checkpoint = Tuple[List[int], List[list], list, float, int, int]

# Heap entries are packed 2-tuples to keep the event loop cheap:
#   ready:  (ready_time, rank)    rank = tensor << 40 | k << 30 | tid
#   events: (end_time, seq << 30 | tid)
# Tuple order is identical to the engine's (time, tensor, k, tid) /
# (end, seq, tid) tuples as long as every field fits its bit budget,
# which __init__ / swap_chains validate.
_TID_BITS = 30
_K_BITS = 10
_TID_MASK = (1 << _TID_BITS) - 1
_MAX_STAGES = 1 << _K_BITS
_MAX_TENSOR = 1 << 20


class IncrementalSimulator:
    """Replays one base simulation, then prices chain swaps by suffix.

    Args:
        chains: the base strategy's per-tensor stage chains, in backprop
            completion order (same contract as :func:`~repro.sim.engine.
            simulate`).
        cpu_capacity: parallel workers of the CPU compression pool.
        capacities: optional per-resource capacity overrides.
        checkpoint_stride: minimum completions between two snapshots;
            defaults to ``max(1, num_tasks // 128)`` so snapshot copying
            stays a small fraction of the base simulation cost while a
            restore overshoots the ideal resume point by <1% of events.
        stats: optional object with ``events_full``, ``events_replayed``
            and ``events_reused`` counters (e.g. ``EvaluatorStats``) that
            the simulator increments in place.
    """

    def __init__(
        self,
        chains: Sequence[TensorChain],
        cpu_capacity: int = 1,
        capacities: Optional[Dict[str, int]] = None,
        checkpoint_stride: Optional[int] = None,
        stats=None,
    ):
        if not chains:
            raise ValueError("nothing to simulate")
        resource_capacity = {name: 1 for name in RESOURCES}
        resource_capacity[CPU] = max(1, cpu_capacity)
        if capacities:
            resource_capacity.update(capacities)
        self._capacity = [resource_capacity[name] for name in RESOURCES]
        if len(self._capacity) != 4:
            # The replay dispatch scan is unrolled over the four sim
            # resources (gpu, cpu, intra, inter).
            raise ValueError("IncrementalSimulator expects exactly 4 resources")
        self._res_index = {name: i for i, name in enumerate(RESOURCES)}
        self.stats = stats

        # Flattened task arrays, exactly as the engine builds them; the
        # base layout stays resident, swaps append scratch tasks past
        # ``_num_tasks`` and truncate them afterwards.
        durations: List[float] = []
        resources: List[int] = []
        tensors: List[int] = []
        ks: List[int] = []
        is_comm: List[bool] = []
        next_in_chain: List[int] = []
        compute_succ: List[int] = []
        rank: List[int] = []
        base: List[int] = []
        for chain in chains:
            base.append(len(durations))
            n_stages = len(chain.stages)
            if n_stages > _MAX_STAGES:
                raise ValueError(f"chain has more than {_MAX_STAGES} stages")
            if not 0 <= chain.tensor_index < _MAX_TENSOR:
                raise ValueError(
                    f"tensor index {chain.tensor_index} outside [0, {_MAX_TENSOR})"
                )
            for k, stage in enumerate(chain.stages):
                tid = len(durations)
                durations.append(stage.duration)
                resources.append(self._res_index[stage.resource])
                tensors.append(chain.tensor_index)
                ks.append(k)
                is_comm.append(stage.kind == COMM)
                rank.append(
                    chain.tensor_index << (_K_BITS + _TID_BITS)
                    | k << _TID_BITS
                    | tid
                )
                next_in_chain.append(tid + 1 if k + 1 < n_stages else -1)
                compute_succ.append(-1)
        for i in range(len(chains) - 1):
            compute_succ[base[i]] = base[i + 1]
        # The four ready heaps are *persistent* list objects: the base
        # run fills them, checkpoints store copies, and every replay
        # refills them in place via slice assignment.  Stable identity is
        # what lets each task precompute the actual heap object its
        # successors push into (``s1_heap``/``s2_heap`` below) instead of
        # resolving ``ready[resource]`` per event.
        self._ready: List[list] = [[] for _ in RESOURCES]
        # Flattened successor push targets: for task ``t``, the heap and
        # rank of its pipeline successor (s1) and — on compute stages —
        # of the next chain's compute stage (s2); heap ``None`` when the
        # successor is absent.  The event loop reads these instead of
        # chasing next_in_chain/compute_succ through extra list lookups.
        ready = self._ready
        s1_heap: List[Optional[list]] = []
        s1_rank: List[int] = []
        s2_heap: List[Optional[list]] = []
        s2_rank: List[int] = []
        for t in range(len(durations)):
            s = next_in_chain[t]
            s1_heap.append(ready[resources[s]] if s >= 0 else None)
            s1_rank.append(rank[s] if s >= 0 else 0)
            s = compute_succ[t]
            s2_heap.append(ready[resources[s]] if s >= 0 else None)
            s2_rank.append(rank[s] if s >= 0 else 0)
        self._s1_heap = s1_heap
        self._s1_rank = s1_rank
        self._s2_heap = s2_heap
        self._s2_rank = s2_rank
        # Completion record per task, consumed by the event loops: one
        # list index + a C-level tuple unpack replaces five separate
        # array lookups per completed event in the replay hot path.  The
        # flat arrays above stay authoritative (the batch layer reads
        # them); swaps keep both in step.
        self._post = list(zip(resources, s1_heap, s1_rank, s2_heap, s2_rank))
        self._durations = durations
        self._resources = resources
        self._tensors = tensors
        self._ks = ks
        self._is_comm = is_comm
        self._rank = rank
        self._next_in_chain = next_in_chain
        self._compute_succ = compute_succ
        self._base = base
        self._num_tasks = len(durations)
        self._num_chains = len(chains)
        self._chain_len = [
            (base[i + 1] if i + 1 < len(base) else len(durations)) - base[i]
            for i in range(len(base))
        ]
        #: (resource index, duration) of each chain's leading stage, for
        #: validating that a swap preserves it.
        self._stage0 = [
            (resources[t0], durations[t0]) for t0 in base
        ]
        #: Base completion time of every base task.  A swap diverges at
        #: the completion of the last stage the replacement chain shares
        #: with the resident chain — everything earlier is bit-identical.
        self._end_time = [0.0] * len(durations)
        #: Base dispatch time of every base task, recorded (not derived
        #: as ``end - duration``, which would reintroduce float rounding)
        #: so :meth:`base_timeline` can rebuild the full timeline without
        #: a second simulation.
        self._start_time = [0.0] * len(durations)
        self._chain_objs = list(chains)

        self._cp_times: List[float] = []
        self._checkpoints: List[_Checkpoint] = []
        #: Lazily built order-insensitive forms of each checkpoint's
        #: state, for the reconvergence early-exit of :meth:`_replay`.
        self._cp_state_keys: List[Optional[tuple]] = []
        if checkpoint_stride is None:
            checkpoint_stride = max(1, self._num_tasks // 128)
        self.base_makespan = self._run_base(max(1, checkpoint_stride))

    # -- base simulation -------------------------------------------------

    def _run_base(self, stride: int) -> float:
        durations = self._durations
        resources = self._resources
        rank = self._rank
        post = self._post
        end_time = self._end_time
        start_time = self._start_time
        heappush = heapq.heappush
        heappop = heapq.heappop
        tid_mask = _TID_MASK
        n_res = len(RESOURCES)

        free = self._capacity.copy()
        ready = self._ready
        events: list = []
        seq = 0
        ready[resources[0]].append((0.0, rank[0]))
        # Initial dispatch at t=0 (mirrors the engine).  Event entries
        # are ``(end, seq << _TID_BITS | tid)``: dispatch sequence
        # numbers are unique, so the packed tie-break orders exactly
        # like the engine's ``(end, seq, tid)`` triple while the heap
        # moves cheaper 2-tuples.
        for r in range(n_res):
            heap = ready[r]
            while heap and free[r] > 0:
                tid = heappop(heap)[1] & tid_mask
                free[r] -= 1
                seq += 1
                heappush(events, (durations[tid], seq << _TID_BITS | tid))

        makespan = 0.0
        events_done = 0
        need_cp = True
        last_cp_events = 0
        prev_now = -1.0
        while events:
            now = events[0][0]
            # Snapshot only before the *first* batch at a new instant:
            # zero-duration tasks make several batches share one time,
            # and a mid-instant snapshot would capture completions
            # already processed with the base successor arrays — a
            # restore at exactly the divergence instant would then skip
            # the swap.  One snapshot per instant also keeps the times
            # strictly increasing.
            if now != prev_now and (
                need_cp or events_done - last_cp_events >= stride
            ):
                self._cp_times.append(now)
                self._checkpoints.append(
                    (
                        free.copy(),
                        [h.copy() for h in ready],
                        events.copy(),
                        makespan,
                        seq,
                        events_done,
                    )
                )
                self._cp_state_keys.append(None)
                need_cp = False
                last_cp_events = events_done
            prev_now = now
            if now > makespan:
                makespan = now
            while events and events[0][0] == now:
                tid = heappop(events)[1] & tid_mask
                events_done += 1
                end_time[tid] = now
                r, h1, rk1, h2, rk2 = post[tid]
                free[r] += 1
                if h1 is not None:
                    heappush(h1, (now, rk1))
                if h2 is not None:
                    heappush(h2, (now, rk2))
            for r in range(n_res):
                heap = ready[r]
                while heap and free[r] > 0:
                    tid = heappop(heap)[1] & tid_mask
                    free[r] -= 1
                    seq += 1
                    start_time[tid] = now
                    heappush(events, (now + durations[tid], seq << _TID_BITS | tid))

        self.base_events = events_done
        if self.stats is not None:
            self.stats.events_full += events_done
        return makespan

    def base_timeline(self) -> Timeline:
        """The base run's full timeline, rebuilt from the resident arrays.

        Bit-identical to ``engine.simulate(chains)``: every ``start`` and
        ``end`` is the exact float the base event loop produced, and a
        stage's ``ready`` is its predecessor's completion (0.0 for the
        first backprop stage) — the same value the engine stamps when it
        pushes the stage into a ready queue.  Costs one pass over the
        tasks instead of a second record-collecting simulation.
        """
        start_time = self._start_time
        end_time = self._end_time
        scheduled = []
        prev_compute_end = 0.0
        for i, chain in enumerate(self._chain_objs):
            t0 = self._base[i]
            ready = prev_compute_end
            for k, stage in enumerate(chain.stages):
                tid = t0 + k
                scheduled.append(
                    ScheduledStage(
                        tensor_index=chain.tensor_index,
                        stage_index=k,
                        resource=stage.resource,
                        kind=stage.kind,
                        label=stage.label,
                        duration=stage.duration,
                        ready=ready,
                        start=start_time[tid],
                        end=end_time[tid],
                    )
                )
                ready = end_time[tid]
            prev_compute_end = end_time[t0]
        scheduled.sort(key=lambda s: (s.start, s.tensor_index, s.stage_index))
        return Timeline(stages=tuple(scheduled), makespan=self.base_makespan)

    def task_view(
        self,
    ) -> Tuple[
        List[int], List[int], List[int], List[float], List[float], List[bool]
    ]:
        """Parallel per-task arrays of the base schedule, for flat
        analyses that do not need :class:`ScheduledStage` objects:
        ``(tensors, stage_indexes, resource_indexes, starts, ends,
        comm_flags)``.  Starts and ends are the exact event-loop floats.
        The lists are the live resident arrays — callers must not mutate
        them or hold them across a rebase.
        """
        return (
            self._tensors,
            self._ks,
            self._resources,
            self._start_time,
            self._end_time,
            self._is_comm,
        )

    # -- swaps -----------------------------------------------------------

    def swap_chain(self, index: int, stages: Sequence[Stage]) -> float:
        """Makespan with chain ``index`` replaced by ``stages``.

        ``stages[0]`` must equal the base chain's leading (compute)
        stage — that is what makes the shared prefix sound.  The base
        arrays are restored before returning, so swaps never accumulate.
        """
        return self.swap_chains(((index, stages),))

    def swap_chains(
        self, replacements: Sequence[Tuple[int, Sequence[Stage]]]
    ) -> float:
        """Makespan with several chains replaced at once.

        The resumable prefix is bounded by the *earliest* swapped
        chain's compute completion; a single-chain swap therefore reuses
        the most.
        """
        res_index = self._res_index
        return self.swap_chains_flat(
            [
                (
                    pos,
                    [res_index[s.resource] for s in stages],
                    [s.duration for s in stages],
                )
                for pos, stages in replacements
            ]
        )

    def swap_chains_flat(
        self,
        replacements: Sequence[Tuple[int, Sequence[int], Sequence[float]]],
    ) -> float:
        """:meth:`swap_chains` with pre-flattened replacement chains.

        Each replacement is ``(index, resource_indices, durations)`` —
        two parallel lists over the stages, resources already mapped
        through the :data:`~repro.sim.stages.RESOURCES` order.  The
        planner's evaluator caches these per (option, tensor) so the hot
        loop never touches :class:`Stage` objects.
        """
        if not replacements:
            return self.base_makespan
        durations = self._durations
        resources = self._resources
        tensors = self._tensors
        ks = self._ks
        rank = self._rank
        next_in_chain = self._next_in_chain
        compute_succ = self._compute_succ
        s1_heap = self._s1_heap
        s1_rank = self._s1_rank
        s2_heap = self._s2_heap
        s2_rank = self._s2_rank
        post = self._post
        ready = self._ready
        n_base = self._num_tasks
        res_index = self._res_index
        seen = set()
        saved: List[Tuple[int, int, int, int, tuple]] = []
        t_influence = float("inf")
        guard: Optional[set] = set() if len(replacements) > 1 else None
        try:
            for pos, new_res, new_dur in replacements:
                if not 0 <= pos < self._num_chains:
                    raise ValueError(f"chain index {pos} out of range")
                if pos in seen:
                    raise ValueError(f"duplicate swap of chain {pos}")
                seen.add(pos)
                if not new_res:
                    raise ValueError("a chain needs at least one stage")
                n_stages = len(new_res)
                if n_stages > _MAX_STAGES:
                    raise ValueError(f"chain has more than {_MAX_STAGES} stages")
                r0, d0 = self._stage0[pos]
                if new_res[0] != r0 or new_dur[0] != d0:
                    raise ValueError(
                        "swap must preserve the chain's leading compute stage"
                    )
                t0 = self._base[pos]
                old_len = self._chain_len[pos]
                # Length of the stage prefix the replacement shares with
                # the resident chain (resource and duration equal at the
                # same position).  The trial trajectory is bit-identical
                # to the base until the first *differing* stage becomes
                # ready — the completion of the last shared stage — so
                # only stages[m:] need scratch tasks and the replay can
                # resume that much later.
                m = 1
                limit = old_len if old_len < n_stages else n_stages
                while m < limit:
                    t = t0 + m
                    if resources[t] != new_res[m] or durations[t] != new_dur[m]:
                        break
                    m += 1
                if m == old_len and m == n_stages:
                    continue  # identical chain: no-op replacement
                tlast = t0 + m - 1
                saved.append(
                    (
                        tlast,
                        next_in_chain[tlast],
                        s1_heap[tlast],
                        s1_rank[tlast],
                        post[tlast],
                    )
                )
                if guard is not None:
                    guard.add(tlast)
                end_last = self._end_time[tlast]
                if end_last < t_influence:
                    t_influence = end_last
                n_new = n_stages - m
                start_id = len(durations)
                if start_id + n_new > _TID_MASK:
                    raise ValueError("too many scratch tasks for the rank encoding")
                if n_new:
                    durations += new_dur[m:]
                    resources += new_res[m:]
                    tensor = tensors[t0]
                    tensors += [tensor] * n_new
                    ks += range(m, n_stages)
                    tensor_bits = tensor << (_K_BITS + _TID_BITS)
                    for k in range(m, n_stages):
                        rank.append(
                            tensor_bits | k << _TID_BITS | (start_id + k - m)
                        )
                    next_in_chain += range(start_id + 1, start_id + n_new)
                    next_in_chain.append(-1)
                    compute_succ += [-1] * n_new
                    s2_heap += [None] * n_new
                    s2_rank += [0] * n_new
                    # Flat successor entries for the scratch tasks (each
                    # points at the next scratch task; the last at none).
                    for t in range(start_id, start_id + n_new - 1):
                        s1_heap.append(ready[resources[t + 1]])
                        s1_rank.append(rank[t + 1])
                        post.append(
                            (resources[t], s1_heap[t], s1_rank[t], None, 0)
                        )
                    s1_heap.append(None)
                    s1_rank.append(0)
                    last = start_id + n_new - 1
                    post.append((resources[last], None, 0, None, 0))
                    next_in_chain[tlast] = start_id
                    s1_heap[tlast] = ready[resources[start_id]]
                    s1_rank[tlast] = rank[start_id]
                else:
                    next_in_chain[tlast] = -1
                    s1_heap[tlast] = None
                    s1_rank[tlast] = 0
                post[tlast] = (
                    resources[tlast],
                    s1_heap[tlast],
                    s1_rank[tlast],
                    s2_heap[tlast],
                    s2_rank[tlast],
                )
            if not saved:
                return self.base_makespan
            ci = bisect_right(self._cp_times, t_influence) - 1
            return self._replay(ci, guard)
        finally:
            del durations[n_base:]
            del resources[n_base:]
            del tensors[n_base:]
            del ks[n_base:]
            del rank[n_base:]
            del next_in_chain[n_base:]
            del compute_succ[n_base:]
            del s1_heap[n_base:]
            del s1_rank[n_base:]
            del s2_heap[n_base:]
            del s2_rank[n_base:]
            del post[n_base:]
            for tlast, old_nic, old_heap, old_rank, old_post in saved:
                next_in_chain[tlast] = old_nic
                s1_heap[tlast] = old_heap
                s1_rank[tlast] = old_rank
                post[tlast] = old_post

    def _state_key(self, ci: int) -> tuple:
        """Order-insensitive form of checkpoint ``ci``'s scheduler state.

        Dispatch sequence numbers are dropped on purpose: they only
        break ties between same-instant completions, which are all
        drained before any dispatch, so they cannot influence scheduling.
        """
        key = self._cp_state_keys[ci]
        if key is None:
            cp_free, cp_ready, cp_events = self._checkpoints[ci][:3]
            key = (
                frozenset(
                    (end, packed & _TID_MASK) for end, packed in cp_events
                ),
                tuple(frozenset(h) for h in cp_ready),
            )
            self._cp_state_keys[ci] = key
        return key

    def _replay(self, ci: int, guard: Optional[set]) -> float:
        durations = self._durations
        post = self._post
        heappush = heapq.heappush
        heappop = heapq.heappop
        tid_mask = _TID_MASK
        tid_bits = _TID_BITS
        cp_times = self._cp_times
        n_cps = len(cp_times)
        inf = float("inf")

        cp_free, cp_ready, cp_events, makespan, seq, cp_events_done = (
            self._checkpoints[ci]
        )
        free = cp_free.copy()
        # Refill the persistent ready heaps in place (their identity is
        # what the s1/s2 successor-heap arrays point at).  The dispatch
        # scan below is unrolled over the four resources, so each batch
        # costs four truthiness tests instead of a loop with subscripts.
        ready = self._ready
        ready0, ready1, ready2, ready3 = ready
        ready0[:] = cp_ready[0]
        ready1[:] = cp_ready[1]
        ready2[:] = cp_ready[2]
        ready3[:] = cp_ready[3]
        events = cp_events.copy()
        seq0 = seq
        in_flight0 = len(events)
        # Reconvergence tests start at the *next* checkpoint: at the
        # restore point the copied state trivially equals the base state
        # even though the trial's successor arrays already diverge.
        ci += 1
        next_cp = cp_times[ci] if ci < n_cps else inf
        now = makespan
        while events:
            now = events[0][0]
            # Reconvergence early-exit: once every swapped chain's
            # leading stage has completed (``guard`` drained; always true
            # for single swaps past the restore point), a trial state
            # identical to the base state snapshotted at the same instant
            # evolves identically forever — the answer is the base
            # makespan and the tail need not be replayed.
            if next_cp <= now:
                while ci < n_cps and cp_times[ci] < now:
                    ci += 1
                if ci < n_cps and cp_times[ci] == now and not guard:
                    bcp = self._checkpoints[ci]
                    bready = bcp[1]
                    if (
                        free == bcp[0]
                        and len(events) == len(bcp[2])
                        and len(ready0) == len(bready[0])
                        and len(ready1) == len(bready[1])
                        and len(ready2) == len(bready[2])
                        and len(ready3) == len(bready[3])
                    ):
                        key = self._state_key(ci)
                        kready = key[1]
                        if (
                            frozenset(
                                (end, packed & tid_mask)
                                for end, packed in events
                            )
                            == key[0]
                            and frozenset(ready3) == kready[3]
                            and frozenset(ready2) == kready[2]
                            and frozenset(ready1) == kready[1]
                            and frozenset(ready0) == kready[0]
                        ):
                            if self.stats is not None:
                                self.stats.events_replayed += (
                                    in_flight0 + (seq - seq0) - len(events)
                                )
                                self.stats.events_reused += cp_events_done + (
                                    self.base_events - bcp[5]
                                )
                            return self.base_makespan
                    ci += 1
                next_cp = cp_times[ci] if ci < n_cps else inf
            if guard:
                while events and events[0][0] == now:
                    tid = heappop(events)[1] & tid_mask
                    if tid in guard:
                        guard.discard(tid)
                    r, h1, rk1, h2, rk2 = post[tid]
                    free[r] += 1
                    if h1 is not None:
                        heappush(h1, (now, rk1))
                    if h2 is not None:
                        heappush(h2, (now, rk2))
            else:
                while events and events[0][0] == now:
                    tid = heappop(events)[1] & tid_mask
                    r, h1, rk1, h2, rk2 = post[tid]
                    free[r] += 1
                    if h1 is not None:
                        heappush(h1, (now, rk1))
                    if h2 is not None:
                        heappush(h2, (now, rk2))
            if ready0 and free[0]:
                fr = free[0]
                while ready0 and fr:
                    tid = heappop(ready0)[1] & tid_mask
                    fr -= 1
                    seq += 1
                    heappush(events, (now + durations[tid], seq << tid_bits | tid))
                free[0] = fr
            if ready1 and free[1]:
                fr = free[1]
                while ready1 and fr:
                    tid = heappop(ready1)[1] & tid_mask
                    fr -= 1
                    seq += 1
                    heappush(events, (now + durations[tid], seq << tid_bits | tid))
                free[1] = fr
            if ready2 and free[2]:
                fr = free[2]
                while ready2 and fr:
                    tid = heappop(ready2)[1] & tid_mask
                    fr -= 1
                    seq += 1
                    heappush(events, (now + durations[tid], seq << tid_bits | tid))
                free[2] = fr
            if ready3 and free[3]:
                fr = free[3]
                while ready3 and fr:
                    tid = heappop(ready3)[1] & tid_mask
                    fr -= 1
                    seq += 1
                    heappush(events, (now + durations[tid], seq << tid_bits | tid))
                free[3] = fr
        if self.stats is not None:
            self.stats.events_replayed += in_flight0 + (seq - seq0)
            self.stats.events_reused += cp_events_done
        # Batch times pop from the event heap in non-decreasing order,
        # so the last one is the makespan (the checkpoint's running
        # makespan is strictly below its own time, hence below ``now``).
        return now if now > makespan else makespan
