"""Fault injection: deterministic perturbations of a training job.

The planner (Algorithms 1/2) assumes a perfectly profiled, static
cluster; one straggling GPU, a degraded NIC, or a contended host CPU
silently invalidates the "near-optimal" strategy it selected.  This
module gives the simulator a first-class fault vocabulary: a
:class:`Fault` perturbs one aspect of a :class:`~repro.config.JobConfig`
(compute profile, link parameters, compression devices), and a
:class:`FaultModel` composes several faults into one degraded cluster
state.

Design rule: **faults perturb inputs, never the engine.**  Every fault
maps a job to another perfectly ordinary job — scaled compute times,
scaled ``ClusterSpec`` bandwidths, degraded ``DeviceProfile``s — so a
faulted timeline is produced by the unmodified deterministic simulator
and passes the full :mod:`repro.sim.validate` invariant battery exactly
like a nominal one.  That is what makes perturbation-ensemble sweeps
(:mod:`repro.core.robust`) trustworthy: there is no second, weaker
scheduling semantics for degraded states.

Transient message loss is modeled in expectation inside the alpha-beta
collective cost: a loss probability ``p`` per transmission inflates the
bandwidth term by the expected transmission count ``1/(1-p)`` and adds
the expected exponential-backoff delay ``base * p / (1 - 2p)`` to the
per-round latency (geometric retry; the k-th retry waits
``base * 2^(k-1)``, converging for ``p < 0.5``).  Deterministic
expected values keep the engine exact; the tail of the retry
distribution is the province of the robust objectives (worst-case /
CVaR), not of the cost model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from repro.config import JobConfig
from repro.utils.units import MS
from repro.utils.validation import check_non_negative

#: Scopes a link-level fault can target.
INTRA_SCOPE = "intra"
INTER_SCOPE = "inter"
_LINK_SCOPES = (INTRA_SCOPE, INTER_SCOPE)


def retransmit_factors(
    loss_rate: float, backoff_base: float
) -> Tuple[float, float]:
    """(bandwidth scale, extra per-round latency) of lossy transmission.

    With per-transmission loss probability ``p``, a message is sent
    ``1/(1-p)`` times in expectation, so effective bandwidth scales by
    ``1-p``; the expected total exponential backoff before the winning
    transmission is ``sum_{k>=1} p^k * base * 2^(k-1) = base*p/(1-2p)``.
    """
    if not 0.0 <= loss_rate < 0.5:
        raise ValueError(
            f"loss_rate must be in [0, 0.5) for the geometric-backoff "
            f"expectation to converge, got {loss_rate}"
        )
    check_non_negative("backoff_base", backoff_base)
    if loss_rate == 0.0:
        return 1.0, 0.0
    return 1.0 - loss_rate, backoff_base * loss_rate / (1.0 - 2.0 * loss_rate)


class Fault(abc.ABC):
    """One deterministic perturbation of a training job."""

    @abc.abstractmethod
    def apply(self, job: JobConfig) -> JobConfig:
        """Return the perturbed copy of ``job`` (never mutates it)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""


@dataclass(frozen=True)
class StragglerGPU(Fault):
    """The representative GPU is a straggler.

    Scales every backprop compute time, the forward time, and the GPU
    compression device (kernels launch and stream slower) by
    ``slowdown``.  In synchronous data parallelism the slowest worker
    paces the iteration, so perturbing the representative GPU models a
    single straggler in the cluster.
    """

    slowdown: float

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def apply(self, job: JobConfig) -> JobConfig:
        model = job.model
        scaled = replace(
            model,
            forward_time=model.forward_time * self.slowdown,
            tensors=tuple(
                replace(t, compute_time=t.compute_time * self.slowdown)
                for t in model.tensors
            ),
        )
        gpu = job.system.gpu
        degraded_gpu = replace(
            gpu,
            launch_overhead=gpu.launch_overhead * self.slowdown,
            throughput=gpu.throughput / self.slowdown,
        )
        return replace(
            job,
            model=scaled,
            system=replace(job.system, gpu=degraded_gpu),
        )

    def describe(self) -> str:
        return f"straggler GPU ({self.slowdown:g}x slower compute/kernels)"


@dataclass(frozen=True)
class DegradedLink(Fault):
    """A communication link runs below its profiled parameters.

    Args:
        scope: ``"intra"`` (NVLink/PCIe fabric) or ``"inter"`` (NIC).
        bandwidth_scale: multiplier in (0, 1] on the link bandwidth.
        extra_latency: seconds added to the per-round latency (alpha).
    """

    scope: str
    bandwidth_scale: float = 1.0
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.scope not in _LINK_SCOPES:
            raise ValueError(
                f"scope must be one of {_LINK_SCOPES}, got {self.scope!r}"
            )
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise ValueError(
                f"bandwidth_scale must be in (0, 1], got {self.bandwidth_scale}"
            )
        check_non_negative("extra_latency", self.extra_latency)

    def apply(self, job: JobConfig) -> JobConfig:
        cluster = job.system.cluster
        if self.scope == INTRA_SCOPE:
            cluster = replace(
                cluster,
                intra_bw=cluster.intra_bw * self.bandwidth_scale,
                intra_latency=cluster.intra_latency + self.extra_latency,
            )
        else:
            cluster = replace(
                cluster,
                inter_bw=cluster.inter_bw * self.bandwidth_scale,
                inter_latency=cluster.inter_latency + self.extra_latency,
            )
        return replace(job, system=replace(job.system, cluster=cluster))

    def describe(self) -> str:
        parts = [f"{self.scope} link"]
        if self.bandwidth_scale != 1.0:
            parts.append(f"bandwidth x{self.bandwidth_scale:g}")
        if self.extra_latency:
            parts.append(f"+{self.extra_latency * 1e6:g}us latency")
        return "degraded " + " ".join(parts)


@dataclass(frozen=True)
class CPUContention(Fault):
    """Host CPU cores are contended by co-located work.

    Scales the CPU compression throughput down by ``slowdown`` and
    removes ``stolen_workers`` cores from the parallel compression pool
    (the paper's testbed shares 48 cores among 8 GPU workers — under
    load, CPU offloading is the first strategy component to collapse).
    """

    slowdown: float = 1.0
    stolen_workers: int = 0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        if self.stolen_workers < 0:
            raise ValueError(
                f"stolen_workers must be >= 0, got {self.stolen_workers}"
            )

    def apply(self, job: JobConfig) -> JobConfig:
        cpu = job.system.cpu
        degraded = replace(
            cpu,
            throughput=cpu.throughput / self.slowdown,
            parallel_workers=max(1, cpu.parallel_workers - self.stolen_workers),
        )
        return replace(job, system=replace(job.system, cpu=degraded))

    def describe(self) -> str:
        return (
            f"CPU contention ({self.slowdown:g}x slower, "
            f"-{self.stolen_workers} workers)"
        )


@dataclass(frozen=True)
class MessageLoss(Fault):
    """Transient message loss with retransmit + exponential backoff.

    Applied in expectation to the alpha-beta link parameters (see the
    module docstring): bandwidth scales by ``1 - loss_rate``, and the
    expected backoff delay joins the per-round latency.

    Args:
        loss_rate: per-transmission loss probability, in [0, 0.5).
        scope: ``"inter"`` (default — lossy Ethernet is the realistic
            case) or ``"intra"``.
        backoff_base: first-retry backoff in seconds.
    """

    loss_rate: float
    scope: str = INTER_SCOPE
    backoff_base: float = 1 * MS

    def __post_init__(self) -> None:
        if self.scope not in _LINK_SCOPES:
            raise ValueError(
                f"scope must be one of {_LINK_SCOPES}, got {self.scope!r}"
            )
        # Range-checks loss_rate / backoff_base as a side effect.
        retransmit_factors(self.loss_rate, self.backoff_base)

    def apply(self, job: JobConfig) -> JobConfig:
        bw_scale, extra_latency = retransmit_factors(
            self.loss_rate, self.backoff_base
        )
        return DegradedLink(
            scope=self.scope,
            bandwidth_scale=bw_scale,
            extra_latency=extra_latency,
        ).apply(job)

    def describe(self) -> str:
        return (
            f"{self.scope} message loss ({self.loss_rate:.2%}, "
            f"retransmit + exp. backoff)"
        )


@dataclass(frozen=True)
class RatioChange(Fault):
    """The adaptive-ratio controller moved the compression ratio.

    Not a hardware degradation: the GraVAC-style runtime controller
    (:mod:`repro.training.adaptive`) tightens or relaxes the active
    sparsification ratio, which changes every compressed tensor's wire
    bytes — the previously selected strategy was priced for a different
    job.  Modeling the move as a fault keeps the design rule intact
    (the input job changes, never the engine) and lets
    :meth:`~repro.core.robust.DegradationTable.replan` re-decide the
    strategy inside its usual time budget.
    """

    ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(
                f"ratio must be in (0, 1], got {self.ratio}"
            )

    def apply(self, job: JobConfig) -> JobConfig:
        from repro.config import GCInfo

        params = dict(job.gc.params)
        params["ratio"] = self.ratio
        return replace(job, gc=GCInfo(job.gc.algorithm, params))

    def describe(self) -> str:
        return f"compression ratio -> {self.ratio:g}"


@dataclass(frozen=True)
class FaultModel:
    """A named, composable set of faults — one degraded cluster state.

    ``FaultModel.nominal()`` (no faults) is the identity; composition
    applies faults in order, each perturbing the previous output.
    """

    name: str
    faults: Tuple[Fault, ...] = ()

    @classmethod
    def nominal(cls) -> "FaultModel":
        """The unperturbed cluster state."""
        return cls(name="nominal", faults=())

    @property
    def is_nominal(self) -> bool:
        return not self.faults

    def apply_to_job(self, job: JobConfig) -> JobConfig:
        """The perturbed job this degraded cluster state induces."""
        for fault in self.faults:
            job = fault.apply(job)
        return job

    def compose(self, other: "FaultModel", name: str = "") -> "FaultModel":
        """Both models' faults, in order."""
        return FaultModel(
            name=name or f"{self.name}+{other.name}",
            faults=self.faults + other.faults,
        )

    def describe(self) -> str:
        if self.is_nominal:
            return f"{self.name}: no perturbation"
        return f"{self.name}: " + "; ".join(f.describe() for f in self.faults)


def default_ensemble() -> List[FaultModel]:
    """The documented perturbation ensemble used by ``repro faults`` and
    ``plan --robust`` (DESIGN.md §5.4).

    One member per fault class the paper's static profile cannot see —
    a straggler GPU, degraded intra/inter links, host CPU contention,
    transient inter-machine message loss — plus a compound
    "degraded-mix" state and the nominal identity.
    """
    return [
        FaultModel.nominal(),
        FaultModel("straggler-1.5x", (StragglerGPU(1.5),)),
        FaultModel("slow-inter-50", (DegradedLink(INTER_SCOPE, 0.5),)),
        FaultModel("slow-intra-50", (DegradedLink(INTRA_SCOPE, 0.5),)),
        FaultModel(
            "cpu-contention", (CPUContention(slowdown=4.0, stolen_workers=3),)
        ),
        FaultModel("lossy-inter-1pct", (MessageLoss(0.01),)),
        FaultModel(
            "degraded-mix",
            (
                StragglerGPU(1.25),
                DegradedLink(INTER_SCOPE, 0.7),
                MessageLoss(0.005),
            ),
        ),
    ]


def ensemble_by_name(name: str) -> List[FaultModel]:
    """Look up a named ensemble (CLI entry point)."""
    ensembles = {"default": default_ensemble}
    try:
        return ensembles[name]()
    except KeyError:
        raise ValueError(
            f"unknown ensemble {name!r}; available: {sorted(ensembles)}"
        ) from None
