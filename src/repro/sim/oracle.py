"""Deliberately naive reference simulator — the differential oracle.

This module re-implements the scheduling semantics of
:mod:`repro.sim.engine` with the dumbest data structures that can
possibly work: flat Python lists, ``min()`` scans instead of heaps, no
checkpoints, no incremental paths, no packed ranks.  It is O(n²) and
proud of it — the point is that it is *obviously correct by inspection*,
so it can serve as the ground truth the optimized engine and the
incremental delta-simulator are differentially tested against
(``tests/sim/test_oracle.py`` asserts **exact float equality**, not
approximate agreement: the planner compares candidate strategies by
exact floats, so an ulp of drift in the fast paths could flip a
decision).

Scheduling model (identical to the engine, restated independently):

* Each resource has ``capacity`` identical workers.
* Stage *k* of a tensor becomes ready when stage *k-1* of the same
  tensor completes; the compute stage of chain *i* additionally waits
  for chain *i-1*'s compute stage (one backward pass).
* At every instant, all completions at that instant are processed
  before anything is dispatched; then each resource runs, among its
  ready stages, the ones with the smallest
  ``(ready_time, tensor_index, stage_index)`` until its workers are
  exhausted.

The float arithmetic is the same single operation the engine performs
(``end = now + duration``) applied in the same order, which is what
makes exact equality attainable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import ScheduledStage, Timeline
from repro.sim.stages import CPU, RESOURCES, TensorChain


class _Task:
    """One stage instance with its scheduling state."""

    __slots__ = (
        "tensor", "k", "stage", "resource_index",
        "ready", "start", "end", "succ", "compute_succ",
    )

    def __init__(self, tensor: int, k: int, stage, resource_index: int):
        self.tensor = tensor
        self.k = k
        self.stage = stage
        self.resource_index = resource_index
        self.ready: Optional[float] = None  # None until the predecessor completes
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.succ: Optional["_Task"] = None
        self.compute_succ: Optional["_Task"] = None


def simulate_reference(
    chains: Sequence[TensorChain],
    cpu_capacity: int = 1,
    capacities: Optional[Dict[str, int]] = None,
) -> Timeline:
    """Simulate ``chains`` naively and return the full timeline.

    Same contract as :func:`repro.sim.engine.simulate`; the returned
    :class:`~repro.sim.engine.Timeline` compares equal to the engine's
    (same stage records, same floats, same order).
    """
    if not chains:
        raise ValueError("nothing to simulate")
    resource_capacity = {name: 1 for name in RESOURCES}
    resource_capacity[CPU] = max(1, cpu_capacity)
    if capacities:
        resource_capacity.update(capacities)
    res_index = {name: i for i, name in enumerate(RESOURCES)}

    tasks: List[_Task] = []
    prev_compute: Optional[_Task] = None
    for chain in chains:
        prev: Optional[_Task] = None
        for k, stage in enumerate(chain.stages):
            task = _Task(chain.tensor_index, k, stage, res_index[stage.resource])
            if prev is not None:
                prev.succ = task
            tasks.append(task)
            prev = task
        first = tasks[-len(chain.stages)]
        if prev_compute is not None:
            prev_compute.compute_succ = first
        prev_compute = first

    free = [resource_capacity[name] for name in RESOURCES]
    ready: List[List[_Task]] = [[] for _ in RESOURCES]
    running: List[_Task] = []

    def dispatch(now: float) -> None:
        for r in range(len(RESOURCES)):
            pool = ready[r]
            while pool and free[r] > 0:
                best = min(pool, key=lambda t: (t.ready, t.tensor, t.k))
                pool.remove(best)
                free[r] -= 1
                best.start = now
                best.end = now + best.stage.duration
                running.append(best)

    first = tasks[0]
    first.ready = 0.0
    ready[first.resource_index].append(first)
    dispatch(0.0)

    makespan = 0.0
    while running:
        now = min(task.end for task in running)
        if now > makespan:
            makespan = now
        # Drain every completion at this exact instant before dispatching,
        # like the engine — simultaneous readiness ties must resolve by
        # priority, not by completion-discovery order.
        finished = [task for task in running if task.end == now]
        for task in finished:
            running.remove(task)
            free[task.resource_index] += 1
            for succ in (task.succ, task.compute_succ):
                if succ is not None:
                    succ.ready = now
                    ready[succ.resource_index].append(succ)
        dispatch(now)

    scheduled = [
        ScheduledStage(
            tensor_index=task.tensor,
            stage_index=task.k,
            resource=task.stage.resource,
            kind=task.stage.kind,
            label=task.stage.label,
            duration=task.stage.duration,
            ready=task.ready,
            start=task.start,
            end=task.end,
        )
        for task in tasks
    ]
    scheduled.sort(key=lambda s: (s.start, s.tensor_index, s.stage_index))
    return Timeline(stages=tuple(scheduled), makespan=makespan)


def reference_makespan(
    chains: Sequence[TensorChain],
    cpu_capacity: int = 1,
    capacities: Optional[Dict[str, int]] = None,
) -> float:
    """The naive simulation's makespan only."""
    return simulate_reference(
        chains, cpu_capacity=cpu_capacity, capacities=capacities
    ).makespan
