"""Vectorized batch pricing of single-chain swaps (DESIGN.md §5.7).

GetBestOption and the refinement sweeps price *every* candidate option
of one tensor against the same resident base strategy.  The scalar path
(:meth:`~repro.sim.incremental.IncrementalSimulator.swap_chains_flat`)
replays the event suffix once per candidate — thousands of heap
operations each.  This module prices all candidates of one tensor in
one scalar replay plus a single vectorized pass: per-task quantities
(ready, start, end, resource availability) become numpy vectors over
the candidates.

Why a fixed processing order is sound
-------------------------------------
With strictly positive durations the engine's per-resource dispatch
sequence is exactly its ready queue's priority order: the sequence is
sorted by ``(ready_time, rank)`` (rank = the packed ``(tensor, stage,
tid)`` tie-break), every start is ``max(ready, resource_free_time)``,
and every ready is its predecessor's end.  Conversely, *any* schedule
with those three properties is the engine's — at the first position two
such schedules could differ, the sortedness and the free-time
recurrence force the same task and the same floats.  The batch
evaluator therefore:

1. prices one *representative* candidate with a scalar replay that
   records its true post-divergence dispatch order (sibling candidates
   perturb the base schedule the same way — the same stages are removed,
   similar ones inserted — so their dispatch orders overwhelmingly
   agree with the representative's, where the unperturbed *base* order
   is frequently wrong about how delayed readies interleave),
2. replays the remaining candidates along that order, computing
   starts/ends with the engine's own float operations (``max`` and
   ``+`` on the identical values — results are bit-identical, not
   approximate), with each candidate's replacement stages inserted into
   the walk by their ``(ready, rank)`` priority, and
3. verifies per resource that every adjacent dispatch pair it produced
   is ``(ready, rank)``-sorted.  Candidates whose true order diverges
   from the representative's fail the check and are re-priced by the
   scalar replay — the fast path can be wrong about the *order it
   tried*, never about a result it returns.

Zero-duration stages break the sortedness property itself (the engine
runs several dispatch rounds at one instant, and late rounds can
dispatch higher-priority work after lower-priority work); any candidate
or base-suffix task with a zero duration falls back to the scalar path.

The module is import-safe without numpy (``numpy_available()`` gates
the fast path; callers fall back to the scalar replay).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

from repro.sim.incremental import (
    IncrementalSimulator,
    _K_BITS,
    _MAX_STAGES,
    _TID_BITS,
    _TID_MASK,
)

#: A candidate replacement chain in the evaluator's pre-flattened form:
#: parallel (resource index, duration) lists over the stages.
FlatChain = Tuple[Sequence[int], Sequence[float]]

_INF = float("inf")


def numpy_available() -> bool:
    """True when the vectorized path can run at all."""
    return _np is not None


def _sim_arrays(sim: IncrementalSimulator) -> dict:
    """Numpy mirrors of the simulator's (static) base arrays, cached on
    the instance.  A rebase builds a new simulator, so the cache can
    never go stale; scratch tasks appended during scalar swaps are
    always truncated before control returns here."""
    cache = getattr(sim, "_batch_arrays", None)
    if cache is None:
        n = sim._num_tasks
        start = _np.array(sim._start_time, dtype=_np.float64)
        end = _np.array(sim._end_time, dtype=_np.float64)
        dur = _np.array(sim._durations, dtype=_np.float64)
        res = _np.array(sim._resources, dtype=_np.int64)
        rank = _np.array(sim._rank, dtype=_np.int64)
        nic = _np.array(sim._next_in_chain, dtype=_np.int64)
        cs = _np.array(sim._compute_succ, dtype=_np.int64)
        # Every task has at most one predecessor (previous chain stage,
        # or the previous tensor's compute stage for a compute stage).
        pred = _np.full(n, -1, dtype=_np.int64)
        src = _np.nonzero(nic >= 0)[0]
        pred[nic[src]] = src
        src = _np.nonzero(cs >= 0)[0]
        pred[cs[src]] = src
        ready = _np.where(pred >= 0, end[_np.maximum(pred, 0)], 0.0)
        cache = {
            "start": start,
            "end": end,
            "dur": dur,
            "res": res,
            "rank": rank,
            "pred": pred,
            "ready": ready,
        }
        sim._batch_arrays = cache
    return cache


def _validate(sim: IncrementalSimulator, index: int, variants) -> None:
    """Mirror ``swap_chains_flat``'s input validation exactly."""
    if not 0 <= index < sim._num_chains:
        raise ValueError(f"chain index {index} out of range")
    r0, d0 = sim._stage0[index]
    for new_res, new_dur in variants:
        if not new_res:
            raise ValueError("a chain needs at least one stage")
        if len(new_res) > _MAX_STAGES:
            raise ValueError(f"chain has more than {_MAX_STAGES} stages")
        if new_res[0] != r0 or new_dur[0] != d0:
            raise ValueError(
                "swap must preserve the chain's leading compute stage"
            )


def _record_replay(
    sim: IncrementalSimulator,
    index: int,
    vres: Sequence[int],
    vdur: Sequence[float],
) -> Tuple[float, List[Tuple[int, float]], bool]:
    """Scalar replay of one swap that records its dispatch order.

    Semantically ``sim.swap_chains_flat([(index, vres, vdur)])`` (same
    scratch-task mechanics, checkpoint restore, reconvergence early-exit
    and stats accounting), except the resume point is pinned to the
    chain's compute completion — the batch walk's uniform divergence
    instant — and every dispatch is recorded as ``(tid, ready_time)``.

    Returns ``(makespan, dispatch order, reconverged)``; when the replay
    reconverged with the base run, the order only covers dispatches up
    to the reconvergence instant (the remainder is the base's own
    dispatch order — the states are identical from there on).
    """
    durations = sim._durations
    resources = sim._resources
    tensors = sim._tensors
    ks = sim._ks
    rank = sim._rank
    next_in_chain = sim._next_in_chain
    compute_succ = sim._compute_succ
    s1_heap = sim._s1_heap
    s1_rank = sim._s1_rank
    s2_heap = sim._s2_heap
    s2_rank = sim._s2_rank
    ready = sim._ready
    n_base = sim._num_tasks
    t0 = sim._base[index]
    saved = (next_in_chain[t0], s1_heap[t0], s1_rank[t0])
    order: List[Tuple[int, float]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    tid_mask = _TID_MASK
    tid_bits = _TID_BITS
    try:
        n_stages = len(vres)
        n_new = n_stages - 1
        start_id = len(durations)
        if start_id + n_new > _TID_MASK:
            raise ValueError("too many scratch tasks for the rank encoding")
        if n_new:
            durations += list(vdur[1:])
            resources += list(vres[1:])
            tensor = tensors[t0]
            tensors += [tensor] * n_new
            ks += range(1, n_stages)
            tensor_bits = tensor << (_K_BITS + _TID_BITS)
            for k in range(1, n_stages):
                rank.append(tensor_bits | k << _TID_BITS | (start_id + k - 1))
            next_in_chain += range(start_id + 1, start_id + n_new)
            next_in_chain.append(-1)
            compute_succ += [-1] * n_new
            s2_heap += [None] * n_new
            s2_rank += [0] * n_new
            for t in range(start_id, start_id + n_new - 1):
                s1_heap.append(ready[resources[t + 1]])
                s1_rank.append(rank[t + 1])
            s1_heap.append(None)
            s1_rank.append(0)
            next_in_chain[t0] = start_id
            s1_heap[t0] = ready[resources[start_id]]
            s1_rank[t0] = rank[start_id]
        else:
            next_in_chain[t0] = -1
            s1_heap[t0] = None
            s1_rank[t0] = 0

        cp_times = sim._cp_times
        n_cps = len(cp_times)
        ci = bisect_right(cp_times, sim._end_time[t0]) - 1
        cp_free, cp_ready, cp_events, makespan, seq, cp_events_done = (
            sim._checkpoints[ci]
        )
        free = cp_free.copy()
        ready0, ready1, ready2, ready3 = ready
        ready0[:] = cp_ready[0]
        ready1[:] = cp_ready[1]
        ready2[:] = cp_ready[2]
        ready3[:] = cp_ready[3]
        events = cp_events.copy()
        seq0 = seq
        in_flight0 = len(events)
        ci += 1
        next_cp = cp_times[ci] if ci < n_cps else _INF
        now = makespan
        while events:
            now = events[0][0]
            if next_cp <= now:
                while ci < n_cps and cp_times[ci] < now:
                    ci += 1
                if ci < n_cps and cp_times[ci] == now:
                    bcp = sim._checkpoints[ci]
                    bready = bcp[1]
                    if (
                        free == bcp[0]
                        and len(events) == len(bcp[2])
                        and len(ready0) == len(bready[0])
                        and len(ready1) == len(bready[1])
                        and len(ready2) == len(bready[2])
                        and len(ready3) == len(bready[3])
                    ):
                        key = sim._state_key(ci)
                        kready = key[1]
                        if (
                            frozenset(
                                (end, packed & tid_mask)
                                for end, packed in events
                            )
                            == key[0]
                            and frozenset(ready3) == kready[3]
                            and frozenset(ready2) == kready[2]
                            and frozenset(ready1) == kready[1]
                            and frozenset(ready0) == kready[0]
                        ):
                            if sim.stats is not None:
                                sim.stats.events_replayed += (
                                    in_flight0 + (seq - seq0) - len(events)
                                )
                                sim.stats.events_reused += cp_events_done + (
                                    sim.base_events - bcp[5]
                                )
                            return sim.base_makespan, order, True
                    ci += 1
                next_cp = cp_times[ci] if ci < n_cps else _INF
            while events and events[0][0] == now:
                tid = heappop(events)[1] & tid_mask
                free[resources[tid]] += 1
                h = s1_heap[tid]
                if h is not None:
                    heappush(h, (now, s1_rank[tid]))
                h = s2_heap[tid]
                if h is not None:
                    heappush(h, (now, s2_rank[tid]))
            for r in range(4):
                heap = ready[r]
                fr = free[r]
                while heap and fr:
                    rt, packed = heappop(heap)
                    tid = packed & tid_mask
                    fr -= 1
                    seq += 1
                    order.append((tid, rt))
                    heappush(
                        events, (now + durations[tid], seq << tid_bits | tid)
                    )
                free[r] = fr
        if sim.stats is not None:
            sim.stats.events_replayed += in_flight0 + (seq - seq0)
            sim.stats.events_reused += cp_events_done
        return (now if now > makespan else makespan), order, False
    finally:
        del durations[n_base:]
        del resources[n_base:]
        del tensors[n_base:]
        del ks[n_base:]
        del rank[n_base:]
        del next_in_chain[n_base:]
        del compute_succ[n_base:]
        del s1_heap[n_base:]
        del s1_rank[n_base:]
        del s2_heap[n_base:]
        del s2_rank[n_base:]
        next_in_chain[t0], s1_heap[t0], s1_rank[t0] = saved


def batch_swap_makespans(
    sim: IncrementalSimulator,
    index: int,
    variants: Sequence[FlatChain],
) -> List[float]:
    """Makespans of ``sim`` with chain ``index`` replaced by each variant.

    Bit-identical to ``[sim.swap_chains_flat([(index, r, d)]) for r, d
    in variants]`` — the vectorized pass either reproduces the engine's
    schedule exactly or detects that it cannot (the sortedness check)
    and re-prices that candidate through the scalar replay.
    """
    _validate(sim, index, variants)
    results: List[float] = [0.0] * len(variants)
    t0 = sim._base[index]
    old_len = sim._chain_len[index]
    old_res = sim._resources[t0 : t0 + old_len]
    old_dur = sim._durations[t0 : t0 + old_len]
    stats = sim.stats

    live: List[int] = []
    for c, (vres, vdur) in enumerate(variants):
        if (
            len(vres) == old_len
            and list(vres) == old_res
            and list(vdur) == old_dur
        ):
            results[c] = sim.base_makespan  # identical chain: no-op
        else:
            live.append(c)
    if not live:
        return results

    def scalar(cands: Sequence[int], count_fallback: bool) -> None:
        if count_fallback and stats is not None:
            fallbacks = getattr(stats, "batch_fallbacks", None)
            if fallbacks is not None:
                stats.batch_fallbacks = fallbacks + len(cands)
        for c in cands:
            vres, vdur = variants[c]
            results[c] = sim.swap_chains_flat([(index, vres, vdur)])

    if _np is None or sim._durations[t0] <= 0.0:
        # No numpy, or a zero-duration compute stage (same-instant
        # dispatch rounds precede the divergence becoming visible).
        scalar(live, count_fallback=False)
        return results

    arrays = _sim_arrays(sim)
    start = arrays["start"]
    end = arrays["end"]
    t_cut = sim._end_time[t0]  # divergence: the compute stage's end

    # The trial schedule is bit-identical to the base before t_cut (the
    # replacement stages first become ready at the compute completion),
    # so only base tasks dispatched at or after t_cut are re-derived.
    # The resident chain's own synchronization stages are excluded: the
    # candidate's stages stand in for them.
    proc_mask = start >= t_cut
    proc_mask[t0 : t0 + old_len] = False
    p = _np.nonzero(proc_mask)[0]
    if len(p) and float(arrays["dur"][p].min()) <= 0.0:
        scalar(live, count_fallback=False)  # zero-duration suffix task
        return results

    batch: List[int] = []
    chains: List[Tuple[List[int], List[float]]] = []
    for c in live:
        vres, vdur = variants[c]
        if len(vdur) > 1 and min(vdur[1:]) <= 0.0:
            scalar([c], count_fallback=False)
        else:
            batch.append(c)
            chains.append((list(vres), list(vdur)))
    if not batch:
        return results

    # -- representative replay --------------------------------------------
    # One scalar replay prices the first candidate exactly *and* records
    # the true dispatch order its perturbation induces, which the
    # remaining candidates are walked along.
    rep = batch.pop(0)
    rep_chain = chains.pop(0)
    rep_makespan, rec, _reconverged = _record_replay(
        sim, index, rep_chain[0], rep_chain[1]
    )
    results[rep] = rep_makespan
    if not batch:
        return results

    # Base dispatch order of the suffix — the reconvergence tail of the
    # representative order, and the priority order within one resource
    # for everything the representative left unperturbed.
    base_order = p[
        _np.lexsort((arrays["rank"][p], arrays["ready"][p], start[p]))
    ].tolist()
    p_list: List[int] = []
    p_gate_ready: List[float] = []  # gate readies (representative's view)
    taken = dict.fromkeys(base_order, False)
    for tid, rt in rec:
        # The recording covers scratch tasks and (rarely) pre-divergence
        # tasks between the restore point and t_cut; keep suffix tasks.
        if taken.get(tid) is False:
            taken[tid] = True
            p_list.append(tid)
            p_gate_ready.append(rt)
    if len(p_list) < len(base_order):
        base_ready = arrays["ready"]
        for tid in base_order:
            if not taken[tid]:
                p_list.append(tid)
                p_gate_ready.append(float(base_ready[tid]))

    # -- candidate-independent per-call state -----------------------------
    num_proc = len(p_list)
    p_arr = _np.array(p_list, dtype=_np.int64)
    p_res = arrays["res"][p_arr].tolist()
    p_rank = arrays["rank"][p_arr].tolist()
    p_dur = arrays["dur"][p_arr].tolist()
    p_base_ready = arrays["ready"][p_arr].tolist()
    pos = _np.full(sim._num_tasks, -1, dtype=_np.int64)
    pos[p_arr] = _np.arange(num_proc)
    pred = arrays["pred"][p_arr]
    pred_pos = _np.where(pred >= 0, pos[_np.maximum(pred, 0)], -1).tolist()

    pre = _np.nonzero(start < t_cut)[0]
    prefix_max = float(end[pre].max()) if len(pre) else 0.0

    C = len(batch)
    n_res = 4
    caps = sim._capacity
    violated = _np.zeros(C, dtype=bool)
    run_max = _np.full(C, prefix_max)
    E = _np.empty((num_proc, C))
    AR = _np.arange(C)

    # Per-resource state.  ``avail`` holds each candidate's next free
    # time (a (C, W) worker matrix for W > 1); ``prev`` the last
    # dispatch's (ready, rank) for the sortedness check, with sparse
    # per-candidate overrides after a chain-stage dispatch; ``queue``
    # the upcoming suffix tasks' gate readies for the early-release
    # logic below.
    avail: list = [None] * n_res
    avail_is_view = [False] * n_res
    prev_ready: list = [-_INF] * n_res
    prev_rank: list = [-1] * n_res
    overrides: list = [dict() for _ in range(n_res)]
    sp_ready = [_np.full(C, _INF) for _ in range(n_res)]
    sp_rank = [_np.zeros(C, dtype=_np.int64) for _ in range(n_res)]
    sp_dur = [_np.zeros(C) for _ in range(n_res)]
    sp_min = [_INF] * n_res
    pending_n = [0] * n_res
    queue_ready: List[List[float]] = [[] for _ in range(n_res)]
    queue_pos = [0] * n_res
    for i in range(num_proc):
        queue_ready[p_res[i]].append(p_gate_ready[i])

    res_of_pre = arrays["res"][pre]
    for r in range(n_res):
        rp = pre[res_of_pre == r]
        if caps[r] == 1:
            a0 = float(end[rp].max()) if len(rp) else 0.0
            avail[r] = _np.full(C, a0)
        else:
            workers = [0.0] * caps[r]
            if len(rp):
                rp_order = rp[
                    _np.lexsort(
                        (arrays["rank"][rp], arrays["ready"][rp], start[rp])
                    )
                ]
                for e in end[rp_order].tolist():
                    w = workers.index(min(workers))
                    workers[w] = e
            avail[r] = _np.tile(_np.array(workers), (C, 1))
        if len(rp):
            last = rp[_np.lexsort((arrays["rank"][rp], arrays["ready"][rp]))][-1]
            prev_ready[r] = float(arrays["ready"][last])
            prev_rank[r] = int(arrays["rank"][last])

    # -- per-candidate chain state ----------------------------------------
    tensor_bits = sim._tensors[t0] << (_K_BITS + _TID_BITS)
    cur_stage = [1] * C  # stage 0 is the (shared) compute stage

    def load_stage(c: int, stage_ready: float) -> None:
        """Queue candidate ``c``'s next chain stage as pending work."""
        k = cur_stage[c]
        vres, vdur = chains[c]
        if k >= len(vres):
            return
        r = vres[k]
        sp_ready[r][c] = stage_ready
        sp_rank[r][c] = tensor_bits | k << _TID_BITS
        sp_dur[r][c] = vdur[k]
        pending_n[r] += 1
        if stage_ready < sp_min[r]:
            sp_min[r] = stage_ready

    def dispatch_stage(r: int, c: int) -> None:
        """Dispatch candidate ``c``'s pending stage on resource ``r``
        (scalar path — chain stages are few, suffix tasks are many)."""
        rdy = float(sp_ready[r][c])
        rk = int(sp_rank[r][c])
        d = float(sp_dur[r][c])
        sp_ready[r][c] = _INF
        pending_n[r] -= 1
        sp_min[r] = float(sp_ready[r].min()) if pending_n[r] else _INF
        if caps[r] == 1:
            if avail_is_view[r]:
                avail[r] = avail[r].copy()
                avail_is_view[r] = False
            free_at = float(avail[r][c])
            begin = rdy if rdy > free_at else free_at
            finish = begin + d
            avail[r][c] = finish
        else:
            row = avail[r][c]
            w = int(row.argmin())
            free_at = float(row[w])
            begin = rdy if rdy > free_at else free_at
            finish = begin + d
            row[w] = finish
        last = overrides[r].get(c)
        if last is None:
            pb = prev_ready[r]
            pb = float(pb[c]) if isinstance(pb, _np.ndarray) else pb
            pr = prev_rank[r]
        else:
            pb, pr = last
        if rdy < pb or (rdy == pb and rk < pr):
            violated[c] = True
        overrides[r][c] = (rdy, rk)
        if finish > run_max[c]:
            run_max[c] = finish
        cur_stage[c] += 1
        load_stage(c, finish)

    def release(r: int, gate_ready, gate_rank: int) -> None:
        """Dispatch every pending chain stage on ``r`` whose (ready,
        rank) precedes the gate (vector compare across candidates)."""
        while pending_n[r]:
            spr = sp_ready[r]
            mask = spr < gate_ready
            ties = spr == gate_ready
            if ties.any():
                mask = mask | (ties & (sp_rank[r] < gate_rank))
            hits = _np.nonzero(mask)[0]
            if not len(hits):
                return
            for c in hits.tolist():
                dispatch_stage(r, c)

    for c in range(C):
        load_stage(c, t_cut)

    # -- the batched suffix walk ------------------------------------------
    for i in range(num_proc):
        r = p_res[i]
        rk = p_rank[i]
        d = p_dur[i]
        pp = pred_pos[i]
        rdy = E[pp] if pp >= 0 else p_base_ready[i]
        # Early release: a pending chain stage on *another* resource may
        # precede everything left there (judged by the representative's
        # readies — the sortedness check still guards the outcome).
        # Without this, a chain routed through a resource the base never
        # touches (e.g. CPU compression against an uncompressed base)
        # would stall until the final flush and mis-order its downstream
        # stages.
        for q in range(n_res):
            if pending_n[q] and q != r:
                qr = queue_ready[q]
                qp = queue_pos[q]
                if qp >= len(qr):
                    release(q, _INF, -1)
                elif sp_min[q] < qr[qp]:
                    release(q, qr[qp], -1)
        if pending_n[r]:
            release(r, rdy, rk)
        queue_pos[r] += 1
        # Sortedness check for this dispatch against the previous one.
        pb = prev_ready[r]
        if isinstance(rdy, float) and isinstance(pb, float):
            if rdy < pb or (rdy == pb and rk < prev_rank[r]):
                violated[:] = True
        else:
            lt = rdy < pb
            if rk < prev_rank[r]:
                lt = lt | (rdy == pb)
            violated |= lt
        ovr = overrides[r]
        if ovr:
            for c, (orr, ork) in ovr.items():
                rc = rdy if isinstance(rdy, float) else float(rdy[c])
                if rc < orr or (rc == orr and rk < ork):
                    violated[c] = True
            ovr.clear()
        prev_ready[r] = rdy
        prev_rank[r] = rk
        row = E[i]
        if caps[r] == 1:
            _np.maximum(rdy, avail[r], out=row)
            row += d
            avail[r] = row
            avail_is_view[r] = True
        else:
            workers = avail[r]
            w = workers.argmin(axis=1)
            _np.maximum(rdy, workers[AR, w], out=row)
            row += d
            workers[AR, w] = row

    # Flush chain stages past the last suffix task of their resource (a
    # dispatch can queue the *next* stage on an earlier resource, hence
    # the outer loop).
    while pending_n[0] or pending_n[1] or pending_n[2] or pending_n[3]:
        for r in range(n_res):
            while pending_n[r]:
                for c in _np.nonzero(sp_ready[r] < _INF)[0].tolist():
                    dispatch_stage(r, c)

    if num_proc:
        _np.maximum(run_max, E.max(axis=0), out=run_max)
    fallbacks = []
    priced_scratch = 0
    for j, c in enumerate(batch):
        if violated[j]:
            fallbacks.append(c)
        else:
            results[c] = float(run_max[j])
            priced_scratch += len(chains[j][0]) - 1
    if stats is not None:
        priced = C - len(fallbacks)
        if priced:
            # Same units as the scalar replay counters: one "event" per
            # completed task.  A naive from-scratch run of a trial would
            # process every pre-divergence task too; those are the
            # events the batch walk reuses.
            reused = sim._num_tasks - (old_len - 1) - num_proc
            stats.events_replayed += priced * num_proc + priced_scratch
            stats.events_reused += priced * reused
    scalar(fallbacks, count_fallback=True)
    return results


#: Relative safety margin applied to every lower bound.  The bound's
#: work terms are numpy sums whose rounding order differs from the
#: engine's own ``max``/``+`` fold, so the raw sum can exceed the exact
#: schedule value by a few hundred ULPs (~1e-13 relative).  Shrinking
#: the bound by 1e-9 relative dwarfs that noise while costing
#: essentially no pruning power (real candidate gaps are >= 1e-3
#: relative), keeping "lower bound" true in float arithmetic, not just
#: in real arithmetic.
_LB_MARGIN = 1e-9


def suffix_lower_bounds(
    sim: IncrementalSimulator, index: int, variants: Sequence[FlatChain]
):
    """Sound per-candidate lower bounds on the swapped makespan.

    For each candidate replacement chain of tensor ``index``, computes a
    bound provably <= ``sim.swap_chains_flat([(index, vres, vdur)])`` in
    one numpy pass over the base arrays — no replay, no ordering
    assumptions (zero-duration stages are fine).  Returns ``None`` when
    numpy is unavailable.

    Derivation.  Let ``t_cut`` be the completion of the chain's compute
    stage: the trial schedule is identical to the base *before* t_cut
    (the swap's first differing task only becomes ready at t_cut, and
    the engine processes instants monotonically), so every other task is
    either *pre* (base start < t_cut, times frozen) or *post* (trial
    start >= t_cut).  On a capacity-1 resource all post tasks serialize
    after the last pre task's end ``E_r`` (non-overlap + start order),
    hence ``makespan >= max(t_cut, E_r) + sum(post durations)``; on a
    W-worker resource the window argument gives ``makespan >= t_cut +
    sum(post durations)/W``.  Post work counts the base's post tasks
    minus the replaced old tail plus the candidate's stages; the
    candidate chain itself also bounds via its serial dependency from
    t_cut.  ``makespan >= max(pre ends)`` always.  All inputs are exact
    engine floats; only the duration sums introduce rounding, which
    :data:`_LB_MARGIN` absorbs.

    (A strictly stronger release-date relaxation — per-task earliest
    -ready bounds via frozen ancestors, maximized over thresholds — was
    prototyped and measured: on this engine's schedules the extra
    tightness never exceeded the contention bubbles it cannot model, so
    it pruned nothing the work bound missed while costing ~15x more per
    call.  The cheap bound is the right trade.)
    """
    if _np is None:
        return None
    arrays = _sim_arrays(sim)
    t0 = sim._base[index]
    old_len = sim._chain_len[index]
    t_cut = sim._end_time[t0]
    start = arrays["start"]
    end = arrays["end"]
    dur = arrays["dur"]
    res = arrays["res"]
    caps = sim._capacity
    n_res = len(caps)

    pre = start < t_cut
    post = ~pre
    post_work = _np.bincount(res[post], weights=dur[post], minlength=n_res)
    for t in range(t0 + 1, t0 + old_len):  # replaced old tail
        post_work[sim._resources[t]] -= sim._durations[t]
    prefix_max = float(end[pre].max()) if pre.any() else 0.0
    if prefix_max < t_cut:
        prefix_max = t_cut
    # R[r]: earliest instant resource r can run post work.
    R = [t_cut] * n_res
    for r in range(n_res):
        if caps[r] == 1:
            mask = pre & (res == r)
            if mask.any():
                e = float(end[mask].max())
                if e > t_cut:
                    R[r] = e

    base_post = post_work.tolist()
    bounds = []
    for vres, vdur in variants:
        lb = prefix_max
        cand_work = [0.0] * n_res
        tail = 0.0
        for r, d in zip(vres[1:], vdur[1:]):
            cand_work[r] += d
            tail += d
        for r in range(n_res):
            work = base_post[r] + cand_work[r]
            if work > 0.0:
                if caps[r] == 1:
                    b = R[r] + work
                else:
                    b = t_cut + work / caps[r]
                if b > lb:
                    lb = b
        if tail > 0.0:
            r1 = vres[1]
            b = (R[r1] if caps[r1] == 1 else t_cut) + tail
            if b > lb:
                lb = b
        bounds.append(lb - lb * _LB_MARGIN)
    return bounds
