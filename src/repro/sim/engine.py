"""Deterministic discrete-event engine for DDL iteration timelines.

Scheduling model
----------------
* Each resource has ``capacity`` identical workers (1 for the GPU stream
  and the links; >1 for the CPU compression pool).
* Stage *k* of a tensor becomes ready when stage *k-1* of the same tensor
  completes.  Backprop compute stages additionally chain across tensors
  (tensor *i*'s compute waits for tensor *i-1*'s — one backward pass).
* A free worker runs, among the stages ready at that moment, the one with
  the smallest ``(ready_time, tensor_index, stage_index)`` — FIFO by
  readiness with deterministic tie-breaking.  This mirrors how frameworks
  enqueue collectives/kernels in gradient-ready order, and is what makes
  GPU compression kernels delay subsequent backprop computation.

The engine is exact and deterministic: identical inputs give identical
timelines, the property Espresso's decision algorithm relies on when it
compares candidate strategies by simulated iteration time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.stages import COMPUTE, CPU, GPU, RESOURCES, Stage, TensorChain


@dataclass(frozen=True)
class ScheduledStage:
    """A stage with its simulated schedule."""

    tensor_index: int
    stage_index: int
    resource: str
    kind: str
    label: str
    duration: float
    ready: float
    start: float
    end: float


@dataclass(frozen=True)
class Timeline:
    """The simulated iteration timeline.

    Attributes:
        stages: all scheduled stages, in start order.
        makespan: completion time of the last stage (backprop start = 0).
    """

    stages: Sequence[ScheduledStage]
    makespan: float

    def by_resource(self, resource: str) -> List[ScheduledStage]:
        """Stages on ``resource``, ordered by start time."""
        return [s for s in self.stages if s.resource == resource]

    def by_tensor(self, tensor_index: int) -> List[ScheduledStage]:
        """Stages of one tensor, ordered by stage index."""
        selected = [s for s in self.stages if s.tensor_index == tensor_index]
        selected.sort(key=lambda s: s.stage_index)
        return selected

    def tensor_finish(self, tensor_index: int) -> float:
        """When the tensor's last stage (its synchronization) completes."""
        return max(s.end for s in self.stages if s.tensor_index == tensor_index)


def simulate_makespan(
    chains: Sequence[TensorChain],
    cpu_capacity: int = 1,
    capacities: Optional[Dict[str, int]] = None,
) -> float:
    """Fast path: the makespan only, without materializing the timeline.

    The decision algorithm evaluates thousands of candidate strategies
    and needs only F(S); skipping the per-stage record construction makes
    that loop several times faster.  Scheduling semantics are identical
    to :func:`simulate`.
    """
    return _simulate(chains, cpu_capacity, capacities, collect=False)[1]


def simulate(
    chains: Sequence[TensorChain],
    cpu_capacity: int = 1,
    capacities: Optional[Dict[str, int]] = None,
) -> Timeline:
    """Simulate the per-tensor stage chains and return the timeline.

    Args:
        chains: one chain per tensor, in backprop completion order.
        cpu_capacity: parallel workers of the CPU compression pool.
        capacities: optional per-resource capacity overrides.
    """
    scheduled, makespan = _simulate(chains, cpu_capacity, capacities, collect=True)
    scheduled.sort(key=lambda s: (s.start, s.tensor_index, s.stage_index))
    return Timeline(stages=tuple(scheduled), makespan=makespan)


def _simulate(
    chains: Sequence[TensorChain],
    cpu_capacity: int,
    capacities: Optional[Dict[str, int]],
    collect: bool,
):
    if not chains:
        raise ValueError("nothing to simulate")
    resource_capacity = {name: 1 for name in RESOURCES}
    resource_capacity[CPU] = max(1, cpu_capacity)
    if capacities:
        resource_capacity.update(capacities)
    res_index = {name: i for i, name in enumerate(RESOURCES)}

    # Flatten tasks to integer ids; every task has at most one
    # predecessor (the previous stage of its chain, or — for a compute
    # stage — the previous tensor's compute stage), so readiness needs no
    # reference counting.
    durations: List[float] = []
    resources: List[int] = []
    tensors: List[int] = []
    ks: List[int] = []
    stage_objs: List[Stage] = []
    next_in_chain: List[int] = []
    compute_succ: List[int] = []
    base: List[int] = []
    for chain in chains:
        base.append(len(durations))
        n_stages = len(chain.stages)
        for k, stage in enumerate(chain.stages):
            durations.append(stage.duration)
            resources.append(res_index[stage.resource])
            tensors.append(chain.tensor_index)
            ks.append(k)
            stage_objs.append(stage)
            next_in_chain.append(len(durations) if k + 1 < n_stages else -1)
            compute_succ.append(-1)
    for i in range(len(chains) - 1):
        compute_succ[base[i]] = base[i + 1]

    free = [resource_capacity[name] for name in RESOURCES]
    ready: List[list] = [[] for _ in RESOURCES]
    events: list = []
    seq = 0
    scheduled: List[ScheduledStage] = []
    heappush = heapq.heappush
    heappop = heapq.heappop

    def dispatch(now: float) -> None:
        nonlocal seq
        for r in range(len(RESOURCES)):
            heap = ready[r]
            while heap and free[r] > 0:
                ready_time, tensor, k, tid = heappop(heap)
                end = now + durations[tid]
                free[r] -= 1
                seq += 1
                heappush(events, (end, seq, tid))
                if collect:
                    stage = stage_objs[tid]
                    scheduled.append(
                        ScheduledStage(
                            tensor_index=tensor,
                            stage_index=k,
                            resource=stage.resource,
                            kind=stage.kind,
                            label=stage.label,
                            duration=stage.duration,
                            ready=ready_time,
                            start=now,
                            end=end,
                        )
                    )

    ready[resources[0]].append((0.0, tensors[0], 0, 0))
    dispatch(0.0)

    makespan = 0.0
    while events:
        now = events[0][0]
        if now > makespan:
            makespan = now
        # Drain every completion at this instant before dispatching, so
        # simultaneous readiness ties resolve by (ready, tensor, stage)
        # priority rather than by event-discovery order.
        while events and events[0][0] == now:
            _, _, tid = heappop(events)
            free[resources[tid]] += 1
            succ = next_in_chain[tid]
            if succ >= 0:
                heappush(ready[resources[succ]], (now, tensors[succ], ks[succ], succ))
            succ = compute_succ[tid]
            if succ >= 0:
                heappush(ready[resources[succ]], (now, tensors[succ], 0, succ))
        dispatch(now)

    return scheduled, makespan
