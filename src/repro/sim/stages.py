"""Stage and resource vocabulary of the DDL timeline simulator.

A training iteration is simulated as, per tensor, a **chain of stages**
(backprop compute, then the communication/compression pipeline its
compression option prescribes).  Stages execute on named resources; the
engine (:mod:`repro.sim.engine`) schedules them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.utils.validation import check_non_negative

#: Resource names.  One representative worker is simulated: its GPU
#: compute stream (backprop + GPU compression kernels share it — that is
#: the contention of the paper's Fig. 2(c)), the host CPU compression
#: pool, and the two communication links.
GPU = "gpu"
CPU = "cpu"
INTRA = "intra"
INTER = "inter"
RESOURCES = (GPU, CPU, INTRA, INTER)

#: Stage kinds.
COMPUTE = "compute"
COMPRESS = "compress"
DECOMPRESS = "decompress"
AGGREGATE = "aggregate"
COMM = "comm"
KINDS = (COMPUTE, COMPRESS, DECOMPRESS, AGGREGATE, COMM)


@dataclass(frozen=True)
class Stage:
    """One step of a tensor's iteration pipeline.

    Attributes:
        resource: which resource executes the stage.
        duration: seconds of resource occupancy.
        kind: one of :data:`KINDS`.
        label: free-form annotation (routine name, device, phase).
    """

    resource: str
    duration: float
    kind: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.resource not in RESOURCES:
            raise ValueError(f"unknown resource {self.resource!r}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown stage kind {self.kind!r}")
        check_non_negative("duration", self.duration)


@dataclass(frozen=True)
class TensorChain:
    """A tensor's full stage chain, starting with its backprop compute."""

    tensor_index: int
    stages: Sequence[Stage]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a tensor chain needs at least one stage")
        if self.stages[0].kind != COMPUTE:
            raise ValueError("the first stage of a chain must be the compute stage")
        for stage in self.stages[1:]:
            if stage.kind == COMPUTE:
                raise ValueError("only the first stage may be a compute stage")


def compute_stage(duration: float) -> Stage:
    """The backprop computation stage of a tensor."""
    return Stage(resource=GPU, duration=duration, kind=COMPUTE, label="backprop")


def make_chains(
    compute_times: Sequence[float], sync_stages: Sequence[Sequence[Stage]]
) -> List[TensorChain]:
    """Zip per-tensor compute times with their synchronization pipelines."""
    if len(compute_times) != len(sync_stages):
        raise ValueError("compute_times and sync_stages must align")
    chains = []
    for i, (compute_time, stages) in enumerate(zip(compute_times, sync_stages)):
        chains.append(
            TensorChain(
                tensor_index=i,
                stages=[compute_stage(compute_time), *stages],
            )
        )
    return chains
