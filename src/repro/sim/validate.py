"""Runtime invariant checker for simulated timelines (conformance layer).

Every number this reproduction produces rests on the discrete-event
simulator being exactly right, and the fast paths (makespan-only
simulation, incremental delta-simulation, timeline reconstruction from
resident arrays) keep being rewritten for speed.  This module is the
correctness net that makes those rewrites safe: given any
:class:`~repro.sim.engine.Timeline` — however it was produced — it
checks the schedule against the invariants the scheduling model
guarantees, and reports every violation found.

Checked invariants (names appear in :class:`Violation.invariant`):

``completeness``
    Every stage of every chain appears exactly once, with the chain's
    resource/kind/duration; no extra stages.
``chain-precedence``
    Stage *k* of a tensor starts no earlier than stage *k-1* ends, its
    recorded ``ready`` is exactly the predecessor's ``end`` (0.0 for the
    first chain's compute stage), and the compute stages chain across
    tensors in backprop order.
``start-after-ready``
    No stage starts before it is ready.
``no-overlap``
    At no instant does a resource run more concurrent stages than it has
    workers (zero-duration stages occupy no open interval).
``fifo-dispatch``
    A stage that became ready strictly before another stage started on
    the same resource, with a smaller ``(ready, tensor, stage)``
    priority, never starts later — the engine's FIFO-by-readiness
    dispatch order.
``makespan``
    The recorded makespan equals the maximum stage end exactly.

Comparisons are **exact** (no epsilons): the engine is deterministic
float arithmetic, and the planner compares strategies by exact floats.

:func:`check_option_conservation` additionally audits the payload-size
algebra of a compression option against an independent re-statement of
the compile rules (DESIGN.md §5): after a full root-to-End walk the
payload must be dense, un-sharded, and exactly one tensor's worth of
elements again — per-tensor bookkeeping errors here silently corrupt
the global optimum (cf. L-GreCo's per-layer cost accounting).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterSpec
from repro.core.options import ActionTask, CompressionOption, Phase, RoutineName
from repro.sim.engine import ScheduledStage, Timeline
from repro.sim.stages import CPU, RESOURCES, TensorChain


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in a timeline."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


class ConformanceError(AssertionError):
    """Raised by :func:`assert_valid` when a timeline violates invariants."""

    def __init__(self, violations: Sequence[Violation]):
        self.violations = tuple(violations)
        lines = "\n".join(f"  {v}" for v in self.violations)
        super().__init__(
            f"timeline violates {len(self.violations)} invariant(s):\n{lines}"
        )


def check_timeline(
    timeline: Timeline,
    chains: Optional[Sequence[TensorChain]] = None,
    cpu_capacity: int = 1,
    capacities: Optional[Dict[str, int]] = None,
    max_violations: int = 20,
) -> List[Violation]:
    """Check ``timeline`` against the scheduler invariants.

    Args:
        timeline: the schedule to audit.
        chains: the stage chains the timeline claims to realize; enables
            the completeness and cross-tensor precedence checks.
        cpu_capacity: CPU pool workers used for the overlap check.
        capacities: optional per-resource capacity overrides.
        max_violations: stop collecting after this many (the checker is
            a diagnostic, not an enumerator of every consequence of one
            root cause).

    Returns:
        All violations found (empty list == conformant).
    """
    violations: List[Violation] = []

    def report(invariant: str, message: str) -> bool:
        violations.append(Violation(invariant, message))
        return len(violations) >= max_violations

    resource_capacity = {name: 1 for name in RESOURCES}
    resource_capacity[CPU] = max(1, cpu_capacity)
    if capacities:
        resource_capacity.update(capacities)

    stages = list(timeline.stages)
    if not stages:
        report("completeness", "timeline has no stages")
        return violations

    if chains is not None and _check_completeness(stages, chains, report):
        return violations
    if _check_precedence(stages, chains, report):
        return violations
    if _check_overlap(stages, resource_capacity, report):
        return violations
    if _check_fifo(stages, report):
        return violations

    max_end = max(s.end for s in stages)
    if timeline.makespan != max_end:
        report(
            "makespan",
            f"makespan {timeline.makespan!r} != max stage end {max_end!r}",
        )
    return violations


def assert_valid(
    timeline: Timeline,
    chains: Optional[Sequence[TensorChain]] = None,
    cpu_capacity: int = 1,
    capacities: Optional[Dict[str, int]] = None,
) -> Timeline:
    """Raise :class:`ConformanceError` on any violation; return the timeline."""
    violations = check_timeline(
        timeline, chains=chains, cpu_capacity=cpu_capacity, capacities=capacities
    )
    if violations:
        raise ConformanceError(violations)
    return timeline


# -- individual checks ----------------------------------------------------


def _key(stage: ScheduledStage) -> Tuple[int, int]:
    return (stage.tensor_index, stage.stage_index)


def _check_completeness(stages, chains, report) -> bool:
    seen: Dict[Tuple[int, int], ScheduledStage] = {}
    for stage in stages:
        key = _key(stage)
        if key in seen:
            if report("completeness", f"stage {key} scheduled twice"):
                return True
        seen[key] = stage
    expected = 0
    for chain in chains:
        expected += len(chain.stages)
        for k, spec in enumerate(chain.stages):
            scheduled = seen.get((chain.tensor_index, k))
            if scheduled is None:
                if report(
                    "completeness",
                    f"tensor {chain.tensor_index} stage {k} never scheduled "
                    f"— its chain did not complete",
                ):
                    return True
                continue
            if (
                scheduled.resource != spec.resource
                or scheduled.kind != spec.kind
                or scheduled.duration != spec.duration
            ):
                if report(
                    "completeness",
                    f"tensor {chain.tensor_index} stage {k} scheduled as "
                    f"({scheduled.resource}, {scheduled.kind}, "
                    f"{scheduled.duration!r}), chain says "
                    f"({spec.resource}, {spec.kind}, {spec.duration!r})",
                ):
                    return True
            if scheduled.end != scheduled.start + scheduled.duration:
                if report(
                    "completeness",
                    f"tensor {chain.tensor_index} stage {k}: end "
                    f"{scheduled.end!r} != start + duration "
                    f"{(scheduled.start + scheduled.duration)!r}",
                ):
                    return True
    if len(stages) != expected:
        if report(
            "completeness",
            f"{len(stages)} stages scheduled, chains define {expected}",
        ):
            return True
    return False


def _check_precedence(stages, chains, report) -> bool:
    by_tensor: Dict[int, List[ScheduledStage]] = {}
    for stage in stages:
        if stage.start < stage.ready:
            if report(
                "start-after-ready",
                f"tensor {stage.tensor_index} stage {stage.stage_index} "
                f"starts at {stage.start!r} before ready {stage.ready!r}",
            ):
                return True
        by_tensor.setdefault(stage.tensor_index, []).append(stage)

    for tensor, ts in by_tensor.items():
        ts.sort(key=lambda s: s.stage_index)
        for prev, cur in zip(ts, ts[1:]):
            if cur.stage_index != prev.stage_index + 1:
                continue  # gap already reported by completeness
            if cur.ready != prev.end:
                if report(
                    "chain-precedence",
                    f"tensor {tensor} stage {cur.stage_index} ready "
                    f"{cur.ready!r} != stage {prev.stage_index} end "
                    f"{prev.end!r}",
                ):
                    return True
            if cur.start < prev.end:
                if report(
                    "chain-precedence",
                    f"tensor {tensor} stage {cur.stage_index} starts at "
                    f"{cur.start!r} before stage {prev.stage_index} ends "
                    f"at {prev.end!r}",
                ):
                    return True

    if chains is not None:
        # Compute stages chain across tensors in the chains' (backprop)
        # order; the first one is ready at t=0 exactly.
        computes = [
            by_tensor[c.tensor_index][0]
            for c in chains
            if c.tensor_index in by_tensor and by_tensor[c.tensor_index]
        ]
        if computes and computes[0].ready != 0.0:
            if report(
                "chain-precedence",
                f"first compute stage ready {computes[0].ready!r} != 0.0",
            ):
                return True
        for prev, cur in zip(computes, computes[1:]):
            if cur.ready != prev.end:
                if report(
                    "chain-precedence",
                    f"tensor {cur.tensor_index} compute ready {cur.ready!r} "
                    f"!= tensor {prev.tensor_index} compute end {prev.end!r}",
                ):
                    return True
    return False


def _check_overlap(stages, resource_capacity, report) -> bool:
    for resource in RESOURCES:
        capacity = resource_capacity[resource]
        # Half-open occupancy sweep; zero-duration stages occupy no open
        # interval (the engine completes them before the next dispatch at
        # the same instant), so they are excluded.
        events: List[Tuple[float, int]] = []
        for s in stages:
            if s.resource == resource and s.duration > 0.0:
                events.append((s.start, 1))
                events.append((s.end, -1))
        # Ends sort before starts at the same instant: back-to-back
        # stages sharing a boundary do not overlap.
        events.sort(key=lambda e: (e[0], e[1]))
        load = 0
        for time, delta in events:
            load += delta
            if load > capacity:
                if report(
                    "no-overlap",
                    f"{resource} runs {load} concurrent stages at "
                    f"{time!r} (capacity {capacity})",
                ):
                    return True
    return False


def _check_fifo(stages, report) -> bool:
    """FIFO-by-(ready, tensor, stage) dispatch on every resource.

    Violation: stage ``u`` became ready *strictly* before stage ``s``
    started (so ``u`` was in the ready queue at every dispatch instant
    up to and including ``s.start``), has smaller priority, and yet
    started after ``s``.  Ties at ``u.ready == s.start`` are excused:
    with zero-duration stages several drain-dispatch batches share one
    instant, and a stage made ready by a later batch legitimately misses
    the earlier batch's dispatch.
    """
    for resource in RESOURCES:
        on_res = [s for s in stages if s.resource == resource]
        if len(on_res) < 2:
            continue
        by_start = sorted(on_res, key=lambda s: s.start)
        by_ready = sorted(on_res, key=lambda s: s.ready)
        pending: List[Tuple[float, int, int, float]] = []  # priority + start
        i = 0
        n = len(by_ready)
        j = 0
        while j < len(by_start):
            now = by_start[j].start
            while i < n and by_ready[i].ready < now:
                u = by_ready[i]
                heapq.heappush(
                    pending, (u.ready, u.tensor_index, u.stage_index, u.start)
                )
                i += 1
            # Discard pending stages that have already started.
            while pending and pending[0][3] <= now:
                heapq.heappop(pending)
            batch_end = j
            worst = by_start[j]
            while batch_end < len(by_start) and by_start[batch_end].start == now:
                s = by_start[batch_end]
                if (s.ready, s.tensor_index, s.stage_index) > (
                    worst.ready, worst.tensor_index, worst.stage_index
                ):
                    worst = s
                batch_end += 1
            if pending and pending[0][:3] < (
                worst.ready, worst.tensor_index, worst.stage_index
            ):
                u_ready, u_tensor, u_k, u_start = pending[0]
                if report(
                    "fifo-dispatch",
                    f"{resource}: tensor {worst.tensor_index} stage "
                    f"{worst.stage_index} (ready {worst.ready!r}) started at "
                    f"{now!r} while higher-priority tensor {u_tensor} stage "
                    f"{u_k} (ready {u_ready!r}) waited until {u_start!r}",
                ):
                    return True
            j = batch_end
    return False


# -- payload-size conservation --------------------------------------------


def check_option_conservation(
    option: CompressionOption,
    num_elements: int,
    cluster: ClusterSpec,
    rel_tol: float = 1e-9,
) -> List[Violation]:
    """Audit an option's payload algebra for size conservation.

    Walks the option's action path with an independent re-statement of
    the compiler's payload rules (divide on Reduce-scatter/Alltoall,
    multiply back on Allgather, pieces on compressed first steps) and
    checks that the walk ends with the payload dense, aggregated to one
    piece, and restored to exactly the tensor's ``num_elements`` — i.e.
    every participant holds the full synchronized tensor again.  A
    violation means the compile chain loses or duplicates payload, which
    would misprice every strategy touching the option.
    """
    violations: List[Violation] = []
    if not cluster.is_distributed:
        return violations

    region = float(num_elements)
    pieces = 1
    compressed = False
    for action in option.actions:
        if action.task is ActionTask.COMP:
            compressed = True
            continue
        if action.task is ActionTask.DECOMP:
            compressed = False
            continue
        if action.task is ActionTask.AGG:
            pieces = 1
            continue
        # Communication: participant count from the phase.
        if action.phase in (Phase.INTRA1, Phase.INTRA2):
            participants = cluster.gpus_per_machine
        elif action.phase is Phase.INTER:
            participants = cluster.num_machines
        else:  # FLAT
            participants = cluster.total_gpus
        if participants <= 1:
            continue
        routine = action.routine
        if action.task in (ActionTask.COMM, ActionTask.COMM1, ActionTask.COMM2):
            if routine is RoutineName.REDUCE_SCATTER:
                region /= participants
            elif routine is RoutineName.ALLGATHER:
                region *= participants
        elif action.task in (ActionTask.COMM_C, ActionTask.COMM1_C):
            if routine is RoutineName.ALLTOALL:
                region /= participants
            pieces *= participants
        elif action.task is ActionTask.COMM2_C:
            if routine is RoutineName.ALLGATHER:
                region *= participants

    def off_by(value: float, target: float) -> bool:
        return abs(value - target) > rel_tol * max(abs(value), abs(target), 1.0)

    if off_by(region, float(num_elements)):
        violations.append(
            Violation(
                "payload-conservation",
                f"{option.describe()}: walk ends with {region!r} elements, "
                f"tensor has {num_elements}",
            )
        )
    if compressed:
        violations.append(
            Violation(
                "payload-conservation",
                f"{option.describe()}: payload still compressed at End",
            )
        )
    if pieces != 1:
        violations.append(
            Violation(
                "payload-conservation",
                f"{option.describe()}: {pieces} unaggregated pieces at End",
            )
        )
    return violations
