"""Timeline analysis: iteration time, throughput, overheads, idle gaps.

Implements the paper's §3 definitions on a simulated timeline:

* communication time ``tau_comm`` / compression time ``tau_comp`` —
  plain wall-clock sums;
* communication overhead ``o_comm`` — communication time that does not
  overlap with tensor computation of any tensor;
* compression overhead ``o_comp`` — compression time that overlaps with
  neither tensor computation nor communication of any tensor.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cluster.topology import ClusterSpec
from repro.models.base import ModelProfile
from repro.sim.engine import Timeline
from repro.sim.stages import AGGREGATE, COMM, COMPRESS, COMPUTE, DECOMPRESS

Interval = Tuple[float, float]


def merge_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Merge overlapping/touching intervals into a disjoint sorted list."""
    nonempty = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in nonempty:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def total_length(intervals: Sequence[Interval]) -> float:
    """Total covered length of (possibly overlapping) intervals."""
    return sum(e - s for s, e in merge_intervals(intervals))


def subtract_intervals(
    intervals: Sequence[Interval], cover: Sequence[Interval]
) -> List[Interval]:
    """The parts of ``intervals`` not covered by ``cover``."""
    result: List[Interval] = []
    covered = merge_intervals(cover)
    for start, end in merge_intervals(intervals):
        cursor = start
        for c_start, c_end in covered:
            if c_end <= cursor:
                continue
            if c_start >= end:
                break
            if c_start > cursor:
                result.append((cursor, c_start))
            cursor = max(cursor, c_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append((cursor, end))
    return result


def _intervals(timeline: Timeline, kinds: Sequence[str]) -> List[Interval]:
    return [(s.start, s.end) for s in timeline.stages if s.kind in kinds]


def communication_time(timeline: Timeline) -> float:
    """Sum of all communication stage durations (tau_comm)."""
    return sum(s.duration for s in timeline.stages if s.kind == COMM)


def compression_time(timeline: Timeline) -> float:
    """Sum of compression-related stage durations (tau_comp)."""
    kinds = (COMPRESS, DECOMPRESS, AGGREGATE)
    return sum(s.duration for s in timeline.stages if s.kind in kinds)


def communication_overhead(timeline: Timeline) -> float:
    """Communication time not overlapped by any tensor computation."""
    comm = _intervals(timeline, (COMM,))
    compute = _intervals(timeline, (COMPUTE,))
    return total_length(subtract_intervals(comm, compute))


def compression_overhead(timeline: Timeline) -> float:
    """Compression time overlapped by neither computation nor communication."""
    comp = _intervals(timeline, (COMPRESS, DECOMPRESS, AGGREGATE))
    cover = _intervals(timeline, (COMPUTE, COMM))
    return total_length(subtract_intervals(comp, cover))


def idle_gaps(
    timeline: Timeline, resource: str, horizon: float = None
) -> List[Interval]:
    """Idle periods of ``resource`` between its first and last activity.

    These are the raw material of the paper's communication *bubbles*
    (Fig. 9(a)): gaps where the link sits idle because the next tensor is
    not ready yet.  ``horizon`` optionally extends the busy window to a
    later time (e.g. the makespan).
    """
    busy = merge_intervals(
        [(s.start, s.end) for s in timeline.stages if s.resource == resource]
    )
    if not busy:
        return []
    end = busy[-1][1] if horizon is None else max(horizon, busy[-1][1])
    gaps: List[Interval] = []
    cursor = busy[0][0]
    for start, stop in busy:
        if start > cursor:
            gaps.append((cursor, start))
        cursor = max(cursor, stop)
    if horizon is not None and end > cursor:
        gaps.append((cursor, end))
    return gaps


def iteration_time(timeline: Timeline, model: ModelProfile) -> float:
    """Iteration wall-clock: forward pass + backprop/synchronization makespan.

    Synchronous data parallelism: the next forward pass starts only after
    every tensor is synchronized.
    """
    return model.forward_time + timeline.makespan


def throughput(
    model: ModelProfile, cluster: ClusterSpec, iteration_seconds: float
) -> float:
    """Cluster-wide samples/second at the given iteration time."""
    if iteration_seconds <= 0:
        raise ValueError(f"iteration time must be > 0, got {iteration_seconds}")
    return model.batch_size * cluster.total_gpus / iteration_seconds


def scaling_factor(model: ModelProfile, iteration_seconds: float) -> float:
    """The paper's scaling factor T_n / (n * T): ideal linear scaling = 1."""
    return model.iteration_compute_time / iteration_seconds
