"""Deterministic parallel execution layer for the strategy search.

The planner's cost is dominated by embarrassingly-parallel batches of
F(S) evaluations: GetBestOption prices every candidate option for one
tensor, the brute-force baseline enumerates whole strategy spaces, the
robust planner sweeps a perturbation ensemble, and the preset suites
price many strategies on one job.  This module fans those batches out to
a process pool — and, crucially, merges the results with a *total order*
so the answer is bit-identical to the serial run (DESIGN.md §5.5).

Determinism contract:

* Workers never pick winners.  They return raw ``(position, time)``
  pairs; the parent merges with :func:`best_priced`'s total order on
  ``(trial_time, canonical_key)``.  Exact ties therefore resolve the
  same way no matter how candidates were chunked or which worker
  finished first — which is only sound because the serial algorithm
  itself uses the same total order (the tie-breaking bugfixes in
  :mod:`repro.core.algorithm` are a prerequisite, not an optimisation).
* Canonical option keys are process-local (an interning table assigns
  them by first encounter), so they never cross the process boundary:
  tasks ship *positions* into a vocabulary shared at pool construction,
  and every key used for merging is computed by the parent.
* All simulation arithmetic is exact (the incremental engine is
  bit-identical to the full simulator), so a worker replica's float
  equals the parent's.

Fallback: ``jobs <= 1``, a single-core host, an unpicklable job or
vocabulary, or any pool breakage degrades to in-process execution —
same results, one core.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.options import CompressionOption, canonical_key
from repro.core.strategy import CompressionStrategy, StrategyEvaluator
from repro.utils.backoff import backoff_delay

#: Below this many candidates a fan-out's IPC overhead outweighs the
#: win; the pricing helper stays in-process.
MIN_FANOUT_CANDIDATES = 4

#: Seconds slept before the pool's single restart attempt after a
#: batch failure (a transient worker death — OOM kill, SIGKILL from a
#: supervisor — often clears immediately; the backoff just keeps a
#: crash-looping host from thrashing executor setup).
POOL_RESTART_BACKOFF = 0.05

#: A priced candidate: (trial iteration time, canonical option key,
#: the option object).  Lists of these are what the merge orders.
PricedOption = Tuple[float, int, CompressionOption]


def available_cores() -> int:
    """CPU cores this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


class WorkerPoolError(RuntimeError):
    """The pool cannot execute a batch; callers fall back to serial."""


def best_priced(priced: Sequence[PricedOption]) -> PricedOption:
    """The deterministic argmin: total order on (trial_time, key).

    This single function is the merge contract shared by the serial loop
    and every parallel fan-out — exact time ties break toward the
    smaller canonical key, never toward enumeration or arrival order.
    """
    return min(priced, key=lambda entry: (entry[0], entry[1]))


class WorkerPool:
    """A process pool with deterministic ordered fan-out.

    ``jobs <= 1`` never spawns processes (``active`` is False and every
    consumer runs its serial path).  By default the requested width is
    clamped to the host's core count: on a machine with fewer cores than
    jobs, extra processes would just time-slice the same cores and every
    fan-out would be pure overhead.  ``oversubscribe=True`` skips the
    clamp — the equivalence tests use it to exercise the real
    multi-process merge path regardless of the host.

    A failed batch (pickling error, dead worker, exception inside the
    task) gets one second chance: the executor is torn down, the pool
    backs off briefly and rebuilds it, and the same batch is re-run on
    the fresh workers.  Only a failure of that retry latches the pool
    serial for good — the batch that tripped it is then re-run serially
    by the caller, so results never depend on whether the pool worked.
    Before this restart path, a single transient worker death (an OOM
    kill of one replica) cost the whole process its parallelism for the
    rest of its lifetime.
    """

    def __init__(
        self,
        jobs: int = 1,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        oversubscribe: bool = False,
    ):
        #: The width the caller asked for (``--jobs N``).
        self.requested_jobs = max(1, int(jobs))
        #: The effective width after the core-count clamp.
        self.jobs = self.requested_jobs
        if not oversubscribe:
            self.jobs = min(self.jobs, available_cores())
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self.disabled_reason: Optional[str] = None
        #: Pool rebuilds performed after a batch failure (at most
        #: :attr:`max_restarts` over the pool's lifetime).
        self.restarts = 0
        self.max_restarts = 1
        self.restart_backoff = POOL_RESTART_BACKOFF
        if self.jobs < self.requested_jobs and self.jobs <= 1:
            self.disabled_reason = (
                f"requested {self.requested_jobs} jobs but only "
                f"{available_cores()} core(s) available; running serial"
            )

    @property
    def active(self) -> bool:
        """True when batches will actually fan out to worker processes."""
        return self.jobs > 1 and not self._broken

    def disable(self, reason: str) -> None:
        """Permanently degrade to serial execution (records why)."""
        self._broken = True
        self.disabled_reason = reason
        self.close()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._executor

    def run(self, fn: Callable, tasks: Sequence) -> List:
        """``[fn(t) for t in tasks]`` computed in workers, order kept.

        A first failure — pickling, a dead worker, or an exception
        inside ``fn`` — triggers one pool restart (tear down the
        executor, back off :attr:`restart_backoff` seconds, rebuild)
        and re-runs the batch on the fresh workers.  Only when the
        retry also fails is the pool disabled and
        :class:`WorkerPoolError` raised, so the caller can re-run the
        batch serially.  Both paths are sound because tasks are pure:
        re-running a batch (in workers or serially) computes the same
        values.
        """
        tasks = list(tasks)
        if not self.active:
            raise WorkerPoolError(
                self.disabled_reason or f"pool inactive (jobs={self.jobs})"
            )
        try:
            return list(self._ensure_executor().map(fn, tasks))
        except Exception as error:  # noqa: BLE001 - any failure => retry
            reason = f"{type(error).__name__}: {error}"
            if self.restarts >= self.max_restarts:
                self.disable(reason)
                raise WorkerPoolError(
                    f"worker pool failed ({self.disabled_reason}); "
                    "falling back to serial execution"
                ) from error
            self._restart(reason)
        try:
            return list(self._ensure_executor().map(fn, tasks))
        except Exception as error:  # noqa: BLE001 - retry failed => serial
            self.disable(
                f"{type(error).__name__}: {error} "
                f"(after {self.restarts} pool restart(s))"
            )
            raise WorkerPoolError(
                f"worker pool failed ({self.disabled_reason}); "
                "falling back to serial execution"
            ) from error

    def _restart(self, reason: str) -> None:
        """Tear the executor down and rebuild it after a short backoff."""
        self.restarts += 1
        try:
            self.close()
        except Exception:  # noqa: BLE001 - a broken executor may refuse
            self._executor = None
        if self.restart_backoff > 0:
            time.sleep(backoff_delay(self.restarts, self.restart_backoff))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- evaluator-bound pools -------------------------------------------------


class _EvalWorker:
    """Per-process worker state: an evaluator replica plus the shared
    option vocabulary.  The evaluator's own fast layer handles base
    residency — when consecutive tasks share a base (the common case:
    the greedy's base only changes on an *accepted* decision), pricing
    is pure delta-simulation; a changed base costs one rebase, exactly
    as it does in the parent.
    """

    def __init__(self, evaluator: StrategyEvaluator, vocab):
        self.evaluator = evaluator
        self.vocab = list(vocab)


#: Installed by :func:`_init_evaluator_worker` in each pool process.
_WORKER_STATE: Optional[_EvalWorker] = None

#: Immutable per-pool state shared with fork-started workers: token ->
#: (job, fast, check, vocab).  Under the fork start method a child
#: inherits the parent's address space, so shipping a small integer
#: token through ``initargs`` hands every worker the *same* objects for
#: free — no per-pool pickling of the job/model/topology, and
#: unpicklable jobs parallelize fine.  Pools unregister their token on
#: close; spawn-based platforms keep using a pickle blob.
_FORK_SHARED: Dict[int, tuple] = {}
_fork_tokens = itertools.count(1)


def _init_evaluator_worker(payload) -> None:
    """Process-pool initializer: build this worker's evaluator replica.

    ``payload`` is either a :data:`_FORK_SHARED` token (fork start
    method: state inherited, nothing deserialized) or a pickle blob
    (spawn: self-contained).
    """
    global _WORKER_STATE
    if isinstance(payload, int):
        job, fast, check, vocab = _FORK_SHARED[payload]
    else:
        job, fast, check, vocab = pickle.loads(payload)
    _WORKER_STATE = _EvalWorker(
        StrategyEvaluator(job, fast=fast, check=check), vocab
    )


def _decode_option(
    entry, vocab: Sequence[CompressionOption]
) -> CompressionOption:
    return vocab[entry] if isinstance(entry, int) else entry


class EvaluatorPool(WorkerPool):
    """A worker pool whose processes each hold a StrategyEvaluator
    replica for one job, plus a shared option vocabulary.

    Strategies and candidate lists are shipped as tuples of vocabulary
    *positions* (raw option objects only for the rare value outside the
    vocabulary), which keeps per-task payloads to a few hundred bytes
    and keeps canonical keys from crossing the process boundary.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        job=None,
        fast: bool = True,
        check: bool = False,
        vocab: Sequence[CompressionOption] = (),
        oversubscribe: bool = False,
    ):
        self.vocab = list(vocab)
        self._vocab_index = {
            canonical_key(option): position
            for position, option in enumerate(self.vocab)
        }
        self._fork_token: Optional[int] = None
        if jobs > 1 and job is not None:
            state = (job, fast, check, tuple(self.vocab))
            if "fork" in multiprocessing.get_all_start_methods():
                # Fork-inherited shared state: workers read the parent's
                # objects directly, nothing is serialized per pool/task.
                self._fork_token = next(_fork_tokens)
                _FORK_SHARED[self._fork_token] = state
                payload = self._fork_token
            else:
                try:
                    payload = pickle.dumps(
                        state, protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception as error:  # unpicklable => in-process
                    super().__init__(1)
                    self.disabled_reason = (
                        f"job/vocabulary not picklable ({error}); "
                        "running serial"
                    )
                    return
            super().__init__(
                jobs,
                initializer=_init_evaluator_worker,
                initargs=(payload,),
                oversubscribe=oversubscribe,
            )
        else:
            super().__init__(1)

    def close(self) -> None:
        super().close()
        if self._fork_token is not None:
            _FORK_SHARED.pop(self._fork_token, None)
            self._fork_token = None

    def encode_options(self, options: Sequence[CompressionOption]) -> Tuple:
        """Options as vocabulary positions (raw objects off-vocabulary)."""
        return tuple(
            self._vocab_index.get(canonical_key(option), option)
            for option in options
        )


def _price_task(task):
    """Worker: price a chunk of candidate options for one tensor.

    Pruned candidates come back as ``None`` times — the parent drops
    them, which is sound because the shared ``bound`` proves they cannot
    win the merge (see :meth:`StrategyEvaluator.price_options`).
    """
    encoded_base, index, encoded_options, bound = task
    worker = _WORKER_STATE
    vocab = worker.vocab
    evaluator = worker.evaluator
    base = CompressionStrategy(
        options=tuple(_decode_option(entry, vocab) for entry in encoded_base)
    )
    before = evaluator.evaluations
    times = evaluator.price_options(
        base,
        index,
        [_decode_option(entry, vocab) for entry in encoded_options],
        bound=bound,
    )
    return times, evaluator.evaluations - before, os.getpid()


def price_candidates(
    evaluator: StrategyEvaluator,
    base: CompressionStrategy,
    index: int,
    options: Sequence[CompressionOption],
    pool: Optional[EvaluatorPool] = None,
    bound: Optional[float] = None,
) -> List[PricedOption]:
    """Price every candidate for tensor ``index`` against ``base``.

    Returns ``[(trial_time, canonical_key, option), ...]`` — the input
    of :func:`best_priced`.  With ``bound`` given, candidates whose
    sound lower bound reaches it are omitted from the result; callers
    that only *accept* times strictly below ``bound`` (GetBestOption and
    the refinement sweep, via ``best_time - IMPROVEMENT_EPSILON``) get a
    bit-identical decision either way.  With an active pool and enough
    candidates the pricing fans out to per-worker evaluator replicas;
    results are bit-identical to the in-process path (exact simulation
    and identical pruning bounds both sides), and all keys are computed
    by the calling process.
    """
    options = list(options)
    if not options:
        return []
    if (
        pool is None
        or not pool.active
        or len(options) < MIN_FANOUT_CANDIDATES
    ):
        times = evaluator.price_options(base, index, options, bound=bound)
        return [
            (trial_time, canonical_key(option), option)
            for trial_time, option in zip(times, options)
            if trial_time is not None
        ]
    try:
        return _price_parallel(evaluator, base, index, options, pool, bound)
    except WorkerPoolError:
        return price_candidates(
            evaluator, base, index, options, pool=None, bound=bound
        )


def _price_parallel(
    evaluator: StrategyEvaluator,
    base: CompressionStrategy,
    index: int,
    options: List[CompressionOption],
    pool: EvaluatorPool,
    bound: Optional[float],
) -> List[PricedOption]:
    stats = evaluator.stats
    encoded_base = pool.encode_options(base.options)
    encoded = pool.encode_options(options)
    step = -(-len(options) // pool.jobs)  # ceil division
    spans = [
        (start, min(start + step, len(options)))
        for start in range(0, len(options), step)
    ]
    # A blocking map, not submit-and-overlap: a parent that keeps
    # computing between submit and collect holds the GIL and starves the
    # executor's feeder thread, adding milliseconds of dispatch latency
    # per batch.  Blocked on the map, the parent releases the GIL and
    # the round-trip drops to its IPC floor.
    fanout_start = time.perf_counter()
    results = pool.run(
        _price_task,
        [(encoded_base, index, encoded[a:b], bound) for a, b in spans],
    )
    stats.fanout_seconds += time.perf_counter() - fanout_start
    merge_start = time.perf_counter()
    priced: List[PricedOption] = []
    for (a, b), (times, worker_evals, worker_pid) in zip(spans, results):
        for option, trial_time in zip(options[a:b], times):
            if trial_time is not None:
                priced.append((trial_time, canonical_key(option), option))
        evaluator.evaluations += worker_evals
        pid = str(worker_pid)
        stats.worker_evaluations[pid] = (
            stats.worker_evaluations.get(pid, 0) + worker_evals
        )
    stats.parallel_tasks += len(spans)
    stats.merge_seconds += time.perf_counter() - merge_start
    return priced


# -- brute-force enumeration fan-out ---------------------------------------


def _bruteforce_range_task(task):
    """Worker: evaluate one contiguous slice of the |C|^N enumeration.

    Enumeration index ``i`` maps to the i-th element of
    ``itertools.product(vocab, repeat=n)`` (last tensor varies fastest);
    the local winner keeps the *smallest* index on exact time ties,
    matching the serial first-strictly-smaller scan.  The slice is
    walked in blocks that share everything but the last tensor, priced
    through the evaluator's batch layer with ``bound`` set to the
    running best: a pruned candidate's time is provably ``>= best`` and
    the serial scan only replaces on *strictly* smaller, so the winner
    (time, index) is unchanged.
    """
    start, stop, n = task
    evaluator, vocab = _WORKER_STATE.evaluator, _WORKER_STATE.vocab
    k = len(vocab)
    before = evaluator.evaluations
    best_time: Optional[float] = None
    best_index = -1
    i = start
    while i < stop:
        block = (i // k) * k
        lo = i - block
        hi = min(stop - block, k)
        prefix = []
        remainder = block // k
        for j in range(n - 1):
            weight = k ** (n - 2 - j)
            prefix.append(vocab[remainder // weight])
            remainder %= weight
        base = CompressionStrategy(options=(*prefix, vocab[0]))
        times = evaluator.price_options(
            base, n - 1, vocab[lo:hi], bound=best_time
        )
        for offset, trial in enumerate(times):
            if trial is None:
                continue
            if best_time is None or trial < best_time:
                best_time, best_index = trial, block + lo + offset
        i = block + hi
    return best_time, best_index, evaluator.evaluations - before, os.getpid()


# -- stateless fan-outs (robust sweeps, preset suites) ---------------------


def sweep_member_task(task):
    """Worker: price all strategies on one (possibly faulted) job.

    Task: ``(job, check, [(name, options_tuple), ...])``.  Returns
    ``([(name, iteration_time), ...], timelines_checked)``.
    """
    job, check, named_options = task
    evaluator = StrategyEvaluator(job, check=check)
    results = []
    for name, options in named_options:
        strategy = CompressionStrategy(options=tuple(options))
        value = evaluator.iteration_time(strategy)
        if check:
            evaluator.timeline(strategy)
        results.append((name, value))
    return results, evaluator.timelines_checked


def plan_member_task(job):
    """Worker: one full (serial) planner run; returns the option tuple."""
    from repro.core.espresso import Espresso  # circular-import guard

    return Espresso(job).select_strategy().strategy.options


def run_system_task(task):
    """Worker: run one baseline system on a job (``compare`` fan-out).

    Task: ``(system_cls, job)``; returns the system's
    :class:`~repro.baselines.base.BaselineResult`.
    """
    system_cls, job = task
    return system_cls().run(job)


def validate_strategy_task(task):
    """Worker: full conformance battery for one named strategy.

    Task: ``(job, name, options_tuple, oracle)``; returns the
    :class:`~repro.core.conformance.StrategyConformance` report.
    """
    from repro.core.conformance import validate_strategy  # circular import

    job, name, options, oracle = task
    return validate_strategy(
        StrategyEvaluator(job),
        CompressionStrategy(options=tuple(options)),
        name=name,
        oracle=oracle,
    )
