"""Algorithm 1: Espresso's GPU compression decision (§4.4.2).

Faithful implementation of the paper's pseudo-code:

1. Sort tensors in descending size order, group by size, and sort within
   a group by ascending distance to the output layer (Property #2:
   bigger first; ties favour tensors computed later in backprop, whose
   compression overlaps better).
2. ``Remove()``: derive the communication timeline under the current
   strategy and rule out uncompressed tensors communicated before
   bubbles (Property #1).
3. For each surviving tensor, ``GetBestOption()`` tries every GPU
   compression option (plus "leave it unchanged"), evaluates each
   candidate's full iteration time F(S) with the empirical models — so
   the choice accounts for *overheads* and tensor interactions, not
   wall-clock times (Property #3) — and keeps the argmin.
4. After each decision, ``Remove()`` runs again, because a newly
   compressed tensor can open fresh bubbles (Fig. 9(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bubbles import DEFAULT_MIN_BUBBLE, tensors_before_bubbles
from repro.core.options import CompressionOption, Device, canonical_key
from repro.core.parallel import EvaluatorPool, best_priced, price_candidates
from repro.core.plan import PlanCompiler
from repro.core.strategy import CompressionStrategy, StrategyEvaluator
from repro.core.tree import enumerate_options
from repro.sim.stages import COMM

#: Unified improvement threshold for GetBestOption and the refinement
#: sweep.  Algorithm 1 used to accept any strictly smaller time while
#: the sweep required an improvement beyond 1e-12; the mismatch made the
#: search sensitive to float noise and to which phase saw a move first.
#: A candidate only displaces the incumbent when it improves the best
#: time by more than this; exact ties among candidates break by
#: canonical option key (see :func:`repro.core.parallel.best_priced`),
#: so the selected strategy is independent of candidate enumeration
#: order — the precondition for the deterministic parallel merge.
IMPROVEMENT_EPSILON = 1e-12


class ErrorBudget:
    """L-GreCo-style global compression-error budget (greedy knapsack).

    Scores a strategy by the element-weighted average of each tensor's
    discarded-energy fraction (``Compressor.error_energy``, evaluated
    through the option's effective — possibly ratio-pinned —
    compressor).  The decision phases treat the budget as an
    *admissibility filter at accept time*: a candidate may replace the
    incumbent option of tensor ``index`` only if the resulting global
    weighted error stays within ``budget``.  The FP32 baseline has zero
    error, every accepted move preserves admissibility, and returning a
    tensor to no-compression always frees budget — so the greedy
    maintains the invariant without backtracking (the greedy-knapsack
    relaxation of L-GreCo's per-layer program).
    """

    def __init__(self, evaluator: StrategyEvaluator, budget: float):
        if not 0.0 <= budget <= 1.0:
            raise ValueError(f"error budget must be in [0, 1], got {budget}")
        self.evaluator = evaluator
        self.budget = budget
        self._elements = [
            tensor.num_elements for tensor in evaluator.model.tensors
        ]
        self._total_weight = float(sum(self._elements))
        #: (canonical option key, tensor index) -> weighted error.
        self._cache: Dict[Tuple[int, int], float] = {}

    def weighted_error(self, index: int, option: CompressionOption) -> float:
        """``num_elements * error_energy`` of one tensor's option."""
        key = (canonical_key(option), index)
        value = self._cache.get(key)
        if value is None:
            if option.compresses:
                compressor = self.evaluator.compiler.compressor_for(option)
                elements = self._elements[index]
                value = elements * compressor.error_energy(elements)
            else:
                value = 0.0
            self._cache[key] = value
        return value

    def strategy_error(self, strategy: CompressionStrategy) -> float:
        """The strategy's element-weighted average error fraction."""
        total = sum(
            self.weighted_error(index, option)
            for index, option in enumerate(strategy.options)
        )
        return total / self._total_weight

    def utilization(self, strategy: CompressionStrategy) -> float:
        """Fraction of the budget the strategy consumes (0 budget -> 0
        when unused, inf when violated)."""
        error = self.strategy_error(strategy)
        if self.budget == 0.0:
            return 0.0 if error == 0.0 else float("inf")
        return error / self.budget

    def admits_strategy(self, strategy: CompressionStrategy) -> bool:
        """Whether a whole strategy fits the budget (portfolio seeds)."""
        return self.strategy_error(strategy) <= self.budget

    def admits(
        self,
        strategy: CompressionStrategy,
        index: int,
        option: CompressionOption,
    ) -> bool:
        """Whether replacing tensor ``index``'s option keeps the budget."""
        current = sum(
            self.weighted_error(i, opt)
            for i, opt in enumerate(strategy.options)
            if i != index
        )
        trial = current + self.weighted_error(index, option)
        return trial / self._total_weight <= self.budget


def gpu_candidate_options(
    include_flat: bool = True, include_rooted: bool = False
) -> List[CompressionOption]:
    """The C_gpu of Algorithm 1: GPU-only compression options.

    Rooted (Reduce/Broadcast/Gather) schemes are excluded by default —
    they are dominated under the alpha-beta cost models for more than two
    participants — but can be re-enabled to search the full Table 3 space.
    """
    options = enumerate_options(
        mode="gpu", include_flat=include_flat, include_rooted=include_rooted
    )
    return [option for option in options if option.compresses]


def device_candidate_options(
    include_flat: bool = True, include_rooted: bool = False
) -> List[CompressionOption]:
    """GPU- plus CPU-uniform compression options for the decision loop.

    The paper's Algorithm 1 searches C_gpu and relies on Algorithm 2 to
    move compression to CPUs.  That offloading can only touch tensors
    Algorithm 1 chose to compress, so a tensor whose GPU compression is
    net-negative (e.g. kernel-launch contention on models with many
    mid-sized tensors) but whose CPU compression would win is never
    compressed at all.  Including the CPU-uniform options in the
    candidate set closes that gap while keeping the per-tensor greedy
    structure; Algorithm 2 still optimizes placement of the
    GPU-compressed groups afterwards.
    """
    gpu = gpu_candidate_options(include_flat, include_rooted)
    cpu = [
        option
        for option in enumerate_options(
            mode="cpu", include_flat=include_flat, include_rooted=include_rooted
        )
        if option.compresses
    ]
    return gpu + cpu


def prefilter_candidates(
    compiler: PlanCompiler,
    candidates: Sequence[CompressionOption],
    num_elements: int,
    per_device: int = 3,
) -> List[CompressionOption]:
    """Shrink the candidate set for one tensor size by standalone cost.

    GetBestOption() prices every candidate with a full timeline
    simulation — exact but expensive for models with hundreds of tensors.
    Most candidates are dominated *for a given size* before interactions
    are even considered: they move more bytes and burn more device time.
    This filter keeps, per device class, the ``per_device`` cheapest
    options by standalone communication time and by standalone total
    time (both kept, because a CPU option's larger total can still win
    through overlap).  ``per_device=0`` disables filtering — the exact,
    paper-sized search.
    """
    if per_device <= 0:
        return list(candidates)
    by_device: dict = {}
    for option in candidates:
        device = "cpu" if option.uses_device(Device.CPU) else "gpu"
        stages = compiler.stages(option, num_elements)
        comm = sum(s.duration for s in stages if s.kind == COMM)
        total = sum(s.duration for s in stages)
        by_device.setdefault(device, []).append((comm, total, option))
    kept: List[CompressionOption] = []
    seen: set = set()
    for entries in by_device.values():
        for key in (0, 1):  # by comm time, then by total time
            for entry in sorted(entries, key=lambda e: e[key])[:per_device]:
                option = entry[2]
                if canonical_key(option) not in seen:
                    seen.add(canonical_key(option))
                    kept.append(option)
    return kept


class CandidatePrefilter:
    """Planner-owned per-size prefilter cache shared across phases.

    :func:`prefilter_candidates` prices every candidate's standalone
    stage chain; the result depends only on the tensor *size*, yet each
    ``gpu_compression_decision`` and every ``refinement_sweep`` call used
    to rebuild it from scratch.  One instance of this class, created by
    the :class:`~repro.core.espresso.Espresso` planner and threaded
    through all phases, computes each size's candidate list exactly once
    per job.

    The per-size cache keys on ``num_elements`` *alone* — it is only
    valid for phases searching exactly the candidate set this instance
    was built from.  Sharing one prefilter between phases with different
    candidate sets would silently serve the wrong lists; the phases
    therefore call :meth:`ensure_compatible`, which turns that misuse
    into a loud :class:`ValueError`.
    """

    def __init__(
        self,
        compiler: PlanCompiler,
        candidates: Sequence[CompressionOption],
        per_device: int = 3,
    ):
        self.compiler = compiler
        self.candidates = list(candidates)
        self.per_device = per_device
        self._cache: Dict[int, List[CompressionOption]] = {}
        self._signature = tuple(canonical_key(o) for o in self.candidates)

    def ensure_compatible(
        self, candidates: Sequence[CompressionOption]
    ) -> None:
        """Raise ValueError unless ``candidates`` matches the build set.

        Cached per-size lists depend only on tensor size, so serving a
        phase that searches a different candidate set would be a silent
        wrong-cache reuse — this check makes it a loud error instead.
        """
        signature = tuple(canonical_key(o) for o in candidates)
        if signature != self._signature:
            raise ValueError(
                "CandidatePrefilter was built from a different candidate "
                f"set ({len(self._signature)} options) than this phase "
                f"searches ({len(signature)} options); build one "
                "prefilter per candidate set — its per-size cache keys "
                "on num_elements alone and cannot be shared across sets"
            )

    def for_size(self, num_elements: int) -> List[CompressionOption]:
        """The (cached) surviving candidates for one tensor size."""
        kept = self._cache.get(num_elements)
        if kept is None:
            kept = prefilter_candidates(
                self.compiler, self.candidates, num_elements, self.per_device
            )
            self._cache[num_elements] = kept
        return kept


def sorted_tensor_groups(evaluator: StrategyEvaluator) -> List[List[int]]:
    """Lines 2-3 of Algorithm 1: size-descending groups, closest-to-output
    first inside each group."""
    model = evaluator.model
    by_size: Dict[int, List[int]] = {}
    for index, tensor in enumerate(model.tensors):
        by_size.setdefault(tensor.num_elements, []).append(index)
    groups = []
    for size in sorted(by_size, reverse=True):
        members = sorted(by_size[size], key=model.distance_to_output)
        groups.append(members)
    return groups


@dataclass
class GPUDecisionResult:
    """Outcome of Algorithm 1."""

    strategy: CompressionStrategy
    iteration_time: float
    ruled_out: Set[int] = field(default_factory=set)
    evaluations: int = 0

    @property
    def compressed_indices(self) -> List[int]:
        return self.strategy.compressed_indices


def gpu_compression_decision(
    evaluator: StrategyEvaluator,
    candidates: Optional[Sequence[CompressionOption]] = None,
    min_bubble: float = DEFAULT_MIN_BUBBLE,
    prefilter_per_device: int = 3,
    prefilter: Optional[CandidatePrefilter] = None,
    pool: Optional[EvaluatorPool] = None,
    error_budget: Optional[ErrorBudget] = None,
) -> GPUDecisionResult:
    """Run Algorithm 1 and return the GPU-compression strategy.

    ``prefilter_per_device`` bounds GetBestOption's per-tensor candidate
    set (see :func:`prefilter_candidates`); pass 0 for the exact search.
    A planner that runs several phases should build one
    :class:`CandidatePrefilter` and pass it as ``prefilter`` so the
    per-size filtering work is shared; when omitted, a private one is
    built from ``candidates``/``prefilter_per_device``.  An active
    ``pool`` prices each tensor's candidates on per-worker evaluator
    replicas; the deterministic merge keeps the result bit-identical to
    the serial run.  An ``error_budget`` filters each tensor's candidate
    list to the options that keep the committed strategy's global
    weighted error within budget; the filter is a pure function of the
    committed strategy, so serial and parallel runs still agree bitwise.
    """
    if prefilter is None:
        if candidates is None:
            candidates = gpu_candidate_options()
        prefilter = CandidatePrefilter(
            evaluator.compiler, candidates, prefilter_per_device
        )
    elif candidates is not None:
        prefilter.ensure_compatible(candidates)
    evaluations_before = evaluator.evaluations

    strategy = evaluator.baseline()
    groups = sorted_tensor_groups(evaluator)
    remaining: Set[int] = {index for group in groups for index in group}
    ruled_out: Set[int] = set()
    best_time = evaluator.iteration_time(strategy)

    def remove(current: CompressionStrategy) -> None:
        """Remove(): rule out uncompressed tensors before bubbles."""
        before = evaluator.tensors_before_bubbles(current, min_bubble)
        for index in before:
            if index in remaining and not current[index].compresses:
                remaining.discard(index)
                ruled_out.add(index)

    remove(strategy)

    for group in groups:
        for index in group:
            if index not in remaining:
                continue
            # GetBestOption(): keep-current plus every candidate, priced
            # by delta-simulation against the resident base strategy.
            # The candidate argmin is taken under the total order on
            # (trial_time, canonical_key) and displaces the incumbent
            # only past IMPROVEMENT_EPSILON, so the decision does not
            # depend on candidate enumeration order.
            # bound: a candidate is only *accepted* strictly below
            # best_time - epsilon, so the batch layer may prune any
            # candidate whose sound lower bound already reaches it —
            # the decision (including ties) is bit-identical.
            best_option = strategy[index]
            options = prefilter.for_size(
                evaluator.model.tensors[index].num_elements
            )
            if error_budget is not None:
                options = [
                    option
                    for option in options
                    if error_budget.admits(strategy, index, option)
                ]
            priced = price_candidates(
                evaluator,
                strategy,
                index,
                options,
                pool=pool,
                bound=best_time - IMPROVEMENT_EPSILON,
            )
            if priced:
                trial_time, _, option = best_priced(priced)
                if trial_time < best_time - IMPROVEMENT_EPSILON:
                    best_time = trial_time
                    best_option = option
            strategy = strategy.replace(index, best_option)
            remaining.discard(index)
            remove(strategy)

    return GPUDecisionResult(
        strategy=strategy,
        iteration_time=best_time,
        ruled_out=ruled_out,
        evaluations=evaluator.evaluations - evaluations_before,
    )


def refinement_sweep(
    evaluator: StrategyEvaluator,
    strategy: CompressionStrategy,
    candidates: Sequence[CompressionOption],
    prefilter_per_device: int = 3,
    prefilter: Optional[CandidatePrefilter] = None,
    pool: Optional[EvaluatorPool] = None,
    error_budget: Optional[ErrorBudget] = None,
) -> Tuple[CompressionStrategy, float, bool]:
    """One GetBestOption pass over *all* tensors in the final context.

    Algorithm 1's greedy decides each tensor while the others are still
    mostly uncompressed, and its bubble rule-outs are permanent; when two
    resources bind simultaneously (e.g. the GPU stream extended by
    compression kernels *and* a saturated link), single moves evaluated
    in the early context stall even though a coordinated strategy is much
    better.  This sweep re-decides every tensor — including previously
    ruled-out ones, and allowing a return to no-compression — against
    the *current* strategy, which breaks exactly that deadlock once
    Algorithm 2 has moved the compression load off the binding resource.

    Candidates are compared to the resident option by *value*
    (canonical key), never identity: an equal-but-distinct object (e.g.
    a fresh ``no_compression_option()`` vs the resident one) is neither
    re-priced nor "replaced".  The candidate argmin and acceptance
    threshold are exactly Algorithm 1's (total order on
    ``(trial_time, canonical_key)``, :data:`IMPROVEMENT_EPSILON`).

    Returns (strategy, iteration_time, improved).
    """
    from repro.core.options import no_compression_option

    keep_plain = no_compression_option()
    if prefilter is None:
        prefilter = CandidatePrefilter(
            evaluator.compiler, candidates, prefilter_per_device
        )
    else:
        prefilter.ensure_compatible(candidates)
    best_time = evaluator.iteration_time(strategy)
    improved = False
    for group in sorted_tensor_groups(evaluator):
        for index in group:
            resident_key = canonical_key(strategy[index])
            options = [
                option
                for option in [
                    *prefilter.for_size(
                        evaluator.model.tensors[index].num_elements
                    ),
                    keep_plain,
                ]
                if canonical_key(option) != resident_key
            ]
            if error_budget is not None:
                # keep_plain has zero error and always survives, so a
                # budgeted sweep can still relax tensors back to FP32.
                options = [
                    option
                    for option in options
                    if error_budget.admits(strategy, index, option)
                ]
            priced = price_candidates(
                evaluator,
                strategy,
                index,
                options,
                pool=pool,
                bound=best_time - IMPROVEMENT_EPSILON,
            )
            if not priced:
                continue
            trial_time, _, option = best_priced(priced)
            if trial_time < best_time - IMPROVEMENT_EPSILON:
                best_time = trial_time
                strategy = strategy.replace(index, option)
                improved = True
    return strategy, best_time, improved


def _merge_plan(plan: "FusionPlan", group: int) -> "FusionPlan":
    """``plan`` with groups ``group`` and ``group + 1`` merged."""
    from repro.core.strategy import FusionPlan

    boundaries = (
        plan.boundaries[: group + 1] + plan.boundaries[group + 2 :]
    )
    return FusionPlan(num_tensors=plan.num_tensors, boundaries=boundaries)


def _split_plan(plan: "FusionPlan", group: int, at: int) -> "FusionPlan":
    """``plan`` with group ``group`` split before tensor ``at``."""
    from repro.core.strategy import FusionPlan

    boundaries = (
        plan.boundaries[: group + 1] + (at,) + plan.boundaries[group + 1 :]
    )
    return FusionPlan(num_tensors=plan.num_tensors, boundaries=boundaries)


def _balanced_split_point(model, start: int, stop: int) -> int:
    """The member boundary splitting ``[start, stop)`` most evenly by
    payload (ties to the earliest boundary — deterministic)."""
    total = sum(model.tensors[i].num_elements for i in range(start, stop))
    best_at, best_gap = start + 1, None
    prefix = 0
    for at in range(start + 1, stop):
        prefix += model.tensors[at - 1].num_elements
        gap = abs(2 * prefix - total)
        if best_gap is None or gap < best_gap:
            best_at, best_gap = at, gap
    return best_at


def fusion_boundary_sweep(
    job: "JobConfig",
    plan: "FusionPlan",
    options: Sequence[CompressionOption],
    sweeps: int = 2,
) -> Tuple["FusionPlan", Tuple[CompressionOption, ...], float, int, int]:
    """Joint local refinement of fusion-group boundaries and options.

    The fusion-aware analogue of :func:`refinement_sweep`: where that
    pass re-decides per-tensor *options* under fixed chains, this one
    moves the *bucket boundaries* the options ride on.  Each sweep
    prices every adjacent-pair merge (the merged bucket re-decided via
    GetBestOption's pricing over both parents' options and
    no-compression) and every payload-balanced split (both halves
    inheriting the parent's option), then accepts the steepest
    improving move under the deterministic total order
    ``(iteration_time, num_groups, boundaries)`` — the same
    :data:`IMPROVEMENT_EPSILON` acceptance as every other phase, so the
    search stays enumeration-order independent and bit-identical across
    ``--jobs`` widths (trials are priced by in-process evaluators).

    ``options`` assigns one option per group of ``plan``.  Returns
    ``(plan, options, iteration_time, trials, accepts)``.
    """
    from repro.core.fusion import fused_job
    from repro.core.options import no_compression_option
    from repro.core.strategy import CompressionStrategy, StrategyEvaluator

    keep_plain = no_compression_option()

    def evaluate(
        trial_plan: "FusionPlan", trial_options: Tuple[CompressionOption, ...]
    ) -> Tuple[float, StrategyEvaluator, CompressionStrategy]:
        evaluator = StrategyEvaluator(fused_job(job, trial_plan))
        strategy = CompressionStrategy(options=trial_options)
        return evaluator.iteration_time(strategy), evaluator, strategy

    options = tuple(options)
    best_time, _, _ = evaluate(plan, options)
    trials = accepts = 0
    for _ in range(max(0, sweeps)):
        moves: List[Tuple[float, int, Tuple[int, ...], "FusionPlan", tuple]] = []

        for g in range(plan.num_groups - 1):
            trial_plan = _merge_plan(plan, g)
            merged = options[: g + 1] + options[g + 2 :]
            _, evaluator, base = evaluate(trial_plan, merged)
            # Re-decide the merged bucket among both parents' options
            # and no-compression (value-deduplicated, fixed order).
            seen = set()
            merged_candidates = []
            for option in (options[g], options[g + 1], keep_plain):
                key = canonical_key(option)
                if key not in seen:
                    seen.add(key)
                    merged_candidates.append(option)
            priced = price_candidates(
                evaluator, base, g, merged_candidates, pool=None
            )
            trials += 1
            if not priced:
                continue
            trial_time, _, option = best_priced(priced)
            moves.append(
                (
                    trial_time,
                    trial_plan.num_groups,
                    trial_plan.boundaries,
                    trial_plan,
                    merged[:g] + (option,) + merged[g + 1 :],
                )
            )

        for g, (start, stop) in enumerate(plan.groups()):
            if stop - start < 2:
                continue
            at = _balanced_split_point(job.model, start, stop)
            trial_plan = _split_plan(plan, g, at)
            split = options[: g + 1] + (options[g],) + options[g + 1 :]
            trial_time, _, _ = evaluate(trial_plan, split)
            trials += 1
            moves.append(
                (
                    trial_time,
                    trial_plan.num_groups,
                    trial_plan.boundaries,
                    trial_plan,
                    split,
                )
            )

        if not moves:
            break
        moves.sort(key=lambda move: (move[0], move[1], move[2]))
        trial_time, _, _, trial_plan, trial_options = moves[0]
        if trial_time < best_time - IMPROVEMENT_EPSILON:
            best_time = trial_time
            plan, options = trial_plan, tuple(trial_options)
            accepts += 1
        else:
            break
    return plan, options, best_time, trials, accepts
