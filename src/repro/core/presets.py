"""Preset compression options: the fixed pipelines used by the baseline
systems (HiPress/BytePS-Compress/HiTopKComm) and by Espresso's portfolio
initialization and the Fig. 15 ablation mechanisms."""

from __future__ import annotations

from repro.core.options import (
    Action,
    ActionTask,
    CompressionOption,
    Device,
    Phase,
    RoutineName,
)


def _act(
    task: ActionTask,
    phase: Phase,
    routine: RoutineName = None,
    device: Device = None,
) -> Action:
    return Action(task=task, phase=phase, routine=routine, device=device)


def inter_allgather_option(device: Device) -> CompressionOption:
    """Compress for inter-machine comm, indivisible Allgather scheme.

    This is the classic compressed synchronization used by HiPress and
    BytePS-Compress: hierarchical reduce-scatter inside the machine,
    compress the shard, Allgather the compressed shards across machines,
    decompress + aggregate, Allgather inside the machine.
    """
    return CompressionOption(
        actions=(
            _act(ActionTask.COMM1, Phase.INTRA1, routine=RoutineName.REDUCE_SCATTER),
            _act(ActionTask.COMP, Phase.INTER, device=device),
            _act(ActionTask.COMM_C, Phase.INTER, routine=RoutineName.ALLGATHER),
            _act(ActionTask.DECOMP, Phase.INTER, device=device),
            _act(ActionTask.AGG, Phase.INTER, device=device),
            _act(ActionTask.COMM2, Phase.INTRA2, routine=RoutineName.ALLGATHER),
        ),
        flat=False,
    )


def inter_alltoall_option(
    device: Device, recompress: bool = True
) -> CompressionOption:
    """Compress for inter-machine comm, divisible Alltoall/Allgather scheme."""
    actions = [
        _act(ActionTask.COMM1, Phase.INTRA1, routine=RoutineName.REDUCE_SCATTER),
        _act(ActionTask.COMP, Phase.INTER, device=device),
        _act(ActionTask.COMM1_C, Phase.INTER, routine=RoutineName.ALLTOALL),
        _act(ActionTask.DECOMP, Phase.INTER, device=device),
        _act(ActionTask.AGG, Phase.INTER, device=device),
    ]
    if recompress:
        actions += [
            _act(ActionTask.COMP, Phase.INTER, device=device),
            _act(ActionTask.COMM2_C, Phase.INTER, routine=RoutineName.ALLGATHER),
            _act(ActionTask.DECOMP, Phase.INTER, device=device),
        ]
    else:
        actions.append(
            _act(ActionTask.COMM2, Phase.INTER, routine=RoutineName.ALLGATHER)
        )
    actions.append(
        _act(ActionTask.COMM2, Phase.INTRA2, routine=RoutineName.ALLGATHER)
    )
    return CompressionOption(actions=tuple(actions), flat=False)


def double_compression_option(device: Device) -> CompressionOption:
    """Compress for both intra- and inter-machine communication.

    Alltoall on the compressed tensor inside the machine, re-compress
    the aggregated shard, Alltoall/Allgather across machines, Allgather
    of compressed pieces inside the machine (Fig. 15(d)'s
    "Alltoall+Alltoall" mechanism).
    """
    return CompressionOption(
        actions=(
            _act(ActionTask.COMP, Phase.INTRA1, device=device),
            _act(ActionTask.COMM1_C, Phase.INTRA1, routine=RoutineName.ALLTOALL),
            _act(ActionTask.DECOMP, Phase.INTRA1, device=device),
            _act(ActionTask.AGG, Phase.INTRA1, device=device),
            _act(ActionTask.COMP, Phase.INTRA1, device=device),
            _act(ActionTask.COMM1_C, Phase.INTER, routine=RoutineName.ALLTOALL),
            _act(ActionTask.DECOMP, Phase.INTER, device=device),
            _act(ActionTask.AGG, Phase.INTER, device=device),
            _act(ActionTask.COMP, Phase.INTER, device=device),
            _act(ActionTask.COMM2_C, Phase.INTER, routine=RoutineName.ALLGATHER),
            _act(ActionTask.COMM2_C, Phase.INTRA2, routine=RoutineName.ALLGATHER),
            _act(ActionTask.DECOMP, Phase.INTRA2, device=device),
        ),
        flat=False,
    )
