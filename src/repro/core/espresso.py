"""The top-level Espresso planner (Fig. 6).

``Espresso(job).select_strategy()`` runs the full pipeline: Algorithm 1
(GPU compression decisions) followed by Algorithm 2 (optimal CPU
offloading), and reports the selected strategy together with the
selection-time breakdown the paper's Tables 5 and 6 measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.config import JobConfig
from repro.core.algorithm import (
    IMPROVEMENT_EPSILON,
    CandidatePrefilter,
    ErrorBudget,
    GPUDecisionResult,
    device_candidate_options,
    gpu_compression_decision,
    refinement_sweep,
)
from repro.core.offload import OffloadResult, cpu_offload_decision
from repro.core.options import (
    CompressionOption,
    Device,
    canonical_key,
    ladder_options,
    no_compression_option,
)
from repro.core.parallel import EvaluatorPool
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.core.strategy import (
    CompressionStrategy,
    EvaluatorStats,
    StrategyEvaluator,
)


@dataclass
class EspressoResult:
    """The selected strategy plus the selection-cost accounting."""

    strategy: CompressionStrategy
    iteration_time: float
    baseline_iteration_time: float
    gpu_decision: GPUDecisionResult
    offload: OffloadResult
    selection_seconds: float
    gpu_selection_seconds: float
    offload_selection_seconds: float
    refinement_seconds: float = 0.0
    refinement_sweeps_run: int = 0
    #: True when a uniform portfolio strategy beat the Algorithm 1+2
    #: result and seeded the refinement sweeps.
    portfolio_seeded: bool = False
    #: Fast-evaluation-layer instrumentation: F(S) calls, memo hits,
    #: full vs incremental simulations, event prefix reuse.  Snapshot
    #: taken when selection finished (``plan --stats`` renders it).
    stats: Optional[EvaluatorStats] = None
    #: True when the per-tensor ratio ladder was searched.
    ratio_laddered: bool = False
    #: Iteration time of the fixed-ratio pipeline when the ladder ran —
    #: the portfolio guarantee: ``iteration_time`` never exceeds it.
    fixed_ratio_iteration_time: Optional[float] = None
    #: The global error budget the plan was constrained to, if any.
    error_budget: Optional[float] = None
    #: Element-weighted average error fraction of the selected strategy
    #: (computed whenever the ladder or a budget was active).
    strategy_error: Optional[float] = None

    @property
    def ratio_schedule(self) -> List[Optional[float]]:
        """Per-tensor pinned ratios (None = the job compressor's own)."""
        return [option.ratio for option in self.strategy.options]

    @property
    def error_budget_utilization(self) -> Optional[float]:
        """Fraction of the error budget consumed, when one was set."""
        if self.error_budget is None or self.strategy_error is None:
            return None
        if self.error_budget == 0.0:
            return 0.0 if self.strategy_error == 0.0 else float("inf")
        return self.strategy_error / self.error_budget

    @property
    def speedup_over_fp32(self) -> float:
        """Throughput ratio of the selected strategy over no compression."""
        return self.baseline_iteration_time / self.iteration_time

    @property
    def compressed_indices(self) -> List[int]:
        return self.strategy.compressed_indices

    @property
    def cpu_indices(self) -> List[int]:
        return self.strategy.device_indices(Device.CPU)

    @property
    def gpu_indices(self) -> List[int]:
        return self.strategy.device_indices(Device.GPU)

    def summary(self) -> str:
        """One-paragraph readable report."""
        n = len(self.strategy)
        return (
            f"Espresso selected compression for "
            f"{len(self.compressed_indices)}/{n} tensors "
            f"({len(self.gpu_indices)} on GPU, {len(self.cpu_indices)} on CPU) "
            f"in {self.selection_seconds * 1e3:.1f} ms; "
            f"iteration {self.baseline_iteration_time * 1e3:.1f} ms -> "
            f"{self.iteration_time * 1e3:.1f} ms "
            f"({(self.speedup_over_fp32 - 1) * 100:+.0f}%)."
        )


@dataclass
class _PipelineOutcome:
    """One full planning pipeline's result (laddered or fixed-ratio)."""

    strategy: CompressionStrategy
    iteration_time: float
    gpu_result: GPUDecisionResult
    offload_result: OffloadResult
    gpu_seconds: float
    offload_seconds: float
    refinement_seconds: float
    sweeps_run: int
    portfolio_seeded: bool


class Espresso:
    """Selects a near-optimal compression strategy for one training job."""

    def __init__(
        self,
        job: JobConfig,
        candidates: Optional[Sequence[CompressionOption]] = None,
        max_offload_evaluations: int = 100_000,
        prefilter_per_device: int = 3,
        refinement_sweeps: int = 6,
        min_sweep_improvement: float = 0.003,
        fast_eval: bool = True,
        check: bool = False,
        jobs: int = 1,
        oversubscribe: bool = False,
        ratios: Optional[Sequence[float]] = None,
        error_budget: Optional[float] = None,
    ):
        """Args:
        job: the three-config training job (model, GC, system).
        candidates: the option set explored per tensor; defaults to
            :func:`~repro.core.algorithm.device_candidate_options`
            (C_gpu plus the CPU-uniform options — see that function's
            docstring for why the paper's pure C_gpu is widened).
        max_offload_evaluations: budget for Algorithm 2's exhaustive
            group-count enumeration before falling back to sweeps.
        prefilter_per_device: per-tensor candidate prefilter strength
            (see :func:`~repro.core.algorithm.prefilter_candidates`);
            0 disables it for the exact, paper-sized search.
        refinement_sweeps: maximum post-offload GetBestOption sweeps
            (see :func:`~repro.core.algorithm.refinement_sweep`); each
            improving sweep is followed by another offload pass.
        min_sweep_improvement: stop sweeping early once a sweep improves
            the iteration time by less than this relative fraction.
        fast_eval: enable the evaluator's fast evaluation layer (memo
            cache + incremental delta-simulation, DESIGN.md §5.2).  The
            selected strategy and iteration time are identical either
            way; disabling it exists for benchmarking the layer itself.
        check: run the simulator conformance invariant checker on every
            timeline the planner materializes (``plan --check``); any
            violation raises instead of producing a silently wrong plan.
        jobs: worker-pool width for candidate pricing (``--jobs N``).
            ``1`` (the default) runs fully in-process; ``N > 1`` fans
            GetBestOption's per-tensor candidate pricing out to N
            worker processes holding evaluator replicas.  The width is
            clamped to the host's core count (extra processes on a
            smaller machine would only add overhead).  The selected
            strategy and iteration time are bit-identical for every N
            (the deterministic fan-out/merge of DESIGN.md §5.5).
        oversubscribe: skip the core-count clamp and spawn the full
            ``jobs`` processes even on a smaller host.  The parallel
            equivalence tests use this to exercise the real
            multi-process merge path on any machine.
        ratios: per-tensor compression-ratio ladder (``plan --ratios``).
            When the job's compressor exposes a ``ratio`` knob, every
            compressing candidate is expanded into ratio-pinned
            variants and the planner chooses each tensor's ratio
            jointly with its pipeline.  A second, fixed-ratio pipeline
            runs alongside (sharing the evaluator's caches) and the
            better result is kept — fixed wins ties — so the laddered
            plan is never worse than the fixed-ratio baseline.
        error_budget: global compression-error budget in ``[0, 1]``:
            the element-weighted average of per-tensor discarded-energy
            fractions the plan may spend (L-GreCo's constraint, solved
            greedily — see :class:`~repro.core.algorithm.ErrorBudget`).
        """
        self.job = job
        self.jobs = max(1, int(jobs))
        self.oversubscribe = oversubscribe
        self.evaluator = StrategyEvaluator(job, fast=fast_eval, check=check)
        # The uniform-strategy portfolio uses the preset pipelines, which
        # only makes sense for the full default search space; a caller
        # restricting the candidates gets exactly that restriction.
        self._use_portfolio = candidates is None
        self.candidates = (
            list(candidates)
            if candidates is not None
            else device_candidate_options()
        )
        self.max_offload_evaluations = max_offload_evaluations
        self.prefilter_per_device = prefilter_per_device
        # Ratio ladder: expand the candidates into ratio-pinned variants
        # when the job's compressor actually has a ratio knob; for other
        # algorithms (fp16, efsignsgd, ...) the pins would be
        # cost-irrelevant decoration, so the ladder is skipped entirely.
        self.ratios = tuple(ratios) if ratios else None
        self._fixed_candidates = self.candidates
        self.ratio_laddered = False
        if self.ratios and hasattr(self.evaluator.compiler.compressor, "ratio"):
            self.candidates = ladder_options(self._fixed_candidates, self.ratios)
            self.ratio_laddered = len(self.candidates) > len(
                self._fixed_candidates
            )
        self.error_budget = error_budget
        self._error_budget = (
            ErrorBudget(self.evaluator, error_budget)
            if error_budget is not None
            else None
        )
        # One prefilter for all phases: Algorithm 1 and every refinement
        # sweep share the per-size candidate lists instead of rebuilding
        # them from scratch each call.
        self.prefilter = CandidatePrefilter(
            self.evaluator.compiler, self.candidates, prefilter_per_device
        )
        self._fixed_prefilter = (
            CandidatePrefilter(
                self.evaluator.compiler,
                self._fixed_candidates,
                prefilter_per_device,
            )
            if self.ratio_laddered
            else self.prefilter
        )
        self.refinement_sweeps = refinement_sweeps
        self.min_sweep_improvement = min_sweep_improvement

    def _pool_vocab(self) -> List[CompressionOption]:
        """Every option value the planner can assign during selection:
        the candidate set, the FP32 option, and the portfolio presets.
        Worker tasks encode strategies as positions into this list."""
        vocab: List[CompressionOption] = []
        seen = set()
        extras = [no_compression_option()]
        for builder in (
            inter_allgather_option,
            inter_alltoall_option,
            double_compression_option,
        ):
            for device in (Device.GPU, Device.CPU):
                extras.append(builder(device))
        for option in [*self.candidates, *extras]:
            key = canonical_key(option)
            if key not in seen:
                seen.add(key)
                vocab.append(option)
        return vocab

    def _make_pool(self) -> Optional[EvaluatorPool]:
        if self.jobs <= 1:
            return None
        return EvaluatorPool(
            self.jobs,
            job=self.job,
            fast=self.evaluator.fast,
            check=self.evaluator.check,
            vocab=self._pool_vocab(),
            oversubscribe=self.oversubscribe,
        )

    def select_strategy(self) -> EspressoResult:
        """Run Algorithm 1 + Algorithm 2 and return the decision."""
        pool = self._make_pool()
        try:
            return self._select_strategy(pool)
        finally:
            if pool is not None:
                pool.close()

    def _run_pipeline(
        self,
        pool: Optional[EvaluatorPool],
        candidates: Sequence[CompressionOption],
        prefilter: CandidatePrefilter,
    ) -> "_PipelineOutcome":
        """Algorithm 1 + Algorithm 2 + portfolio seed + sweeps over one
        candidate set.  The laddered and fixed-ratio pipelines both run
        through here, sharing ``self.evaluator``'s caches — the fast
        layer is exact, so each pipeline's outcome is bit-identical to a
        standalone planner searching the same candidates."""
        start = time.perf_counter()
        gpu_result = gpu_compression_decision(
            self.evaluator,
            candidates=candidates,
            prefilter_per_device=self.prefilter_per_device,
            prefilter=prefilter,
            pool=pool,
            error_budget=self._error_budget,
        )
        gpu_seconds = time.perf_counter() - start

        start = time.perf_counter()
        offload_result = cpu_offload_decision(
            self.evaluator,
            gpu_result.strategy,
            max_evaluations=self.max_offload_evaluations,
        )
        offload_seconds = time.perf_counter() - start

        strategy = offload_result.strategy
        best_time = offload_result.iteration_time

        # Portfolio check: the per-tensor greedy can stall when two
        # resources bind at once, while a *uniform* strategy (compress
        # everything one fixed way — what BytePS-Compress/HiTopKComm do)
        # sits in a different basin.  Evaluating the six uniform
        # presets costs six F(S) calls and guarantees Espresso never
        # loses to a uniform policy; the refinement sweeps then improve
        # whichever seed won.  Under an error budget a uniform seed is
        # only admissible if the whole strategy fits the budget.
        portfolio_seeded = False
        n = self.job.model.num_tensors
        builders = (
            (inter_allgather_option, inter_alltoall_option, double_compression_option)
            if self._use_portfolio
            else ()
        )
        for builder in builders:
            for device in (Device.GPU, Device.CPU):
                uniform = CompressionStrategy(options=(builder(device),) * n)
                if (
                    self._error_budget is not None
                    and not self._error_budget.admits_strategy(uniform)
                ):
                    continue
                uniform_time = self.evaluator.iteration_time(uniform)
                if uniform_time < best_time:
                    strategy, best_time = uniform, uniform_time
                    portfolio_seeded = True

        start = time.perf_counter()
        sweeps_run = 0
        for _ in range(self.refinement_sweeps):
            before = best_time
            strategy, best_time, improved = refinement_sweep(
                self.evaluator,
                strategy,
                candidates,
                prefilter_per_device=self.prefilter_per_device,
                prefilter=prefilter,
                pool=pool,
                error_budget=self._error_budget,
            )
            sweeps_run += 1
            if not improved:
                break
            if (before - best_time) / before < self.min_sweep_improvement:
                improved = False  # diminishing returns: stop after offload
            # The sweep may have shifted load back onto the GPU stream;
            # re-optimize placement with another Lemma-1 offload pass.
            offload_result = cpu_offload_decision(
                self.evaluator,
                strategy,
                max_evaluations=self.max_offload_evaluations,
            )
            strategy = offload_result.strategy
            best_time = offload_result.iteration_time
            if not improved:
                break
        refinement_seconds = time.perf_counter() - start

        return _PipelineOutcome(
            strategy=strategy,
            iteration_time=best_time,
            gpu_result=gpu_result,
            offload_result=offload_result,
            gpu_seconds=gpu_seconds,
            offload_seconds=offload_seconds,
            refinement_seconds=refinement_seconds,
            sweeps_run=sweeps_run,
            portfolio_seeded=portfolio_seeded,
        )

    def _select_strategy(self, pool: Optional[EvaluatorPool]) -> EspressoResult:
        baseline_time = self.evaluator.iteration_time(self.evaluator.baseline())
        stats = self.evaluator.stats
        stats.parallel_requested = self.jobs
        stats.parallel_jobs = (
            pool.jobs if pool is not None and pool.active else 1
        )
        if pool is not None:
            stats.parallel_disabled_reason = pool.disabled_reason

        chosen = self._run_pipeline(pool, self.candidates, self.prefilter)
        fixed: Optional[_PipelineOutcome] = None
        if self.ratio_laddered:
            # Portfolio guarantee: also run the fixed-ratio pipeline
            # (warm through the shared evaluator caches) and keep the
            # better result — fixed wins ties, so enabling the ladder
            # can never select a worse plan than leaving it off.
            fixed = self._run_pipeline(
                pool, self._fixed_candidates, self._fixed_prefilter
            )
            winner = (
                chosen
                if chosen.iteration_time
                < fixed.iteration_time - IMPROVEMENT_EPSILON
                else fixed
            )
            chosen = replace(
                winner,
                gpu_seconds=chosen.gpu_seconds + fixed.gpu_seconds,
                offload_seconds=chosen.offload_seconds + fixed.offload_seconds,
                refinement_seconds=chosen.refinement_seconds
                + fixed.refinement_seconds,
            )

        # Achieved weighted error: reported whenever the ladder or a
        # budget made error a planning concern.
        strategy_error: Optional[float] = None
        if self._error_budget is not None:
            strategy_error = self._error_budget.strategy_error(chosen.strategy)
        elif self.ratio_laddered:
            strategy_error = ErrorBudget(self.evaluator, 1.0).strategy_error(
                chosen.strategy
            )

        # Final honest parallel accounting: the pool may have degraded
        # (or been clamped) after the initial snapshot above.
        if pool is not None:
            stats.parallel_jobs = pool.jobs if pool.active else 1
            stats.parallel_disabled_reason = pool.disabled_reason

        return EspressoResult(
            strategy=chosen.strategy,
            iteration_time=chosen.iteration_time,
            baseline_iteration_time=baseline_time,
            gpu_decision=chosen.gpu_result,
            offload=chosen.offload_result,
            selection_seconds=chosen.gpu_seconds
            + chosen.offload_seconds
            + chosen.refinement_seconds,
            gpu_selection_seconds=chosen.gpu_seconds,
            offload_selection_seconds=chosen.offload_seconds,
            refinement_seconds=chosen.refinement_seconds,
            refinement_sweeps_run=chosen.sweeps_run,
            portfolio_seeded=chosen.portfolio_seeded,
            stats=self.evaluator.stats.snapshot(),
            ratio_laddered=self.ratio_laddered,
            fixed_ratio_iteration_time=(
                fixed.iteration_time if fixed is not None else None
            ),
            error_budget=self.error_budget,
            strategy_error=strategy_error,
        )
