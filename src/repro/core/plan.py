"""Compile compression options into simulator stage chains.

This is where the decision-tree abstraction meets the empirical models:
given a tensor size, a cluster, a compressor, and the device time models,
:class:`PlanCompiler` walks an option's action path, tracks the payload
state (dense region size, compressed wire size, pending pieces), prices
every action with the cost models, and emits the
:class:`~repro.sim.stages.Stage` chain the timeline simulator executes.

Payload-state rules (one representative GPU):

* A first-step collective (Reduce-scatter/Alltoall) divides the dense
  region by the participant count; Reduce/Gather leave the region at the
  root.  Compressed first steps additionally leave ``p`` received pieces
  that the following DECOMP/AGG micro-tasks price.
* A second-step Allgather multiplies the region back; Broadcast leaves it.
* Inter-machine collectives run at machine granularity: the per-machine
  payload is ``k x`` the per-GPU payload when the intra phase divided the
  tensor across the machine's ``k`` GPUs, and ``1 x`` when a rooted
  intra routine concentrated it on one GPU.
* Flat collectives span all ``P = N x k`` GPUs; they occupy the
  inter-machine link with an effective per-GPU bandwidth of the NIC
  bandwidth divided by ``k`` (the machine's GPUs share the NIC).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterSpec
from repro.comm.routines import LinkParams, Routine, routine_time
from repro.compression.base import FP32_BYTES, Compressor
from repro.core.options import (
    Action,
    ActionTask,
    CompressionOption,
    Device,
    Phase,
    RoutineName,
    canonical_key,
)
from repro.profiling.device import DeviceProfile
from repro.profiling.timing import CompressionTimeModel
from repro.sim.stages import (
    AGGREGATE,
    COMM,
    COMPRESS,
    CPU,
    DECOMPRESS,
    GPU,
    INTER,
    INTRA,
    Stage,
)

_ROUTINE_MAP = {
    RoutineName.ALLREDUCE: Routine.ALLREDUCE,
    RoutineName.REDUCE_SCATTER: Routine.REDUCE_SCATTER,
    RoutineName.ALLGATHER: Routine.ALLGATHER,
    RoutineName.ALLTOALL: Routine.ALLTOALL,
    RoutineName.REDUCE: Routine.REDUCE,
    RoutineName.BROADCAST: Routine.BROADCAST,
    RoutineName.GATHER: Routine.GATHER,
}

#: Routines that divide the dense region across participants.
_DIVIDING = (RoutineName.REDUCE_SCATTER, RoutineName.ALLTOALL)
#: Routines that concentrate the payload on a root.
_ROOTED = (RoutineName.REDUCE, RoutineName.GATHER, RoutineName.BROADCAST)


@dataclass
class _PayloadState:
    """Mutable payload bookkeeping while walking an option."""

    region_elements: float  # dense elements this GPU is responsible for
    compressed: bool = False
    pieces: int = 1  # identical-region compressed pieces awaiting agg
    machine_multiplier: int = 1  # active GPUs per machine on the NIC


class PlanCompiler:
    """Compiles (option, tensor size) pairs into priced stage chains."""

    def __init__(
        self,
        cluster: ClusterSpec,
        compressor: Compressor,
        gpu: DeviceProfile,
        cpu: DeviceProfile,
    ):
        self.cluster = cluster
        self.compressor = compressor
        self._models = {
            Device.GPU: CompressionTimeModel(gpu, compressor.work_factor),
            Device.CPU: CompressionTimeModel(cpu, compressor.work_factor),
        }
        self._cache: Dict[Tuple[int, int], List[Stage]] = {}
        #: Ratio-pinned shallow copies of ``compressor``, one per ladder
        #: ratio the planner prices.  ``work_factor`` is ratio-independent
        #: for every registered algorithm, so the time models stay shared.
        self._ratio_variants: Dict[float, Compressor] = {}

    # -- public API ------------------------------------------------------

    def compressor_for(self, option: CompressionOption) -> Compressor:
        """The effective compressor pricing ``option``'s wire bytes.

        An option pinned to a ladder ratio is priced by a shallow copy
        of the job's compressor with its ``ratio`` overridden; options
        without a pin — or jobs whose compressor has no ratio knob
        (fp16, efsignsgd, ...) — use the job compressor unchanged, so
        ratio metadata on such jobs is cost-irrelevant and the chain
        coarsening in the evaluator merges the variants.
        """
        ratio = option.ratio
        if ratio is None or not hasattr(self.compressor, "ratio"):
            return self.compressor
        variant = self._ratio_variants.get(ratio)
        if variant is None:
            variant = copy.copy(self.compressor)
            variant.ratio = ratio
            self._ratio_variants[ratio] = variant
        return variant

    def stages(self, option: CompressionOption, num_elements: int) -> List[Stage]:
        """The stage chain realizing ``option`` for a tensor of this size.

        Results are cached per (option value, size): Algorithm 1
        re-evaluates the same candidates for many same-size tensors.
        The key is the interned canonical key, not ``id(option)`` — the
        ratio ladder builds ad-hoc pinned variants whose recycled ids
        could alias a stale chain, while value keys cannot.
        """
        if num_elements < 1:
            raise ValueError(f"num_elements must be >= 1, got {num_elements}")
        key = (canonical_key(option), num_elements)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compile(option, num_elements)
            self._cache[key] = cached
        return cached

    # -- compilation -----------------------------------------------------

    def _wire_bytes(
        self, state: _PayloadState, compressor: Optional[Compressor] = None
    ) -> float:
        """Current per-GPU payload bytes on the wire."""
        if compressor is None:
            compressor = self.compressor
        elements = max(1, math.ceil(state.region_elements))
        if state.compressed:
            return float(
                state.pieces * compressor.compressed_nbytes(elements)
            )
        return float(state.pieces * elements * FP32_BYTES)

    def _link(self, phase: Phase) -> Tuple[str, LinkParams, int]:
        """(resource, link params, participants) of a phase's collectives."""
        cluster = self.cluster
        if phase in (Phase.INTRA1, Phase.INTRA2):
            return (
                INTRA,
                LinkParams(
                    cluster.gpus_per_machine, cluster.intra_bw, cluster.intra_latency
                ),
                cluster.gpus_per_machine,
            )
        if phase is Phase.INTER:
            return (
                INTER,
                LinkParams(
                    cluster.num_machines, cluster.inter_bw, cluster.inter_latency
                ),
                cluster.num_machines,
            )
        # Flat: all GPUs in one collective; the NIC (shared by the
        # machine's GPUs) is the bottleneck link when machines > 1.
        if cluster.num_machines > 1:
            bandwidth = cluster.inter_bw / cluster.gpus_per_machine
            return (
                INTER,
                LinkParams(cluster.total_gpus, bandwidth, cluster.inter_latency),
                cluster.total_gpus,
            )
        return (
            INTRA,
            LinkParams(cluster.total_gpus, cluster.intra_bw, cluster.intra_latency),
            cluster.total_gpus,
        )

    def _comm_stage(
        self,
        action: Action,
        state: _PayloadState,
        compressor: Optional[Compressor] = None,
    ) -> Tuple[Stage, int]:
        """Price one collective and return (stage, participants)."""
        resource, link, participants = self._link(action.phase)
        payload = self._wire_bytes(state, compressor)
        if action.phase is Phase.INTER:
            payload *= state.machine_multiplier
        duration = routine_time(_ROUTINE_MAP[action.routine], payload, link)
        stage = Stage(
            resource=resource,
            duration=duration,
            kind=COMM,
            label=action.describe(),
        )
        return stage, participants

    def _device_stage(
        self, action: Action, state: _PayloadState
    ) -> Stage:
        """Price a COMP/DECOMP/AGG micro-task."""
        model = self._models[action.device]
        resource = GPU if action.device is Device.GPU else CPU
        elements = max(1, math.ceil(state.region_elements))
        dense_bytes = elements * FP32_BYTES
        if action.task is ActionTask.COMP:
            duration = model.compress_time(dense_bytes)
        elif action.task is ActionTask.DECOMP:
            duration = model.decompress_time(state.pieces * dense_bytes)
        else:  # AGG
            duration = model.aggregate_time(state.pieces * dense_bytes)
        kind = {
            ActionTask.COMP: COMPRESS,
            ActionTask.DECOMP: DECOMPRESS,
            ActionTask.AGG: AGGREGATE,
        }[action.task]
        return Stage(
            resource=resource, duration=duration, kind=kind, label=action.describe()
        )

    def _compile(self, option: CompressionOption, num_elements: int) -> List[Stage]:
        cluster = self.cluster
        if not cluster.is_distributed:
            return []
        stages: List[Stage] = []
        state = _PayloadState(region_elements=float(num_elements))
        compressor = self.compressor_for(option)
        for action in option.actions:
            if action.task is ActionTask.COMP:
                stages.append(self._device_stage(action, state))
                state.compressed = True
            elif action.task is ActionTask.DECOMP:
                stages.append(self._device_stage(action, state))
                state.compressed = False
            elif action.task is ActionTask.AGG:
                stages.append(self._device_stage(action, state))
                state.pieces = 1
            else:
                stage, participants = self._comm_stage(action, state, compressor)
                if stage.duration > 0.0:
                    stages.append(stage)
                self._apply_comm(action, state, participants)
        return stages

    def _apply_comm(
        self, action: Action, state: _PayloadState, participants: int
    ) -> None:
        """Update payload state after a collective."""
        routine = action.routine
        if participants <= 1:
            return
        if action.phase is Phase.INTRA1:
            # The intra phase decides how the machine's payload reaches
            # the NIC: divided across all k GPUs, or rooted on one.
            state.machine_multiplier = (
                self.cluster.gpus_per_machine if routine in _DIVIDING else 1
            )
        if action.task in (ActionTask.COMM1, ActionTask.COMM2, ActionTask.COMM):
            # Dense collectives aggregate in-network (associative ops).
            if routine is RoutineName.REDUCE_SCATTER:
                state.region_elements /= participants
            elif routine is RoutineName.ALLGATHER:
                state.region_elements *= participants
            # Allreduce / Reduce / Broadcast leave the region unchanged.
            return
        if action.task in (ActionTask.COMM_C, ActionTask.COMM1_C):
            # First-step (or indivisible) compressed collectives deliver
            # `participants` compressed pieces to decompress + aggregate.
            if routine is RoutineName.ALLTOALL:
                state.region_elements /= participants
            state.pieces *= participants
            return
        if action.task is ActionTask.COMM2_C:
            # Second-step compressed collectives concatenate distinct
            # regions (Allgather) or replicate the root's (Broadcast).
            if routine is RoutineName.ALLGATHER:
                state.region_elements *= participants
            return
        raise AssertionError(f"unhandled comm action {action!r}")
