"""The decision-tree abstraction of §4.2 (Fig. 8), as an enumerator.

The tree is encoded as recursive subtree builders T1–T5 exactly as the
paper factors it:

* **T1** — second intra-machine step, input uncompressed.
* **T2** — second intra-machine step, input compressed.
* **T3** — inter-machine communication (+ second intra step), input
  uncompressed.
* **T4** — inter-machine communication (+ second intra step), input
  compressed.
* **T5** — second inter-machine step (+ second intra step), input
  uncompressed.

The three pruning rules of §4.2.2 are enforced by construction: subtree
successors are the valid connections; ``COMM1*``/``COMM2*`` appear only
as the matching steps of divisible schemes; and first/second-step
routines pair via :data:`~repro.core.options.ROUTINE_PAIRING`.  Following
Dimension 4, hierarchical intra-machine communication always uses a
divisible scheme.

After a first-step collective delivers compressed pieces, the receiving
node decompresses and aggregates them (Fig. 4(b)); those implied
``DECOMP``/``AGG`` micro-tasks are emitted explicitly so the timeline
simulator can charge them to a device.

Device assignment (Dimension 2) is applied after path enumeration:

* ``"uniform"`` — every device task of a path runs on the same device
  (2 instances per compressed path). This is the space the decision
  algorithm explores — Algorithm 1 works in the GPU-only subspace and
  Algorithm 2 offloads whole options to the CPU.
* ``"independent"`` — every COMP/DECOMP occurrence chooses its device
  independently, the full Table 3 search space (|C| in the thousands,
  like the paper's 4341).
* ``"gpu"`` / ``"cpu"`` — single-device subspaces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.options import (
    Action,
    ActionTask,
    CompressionOption,
    Device,
    Phase,
    ROUTINE_PAIRING,
    RoutineName,
)

_RS = RoutineName.REDUCE_SCATTER
_RED = RoutineName.REDUCE
_AG = RoutineName.ALLGATHER
_BC = RoutineName.BROADCAST
_A2A = RoutineName.ALLTOALL
_GTH = RoutineName.GATHER
_AR = RoutineName.ALLREDUCE


@dataclass(frozen=True)
class ProtoAction:
    """An action whose device (if any) is not yet assigned."""

    task: ActionTask
    phase: Phase
    routine: Optional[RoutineName] = None

    @property
    def needs_device(self) -> bool:
        return self.routine is None


Path = Tuple[ProtoAction, ...]


def _p(task: ActionTask, phase: Phase, routine: RoutineName = None) -> ProtoAction:
    return ProtoAction(task=task, phase=phase, routine=routine)


def _receive_block(phase: Phase) -> List[ProtoAction]:
    """Decompress + aggregate the compressed pieces a first step delivered."""
    return [_p(ActionTask.DECOMP, phase), _p(ActionTask.AGG, phase)]


def _t1(intra2_routine: RoutineName) -> List[List[ProtoAction]]:
    """T1: second intra step, uncompressed input."""
    return [[_p(ActionTask.COMM2, Phase.INTRA2, intra2_routine)]]


def _t2(intra2_routine: RoutineName) -> List[List[ProtoAction]]:
    """T2: second intra step, compressed input (decompress at the end)."""
    return [
        [
            _p(ActionTask.COMM2_C, Phase.INTRA2, intra2_routine),
            _p(ActionTask.DECOMP, Phase.INTRA2),
        ]
    ]


def _t5(
    inter_second: RoutineName, intra2_routine: RoutineName
) -> List[List[ProtoAction]]:
    """T5: second inter step (+ intra2), uncompressed input."""
    suffixes: List[List[ProtoAction]] = []
    # compress? No.
    for t1 in _t1(intra2_routine):
        suffixes.append([_p(ActionTask.COMM2, Phase.INTER, inter_second)] + t1)
    # compress? Yes: compress for the second inter step.
    head = [
        _p(ActionTask.COMP, Phase.INTER),
        _p(ActionTask.COMM2_C, Phase.INTER, inter_second),
    ]
    for t1 in _t1(intra2_routine):
        suffixes.append(head + [_p(ActionTask.DECOMP, Phase.INTER)] + t1)
    for t2 in _t2(intra2_routine):
        suffixes.append(head + t2)
    return suffixes


def _t4(intra2_routine: RoutineName) -> List[List[ProtoAction]]:
    """T4: inter communication (+ intra2), compressed input."""
    suffixes: List[List[ProtoAction]] = []
    # Indivisible scheme: Allgather of the compressed tensors.
    base = [_p(ActionTask.COMM_C, Phase.INTER, _AG)] + _receive_block(Phase.INTER)
    for t1 in _t1(intra2_routine):
        suffixes.append(base + t1)
    for t2 in _t2(intra2_routine):
        suffixes.append(base + [_p(ActionTask.COMP, Phase.INTER)] + t2)
    # Divisible schemes: Alltoall/Allgather or Gather/Broadcast.
    for first in (_A2A, _GTH):
        second = ROUTINE_PAIRING[first]
        head = [_p(ActionTask.COMM1_C, Phase.INTER, first)] + _receive_block(
            Phase.INTER
        )
        # (a) second step uncompressed (skip the re-compression).
        for t1 in _t1(intra2_routine):
            suffixes.append(head + [_p(ActionTask.COMM2, Phase.INTER, second)] + t1)
        # (b) re-compress the aggregate for the second step.
        recompressed = head + [
            _p(ActionTask.COMP, Phase.INTER),
            _p(ActionTask.COMM2_C, Phase.INTER, second),
        ]
        for t1 in _t1(intra2_routine):
            suffixes.append(recompressed + [_p(ActionTask.DECOMP, Phase.INTER)] + t1)
        for t2 in _t2(intra2_routine):
            suffixes.append(recompressed + t2)
    return suffixes


def _t3(intra2_routine: RoutineName) -> List[List[ProtoAction]]:
    """T3: inter communication (+ intra2), uncompressed input."""
    suffixes: List[List[ProtoAction]] = []
    # compress? No — indivisible: one Allreduce.
    for t1 in _t1(intra2_routine):
        suffixes.append([_p(ActionTask.COMM, Phase.INTER, _AR)] + t1)
    # compress? No — divisible: Comm1 then T5.
    for first in (_RS, _RED):
        head = [_p(ActionTask.COMM1, Phase.INTER, first)]
        for t5 in _t5(ROUTINE_PAIRING[first], intra2_routine):
            suffixes.append(head + t5)
    # compress? Yes — compress for the inter phase, then T4.
    for t4 in _t4(intra2_routine):
        suffixes.append([_p(ActionTask.COMP, Phase.INTER)] + t4)
    return suffixes


def _flat_paths() -> List[List[ProtoAction]]:
    """The flat-communication half of the tree (flat comm? = Yes)."""
    paths: List[List[ProtoAction]] = []
    # compress? No — indivisible.
    paths.append([_p(ActionTask.COMM, Phase.FLAT, _AR)])
    # compress? No — divisible.
    for first in (_RS, _RED):
        paths.append(
            [
                _p(ActionTask.COMM1, Phase.FLAT, first),
                _p(ActionTask.COMM2, Phase.FLAT, ROUTINE_PAIRING[first]),
            ]
        )
    # compress? Yes — indivisible.  The Allgather delivers P compressed
    # pieces, so the receive block (decompress + aggregate) applies just
    # as in the hierarchical twin (T4's indivisible branch).
    paths.append(
        [
            _p(ActionTask.COMP, Phase.FLAT),
            _p(ActionTask.COMM_C, Phase.FLAT, _AG),
            *_receive_block(Phase.FLAT),
        ]
    )
    # compress? Yes — divisible, with the intermediate receive block and
    # re-compression (Fig. 4).
    for first in (_A2A, _GTH):
        paths.append(
            [
                _p(ActionTask.COMP, Phase.FLAT),
                _p(ActionTask.COMM1_C, Phase.FLAT, first),
                *_receive_block(Phase.FLAT),
                _p(ActionTask.COMP, Phase.FLAT),
                _p(ActionTask.COMM2_C, Phase.FLAT, ROUTINE_PAIRING[first]),
                _p(ActionTask.DECOMP, Phase.FLAT),
            ]
        )
    return paths


def _hierarchical_paths() -> List[List[ProtoAction]]:
    """The hierarchical half of the tree (flat comm? = No).

    Intra-machine communication always uses a divisible scheme
    (Dimension 4 of §4.2.1).
    """
    paths: List[List[ProtoAction]] = []
    # First intra step on the uncompressed tensor.
    for first in (_RS, _RED):
        head = [_p(ActionTask.COMM1, Phase.INTRA1, first)]
        for t3 in _t3(ROUTINE_PAIRING[first]):
            paths.append(head + t3)
    # Compress before the first intra step.
    for first in (_A2A, _GTH):
        head = [
            _p(ActionTask.COMP, Phase.INTRA1),
            _p(ActionTask.COMM1_C, Phase.INTRA1, first),
            *_receive_block(Phase.INTRA1),
        ]
        second = ROUTINE_PAIRING[first]
        # Proceed to the inter phase uncompressed...
        for t3 in _t3(second):
            paths.append(head + t3)
        # ...or re-compress the intra aggregate for the inter phase.
        for t4 in _t4(second):
            paths.append(head + [_p(ActionTask.COMP, Phase.INTRA1)] + t4)
    return paths


def structural_paths() -> List[Path]:
    """All device-unassigned root-to-End paths of the decision tree."""
    return [tuple(p) for p in _flat_paths() + _hierarchical_paths()]


def _instantiate(path: Path, devices: Sequence[Device]) -> CompressionOption:
    """Bind a device assignment to a path's device tasks."""
    device_iter = iter(devices)
    actions = []
    flat = path[0].phase is Phase.FLAT
    for proto in path:
        if proto.needs_device:
            actions.append(
                Action(task=proto.task, phase=proto.phase, device=next(device_iter))
            )
        else:
            actions.append(
                Action(task=proto.task, phase=proto.phase, routine=proto.routine)
            )
    return CompressionOption(actions=tuple(actions), flat=flat)


def enumerate_options(
    mode: str = "uniform",
    include_flat: bool = True,
    include_rooted: bool = True,
) -> List[CompressionOption]:
    """Enumerate compression options from the decision tree.

    Args:
        mode: device-assignment mode — ``"uniform"``, ``"independent"``,
            ``"gpu"``, or ``"cpu"`` (see module docstring).
        include_flat: include flat-communication options.
        include_rooted: include Reduce/Broadcast/Gather-based schemes
            (dominated under the alpha-beta models for p > 2, but part of
            the paper's full search space).
    """
    rooted = {_RED, _BC, _GTH}
    options: List[CompressionOption] = []
    for path in structural_paths():
        if not include_flat and path[0].phase is Phase.FLAT:
            continue
        if not include_rooted and any(
            proto.routine in rooted for proto in path if proto.routine
        ):
            continue
        slots = sum(1 for proto in path if proto.needs_device)
        if slots == 0:
            options.append(_instantiate(path, ()))
        elif mode == "uniform":
            for device in (Device.GPU, Device.CPU):
                options.append(_instantiate(path, (device,) * slots))
        elif mode == "gpu":
            options.append(_instantiate(path, (Device.GPU,) * slots))
        elif mode == "cpu":
            options.append(_instantiate(path, (Device.CPU,) * slots))
        elif mode == "independent":
            for assignment in itertools.product((Device.GPU, Device.CPU), repeat=slots):
                options.append(_instantiate(path, assignment))
        else:
            raise ValueError(f"unknown device mode {mode!r}")
    return options


def search_space_size(mode: str = "independent") -> int:
    """|C| under the given device-assignment mode (Table 3's search space)."""
    return len(enumerate_options(mode=mode))


def constrain_options(
    options: Sequence[CompressionOption],
    max_compression_ops: Optional[int] = None,
    allow_intra_compression: bool = True,
    allow_flat: bool = True,
    devices: Optional[Sequence[Device]] = None,
) -> List[CompressionOption]:
    """User-supplied pruning of the search space (§4.2.2's extensibility).

    The paper notes users may "manually add constraints to prune the
    decision tree to rule out undesirable compression options", e.g.
    limiting the number of compression operations per tensor to bound
    the accuracy impact of repeated lossy re-compression.

    Args:
        options: the options to filter (e.g. ``enumerate_options()``).
        max_compression_ops: maximum COMP actions on a path (each is a
            lossy step for sparsifiers).
        allow_intra_compression: drop options that compress intra-machine
            traffic when False.
        allow_flat: drop flat-communication options when False.
        devices: restrict compression to these devices when given.
    """
    from repro.core.options import ActionTask

    kept: List[CompressionOption] = []
    allowed = set(devices) if devices is not None else None
    for option in options:
        if max_compression_ops is not None:
            comp_ops = sum(
                1 for a in option.actions if a.task is ActionTask.COMP
            )
            if comp_ops > max_compression_ops:
                continue
        if not allow_intra_compression and option.compresses_intra:
            continue
        if not allow_flat and option.flat:
            continue
        if allowed is not None and any(
            d not in allowed for d in option.devices
        ):
            continue
        kept.append(option)
    return kept
