"""Espresso's core: the decision-tree abstraction, strategy evaluation,
and the near-optimal compression decision algorithms."""

from repro.core.algorithm import (
    GPUDecisionResult,
    gpu_candidate_options,
    gpu_compression_decision,
    sorted_tensor_groups,
)
from repro.core.bounds import (
    FreeCompression,
    upper_bound_evaluator,
    upper_bound_iteration_time,
    upper_bound_throughput,
)
from repro.core.bubbles import (
    DEFAULT_MIN_BUBBLE,
    communication_bubbles,
    tensors_before_bubbles,
)
from repro.core.conformance import (
    StrategyConformance,
    conformance_strategies,
    validate_job,
    validate_strategy,
    validate_under_faults,
)
from repro.core.espresso import Espresso, EspressoResult
from repro.core.offload import (
    OffloadGroup,
    OffloadResult,
    apply_offload_counts,
    cpu_offload_decision,
    offload_groups,
)
from repro.core.options import (
    Action,
    ActionTask,
    CompressionOption,
    Device,
    Phase,
    ROUTINE_PAIRING,
    RoutineName,
    no_compression_option,
    validate_option,
)
from repro.core.plan import PlanCompiler
from repro.core.robust import (
    DegradationTable,
    ReplanResult,
    RobustPlanResult,
    SensitivityReport,
    StrategySensitivity,
    cvar,
    robust_select,
    sensitivity_sweep,
    worst_case,
)
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.core.tree import (
    constrain_options,
    enumerate_options,
    search_space_size,
    structural_paths,
)

__all__ = [
    "Espresso",
    "EspressoResult",
    "CompressionOption",
    "CompressionStrategy",
    "StrategyEvaluator",
    "PlanCompiler",
    "Action",
    "ActionTask",
    "Phase",
    "Device",
    "RoutineName",
    "ROUTINE_PAIRING",
    "no_compression_option",
    "baseline_strategy",
    "validate_option",
    "enumerate_options",
    "constrain_options",
    "structural_paths",
    "search_space_size",
    "gpu_candidate_options",
    "gpu_compression_decision",
    "sorted_tensor_groups",
    "GPUDecisionResult",
    "cpu_offload_decision",
    "offload_groups",
    "apply_offload_counts",
    "OffloadGroup",
    "OffloadResult",
    "communication_bubbles",
    "tensors_before_bubbles",
    "DEFAULT_MIN_BUBBLE",
    "FreeCompression",
    "upper_bound_evaluator",
    "upper_bound_iteration_time",
    "upper_bound_throughput",
    "StrategyConformance",
    "conformance_strategies",
    "validate_job",
    "validate_strategy",
    "validate_under_faults",
    "sensitivity_sweep",
    "robust_select",
    "worst_case",
    "cvar",
    "SensitivityReport",
    "StrategySensitivity",
    "RobustPlanResult",
    "DegradationTable",
    "ReplanResult",
]
