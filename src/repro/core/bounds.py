"""The Upper Bound throughput model (§5.1, "Performance metrics").

The paper's Upper Bound assumes GC has **no compression time and no
impact on tensor computation**: every tensor enjoys the reduced
communication volume for free.  We realize it by running the compression
decision algorithm under a zero-work compressor wrapper (same wire
sizes, zero compress/decompress/aggregate cost) — the best strategy when
compression is free.  Because compression costs nothing there, GPU/CPU
placement is irrelevant and Algorithm 1 alone suffices.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.compression.base import CompressedTensor, Compressor
from repro.config import JobConfig
from repro.core.options import CompressionOption
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


class FreeCompression(Compressor):
    """A compressor with the wrapped algorithm's wire sizes but zero cost."""

    def __init__(self, inner: Compressor):
        self.inner = inner
        self.name = f"free-{inner.name}"
        self.work_factor = 0.0
        self.is_identity = inner.is_identity

    def compress(self, tensor, seed=None) -> CompressedTensor:
        return self.inner.compress(tensor, seed=seed)

    def decompress(self, compressed: CompressedTensor):
        return self.inner.decompress(compressed)

    def compressed_nbytes(self, num_elements: int) -> int:
        return self.inner.compressed_nbytes(num_elements)


def upper_bound_evaluator(job: JobConfig) -> StrategyEvaluator:
    """A strategy evaluator whose compression is free."""
    evaluator = StrategyEvaluator(job)
    free = FreeCompression(evaluator.compressor)
    evaluator.compressor = free
    evaluator.compiler = type(evaluator.compiler)(
        cluster=evaluator.cluster,
        compressor=free,
        gpu=job.system.gpu,
        cpu=job.system.cpu,
    )
    return evaluator


def upper_bound_iteration_time(
    job: JobConfig, candidates: Optional[Sequence[CompressionOption]] = None
) -> float:
    """Iteration time of the Upper Bound (free compression, best strategy).

    Runs Algorithm 1's per-tensor best-option search under the free
    evaluator.  Bubble elimination is kept off: with zero compression
    cost, trying an option on a shielded tensor can never hurt, and the
    bound should be as tight (low) as possible.
    """
    from repro.core.algorithm import (
        gpu_candidate_options,
        gpu_compression_decision,
        refinement_sweep,
    )
    from repro.core.options import Device
    from repro.core.presets import (
        double_compression_option,
        inter_allgather_option,
        inter_alltoall_option,
    )

    evaluator = upper_bound_evaluator(job)
    if candidates is None:
        candidates = gpu_candidate_options()
    result = gpu_compression_decision(
        evaluator, candidates=candidates, min_bubble=float("inf")
    )
    strategy, best_time = result.strategy, result.iteration_time
    # Seed from the best uniform strategy too, then polish with one
    # sweep — the bound should be as tight as the search can make it.
    n = job.model.num_tensors
    for builder in (
        inter_allgather_option,
        inter_alltoall_option,
        double_compression_option,
    ):
        uniform = CompressionStrategy(options=(builder(Device.GPU),) * n)
        uniform_time = evaluator.iteration_time(uniform)
        if uniform_time < best_time:
            strategy, best_time = uniform, uniform_time
    strategy, best_time, _ = refinement_sweep(evaluator, strategy, candidates)
    return best_time


def upper_bound_throughput(
    job: JobConfig, candidates: Optional[Sequence[CompressionOption]] = None
) -> float:
    """Upper Bound samples/second."""
    iteration = upper_bound_iteration_time(job, candidates)
    return job.model.batch_size * job.system.cluster.total_gpus / iteration
