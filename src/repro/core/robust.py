"""Perturbation-robust strategy selection and graceful degradation.

The planner's F(S) minimization is only near-optimal for the cluster it
was profiled on.  This module measures and closes that gap:

* :func:`sensitivity_sweep` evaluates strategies across a perturbation
  ensemble (:func:`repro.sim.faults.default_ensemble`) and reports the
  per-fault-class overhead each strategy suffers — the ``repro faults``
  report.
* :func:`robust_select` picks the strategy minimizing a *robust
  objective* (worst-case or CVaR of the iteration time over the
  ensemble) instead of the nominal time — ``plan --robust``.
* :class:`DegradationTable` precomputes a fallback strategy per degraded
  cluster state and offers :meth:`DegradationTable.replan`, a
  bounded-time replan path: cheap precomputed candidates first, the full
  planner only when the time budget allows.

All evaluation is routed through one incremental
:class:`~repro.core.strategy.StrategyEvaluator` per ensemble member, so
scoring many candidate strategies against one degraded state reuses the
memo cache and the delta-simulation prefix exactly like the planner's
own inner loop.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import JobConfig
from repro.core.options import Device
from repro.core.parallel import (
    WorkerPool,
    WorkerPoolError,
    plan_member_task,
    sweep_member_task,
)
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.sim.faults import FaultModel, default_ensemble
from repro.utils.validation import check_non_negative

#: Robust objective names accepted by :func:`robust_select`.
WORST_CASE = "worst"
CVAR = "cvar"
OBJECTIVES = (WORST_CASE, CVAR)


def worst_case(times: Sequence[float]) -> float:
    """The worst (largest) iteration time over the ensemble."""
    if not times:
        raise ValueError("no evaluations to aggregate")
    return max(times)


def cvar(times: Sequence[float], alpha: float = 0.25) -> float:
    """Conditional value-at-risk: mean of the worst ``alpha`` fraction.

    ``alpha=1`` is the plain mean, ``alpha -> 0`` approaches the
    worst case; at least one member is always included.
    """
    if not times:
        raise ValueError("no evaluations to aggregate")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    tail = max(1, math.ceil(alpha * len(times)))
    worst = sorted(times, reverse=True)[:tail]
    return sum(worst) / len(worst)


def _objective_fn(
    objective: str, cvar_alpha: float
) -> Callable[[Sequence[float]], float]:
    if objective == WORST_CASE:
        return worst_case
    if objective == CVAR:
        return lambda times: cvar(times, alpha=cvar_alpha)
    raise ValueError(
        f"objective must be one of {OBJECTIVES}, got {objective!r}"
    )


# -- sensitivity sweeps ----------------------------------------------------


@dataclass(frozen=True)
class StrategySensitivity:
    """One strategy's iteration times across the perturbation ensemble."""

    name: str
    #: (fault name, iteration time) per ensemble member, ensemble order.
    times: Tuple[Tuple[str, float], ...]
    nominal_time: float

    def time_under(self, fault_name: str) -> float:
        for name, value in self.times:
            if name == fault_name:
                return value
        raise KeyError(fault_name)

    def overhead_under(self, fault_name: str) -> float:
        """Relative slowdown of this strategy under one fault class."""
        return self.time_under(fault_name) / self.nominal_time - 1.0

    @property
    def worst_time(self) -> float:
        return max(value for _, value in self.times)

    @property
    def worst_fault(self) -> str:
        return max(self.times, key=lambda item: item[1])[0]


@dataclass(frozen=True)
class SensitivityReport:
    """Sensitivity of several strategies to one perturbation ensemble."""

    fault_names: Tuple[str, ...]
    strategies: Tuple[StrategySensitivity, ...]
    timelines_checked: int = 0
    #: Why a ``jobs > 1`` sweep ran serially (core clamp, broken pool),
    #: or None when it fanned out / parallelism was never requested.
    #: ``repro faults`` prints it so a silently-serial sweep is visible.
    parallel_disabled_reason: Optional[str] = None

    def strategy(self, name: str) -> StrategySensitivity:
        for entry in self.strategies:
            if entry.name == name:
                return entry
        raise KeyError(name)


def _sweep_members_parallel(
    job: JobConfig,
    strategies: Sequence[Tuple[str, CompressionStrategy]],
    ensemble: Sequence[FaultModel],
    check: bool,
    jobs: int,
    oversubscribe: bool,
) -> Tuple[Optional[List], Optional[str]]:
    """Fan the per-member pricing out to a worker pool.

    Returns ``(results, disabled_reason)``: the ordered per-member
    results of :func:`~repro.core.parallel.sweep_member_task`, or
    ``None`` with the pool's reason when it ran (or fell back) serially.
    Each member's prices are computed by exactly one process with its
    own evaluator, so the values are identical to the serial loop's.
    """
    if jobs <= 1 or len(ensemble) <= 1:
        return None, None
    named_options = [
        (name, strategy.options) for name, strategy in strategies
    ]
    tasks = [
        (
            job if fault_model.is_nominal else fault_model.apply_to_job(job),
            check,
            named_options,
        )
        for fault_model in ensemble
    ]
    with WorkerPool(jobs, oversubscribe=oversubscribe) as pool:
        if not pool.active:
            return None, pool.disabled_reason
        try:
            return pool.run(sweep_member_task, tasks), pool.disabled_reason
        except WorkerPoolError:
            return None, pool.disabled_reason


def sensitivity_sweep(
    job: JobConfig,
    strategies: Sequence[Tuple[str, CompressionStrategy]],
    ensemble: Optional[Sequence[FaultModel]] = None,
    check: bool = False,
    jobs: int = 1,
    oversubscribe: bool = False,
) -> SensitivityReport:
    """Evaluate ``strategies`` on every ensemble member of ``job``.

    One incremental evaluator per member prices all strategies; with
    ``check=True`` every faulted timeline additionally runs the full
    invariant battery (raising
    :class:`~repro.sim.validate.ConformanceError` on any violation).
    With ``jobs > 1`` the ensemble members are priced by a worker pool,
    one member per task — the report is identical to the serial sweep
    (each member is still priced by a single evaluator).
    """
    if ensemble is None:
        ensemble = default_ensemble()
    if not ensemble:
        raise ValueError("ensemble must have at least one member")
    if not strategies:
        raise ValueError("no strategies to sweep")
    times: Dict[str, List[Tuple[str, float]]] = {
        name: [] for name, _ in strategies
    }
    nominal: Dict[str, float] = {}
    nominal_evaluator = StrategyEvaluator(job, check=check)
    checked = 0
    member_results, disabled_reason = _sweep_members_parallel(
        job, strategies, ensemble, check, jobs, oversubscribe
    )
    if member_results is not None:
        for fault_model, (member_times, member_checked) in zip(
            ensemble, member_results
        ):
            for name, value in member_times:
                times[name].append((fault_model.name, value))
            checked += member_checked
    else:
        for fault_model in ensemble:
            if fault_model.is_nominal:
                evaluator = nominal_evaluator
            else:
                evaluator = StrategyEvaluator(
                    fault_model.apply_to_job(job), check=check
                )
            for name, strategy in strategies:
                value = evaluator.iteration_time(strategy)
                if check:
                    evaluator.timeline(strategy)
                times[name].append((fault_model.name, value))
            checked += evaluator.timelines_checked
    for name, strategy in strategies:
        nominal[name] = nominal_evaluator.iteration_time(strategy)
    return SensitivityReport(
        fault_names=tuple(fm.name for fm in ensemble),
        strategies=tuple(
            StrategySensitivity(
                name=name,
                times=tuple(times[name]),
                nominal_time=nominal[name],
            )
            for name, _ in strategies
        ),
        timelines_checked=checked,
        parallel_disabled_reason=disabled_reason,
    )


# -- robust selection ------------------------------------------------------


def _portfolio_candidates(
    num_tensors: int,
) -> List[Tuple[str, CompressionStrategy]]:
    """The uniform preset strategies plus FP32 — the cheap, always-
    available candidate pool shared by robust selection and the
    degradation table."""
    candidates: List[Tuple[str, CompressionStrategy]] = [
        ("fp32", baseline_strategy(num_tensors)),
    ]
    builders = (
        ("allgather", inter_allgather_option),
        ("alltoall", inter_alltoall_option),
        ("double", double_compression_option),
    )
    for label, builder in builders:
        for device in (Device.GPU, Device.CPU):
            candidates.append(
                (
                    f"uniform-{label}-{device.value}",
                    CompressionStrategy(
                        options=(builder(device),) * num_tensors
                    ),
                )
            )
    return candidates


@dataclass
class RobustPlanResult:
    """Outcome of robust strategy selection over a perturbation ensemble.

    Attributes:
        strategy: the robust winner.
        objective: objective name (``"worst"`` or ``"cvar"``).
        objective_value: the winner's objective over the ensemble.
        nominal_time: the winner's iteration time on the unperturbed job.
        default_strategy: the nominal planner's choice (what ``plan``
            without ``--robust`` would select).
        default_objective_value: the default strategy's objective —
            ``objective_value <= default_objective_value`` always (the
            default is in the candidate pool).
        candidate_name: which candidate won.
        per_fault_times: (fault name, iteration time) for the winner.
        candidates_evaluated: size of the deduplicated candidate pool.
        selection_seconds: wall-clock of the whole robust selection.
    """

    strategy: CompressionStrategy
    objective: str
    objective_value: float
    nominal_time: float
    default_strategy: CompressionStrategy
    default_objective_value: float
    candidate_name: str
    per_fault_times: Tuple[Tuple[str, float], ...]
    candidates_evaluated: int
    selection_seconds: float

    @property
    def differs_from_default(self) -> bool:
        """True when robust selection changed the decision."""
        return self.strategy.fingerprint() != self.default_strategy.fingerprint()

    def summary(self) -> str:
        verdict = (
            "replaces the nominal plan"
            if self.differs_from_default
            else "confirms the nominal plan"
        )
        return (
            f"Robust selection ({self.objective}) picked "
            f"{self.candidate_name!r} out of {self.candidates_evaluated} "
            f"candidates in {self.selection_seconds * 1e3:.1f} ms; "
            f"{self.objective} iteration time "
            f"{self.default_objective_value * 1e3:.1f} ms -> "
            f"{self.objective_value * 1e3:.1f} ms ({verdict})."
        )


def robust_select(
    job: JobConfig,
    ensemble: Optional[Sequence[FaultModel]] = None,
    objective: str = WORST_CASE,
    cvar_alpha: float = 0.25,
    planner_factory: Optional[Callable[[JobConfig], object]] = None,
    check: bool = False,
    jobs: int = 1,
    oversubscribe: bool = False,
) -> RobustPlanResult:
    """Select the strategy minimizing a robust objective over ``ensemble``.

    Candidate pool: the nominal planner's strategy, one planner run per
    perturbed ensemble member (each near-optimal *somewhere*), and the
    uniform portfolio + FP32.  Every candidate is priced on every member
    through that member's incremental evaluator; the winner minimizes
    the objective, with the nominal iteration time as tie-break so the
    robust mode never picks a gratuitously slower-on-average strategy.

    Args:
        planner_factory: ``job -> planner`` override (tests inject a
            cheaper configuration); defaults to
            :class:`~repro.core.espresso.Espresso` with stock settings.
        jobs: worker-pool width.  With the stock planner the per-member
            planner runs fan out one member per process, and the final
            sensitivity sweep prices members in parallel; a custom
            ``planner_factory`` keeps the planner runs in-process (the
            factory need not be picklable) but still parallelizes the
            sweep.  Results are identical for every width.
        oversubscribe: skip the worker pools' core-count clamp (see
            :class:`~repro.core.parallel.WorkerPool`).
    """
    from repro.core.espresso import Espresso  # circular-import guard

    if ensemble is None:
        ensemble = default_ensemble()
    if not ensemble:
        raise ValueError("ensemble must have at least one member")
    score = _objective_fn(objective, cvar_alpha)
    stock_planner = planner_factory is None
    if planner_factory is None:
        planner_factory = Espresso

    start = time.perf_counter()
    default_strategy = planner_factory(job).select_strategy().strategy

    candidates: List[Tuple[str, CompressionStrategy]] = [
        ("espresso-nominal", default_strategy)
    ]
    perturbed_members = [
        fault_model for fault_model in ensemble if not fault_model.is_nominal
    ]
    member_options = None
    if stock_planner and jobs > 1 and len(perturbed_members) > 1:
        with WorkerPool(jobs, oversubscribe=oversubscribe) as pool:
            if pool.active:
                try:
                    member_options = pool.run(
                        plan_member_task,
                        [
                            fault_model.apply_to_job(job)
                            for fault_model in perturbed_members
                        ],
                    )
                except WorkerPoolError:
                    member_options = None
    if member_options is not None:
        for fault_model, options in zip(perturbed_members, member_options):
            candidates.append(
                (
                    f"espresso-{fault_model.name}",
                    CompressionStrategy(options=tuple(options)),
                )
            )
    else:
        for fault_model in perturbed_members:
            perturbed = fault_model.apply_to_job(job)
            candidates.append(
                (
                    f"espresso-{fault_model.name}",
                    planner_factory(perturbed).select_strategy().strategy,
                )
            )
    candidates.extend(_portfolio_candidates(job.model.num_tensors))

    # Deduplicate by fingerprint, keeping first names (planner-derived
    # candidates take precedence over portfolio duplicates).
    unique: List[Tuple[str, CompressionStrategy]] = []
    seen = set()
    for name, strategy in candidates:
        fp = strategy.fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        unique.append((name, strategy))

    report = sensitivity_sweep(
        job,
        unique,
        ensemble=ensemble,
        check=check,
        jobs=jobs,
        oversubscribe=oversubscribe,
    )

    def entry_key(entry: StrategySensitivity) -> Tuple[float, float, str]:
        return (
            score([value for _, value in entry.times]),
            entry.nominal_time,
            entry.name,
        )

    best = min(report.strategies, key=entry_key)
    default_entry = report.strategy("espresso-nominal")
    by_name = dict(unique)
    return RobustPlanResult(
        strategy=by_name[best.name],
        objective=objective,
        objective_value=score([value for _, value in best.times]),
        nominal_time=best.nominal_time,
        default_strategy=default_strategy,
        default_objective_value=score(
            [value for _, value in default_entry.times]
        ),
        candidate_name=best.name,
        per_fault_times=best.times,
        candidates_evaluated=len(unique),
        selection_seconds=time.perf_counter() - start,
    )


# -- graceful degradation --------------------------------------------------


@dataclass(frozen=True)
class DegradationEntry:
    """A precomputed fallback plan for one degraded cluster state."""

    fault_name: str
    strategy: CompressionStrategy
    iteration_time: float  # on the degraded state it was planned for
    plan_seconds: float


@dataclass
class ReplanLedger:
    """Cumulative replan-time budget shared across a churn storm.

    :meth:`DegradationTable.replan` historically honoured only a
    *per-event* budget, so a storm of back-to-back faults (elastic
    membership thrash, fleet tenant churn) could spend
    ``events x budget`` unbounded total time in full planner runs.  A
    ledger fixes the accounting: every replan charges its wall-clock
    here, and the effective budget of the next replan is capped by what
    remains.  An exhausted ledger still answers (the cheap precomputed
    scoring always runs — bounded milliseconds), but reports
    ``within_budget=False`` so the caller degrades explicitly instead
    of silently keeping a stale plan.
    """

    total_seconds: float
    spent_seconds: float = 0.0
    events: int = 0

    def __post_init__(self) -> None:
        if self.total_seconds <= 0.0:
            raise ValueError(
                f"total_seconds must be > 0, got {self.total_seconds}"
            )

    def remaining(self) -> float:
        return max(0.0, self.total_seconds - self.spent_seconds)

    @property
    def exhausted(self) -> bool:
        return self.remaining() <= 0.0

    def charge(self, seconds: float) -> None:
        """Record one replan's wall-clock against the cumulative budget."""
        check_non_negative("seconds", seconds)
        self.spent_seconds += seconds
        self.events += 1


@dataclass
class ReplanResult:
    """Outcome of a bounded-time replan for a degraded cluster state."""

    strategy: CompressionStrategy
    iteration_time: float
    source: str  # candidate that won ("table:<fault>", "portfolio:...", "full-plan")
    used_full_planner: bool
    seconds: float
    #: The effective budget this replan honoured: the per-event budget,
    #: further capped by the ledger's remaining cumulative budget when
    #: one was given.
    budget_seconds: float = math.inf

    @property
    def within_budget(self) -> bool:
        """Whether the replan finished inside its time budget."""
        return self.seconds <= self.budget_seconds


@dataclass
class DegradationTable:
    """Precomputed fallback strategies per degraded cluster state.

    Built once (e.g. at job admission) with one planner run per ensemble
    member; at fault-detection time :meth:`replan` answers inside a time
    budget — precomputed entries and the uniform portfolio are scored
    with a few incremental F(S) calls, and the full planner only runs
    when the budget leaves room for it.
    """

    job: JobConfig
    entries: Dict[str, DegradationEntry] = field(default_factory=dict)
    #: Worst observed single-plan time; the budget gate for full replans.
    max_plan_seconds: float = 0.0
    _planner_factory: Optional[Callable[[JobConfig], object]] = None
    #: Fusion-group boundaries every entry was planned under; ``None``
    #: for per-tensor tables.  :meth:`replan` refuses to score entries
    #: against a model trace the boundaries no longer partition.
    fusion_plan: Optional["FusionPlan"] = None

    def _fused(self, job: JobConfig) -> JobConfig:
        """``job`` under this table's fusion plan, stale-checked.

        Every cached strategy is indexed by the fused model's tensors;
        scoring it against a job the plan no longer partitions would
        silently misprice every bucket, so a mismatch is a refusal
        (:class:`~repro.core.fusion.StalePlanError`, exit 2 in the CLI)
        rather than a fallback.
        """
        if self.fusion_plan is None:
            return job
        from repro.core.fusion import StalePlanError, fused_job

        if self.fusion_plan.num_tensors != job.model.num_tensors:
            raise StalePlanError(
                f"stale plan: degradation table boundaries partition "
                f"{self.fusion_plan.num_tensors} tensors but model "
                f"{job.model.name!r} traces {job.model.num_tensors}; "
                f"rebuild the table"
            )
        return fused_job(job, self.fusion_plan)

    @classmethod
    def build(
        cls,
        job: JobConfig,
        ensemble: Optional[Sequence[FaultModel]] = None,
        planner_factory: Optional[Callable[[JobConfig], object]] = None,
        fusion_plan: Optional["FusionPlan"] = None,
    ) -> "DegradationTable":
        from repro.core.espresso import Espresso  # circular-import guard

        if ensemble is None:
            ensemble = default_ensemble()
        if planner_factory is None:
            planner_factory = Espresso
        table = cls(
            job=job, _planner_factory=planner_factory, fusion_plan=fusion_plan
        )
        for fault_model in ensemble:
            perturbed = table._fused(fault_model.apply_to_job(job))
            start = time.perf_counter()
            result = planner_factory(perturbed).select_strategy()
            seconds = time.perf_counter() - start
            table.entries[fault_model.name] = DegradationEntry(
                fault_name=fault_model.name,
                strategy=result.strategy,
                iteration_time=result.iteration_time,
                plan_seconds=seconds,
            )
            table.max_plan_seconds = max(table.max_plan_seconds, seconds)
        return table

    def lookup(self, fault_name: str) -> DegradationEntry:
        """The precomputed fallback for a known degraded state."""
        try:
            return self.entries[fault_name]
        except KeyError:
            raise KeyError(
                f"no degradation entry for {fault_name!r}; "
                f"known states: {sorted(self.entries)}"
            ) from None

    def replan(
        self,
        fault_model: FaultModel,
        budget_seconds: float,
        ledger: Optional[ReplanLedger] = None,
    ) -> ReplanResult:
        """Best strategy for ``fault_model`` obtainable within the budget.

        Always scores the precomputed entries plus the uniform
        portfolio/FP32 pool (a handful of incremental F(S) calls);
        additionally runs the full planner on the degraded job when the
        remaining budget exceeds the worst plan time observed while
        building the table.  The result is therefore never worse than
        the best precomputed fallback, and equals a fresh plan whenever
        time permits.

        ``budget_seconds`` alone is a *per-event* budget: each call may
        spend up to that much, so repeated churn spends up to
        ``events x budget`` in total — callers that face fault storms
        should pass a shared :class:`ReplanLedger`, which caps the
        effective budget at the cumulative remainder and is charged
        this call's wall-clock afterwards.  With an exhausted ledger the
        replan still answers from the precomputed candidates, but
        ``within_budget`` is False so the caller can degrade explicitly.
        """
        check_start = time.perf_counter()
        effective_budget = budget_seconds
        if ledger is not None:
            effective_budget = min(budget_seconds, ledger.remaining())
        perturbed = self._fused(fault_model.apply_to_job(self.job))
        num_tensors = perturbed.model.num_tensors
        for entry in self.entries.values():
            if len(entry.strategy) != num_tensors:
                from repro.core.fusion import StalePlanError

                raise StalePlanError(
                    f"stale plan: cached entry {entry.fault_name!r} decides "
                    f"{len(entry.strategy)} tensors but the degraded job "
                    f"traces {num_tensors}; rebuild the table"
                )
        evaluator = StrategyEvaluator(perturbed)

        candidates: List[Tuple[str, CompressionStrategy]] = [
            (f"table:{entry.fault_name}", entry.strategy)
            for entry in self.entries.values()
        ]
        candidates.extend(
            (f"portfolio:{name}", strategy)
            for name, strategy in _portfolio_candidates(num_tensors)
        )
        seen = set()
        best_name, best_strategy, best_time = "", None, math.inf
        for name, strategy in candidates:
            fp = strategy.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            value = evaluator.iteration_time(strategy)
            if value < best_time:
                best_name, best_strategy, best_time = name, strategy, value

        used_full = False
        elapsed = time.perf_counter() - check_start
        if effective_budget - elapsed >= self.max_plan_seconds:
            planner_factory = self._planner_factory
            if planner_factory is None:
                from repro.core.espresso import Espresso

                planner_factory = Espresso
            result = planner_factory(perturbed).select_strategy()
            used_full = True
            if result.iteration_time < best_time:
                best_name = "full-plan"
                best_strategy = result.strategy
                best_time = result.iteration_time
        seconds = time.perf_counter() - check_start
        if ledger is not None:
            ledger.charge(seconds)
        return ReplanResult(
            strategy=best_strategy,
            iteration_time=best_time,
            source=best_name,
            used_full_planner=used_full,
            seconds=seconds,
            budget_seconds=effective_budget,
        )
