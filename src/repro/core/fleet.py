"""Joint fleet planning: contention-robust co-scheduling with churn.

Single-job Espresso answers "what is the best strategy for this job on
this cluster"; a fleet asks the coupled question — every tenant's
best strategy depends on the bandwidth the *other* tenants' strategies
leave behind.  This module closes the loop on top of the projection in
:mod:`repro.cluster.tenancy`:

* :func:`plan_fleet` — the joint planner.  Round 0 plans every tenant
  selfishly (in isolation); each subsequent round replans every tenant
  against the contention the previous round's assignment induces
  (Jacobi iteration — all tenants move simultaneously against the same
  snapshot, which keeps the rounds deterministic and order-free).  A
  repeated assignment signature without convergence is a cycle: the
  deterministic oscillation detector stops the iteration and falls back
  to :func:`~repro.core.robust.robust_select` with the CVaR objective
  over the *observed contention envelope* — the degraded link states
  the iteration actually visited.  Finally the portfolio guarantee: the
  joint assignment and the selfish assignment are priced by the same
  one-shot contention evaluation, and whichever aggregates more
  throughput ships — joint planning is never worse than selfish, by
  construction.
* :class:`FleetChurnController` — tenant arrival/departure events drive
  budgeted replans through each tenant's precomputed
  :class:`~repro.core.robust.DegradationTable`, all charged to one
  cumulative :class:`~repro.core.robust.ReplanLedger`.  When the budget
  is blown the controller degrades *explicitly* to the tenant's
  admission-time selfish plan (the PR 8 ladder convention): every plan
  in flight is either a within-budget replan or a flagged fallback —
  never a silently stale strategy.

Every contended timeline is produced by the unmodified simulator from
an ordinary perturbed job, so ``check=True`` runs the unmodified
invariant battery on all of them.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.tenancy import (
    FleetSpec,
    LinkLoad,
    MIN_BANDWIDTH_SHARE,
    TenantSpec,
    contention_models,
    link_load,
)
from repro.config import JobConfig
from repro.core.parallel import WorkerPool, WorkerPoolError, plan_member_task
from repro.core.robust import (
    CVAR,
    DegradationTable,
    ReplanLedger,
    robust_select,
)
from repro.core.strategy import CompressionStrategy, StrategyEvaluator
from repro.sim.faults import CPUContention, DegradedLink, FaultModel, INTER_SCOPE
from repro.sim.metrics import iteration_time as timeline_iteration_time
from repro.sim.metrics import throughput

#: ``job -> planner`` factory; the planner must expose
#: ``select_strategy() -> result`` with a ``.strategy`` attribute.
PlannerFactory = Callable[[JobConfig], object]

#: Tenant-plan provenance inside a fleet result.
SOURCE_JOINT = "joint"
SOURCE_SELFISH = "selfish"
SOURCE_CVAR = "cvar"


def fleet_churn_ensemble() -> List[FaultModel]:
    """Degraded states a tenant's churn table is pre-planned against.

    A ladder of shared-link pressure (the only fault class fleet
    contention produces) from nominal to storm; the actual contention
    model observed at replan time is scored against all of them, so the
    closest precomputed entry answers even when the full planner does
    not fit the budget.
    """
    return [
        FaultModel.nominal(),
        FaultModel("fleet-light", (DegradedLink(INTER_SCOPE, 0.75),)),
        FaultModel("fleet-heavy", (DegradedLink(INTER_SCOPE, 0.5),)),
        FaultModel(
            "fleet-storm",
            (
                DegradedLink(INTER_SCOPE, 0.25),
                CPUContention(slowdown=1.0, stolen_workers=1),
            ),
        ),
    ]


# -- planning the member jobs ----------------------------------------------


def _install_cancel(planner, cancel_check) -> None:
    if cancel_check is not None and hasattr(planner, "evaluator"):
        planner.evaluator.cancel_check = cancel_check


def _plan_jobs(
    member_jobs: Sequence[JobConfig],
    planner_factory: Optional[PlannerFactory],
    jobs: int,
    oversubscribe: bool,
    cancel_check,
) -> Tuple[List[CompressionStrategy], Optional[str]]:
    """One full planner run per member job, fanned out when asked.

    With the stock planner and ``jobs > 1`` the members ship to a
    worker pool (one serial planner run per process, exactly what the
    serial loop does), so the strategies are bit-identical for every
    width; the second element reports why a requested fan-out ran
    serially (None when it fanned out or was never requested).
    """
    stock = planner_factory is None
    disabled_reason: Optional[str] = None
    if stock and jobs > 1 and len(member_jobs) > 1:
        with WorkerPool(jobs, oversubscribe=oversubscribe) as pool:
            if pool.active:
                try:
                    member_options = pool.run(
                        plan_member_task, list(member_jobs)
                    )
                    return (
                        [
                            CompressionStrategy(options=tuple(options))
                            for options in member_options
                        ],
                        pool.disabled_reason,
                    )
                except WorkerPoolError:
                    pass
            disabled_reason = pool.disabled_reason
    if planner_factory is None:
        from repro.core.espresso import Espresso  # circular-import guard

        planner_factory = Espresso
    strategies = []
    for job in member_jobs:
        if cancel_check is not None:
            cancel_check()
        planner = planner_factory(job)
        _install_cancel(planner, cancel_check)
        strategies.append(planner.select_strategy().strategy)
    return strategies, disabled_reason


# -- the one-shot contention evaluation ------------------------------------


@dataclass
class FleetEvaluation:
    """One assignment priced under the contention it induces.

    The operator is the same for every assignment (simulate each tenant
    alone, project the loads, price each tenant on its perturbed job),
    which is what makes the joint-vs-selfish portfolio comparison fair.
    """

    loads: Dict[str, LinkLoad]
    models: Dict[str, FaultModel]
    nominal_times: Dict[str, float]
    contended_times: Dict[str, float]
    throughputs: Dict[str, float]
    timelines_checked: int

    @property
    def aggregate_throughput(self) -> float:
        return math.fsum(
            self.throughputs[name] for name in sorted(self.throughputs)
        )


def evaluate_assignment(
    fleet: FleetSpec,
    strategies: Dict[str, CompressionStrategy],
    min_share: float = MIN_BANDWIDTH_SHARE,
    check: bool = False,
    cancel_check=None,
) -> FleetEvaluation:
    """Price one per-tenant strategy assignment under its own contention.

    Each tenant's strategy is simulated on the unperturbed cluster to
    read off its offered load; the loads project to per-tenant
    contention models; each strategy is then priced on its contended
    job.  With ``check=True`` every contended timeline runs the
    unmodified invariant battery.
    """
    jobs_by_name = fleet.jobs()
    missing = sorted(set(jobs_by_name) - set(strategies))
    if missing:
        raise ValueError(f"no strategy for tenant(s): {', '.join(missing)}")
    names = sorted(jobs_by_name)
    loads: Dict[str, LinkLoad] = {}
    nominal_times: Dict[str, float] = {}
    for name in names:
        if cancel_check is not None:
            cancel_check()
        evaluator = StrategyEvaluator(jobs_by_name[name])
        evaluator.cancel_check = cancel_check
        timeline = evaluator.timeline(strategies[name])
        loads[name] = link_load(name, jobs_by_name[name], timeline)
        nominal_times[name] = timeline_iteration_time(
            timeline, jobs_by_name[name].model
        )
    models = contention_models(
        list(loads.values()), fleet.cluster, min_share=min_share
    )
    contended_times: Dict[str, float] = {}
    throughputs: Dict[str, float] = {}
    checked = 0
    for name in names:
        if cancel_check is not None:
            cancel_check()
        perturbed = models[name].apply_to_job(jobs_by_name[name])
        evaluator = StrategyEvaluator(perturbed, check=check)
        evaluator.cancel_check = cancel_check
        timeline = evaluator.timeline(strategies[name])
        contended = timeline_iteration_time(timeline, perturbed.model)
        contended_times[name] = contended
        throughputs[name] = throughput(
            perturbed.model, fleet.cluster, contended
        )
        checked += evaluator.timelines_checked
    return FleetEvaluation(
        loads=loads,
        models=models,
        nominal_times=nominal_times,
        contended_times=contended_times,
        throughputs=throughputs,
        timelines_checked=checked,
    )


# -- the joint fixed-point planner -----------------------------------------


@dataclass(frozen=True)
class TenantPlan:
    """One tenant's share of a fleet plan."""

    name: str
    model: str
    strategy: CompressionStrategy
    #: Iteration time alone on the uncontended cluster.
    nominal_time: float
    #: Iteration time under the shipped assignment's contention.
    contended_time: float
    #: Samples/second under contention.
    throughput: float
    contention: FaultModel
    source: str  # "joint", "selfish", or "cvar"

    @property
    def slowdown(self) -> float:
        """Contended iteration time relative to running alone."""
        return self.contended_time / self.nominal_time


@dataclass
class FleetPlanResult:
    """Outcome of :func:`plan_fleet` for one job mix."""

    fleet: FleetSpec
    tenants: Tuple[TenantPlan, ...]
    #: ``"joint"`` when the joint assignment shipped, ``"selfish"`` when
    #: the portfolio guarantee fell back to the selfish plans.
    mode: str
    converged: bool
    oscillated: bool
    rounds: int
    aggregate_throughput: float
    selfish_aggregate_throughput: float
    timelines_checked: int
    parallel_disabled_reason: Optional[str]
    plan_seconds: float

    def tenant(self, name: str) -> TenantPlan:
        for plan in self.tenants:
            if plan.name == name:
                return plan
        raise KeyError(name)

    @property
    def worst_slowdown(self) -> float:
        """The worst tenant's contended/nominal ratio."""
        return max(plan.slowdown for plan in self.tenants)

    def summary(self) -> str:
        if self.mode == "joint":
            how = "converged" if self.converged else (
                "CVaR fallback after oscillation"
                if self.oscillated
                else "CVaR fallback after round limit"
            )
        else:
            how = "selfish portfolio fallback"
        return (
            f"fleet of {len(self.tenants)}: {how} in {self.rounds} "
            f"round(s), aggregate {self.aggregate_throughput:,.0f} "
            f"samples/s (selfish {self.selfish_aggregate_throughput:,.0f}), "
            f"worst tenant slowdown {self.worst_slowdown:.2f}x, "
            f"planned in {self.plan_seconds * 1e3:.1f} ms"
        )


def _signature(
    names: Sequence[str], strategies: Dict[str, CompressionStrategy]
) -> Tuple:
    """Deterministic assignment identity for the oscillation detector."""
    return tuple(strategies[name].fingerprint() for name in names)


def _model_key(model: FaultModel) -> str:
    return "; ".join(fault.describe() for fault in model.faults)


def plan_fleet(
    fleet: FleetSpec,
    planner_factory: Optional[PlannerFactory] = None,
    max_rounds: int = 6,
    min_share: float = MIN_BANDWIDTH_SHARE,
    cvar_alpha: float = 0.25,
    check: bool = False,
    jobs: int = 1,
    oversubscribe: bool = False,
    cancel_check=None,
) -> FleetPlanResult:
    """Jointly plan every tenant of ``fleet`` against shared-link contention.

    Fixed-point iteration with a deterministic oscillation detector and
    a CVaR fallback (module docstring has the full story).  The result
    is never worse than selfish planning on aggregate throughput: both
    assignments are priced by the same one-shot contention evaluation
    and the better one ships.

    Args:
        planner_factory: ``job -> planner`` override (tests inject a
            cheaper configuration); defaults to the stock Espresso.
        max_rounds: fixed-point iterations before the CVaR fallback.
        min_share: bandwidth-share floor of the contention projection.
        check: run the unmodified invariant battery on every contended
            timeline of both the joint and the selfish evaluation.
        jobs: worker-pool width for the per-tenant planner runs; the
            assignment is bit-identical for every width.
        cancel_check: cooperative-cancellation seam (the service's
            deadline token), called between planner runs and installed
            on every evaluator.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    start = time.perf_counter()
    names = sorted(fleet.names)
    jobs_by_name = fleet.jobs()
    member_jobs = [jobs_by_name[name] for name in names]

    selfish_list, disabled_reason = _plan_jobs(
        member_jobs, planner_factory, jobs, oversubscribe, cancel_check
    )
    selfish = dict(zip(names, selfish_list))

    current = dict(selfish)
    sources = {name: SOURCE_JOINT for name in names}
    observed: Dict[str, List[FaultModel]] = {name: [] for name in names}
    observed_keys: Dict[str, set] = {name: set() for name in names}
    history = {_signature(names, current)}
    converged = False
    oscillated = False
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        evaluation = evaluate_assignment(
            fleet, current, min_share=min_share, cancel_check=cancel_check
        )
        for name in names:
            model = evaluation.models[name]
            key = _model_key(model)
            if not model.is_nominal and key not in observed_keys[name]:
                observed_keys[name].add(key)
                observed[name].append(model)
        perturbed_jobs = [
            evaluation.models[name].apply_to_job(jobs_by_name[name])
            for name in names
        ]
        next_list, reason = _plan_jobs(
            perturbed_jobs, planner_factory, jobs, oversubscribe, cancel_check
        )
        if disabled_reason is None:
            disabled_reason = reason
        next_assignment = dict(zip(names, next_list))
        next_sig = _signature(names, next_assignment)
        if next_sig == _signature(names, current):
            converged = True
            current = next_assignment
            break
        if next_sig in history:
            oscillated = True
            break
        history.add(next_sig)
        current = next_assignment

    if not converged:
        # The iteration cycled (or ran out of rounds): stop chasing the
        # moving target and pick, per tenant, the strategy with the best
        # CVaR over the contention envelope the iteration actually
        # visited.  Deterministic: the envelope is an ordered dedup of
        # observed models.
        for name in names:
            ensemble = [FaultModel.nominal()] + observed[name]
            result = robust_select(
                jobs_by_name[name],
                ensemble=ensemble,
                objective=CVAR,
                cvar_alpha=cvar_alpha,
                planner_factory=planner_factory,
                jobs=jobs,
                oversubscribe=oversubscribe,
            )
            current[name] = result.strategy
            sources[name] = SOURCE_CVAR

    joint_eval = evaluate_assignment(
        fleet, current, min_share=min_share, check=check,
        cancel_check=cancel_check,
    )
    selfish_eval = evaluate_assignment(
        fleet, selfish, min_share=min_share, check=check,
        cancel_check=cancel_check,
    )
    checked = joint_eval.timelines_checked + selfish_eval.timelines_checked

    # Portfolio guarantee: ship whichever assignment aggregates more
    # throughput under the identical evaluation operator.
    if joint_eval.aggregate_throughput >= selfish_eval.aggregate_throughput:
        mode, final, final_eval = "joint", current, joint_eval
    else:
        mode, final, final_eval = "selfish", selfish, selfish_eval
        sources = {name: SOURCE_SELFISH for name in names}

    tenants = tuple(
        TenantPlan(
            name=name,
            model=jobs_by_name[name].model.name,
            strategy=final[name],
            nominal_time=final_eval.nominal_times[name],
            contended_time=final_eval.contended_times[name],
            throughput=final_eval.throughputs[name],
            contention=final_eval.models[name],
            source=sources[name],
        )
        for name in names
    )
    return FleetPlanResult(
        fleet=fleet,
        tenants=tenants,
        mode=mode,
        converged=converged,
        oscillated=oscillated,
        rounds=rounds,
        aggregate_throughput=final_eval.aggregate_throughput,
        selfish_aggregate_throughput=selfish_eval.aggregate_throughput,
        timelines_checked=checked,
        parallel_disabled_reason=disabled_reason,
        plan_seconds=time.perf_counter() - start,
    )


# -- churn: tenant arrivals and departures ---------------------------------


@dataclass(frozen=True)
class FleetEvent:
    """One tenant arrival or departure."""

    kind: str  # "arrive" | "depart"
    tenant: Optional[TenantSpec] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("arrive", "depart"):
            raise ValueError(
                f"kind must be 'arrive' or 'depart', got {self.kind!r}"
            )
        if self.kind == "arrive" and self.tenant is None:
            raise ValueError("an 'arrive' event needs a tenant spec")
        if self.kind == "depart" and not self.name:
            raise ValueError("a 'depart' event needs a tenant name")

    @property
    def tenant_name(self) -> str:
        return self.tenant.name if self.kind == "arrive" else self.name

    def describe(self) -> str:
        return f"{self.kind}:{self.tenant_name}"


@dataclass(frozen=True)
class TenantReplan:
    """One tenant's replan outcome after a churn event."""

    tenant: str
    source: str
    seconds: float
    budget_seconds: float
    within_budget: bool
    #: True when the budget was blown and the controller explicitly
    #: fell back to the admission-time selfish plan.
    degraded: bool
    iteration_time: float


@dataclass(frozen=True)
class ChurnRecord:
    """One applied churn event and the replans it triggered."""

    index: int
    event: str
    tenants: Tuple[str, ...]
    replans: Tuple[TenantReplan, ...]


@dataclass
class ChurnReport:
    """Outcome of a churn drill: every replan accounted for."""

    records: List[ChurnRecord] = field(default_factory=list)
    ledger: Optional[ReplanLedger] = None

    @property
    def replans(self) -> List[TenantReplan]:
        return [r for record in self.records for r in record.replans]

    @property
    def degraded_fraction(self) -> float:
        replans = self.replans
        if not replans:
            return 0.0
        return sum(1 for r in replans if r.degraded) / len(replans)

    @property
    def all_accounted(self) -> bool:
        """Every replan either finished within budget or degraded
        explicitly — the no-silently-stale-plans contract."""
        return all(r.within_budget or r.degraded for r in self.replans)

    def summary(self) -> str:
        replans = self.replans
        degraded = sum(1 for r in replans if r.degraded)
        line = (
            f"{len(self.records)} churn event(s), {len(replans)} replan(s), "
            f"{degraded} degraded to selfish"
        )
        if self.ledger is not None:
            line += (
                f"; ledger {self.ledger.spent_seconds * 1e3:.1f} ms of "
                f"{self.ledger.total_seconds * 1e3:.1f} ms spent"
            )
        return line


class FleetChurnController:
    """Drive a fleet through tenant churn with budgeted replans.

    Admission (construction and every arrival) pays full price: a
    selfish plan and a :class:`~repro.core.robust.DegradationTable` per
    tenant.  Churn is then bounded: each event recomputes the
    contention projection and replans every remaining tenant through
    its table, with all wall-clock charged to one cumulative
    :class:`~repro.core.robust.ReplanLedger`.  A blown budget degrades
    that tenant explicitly to its admission-time selfish plan — flagged
    in the record, never silent.

    Args:
        fleet: the initial job mix.
        planner_factory: planner override, as in :func:`plan_fleet`.
        budget_seconds: per-event replan budget; defaults to twice the
            worst single-plan time observed while building the tables.
        ledger: cumulative budget across all events; defaults to
            ``4 x`` the per-event default (a storm beyond that serves
            precomputed candidates and degrades explicitly).
        min_share: bandwidth-share floor of the contention projection.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        planner_factory: Optional[PlannerFactory] = None,
        budget_seconds: Optional[float] = None,
        ledger: Optional[ReplanLedger] = None,
        min_share: float = MIN_BANDWIDTH_SHARE,
    ) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be > 0, got {budget_seconds}"
            )
        self.cluster = fleet.cluster
        self.planner_factory = planner_factory
        self.budget_seconds = budget_seconds
        self.min_share = min_share
        self._tenants: Dict[str, TenantSpec] = {}
        self._tables: Dict[str, DegradationTable] = {}
        self._selfish: Dict[str, CompressionStrategy] = {}
        self._current: Dict[str, CompressionStrategy] = {}
        self.report = ChurnReport()
        for tenant in fleet.tenants:
            self._admit(tenant)
        if ledger is None:
            ledger = ReplanLedger(total_seconds=4.0 * self._event_budget())
        self.ledger = ledger
        self.report.ledger = ledger

    @property
    def fleet(self) -> FleetSpec:
        """The current membership as a :class:`FleetSpec`."""
        return FleetSpec(
            cluster=self.cluster,
            tenants=tuple(
                self._tenants[name] for name in sorted(self._tenants)
            ),
        )

    def strategies(self) -> Dict[str, CompressionStrategy]:
        """The live per-tenant strategy assignment."""
        return dict(self._current)

    def _admit(self, tenant: TenantSpec) -> None:
        if tenant.name in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} already admitted")
        job = tenant.job(self.cluster)
        table = DegradationTable.build(
            job,
            ensemble=fleet_churn_ensemble(),
            planner_factory=self.planner_factory,
        )
        self._tenants[tenant.name] = tenant
        self._tables[tenant.name] = table
        # The nominal table entry IS the selfish plan — one planner run,
        # already paid for by the table build.
        self._selfish[tenant.name] = table.lookup("nominal").strategy
        self._current[tenant.name] = self._selfish[tenant.name]

    def _evict(self, name: str) -> None:
        if name not in self._tenants:
            raise ValueError(
                f"cannot depart unknown tenant {name!r}; present: "
                f"{', '.join(sorted(self._tenants)) or '(none)'}"
            )
        if len(self._tenants) == 1:
            raise ValueError(
                f"cannot depart {name!r}: a fleet needs at least one tenant"
            )
        del self._tenants[name]
        del self._tables[name]
        del self._selfish[name]
        del self._current[name]

    def _event_budget(self) -> float:
        if self.budget_seconds is not None:
            return self.budget_seconds
        worst = max(
            (table.max_plan_seconds for table in self._tables.values()),
            default=0.0,
        )
        return max(2.0 * worst, 1e-3)

    def _contention(self) -> Dict[str, FaultModel]:
        loads = []
        for name in sorted(self._tenants):
            job = self._tenants[name].job(self.cluster)
            evaluator = StrategyEvaluator(job)
            timeline = evaluator.timeline(self._current[name])
            loads.append(link_load(name, job, timeline))
        return contention_models(
            loads, self.cluster, min_share=self.min_share
        )

    def apply(self, event: FleetEvent) -> ChurnRecord:
        """Apply one churn event: update membership, replan everyone."""
        if event.kind == "arrive":
            self._admit(event.tenant)
        else:
            self._evict(event.name)
        models = self._contention()
        budget = self._event_budget()
        replans = []
        for name in sorted(self._tenants):
            result = self._tables[name].replan(
                models[name], budget_seconds=budget, ledger=self.ledger
            )
            if result.within_budget:
                self._current[name] = result.strategy
                replans.append(
                    TenantReplan(
                        tenant=name,
                        source=result.source,
                        seconds=result.seconds,
                        budget_seconds=result.budget_seconds,
                        within_budget=True,
                        degraded=False,
                        iteration_time=result.iteration_time,
                    )
                )
            else:
                # Budget blown: degrade explicitly to the admission-time
                # selfish plan and say so — never keep whatever happened
                # to be live before the event.
                selfish = self._selfish[name]
                self._current[name] = selfish
                job = models[name].apply_to_job(
                    self._tenants[name].job(self.cluster)
                )
                replans.append(
                    TenantReplan(
                        tenant=name,
                        source="degraded:selfish",
                        seconds=result.seconds,
                        budget_seconds=result.budget_seconds,
                        within_budget=False,
                        degraded=True,
                        iteration_time=StrategyEvaluator(
                            job
                        ).iteration_time(selfish),
                    )
                )
        record = ChurnRecord(
            index=len(self.report.records),
            event=event.describe(),
            tenants=tuple(sorted(self._tenants)),
            replans=tuple(replans),
        )
        self.report.records.append(record)
        return record

    def run(self, events: Sequence[FleetEvent]) -> ChurnReport:
        """Apply ``events`` in order and return the cumulative report."""
        for event in events:
            self.apply(event)
        return self.report


# -- shipped job mixes -----------------------------------------------------


def example_mixes() -> Dict[str, FleetSpec]:
    """The shipped job mixes (EXPERIMENTS.md table, fleet bench, tests).

    Small clusters keep the full planner affordable in tier-1 tests;
    the mixes still cover the interesting regimes: homogeneous tenants,
    a heavy/light pair, and a three-way mix on the slower PCIe testbed.
    """
    from repro.cluster.topology import nvlink_100g_cluster, pcie_25g_cluster

    return {
        "lstm-pair": FleetSpec(
            cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=2),
            tenants=(
                TenantSpec(name="a", model="lstm", gc="dgc", ratio=0.01),
                TenantSpec(name="b", model="lstm", gc="efsignsgd"),
            ),
        ),
        "heavy-light": FleetSpec(
            cluster=nvlink_100g_cluster(num_machines=2, gpus_per_machine=2),
            tenants=(
                TenantSpec(name="heavy", model="vgg16", gc="dgc", ratio=0.01),
                TenantSpec(name="light", model="lstm", gc="topk", ratio=0.01),
            ),
        ),
        "pcie-trio": FleetSpec(
            cluster=pcie_25g_cluster(num_machines=2, gpus_per_machine=2),
            tenants=(
                TenantSpec(name="a", model="lstm", gc="dgc", ratio=0.01),
                TenantSpec(name="b", model="lstm", gc="topk", ratio=0.01),
                TenantSpec(name="c", model="lstm", gc="efsignsgd"),
            ),
        ),
    }


__all__ = [
    "ChurnRecord",
    "ChurnReport",
    "FleetChurnController",
    "FleetEvaluation",
    "FleetEvent",
    "FleetPlanResult",
    "TenantPlan",
    "TenantReplan",
    "evaluate_assignment",
    "example_mixes",
    "fleet_churn_ensemble",
    "plan_fleet",
]
