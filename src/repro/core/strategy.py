"""Compression strategies and their evaluation (the paper's F(S)).

A :class:`CompressionStrategy` assigns a compression option to every
tensor of a model (S = {c_j} in §4.2.2).  The :class:`StrategyEvaluator`
derives the full iteration timeline of a strategy with the empirical
models — computing F(S), the iteration time — which is the primitive the
decision algorithm minimizes.

The evaluator owns a *fast evaluation layer* (DESIGN.md §5.2): F(S)
results are memoized under a canonical strategy fingerprint, and
candidates that differ from a resident base strategy in one or a few
tensors are priced by :class:`~repro.sim.incremental.IncrementalSimulator`
— a delta-simulation that reuses the deterministic event prefix of the
base run instead of replaying from t=0.  Both are exact: results are
bit-identical to the full simulation, only cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import JobConfig
from repro.sim import batch as _batch
from repro.core.options import (
    CompressionOption,
    Device,
    canonical_key,
    no_compression_option,
)
from repro.core.plan import PlanCompiler
from repro.sim.engine import Timeline, simulate, simulate_makespan
from repro.sim.incremental import IncrementalSimulator
from repro.sim.validate import assert_valid
from repro.sim.metrics import scaling_factor as _scaling_factor
from repro.sim.metrics import throughput as _throughput
from repro.sim.stages import RESOURCES, TensorChain, compute_stage

#: Resource-name -> index mapping in the simulator's RESOURCES order,
#: used to pre-flatten chains for IncrementalSimulator.swap_chains_flat.
_RES_INDEX = {name: i for i, name in enumerate(RESOURCES)}


@dataclass(frozen=True)
class CompressionStrategy:
    """Per-tensor compression options, indexed like ``model.tensors``."""

    options: Tuple[CompressionOption, ...]

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError("a strategy needs at least one tensor option")

    def __len__(self) -> int:
        return len(self.options)

    def __getitem__(self, index: int) -> CompressionOption:
        return self.options[index]

    def replace(self, index: int, option: CompressionOption) -> "CompressionStrategy":
        """A copy with tensor ``index`` assigned ``option``."""
        options = list(self.options)
        options[index] = option
        child = CompressionStrategy(options=tuple(options))
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is not None:
            # Derive the child's fingerprint from ours instead of making
            # it re-hash every option later.
            object.__setattr__(
                child,
                "_fingerprint",
                fingerprint[:index]
                + (canonical_key(option),)
                + fingerprint[index + 1 :],
            )
        return child

    @property
    def compressed_indices(self) -> List[int]:
        """Indices of tensors that get compressed under this strategy."""
        return [i for i, option in enumerate(self.options) if option.compresses]

    def device_indices(self, device: Device) -> List[int]:
        """Indices of compressed tensors using ``device``."""
        return [
            i
            for i, option in enumerate(self.options)
            if option.compresses and option.uses_device(device)
        ]

    def fingerprint(self) -> Tuple[int, ...]:
        """Canonical per-tensor option keys — the F(S) memo-cache key.

        Built from :func:`~repro.core.options.canonical_key`, so two
        strategies that assign value-equal options to every tensor share
        a fingerprint even when the option *objects* differ.  Cached on
        the (frozen) instance: the planner requests it on every F(S)
        evaluation.
        """
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = tuple(canonical_key(option) for option in self.options)
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    def describe(self) -> str:
        """Multi-line human-readable dump of all per-tensor decisions."""
        return "\n".join(
            f"T{i}: {option.describe()}" for i, option in enumerate(self.options)
        )

    def __getstate__(self) -> dict:
        # The cached fingerprint is a tuple of process-local canonical
        # keys (see options.canonical_key); a worker process must
        # recompute it against its own interning table, so strip it
        # before pickling.
        state = dict(self.__dict__)
        state.pop("_fingerprint", None)
        return state


def baseline_strategy(num_tensors: int, flat: bool = False) -> CompressionStrategy:
    """The FP32 strategy: no tensor compressed (Algorithm 1's initial S)."""
    option = no_compression_option(flat=flat)
    return CompressionStrategy(options=(option,) * num_tensors)


@dataclass(frozen=True)
class FusionPlan:
    """A partition of a model's tensors into fused gradient buckets.

    Fusion-group boundaries are a first-class strategy-space decision
    (the MG-WFBP dimension Espresso's per-tensor search lacks): tensors
    of one group are communicated as a single aggregated payload, paying
    the per-message launch overhead once instead of once per member.
    Groups are contiguous runs in backprop completion order — the bucket
    becomes ready when its *last* member's gradient is computed, so
    non-contiguous groups would only ever delay communication.

    Attributes:
        num_tensors: tensor count of the model trace the plan partitions.
        boundaries: group start indices; ``boundaries[g]`` is the first
            tensor of group ``g``.  Always starts at 0 and is strictly
            increasing, so group ``g`` spans
            ``[boundaries[g], boundaries[g + 1])``.
    """

    num_tensors: int
    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_tensors < 1:
            raise ValueError("a fusion plan needs at least one tensor")
        if not self.boundaries or self.boundaries[0] != 0:
            raise ValueError("fusion-group boundaries must start at 0")
        for a, b in zip(self.boundaries, self.boundaries[1:]):
            if b <= a:
                raise ValueError(
                    f"fusion-group boundaries must be strictly increasing, "
                    f"got {self.boundaries}"
                )
        if self.boundaries[-1] >= self.num_tensors:
            raise ValueError(
                f"boundary {self.boundaries[-1]} out of range for "
                f"{self.num_tensors} tensors"
            )

    @classmethod
    def singleton(cls, num_tensors: int) -> "FusionPlan":
        """The no-fusion plan: every tensor is its own group."""
        return cls(num_tensors=num_tensors, boundaries=tuple(range(num_tensors)))

    @classmethod
    def from_sizes(cls, sizes: Sequence[int]) -> "FusionPlan":
        """Build a plan from per-group tensor counts."""
        boundaries = []
        start = 0
        for size in sizes:
            boundaries.append(start)
            start += size
        return cls(num_tensors=start, boundaries=tuple(boundaries))

    @property
    def num_groups(self) -> int:
        return len(self.boundaries)

    @property
    def is_singleton(self) -> bool:
        """True when the plan fuses nothing."""
        return self.num_groups == self.num_tensors

    def groups(self) -> List[Tuple[int, int]]:
        """Per-group ``(start, stop)`` tensor index ranges."""
        stops = (*self.boundaries[1:], self.num_tensors)
        return list(zip(self.boundaries, stops))

    def group_sizes(self) -> List[int]:
        return [stop - start for start, stop in self.groups()]

    def group_of(self, tensor_index: int) -> int:
        """The group containing ``tensor_index``."""
        if not 0 <= tensor_index < self.num_tensors:
            raise IndexError(f"tensor index {tensor_index} out of range")
        from bisect import bisect_right

        return bisect_right(self.boundaries, tensor_index) - 1

    def describe(self) -> str:
        return (
            f"{self.num_groups} fusion group(s) over {self.num_tensors} "
            f"tensors (sizes {self.group_sizes()})"
        )


@dataclass(frozen=True)
class FusedStrategy:
    """A fusion plan plus one compression option per fused group.

    The joint decision the fusion-aware planner outputs: bucket
    boundaries *and* per-bucket compression choices.  ``options`` is
    indexed like the fused model's tensors (group ``g`` of ``plan``),
    not like the original model's.
    """

    plan: FusionPlan
    options: Tuple[CompressionOption, ...]

    def __post_init__(self) -> None:
        if len(self.options) != self.plan.num_groups:
            raise ValueError(
                f"fused strategy assigns {len(self.options)} options to "
                f"{self.plan.num_groups} fusion groups"
            )

    def as_strategy(self) -> CompressionStrategy:
        """The per-group strategy, indexed like the fused model."""
        return CompressionStrategy(options=self.options)

    def per_tensor_options(self) -> Tuple[CompressionOption, ...]:
        """The decision expanded to the original model's tensors (every
        member of a group shares the group's option)."""
        expanded: List[CompressionOption] = []
        for option, size in zip(self.options, self.plan.group_sizes()):
            expanded.extend([option] * size)
        return tuple(expanded)

    def fingerprint(self) -> Tuple:
        """Canonical identity: boundaries + per-group option keys."""
        return (
            self.plan.num_tensors,
            self.plan.boundaries,
            tuple(canonical_key(option) for option in self.options),
        )

    def describe(self) -> str:
        lines = [self.plan.describe()]
        for g, ((start, stop), option) in enumerate(
            zip(self.plan.groups(), self.options)
        ):
            span = f"T{start}" if stop - start == 1 else f"T{start}..T{stop - 1}"
            lines.append(f"G{g} [{span}]: {option.describe()}")
        return "\n".join(lines)


@dataclass
class EvaluatorStats:
    """Fast-evaluation-layer instrumentation (reported by ``plan --stats``).

    Attributes:
        fs_calls: F(S) requests, however they were answered.
        cache_hits: requests answered from the fingerprint memo cache
            (including candidates chain-equal to the resident base).
        full_sims: from-scratch simulations (includes rebases).
        incremental_sims: delta-simulations via chain swaps.
        rebases: incremental-simulator base rebuilds.
        timelines: full timeline simulations (stage records materialized).
        events_full: completion events processed by full/base simulations.
        events_replayed: completion events processed during swap replays.
        events_reused: completion events skipped via checkpoint restore.
        batch_calls: ``price_options`` invocations (one per tensor whose
            candidate set was priced as a batch).
        batch_candidates: candidates submitted across all batch calls.
        batch_pruned: candidates skipped because a sound vectorized
            lower bound proved they cannot beat the caller's bound
            (DESIGN.md §5.7); no simulation ran and no time is reported.
        batch_dedup_hits: candidates answered by another candidate of
            the *same call* that compiles to an identical stage chain.
        batch_fallbacks: candidates the vectorized batch walk handed
            back to the scalar replay (order-divergence or guard).
        parallel_jobs: effective worker-pool width (after the core-count
            clamp and any mid-run pool failure; 1 = serial).
        parallel_requested: the width the caller asked for (``--jobs``).
        parallel_disabled_reason: why the pool ran serially or shut
            down, when it did (``None`` while the pool is healthy).
        parallel_tasks: fan-out tasks shipped to the worker pool.
        fanout_seconds: wall-clock spent waiting on fanned-out pricing.
        merge_seconds: wall-clock spent decoding/merging worker results.
        worker_evaluations: F(S) evaluations performed per worker process
            (keyed by worker pid as a string; these are *not* folded into
            ``fs_calls``, which describes this process's own evaluator).
    """

    fs_calls: int = 0
    cache_hits: int = 0
    full_sims: int = 0
    incremental_sims: int = 0
    rebases: int = 0
    timelines: int = 0
    events_full: int = 0
    events_replayed: int = 0
    events_reused: int = 0
    batch_calls: int = 0
    batch_candidates: int = 0
    batch_pruned: int = 0
    batch_dedup_hits: int = 0
    batch_fallbacks: int = 0
    parallel_jobs: int = 1
    parallel_requested: int = 1
    parallel_disabled_reason: Optional[str] = None
    parallel_tasks: int = 0
    fanout_seconds: float = 0.0
    merge_seconds: float = 0.0
    worker_evaluations: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of F(S) requests answered without any simulation.

        That is the documented semantics this metric always claimed, and
        since the batch pricing layer it takes three counters to honour
        it: memo/resident hits (``cache_hits``), candidates answered by
        a chain-identical sibling in the same call
        (``batch_dedup_hits``), and candidates a sound lower bound
        proved irrelevant (``batch_pruned``).  Counting memo hits alone
        collapses on deep homogeneous models — the memo key is the
        full-length chain fingerprint, so any accepted decision
        invalidates every memoized trial, while dedup and pruning (the
        mechanisms that actually replaced those reuses) still answer
        20-40% of requests simulation-free.  ``memo_hit_rate`` keeps
        the narrow metric.
        """
        if not self.fs_calls:
            return 0.0
        answered = self.cache_hits + self.batch_dedup_hits + self.batch_pruned
        return answered / self.fs_calls

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of F(S) requests answered from the memo cache alone."""
        return self.cache_hits / self.fs_calls if self.fs_calls else 0.0

    @property
    def batch_prune_rate(self) -> float:
        """Fraction of batch candidates eliminated by lower bounds."""
        if not self.batch_candidates:
            return 0.0
        return self.batch_pruned / self.batch_candidates

    @property
    def prefix_reuse_fraction(self) -> float:
        """Of the events a naive replay would simulate during swaps, the
        fraction skipped by resuming from a checkpoint."""
        denominator = self.events_replayed + self.events_reused
        return self.events_reused / denominator if denominator else 0.0

    def snapshot(self) -> "EvaluatorStats":
        """An independent copy (results keep a frozen-in-time view)."""
        snap = replace(self)
        snap.worker_evaluations = dict(self.worker_evaluations)
        return snap


class StrategyEvaluator:
    """Derives timelines and F(S) for strategies of one training job.

    One evaluator is bound to one :class:`~repro.config.JobConfig`; it
    owns the plan compiler (and its option/size stage cache) so repeated
    evaluations during the decision algorithm stay fast.

    Args:
        job: the training job to evaluate strategies for.
        fast: enable the fast evaluation layer (memo cache + incremental
            delta-simulation).  ``False`` forces every F(S) request
            through a from-scratch simulation; results are bit-identical
            either way (the regression tests assert it), so the flag
            exists for benchmarking and for the equivalence tests.
        check: run the conformance invariant checker
            (:func:`repro.sim.validate.assert_valid`) on every timeline
            this evaluator materializes — ``plan --check`` turns it on;
            a violation raises :class:`~repro.sim.validate.
            ConformanceError` instead of silently producing a wrong
            schedule.
    """

    def __init__(self, job: JobConfig, fast: bool = True, check: bool = False):
        self.job = job
        self.model = job.model
        self.cluster = job.system.cluster
        self.compressor = job.build_compressor()
        self.compiler = PlanCompiler(
            cluster=self.cluster,
            compressor=self.compressor,
            gpu=job.system.gpu,
            cpu=job.system.cpu,
        )
        self._cpu_capacity = job.system.cpu.parallel_workers
        self._chain_cache: Dict[Tuple[int, int], TensorChain] = {}
        self._flat_cache: Dict[Tuple[int, int], Tuple[List[int], List[float]]] = {}
        self.fast = fast
        self.check = check
        self.timelines_checked = 0
        self.evaluations = 0  # F(S) computations, reported in Table 5
        #: Cooperative-cancellation seam: when set, called at the top of
        #: every F(S) entry point (``iteration_time``,
        #: ``iteration_time_delta``, ``price_options``).  The planning
        #: service installs a deadline check here so an in-flight
        #: selection unwinds within one evaluation of its deadline
        #: instead of running to completion; the callable signals
        #: cancellation by raising (the exception propagates out of the
        #: planner untouched).  ``None`` (the default) costs one
        #: attribute test per call.
        self.cancel_check: Optional[Callable[[], None]] = None
        self.stats = EvaluatorStats()
        #: Memoized makespans keyed by *chain* fingerprint — the tuple
        #: of per-tensor stage-chain keys (see :meth:`_chain_key`).
        #: Coarser than the option fingerprint, and provably safe: the
        #: makespan is a function of the stage chains and the resource
        #: capacities alone, so option values that compile to identical
        #: chains (e.g. the same pipeline reached through different
        #: option fields) share one memo entry.  Residency
        #: (``_inc_fp``) and timelines stay keyed by *option*
        #: fingerprint — stage kinds/labels can differ between
        #: chain-equal options and timelines expose them.
        self._memo: Dict[Tuple[int, ...], float] = {}
        #: Sound lower bounds on makespans, keyed like ``_memo``.  When
        #: the batch pricer's suffix bound eliminates a candidate it
        #: learned ``makespan(trial) >= lb`` — a fact about the trial's
        #: *full chain fingerprint*, so it stays true across rebases and
        #: sweeps.  Refinement sweeps re-price the same (base, index)
        #: candidate sets between accepted changes; consulting the
        #: stored bound answers those repeats from the memo instead of
        #: re-deriving the bound, which is what restored the memo hit
        #: rate on deep homogeneous models (it had collapsed to ~0
        #: because only *priced* candidates ever reached ``_memo``).
        self._lb_memo: Dict[Tuple[int, ...], float] = {}
        #: Interning table: (resource tuple, duration tuple) -> chain key.
        #: Evaluator-local on purpose — chain keys depend on this job's
        #: compiled stage durations, so they must never be cached on
        #: (shared) strategy or option objects.
        self._chain_sig_intern: Dict[tuple, int] = {}
        self._chain_key_cache: Dict[Tuple[int, int], int] = {}
        self._inc: Optional[IncrementalSimulator] = None
        self._inc_fp: Optional[Tuple[int, ...]] = None
        self._inc_cfp: Optional[Tuple[int, ...]] = None

    # -- chain construction ---------------------------------------------

    def _chain(self, index: int, option: CompressionOption) -> TensorChain:
        """The stage chain of tensor ``index`` under ``option``, cached
        per (canonical option key, tensor) pair.

        Keying on the canonical *value* key (not ``id(option)``) means a
        garbage-collected trial option whose ``id()`` gets recycled can
        never alias a stale chain.
        """
        key = (canonical_key(option), index)
        chain = self._chain_cache.get(key)
        if chain is None:
            tensor = self.model.tensors[index]
            chain = TensorChain(
                tensor_index=index,
                stages=[
                    compute_stage(tensor.compute_time),
                    *self.compiler.stages(option, tensor.num_elements),
                ],
            )
            self._chain_cache[key] = chain
        return chain

    def _flat_chain(
        self, index: int, option: CompressionOption
    ) -> Tuple[List[int], List[float]]:
        """Tensor ``index``'s chain under ``option`` as parallel
        (resource index, duration) lists — the form
        :meth:`IncrementalSimulator.swap_chains_flat` consumes without
        touching Stage objects in the hot loop."""
        key = (canonical_key(option), index)
        entry = self._flat_cache.get(key)
        if entry is None:
            stages = self._chain(index, option).stages
            entry = (
                [_RES_INDEX[s.resource] for s in stages],
                [s.duration for s in stages],
            )
            self._flat_cache[key] = entry
        return entry

    def _chains(self, strategy: CompressionStrategy) -> List[TensorChain]:
        """Per-tensor stage chains for a whole strategy."""
        if len(strategy) != self.model.num_tensors:
            raise ValueError(
                f"strategy covers {len(strategy)} tensors, "
                f"model has {self.model.num_tensors}"
            )
        return [
            self._chain(index, option)
            for index, option in enumerate(strategy.options)
        ]

    # -- fast evaluation layer ------------------------------------------

    def _chain_key(self, index: int, option: CompressionOption) -> int:
        """The interned key of tensor ``index``'s stage chain under
        ``option``: equal iff the flattened (resources, durations) chains
        are equal.  Two option values with different canonical keys can
        share a chain key — that is the point (see ``_memo``)."""
        key = (canonical_key(option), index)
        chain_key = self._chain_key_cache.get(key)
        if chain_key is None:
            res, dur = self._flat_chain(index, option)
            signature = (tuple(res), tuple(dur))
            chain_key = self._chain_sig_intern.setdefault(
                signature, len(self._chain_sig_intern)
            )
            self._chain_key_cache[key] = chain_key
        return chain_key

    def _chain_fingerprint(
        self, strategy: CompressionStrategy
    ) -> Tuple[int, ...]:
        """The strategy's chain fingerprint — the F(S) memo key."""
        if len(strategy) != self.model.num_tensors:
            raise ValueError(
                f"strategy covers {len(strategy)} tensors, "
                f"model has {self.model.num_tensors}"
            )
        return tuple(
            self._chain_key(index, option)
            for index, option in enumerate(strategy.options)
        )

    def _rebase(self, fingerprint: Tuple[int, ...], strategy: CompressionStrategy) -> None:
        """Make ``strategy`` the resident base of the incremental engine."""
        self.stats.rebases += 1
        self.stats.full_sims += 1
        self._inc = IncrementalSimulator(
            self._chains(strategy),
            cpu_capacity=self._cpu_capacity,
            stats=self.stats,
        )
        self._inc_fp = fingerprint
        self._inc_cfp = self._chain_fingerprint(strategy)
        self._memo[self._inc_cfp] = self._inc.base_makespan

    def _fast_makespan(
        self, fingerprint: Tuple[int, ...], strategy: CompressionStrategy
    ) -> float:
        """Makespan via the resident incremental base (rebasing if none)."""
        if self._inc is None:
            self._rebase(fingerprint, strategy)
            return self._inc.base_makespan
        base_fp = self._inc_fp
        replacements = [
            (i, *self._flat_chain(i, strategy.options[i]))
            for i in range(len(fingerprint))
            if fingerprint[i] != base_fp[i]
        ]
        if not replacements:
            return self._inc.base_makespan
        self.stats.incremental_sims += 1
        return self._inc.swap_chains_flat(replacements)

    def _ensure_base(
        self, fingerprint: Tuple[int, ...], strategy: CompressionStrategy
    ) -> None:
        if self._inc is None or self._inc_fp != fingerprint:
            self._rebase(fingerprint, strategy)

    def _delta_makespan(
        self,
        base: CompressionStrategy,
        base_fp: Tuple[int, ...],
        replacements: Sequence[Tuple[int, CompressionOption]],
    ) -> float:
        """Makespan of ``base`` with ``replacements`` applied, memoized."""
        self._ensure_base(base_fp, base)
        base_cfp = self._inc_cfp
        if len(replacements) == 1:
            # GetBestOption/sweep hot path: one replaced tensor.
            index, option = replacements[0]
            key = self._chain_key(index, option)
            if base_cfp[index] == key:
                # Chain-equal to the resident option (covers option
                # equality and distinct options compiling identically).
                self.stats.cache_hits += 1
                return self._inc.base_makespan
            changed = [(index, option)]
            trial_cfp = base_cfp[:index] + (key,) + base_cfp[index + 1 :]
        else:
            trial_list = list(base_cfp)
            changed = []
            for index, option in replacements:
                key = self._chain_key(index, option)
                if trial_list[index] != key:
                    trial_list[index] = key
                    changed.append((index, option))
            if not changed:
                self.stats.cache_hits += 1
                return self._inc.base_makespan
            trial_cfp = tuple(trial_list)
        makespan = self._memo.get(trial_cfp)
        if makespan is not None:
            self.stats.cache_hits += 1
            return makespan
        self.stats.incremental_sims += 1
        makespan = self._inc.swap_chains_flat(
            [(index, *self._flat_chain(index, option)) for index, option in changed]
        )
        self._memo[trial_cfp] = makespan
        return makespan

    #: Below this many distinct chains the vectorized batch walk's setup
    #: cost exceeds the scalar replays it replaces.
    _BATCH_MIN_UNIQUE = 6

    def price_options(
        self,
        base: CompressionStrategy,
        index: int,
        options: Sequence[CompressionOption],
        bound: Optional[float] = None,
    ) -> List[Optional[float]]:
        """Batch F(S): ``base`` with tensor ``index`` assigned each option.

        The batched analogue of calling :meth:`iteration_time_delta` per
        option (DESIGN.md §5.7): one entry per option, every returned
        float bit-identical to the scalar path.  Candidates compiling to
        identical stage chains are simulated once; the rest go through
        the vectorized batch walk when there are enough of them (scalar
        replays otherwise — and the walk itself re-prices any candidate
        whose dispatch order diverges from its representative).

        With ``bound`` given, the caller declares it is *min-taking*: it
        only accepts times strictly below ``bound`` and resolves exact
        time ties by canonical key (or first index).  Candidates whose
        *sound lower bound* (:func:`repro.sim.batch.suffix_lower_bounds`)
        proves they cannot win under those rules — the bound reaches
        ``bound``, or another candidate in the batch already priced
        strictly below it — are returned as ``None`` instead of a time:
        the alpha-beta-style cut that makes GetBestOption and the
        refinement sweeps cheap once the incumbent is good.  The batch
        minimum and every candidate tying it always come back exact, so
        the winner and its tie-breaking are bit-identical to pricing
        everything.  Callers that need every exact time must pass
        ``bound=None``.
        """
        if self.cancel_check is not None:
            self.cancel_check()
        options = list(options)
        count = len(options)
        self.evaluations += count
        stats = self.stats
        stats.fs_calls += count
        stats.batch_calls += 1
        stats.batch_candidates += count
        forward = self.model.forward_time
        if not self.fast:
            stats.full_sims += count
            return [
                forward
                + simulate_makespan(
                    self._chains(base.replace(index, option)),
                    cpu_capacity=self._cpu_capacity,
                )
                for option in options
            ]
        self._ensure_base(base.fingerprint(), base)
        inc = self._inc
        base_cfp = self._inc_cfp
        resident_key = base_cfp[index]
        base_time = forward + inc.base_makespan
        results: List[Optional[float]] = [None] * count
        # One entry per distinct trial chain, in first-encounter order:
        # chain key -> (flat chain, trial chain fingerprint, slots).
        unique: Dict[int, Tuple[tuple, Tuple[int, ...], List[int]]] = {}
        for j, option in enumerate(options):
            chain_key = self._chain_key(index, option)
            if chain_key == resident_key:
                stats.cache_hits += 1
                results[j] = base_time
                continue
            entry = unique.get(chain_key)
            if entry is not None:
                stats.batch_dedup_hits += 1
                entry[2].append(j)
                continue
            trial_cfp = (
                base_cfp[:index] + (chain_key,) + base_cfp[index + 1 :]
            )
            makespan = self._memo.get(trial_cfp)
            if makespan is not None:
                stats.cache_hits += 1
                results[j] = forward + makespan
                continue
            if bound is not None:
                known_lb = self._lb_memo.get(trial_cfp)
                if known_lb is not None and forward + known_lb >= bound:
                    # A lower bound proved in an earlier call: the exact
                    # makespan is >= known_lb, so a min-taking caller
                    # rejects this candidate no matter its value.
                    stats.cache_hits += 1
                    continue
            unique[chain_key] = (
                self._flat_chain(index, option),
                trial_cfp,
                [j],
            )
        pending = list(unique.values())
        bounds = None
        if bound is not None and pending:
            bounds = _batch.suffix_lower_bounds(
                inc, index, [entry[0] for entry in pending]
            )
        if bounds is not None:
            # Best-first scan with two sound cuts.  A candidate is
            # skipped (returned as None) when its lower bound proves it
            # cannot matter to a min-taking caller:
            #   1. ``forward + lb >= bound`` — the caller rejects any
            #      time reaching ``bound``, so the exact value (>= lb)
            #      is irrelevant.
            #   2. ``lb > best_seen`` — some other candidate in this
            #      very batch already priced *strictly* below lb, so
            #      this one can neither win nor tie the batch minimum.
            # Cut 2 is why the scan runs in ascending-lb order: the
            # likely winner is priced first and everything above it
            # falls.  Strictness keeps exact time ties intact — a tying
            # candidate's lb never exceeds the tied value — so the
            # (time, key) tie-breaking downstream sees every tie.
            bound_makespan = bound - forward
            best_seen = min(
                (time - forward for time in results if time is not None),
                default=None,
            )
            for position in sorted(
                range(len(pending)), key=lambda i: bounds[i]
            ):
                flat, trial_cfp, slots = pending[position]
                lb = bounds[position]
                if lb >= bound_makespan or (
                    best_seen is not None and lb > best_seen
                ):
                    stats.batch_pruned += len(slots)
                    # Remember the proven bound: makespan(trial_cfp) is a
                    # pure function of the full chain fingerprint, so the
                    # fact survives rebases and answers repeat pricings
                    # of this candidate from the memo (max-merge keeps
                    # the tightest bound seen).
                    previous = self._lb_memo.get(trial_cfp)
                    if previous is None or lb > previous:
                        self._lb_memo[trial_cfp] = lb
                    continue
                stats.incremental_sims += 1
                makespan = inc.swap_chains_flat([(index, *flat)])
                self._memo[trial_cfp] = makespan
                for j in slots:
                    results[j] = forward + makespan
                if best_seen is None or makespan < best_seen:
                    best_seen = makespan
            return results
        if len(pending) >= self._BATCH_MIN_UNIQUE and _batch.numpy_available():
            stats.incremental_sims += len(pending)
            makespans = _batch.batch_swap_makespans(
                inc, index, [entry[0] for entry in pending]
            )
        else:
            makespans = []
            for flat, _, _ in pending:
                stats.incremental_sims += 1
                makespans.append(inc.swap_chains_flat([(index, *flat)]))
        for (flat, trial_cfp, slots), makespan in zip(pending, makespans):
            self._memo[trial_cfp] = makespan
            for j in slots:
                results[j] = forward + makespan
        return results

    # -- public API ------------------------------------------------------

    def timeline(self, strategy: CompressionStrategy) -> Timeline:
        """Simulate the full iteration timeline of ``strategy``.

        With the fast layer on, ``strategy`` becomes (or already is) the
        incremental engine's resident base and the records are rebuilt
        from its arrays — Algorithm 1's Remove() asks for the timeline
        of exactly the strategy the following delta evaluations use, so
        the rebase is work the planner was about to do anyway.
        """
        self.evaluations += 1
        self.stats.timelines += 1
        if self.fast:
            self._ensure_base(strategy.fingerprint(), strategy)
            timeline = self._inc.base_timeline()
        else:
            timeline = simulate(
                self._chains(strategy), cpu_capacity=self._cpu_capacity
            )
        if self.check:
            assert_valid(
                timeline,
                chains=self._chains(strategy),
                cpu_capacity=self._cpu_capacity,
            )
            self.timelines_checked += 1
        return timeline

    def tensors_before_bubbles(
        self, strategy: CompressionStrategy, min_bubble: float
    ) -> set:
        """Remove()'s bubble shield for ``strategy``.

        Bit-identical to ``tensors_before_bubbles(self.timeline(...))``
        but, with the fast layer resident and conformance checking off,
        computed straight from the incremental engine's task arrays —
        no :class:`ScheduledStage` churn.  The counters move exactly as
        the Timeline path moves them, so ``plan --stats`` reads the
        same either way; in ``check`` mode the Timeline path is kept so
        every timeline the planner consults is still validated.
        """
        from repro.core.bubbles import (
            tensors_before_bubbles,
            tensors_before_bubbles_flat,
        )

        if self.fast and not self.check:
            self.evaluations += 1
            self.stats.timelines += 1
            self._ensure_base(strategy.fingerprint(), strategy)
            return tensors_before_bubbles_flat(
                self._inc.task_view(), min_bubble
            )
        return tensors_before_bubbles(
            self.timeline(strategy), min_bubble=min_bubble
        )

    def chains(self, strategy: CompressionStrategy) -> List[TensorChain]:
        """The per-tensor stage chains ``strategy`` compiles to.

        Public accessor for the conformance layer (oracle runs and the
        invariant checker need the chains the timeline claims to
        realize); results are cached per (option value, tensor).
        """
        return self._chains(strategy)

    def iteration_time(self, strategy: CompressionStrategy) -> float:
        """F(S): the iteration wall-clock time under ``strategy``.

        Uses the makespan-only fast path — the decision algorithm calls
        this thousands of times and never needs the stage records.  With
        the fast layer enabled the result is memoized by fingerprint and,
        when a resident base exists, computed by delta-simulation.
        """
        if self.cancel_check is not None:
            self.cancel_check()
        self.evaluations += 1
        self.stats.fs_calls += 1
        if not self.fast:
            self.stats.full_sims += 1
            makespan = simulate_makespan(
                self._chains(strategy), cpu_capacity=self._cpu_capacity
            )
            return self.model.forward_time + makespan
        fingerprint = strategy.fingerprint()
        chain_fp = self._chain_fingerprint(strategy)
        makespan = self._memo.get(chain_fp)
        if makespan is not None:
            self.stats.cache_hits += 1
        else:
            makespan = self._fast_makespan(fingerprint, strategy)
            self._memo[chain_fp] = makespan
        return self.model.forward_time + makespan

    def iteration_time_delta(
        self, base: CompressionStrategy, index: int, option: CompressionOption
    ) -> float:
        """F(S) of ``base`` with tensor ``index`` assigned ``option``.

        Equivalent to ``iteration_time(base.replace(index, option))`` but
        avoids building the trial strategy and reuses the simulation
        prefix of ``base`` (which becomes the resident incremental base).
        This is the hot path of GetBestOption and the refinement sweeps.
        """
        if self.cancel_check is not None:
            self.cancel_check()
        self.evaluations += 1
        self.stats.fs_calls += 1
        if not self.fast:
            self.stats.full_sims += 1
            makespan = simulate_makespan(
                self._chains(base.replace(index, option)),
                cpu_capacity=self._cpu_capacity,
            )
            return self.model.forward_time + makespan
        makespan = self._delta_makespan(
            base, base.fingerprint(), ((index, option),)
        )
        return self.model.forward_time + makespan

    def iteration_time_multi(
        self,
        base: CompressionStrategy,
        replacements: Sequence[Tuple[int, CompressionOption]],
    ) -> float:
        """F(S) of ``base`` with several tensors replaced at once.

        The multi-tensor analogue of :meth:`iteration_time_delta`, used
        by Algorithm 2's offload enumeration (each trial moves whole
        group prefixes to the CPU).  Prefix reuse is bounded by the
        earliest replaced tensor, but the flatten work and the memo
        cache are still shared.
        """
        if self.cancel_check is not None:
            self.cancel_check()
        self.evaluations += 1
        self.stats.fs_calls += 1
        if not self.fast:
            options = list(base.options)
            for index, option in replacements:
                options[index] = option
            self.stats.full_sims += 1
            makespan = simulate_makespan(
                self._chains(CompressionStrategy(options=tuple(options))),
                cpu_capacity=self._cpu_capacity,
            )
            return self.model.forward_time + makespan
        makespan = self._delta_makespan(base, base.fingerprint(), replacements)
        return self.model.forward_time + makespan

    def iteration_time_uncached(self, strategy: CompressionStrategy) -> float:
        """F(S) via an unconditional from-scratch simulation.

        Bypasses the memo cache and the incremental engine; used when
        the *cost* of one evaluation is the measurement (Table 5's
        brute-force extrapolation).
        """
        self.evaluations += 1
        self.stats.fs_calls += 1
        self.stats.full_sims += 1
        makespan = simulate_makespan(
            self._chains(strategy), cpu_capacity=self._cpu_capacity
        )
        return self.model.forward_time + makespan

    def throughput(self, strategy: CompressionStrategy) -> float:
        """Cluster samples/second under ``strategy``."""
        return _throughput(
            self.model, self.cluster, self.iteration_time(strategy)
        )

    def scaling_factor(self, strategy: CompressionStrategy) -> float:
        """The paper's scaling factor T_n / (n * T) under ``strategy``."""
        return _scaling_factor(self.model, self.iteration_time(strategy))

    def baseline(self, flat: bool = False) -> CompressionStrategy:
        """The FP32 strategy sized for this job's model."""
        return baseline_strategy(self.model.num_tensors, flat=flat)
