"""Compression strategies and their evaluation (the paper's F(S)).

A :class:`CompressionStrategy` assigns a compression option to every
tensor of a model (S = {c_j} in §4.2.2).  The :class:`StrategyEvaluator`
derives the full iteration timeline of a strategy with the empirical
models — computing F(S), the iteration time — which is the primitive the
decision algorithm minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import JobConfig
from repro.core.options import CompressionOption, Device, no_compression_option
from repro.core.plan import PlanCompiler
from repro.sim.engine import Timeline, simulate, simulate_makespan
from repro.sim.metrics import scaling_factor as _scaling_factor
from repro.sim.metrics import throughput as _throughput
from repro.sim.stages import TensorChain, compute_stage


@dataclass(frozen=True)
class CompressionStrategy:
    """Per-tensor compression options, indexed like ``model.tensors``."""

    options: Tuple[CompressionOption, ...]

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError("a strategy needs at least one tensor option")

    def __len__(self) -> int:
        return len(self.options)

    def __getitem__(self, index: int) -> CompressionOption:
        return self.options[index]

    def replace(self, index: int, option: CompressionOption) -> "CompressionStrategy":
        """A copy with tensor ``index`` assigned ``option``."""
        options = list(self.options)
        options[index] = option
        return CompressionStrategy(options=tuple(options))

    @property
    def compressed_indices(self) -> List[int]:
        """Indices of tensors that get compressed under this strategy."""
        return [i for i, option in enumerate(self.options) if option.compresses]

    def device_indices(self, device: Device) -> List[int]:
        """Indices of compressed tensors using ``device``."""
        return [
            i
            for i, option in enumerate(self.options)
            if option.compresses and option.uses_device(device)
        ]

    def describe(self) -> str:
        """Multi-line human-readable dump of all per-tensor decisions."""
        return "\n".join(
            f"T{i}: {option.describe()}" for i, option in enumerate(self.options)
        )


def baseline_strategy(num_tensors: int, flat: bool = False) -> CompressionStrategy:
    """The FP32 strategy: no tensor compressed (Algorithm 1's initial S)."""
    option = no_compression_option(flat=flat)
    return CompressionStrategy(options=(option,) * num_tensors)


class StrategyEvaluator:
    """Derives timelines and F(S) for strategies of one training job.

    One evaluator is bound to one :class:`~repro.config.JobConfig`; it
    owns the plan compiler (and its option/size stage cache) so repeated
    evaluations during the decision algorithm stay fast.
    """

    def __init__(self, job: JobConfig):
        self.job = job
        self.model = job.model
        self.cluster = job.system.cluster
        self.compressor = job.build_compressor()
        self.compiler = PlanCompiler(
            cluster=self.cluster,
            compressor=self.compressor,
            gpu=job.system.gpu,
            cpu=job.system.cpu,
        )
        self._cpu_capacity = job.system.cpu.parallel_workers
        self._chain_cache: dict = {}
        self.evaluations = 0  # F(S) computations, reported in Table 5

    def _chains(self, strategy: CompressionStrategy) -> List[TensorChain]:
        """Per-tensor stage chains, cached per (option, tensor) pair."""
        if len(strategy) != self.model.num_tensors:
            raise ValueError(
                f"strategy covers {len(strategy)} tensors, "
                f"model has {self.model.num_tensors}"
            )
        chains = []
        cache = self._chain_cache
        for index, (option, tensor) in enumerate(
            zip(strategy.options, self.model.tensors)
        ):
            key = (id(option), index)
            chain = cache.get(key)
            if chain is None:
                chain = TensorChain(
                    tensor_index=index,
                    stages=[
                        compute_stage(tensor.compute_time),
                        *self.compiler.stages(option, tensor.num_elements),
                    ],
                )
                cache[key] = chain
            chains.append(chain)
        return chains

    def timeline(self, strategy: CompressionStrategy) -> Timeline:
        """Simulate the full iteration timeline of ``strategy``."""
        self.evaluations += 1
        return simulate(self._chains(strategy), cpu_capacity=self._cpu_capacity)

    def iteration_time(self, strategy: CompressionStrategy) -> float:
        """F(S): the iteration wall-clock time under ``strategy``.

        Uses the makespan-only fast path — the decision algorithm calls
        this thousands of times and never needs the stage records.
        """
        self.evaluations += 1
        makespan = simulate_makespan(
            self._chains(strategy), cpu_capacity=self._cpu_capacity
        )
        return self.model.forward_time + makespan

    def throughput(self, strategy: CompressionStrategy) -> float:
        """Cluster samples/second under ``strategy``."""
        return _throughput(
            self.model, self.cluster, self.iteration_time(strategy)
        )

    def scaling_factor(self, strategy: CompressionStrategy) -> float:
        """The paper's scaling factor T_n / (n * T) under ``strategy``."""
        return _scaling_factor(self.model, self.iteration_time(strategy))

    def baseline(self, flat: bool = False) -> CompressionStrategy:
        """The FP32 strategy sized for this job's model."""
        return baseline_strategy(self.model.num_tensors, flat=flat)
