"""Compression options: the paper's decision-tree vocabulary (§4.2).

A *compression option* is a root-to-End path through the decision tree of
Fig. 8 — a sequence of **action tasks** (Table 3) annotated with the
communication phase they execute in, the collective routine chosen for
communication tasks, and the compute device chosen for compression tasks.

The eight action tasks (Table 3):

=============  ========================================================
``COMP``       compression operation, device in {CPU, GPU}
``DECOMP``     decompression operation, device in {CPU, GPU}
``COMM``       indivisible scheme for uncompressed tensors {Allreduce}
``COMM1``      first step of a divisible scheme, uncompressed
               {Reduce-scatter, Reduce}
``COMM2``      second step of a divisible scheme, uncompressed
               {Allgather, Broadcast}
``COMM_C``     indivisible scheme for compressed tensors {Allgather}
``COMM1_C``    first step of a divisible scheme, compressed
               {Alltoall, Gather}
``COMM2_C``    second step of a divisible scheme, compressed
               {Allgather, Broadcast}
=============  ========================================================

plus an ``AGG`` micro-task for the aggregation a node performs after
decompressing the pieces received by a first-step collective (Fig. 4(b)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple


class ActionTask(enum.Enum):
    """The paper's Table 3 action tasks (plus the implied aggregation)."""

    COMP = "comp"
    DECOMP = "decomp"
    AGG = "agg"
    COMM = "comm"
    COMM1 = "comm1"
    COMM2 = "comm2"
    COMM_C = "comm_comp"
    COMM1_C = "comm1_comp"
    COMM2_C = "comm2_comp"


#: Action tasks that move bytes.
COMM_TASKS = (
    ActionTask.COMM,
    ActionTask.COMM1,
    ActionTask.COMM2,
    ActionTask.COMM_C,
    ActionTask.COMM1_C,
    ActionTask.COMM2_C,
)
#: Action tasks that run on a compute device.
DEVICE_TASKS = (ActionTask.COMP, ActionTask.DECOMP, ActionTask.AGG)


class Phase(enum.Enum):
    """Which communication phase of hierarchical/flat sync an action is in."""

    FLAT = "flat"
    INTRA1 = "intra1"
    INTER = "inter"
    INTRA2 = "intra2"


class Device(enum.Enum):
    """Compute resource for compression-related tasks (Dimension 2)."""

    GPU = "gpu"
    CPU = "cpu"


class RoutineName(enum.Enum):
    """Collective routines of Table 2."""

    ALLREDUCE = "allreduce"
    REDUCE_SCATTER = "reduce_scatter"
    ALLGATHER = "allgather"
    ALLTOALL = "alltoall"
    REDUCE = "reduce"
    BROADCAST = "broadcast"
    GATHER = "gather"


#: Pruning rule 3 (§4.2.2): first- and second-step routines must pair.
ROUTINE_PAIRING = {
    RoutineName.REDUCE_SCATTER: RoutineName.ALLGATHER,
    RoutineName.REDUCE: RoutineName.BROADCAST,
    RoutineName.ALLTOALL: RoutineName.ALLGATHER,
    RoutineName.GATHER: RoutineName.BROADCAST,
}


@dataclass(frozen=True)
class Action:
    """One action-task instance on a compression option's path."""

    task: ActionTask
    phase: Phase
    routine: Optional[RoutineName] = None
    device: Optional[Device] = None

    def __post_init__(self) -> None:
        if self.task in COMM_TASKS:
            if self.routine is None:
                raise ValueError(f"{self.task} requires a routine")
            if self.device is not None:
                raise ValueError(f"{self.task} takes no device")
        else:
            if self.device is None:
                raise ValueError(f"{self.task} requires a device")
            if self.routine is not None:
                raise ValueError(f"{self.task} takes no routine")

    def describe(self) -> str:
        """Short human-readable form, e.g. ``inter:comm_comp[allgather]``."""
        detail = self.routine.value if self.routine else self.device.value
        return f"{self.phase.value}:{self.task.value}[{detail}]"


@dataclass(frozen=True)
class CompressionOption:
    """A full root-to-End decision-tree path for one tensor.

    Attributes:
        actions: the action tasks in execution order.
        flat: whether the option uses flat (vs hierarchical) communication.
        ratio: per-tensor compression-ratio override for
            ratio-parameterized compressors (topk/randomk/dgc); ``None``
            means the job's configured ratio applies.  Part of the
            option's *value*: two options differing only in ratio get
            distinct canonical keys, fingerprints, and memo entries.
    """

    actions: Tuple[Action, ...]
    flat: bool
    ratio: Optional[float] = None

    @property
    def compresses(self) -> bool:
        """Dimension 1: does the tensor get compressed at all?"""
        return any(a.task is ActionTask.COMP for a in self.actions)

    @property
    def compresses_intra(self) -> bool:
        """True when compression is applied to intra-machine communication."""
        return any(
            a.task in (ActionTask.COMM1_C, ActionTask.COMM2_C, ActionTask.COMM_C)
            and a.phase in (Phase.INTRA1, Phase.INTRA2)
            for a in self.actions
        )

    @property
    def compresses_inter(self) -> bool:
        """True when compression is applied to inter-machine (or flat) comm."""
        return any(
            a.task in (ActionTask.COMM1_C, ActionTask.COMM2_C, ActionTask.COMM_C)
            and a.phase in (Phase.INTER, Phase.FLAT)
            for a in self.actions
        )

    @property
    def devices(self) -> Tuple[Device, ...]:
        """Devices of the device-bound actions, in order."""
        return tuple(a.device for a in self.actions if a.device is not None)

    def uses_device(self, device: Device) -> bool:
        return device in self.devices

    def with_device(self, device: Device) -> "CompressionOption":
        """A copy with every compression-related task moved to ``device``.

        This is the "offload compression" operation of Algorithm 2: a
        tensor's whole option keeps its communication schemes but runs
        its Comp/Decomp/Agg tasks on the other resource.
        """
        actions = tuple(
            replace(a, device=device) if a.device is not None else a
            for a in self.actions
        )
        return CompressionOption(
            actions=actions, flat=self.flat, ratio=self.ratio
        )

    def with_ratio(self, ratio: Optional[float]) -> "CompressionOption":
        """A copy pinned to a ladder ``ratio`` (``None`` = job default).

        The ratio dimension only changes how many bytes the compressed
        collectives move; the action path is untouched, so the returned
        option shares the vocabulary, pairing rules, and pruning logic
        of the original.
        """
        if ratio is not None and not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if ratio == self.ratio:
            return self
        return CompressionOption(
            actions=self.actions, flat=self.flat, ratio=ratio
        )

    def describe(self) -> str:
        """Readable one-line summary of the full path."""
        mode = "flat" if self.flat else "hier"
        if self.ratio is not None:
            # The ratio rides on the mode prefix so per-action labels
            # (and the evaluator's ratio-free stage names) stay shared
            # across ladder variants, while describe() — the wire-safe
            # value form service digests hash — still spells the ratio.
            mode += f"[r={self.ratio:g}]"
        if not self.actions:
            return f"{mode}: (no-op)"
        return f"{mode}: " + " -> ".join(a.describe() for a in self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __getstate__(self) -> dict:
        # The memoized canonical key (see :func:`canonical_key`) is only
        # meaningful inside the process whose interning table assigned
        # it.  Strip it before pickling — a worker process re-interns the
        # value against its own table; shipping the parent's key could
        # alias a *different* value in the worker's caches.
        state = dict(self.__dict__)
        state.pop("_canonical_key", None)
        return state


#: Value-interning registry behind :func:`canonical_key`.  Options are
#: small frozen dataclasses; keeping every distinct *value* alive forever
#: is bounded by the search-space size and guarantees keys are never
#: recycled the way ``id()`` is after garbage collection.
_CANONICAL_KEYS: dict = {}


def canonical_key(option: CompressionOption) -> int:
    """A stable small-int key for an option's *value*.

    Two options that compare equal (same actions, same flat bit) map to
    the same key, no matter when or where they were constructed; distinct
    values always map to distinct keys.  Every cache in the planner keys
    on this instead of ``id(option)``: a GC'd trial option's reused
    ``id()`` could alias a stale cache entry, and value-equal duplicates
    (e.g. two ``no_compression_option()`` calls) would miss each other.
    Strategy fingerprints (tuples of these keys) are what the F(S) memo
    cache hashes.

    The key is memoized on the option object itself (value hashing walks
    the whole action tuple — far too slow for the planner's hot loop,
    which computes millions of keys); the object-level memo cannot alias
    because it dies with the object.
    """
    key = option.__dict__.get("_canonical_key")
    if key is None:
        key = _CANONICAL_KEYS.get(option)
        if key is None:
            key = len(_CANONICAL_KEYS)
            _CANONICAL_KEYS[option] = key
        object.__setattr__(option, "_canonical_key", key)
    return key


def no_compression_option(flat: bool = False) -> CompressionOption:
    """The canonical FP32 option: hierarchical RS / Allreduce / AG.

    Built here for convenience; the enumerator in
    :mod:`repro.core.tree` also produces it as a tree path.
    """
    if flat:
        return CompressionOption(
            actions=(
                Action(ActionTask.COMM, Phase.FLAT, routine=RoutineName.ALLREDUCE),
            ),
            flat=True,
        )
    return CompressionOption(
        actions=(
            Action(
                ActionTask.COMM1, Phase.INTRA1, routine=RoutineName.REDUCE_SCATTER
            ),
            Action(ActionTask.COMM, Phase.INTER, routine=RoutineName.ALLREDUCE),
            Action(ActionTask.COMM2, Phase.INTRA2, routine=RoutineName.ALLGATHER),
        ),
        flat=False,
    )


#: The default ratio ladder ``plan --ratios`` expands sparsifying
#: candidates over (L-GreCo's per-layer grid, spanning the sparsity
#: regimes the paper's §5 experiments use).
DEFAULT_RATIO_LADDER: Tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.1)


def ladder_options(
    options: Sequence[CompressionOption],
    ratios: Sequence[float],
) -> List[CompressionOption]:
    """Expand compressing options into one variant per ladder ratio.

    Every compressing option contributes itself (ratio ``None`` — the
    job's configured ratio, which may sit outside the ladder) plus one
    pinned variant per ratio; non-compressing options pass through
    unchanged (a ratio means nothing without a COMP task).  Duplicates
    are removed by canonical key, preserving first-seen order so the
    expansion is deterministic for a deterministic input order.
    """
    for ratio in ratios:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    expanded: List[CompressionOption] = []
    seen = set()
    for option in options:
        variants = [option]
        if option.compresses:
            variants.extend(option.with_ratio(ratio) for ratio in ratios)
        for variant in variants:
            key = canonical_key(variant)
            if key not in seen:
                seen.add(key)
                expanded.append(variant)
    return expanded


def validate_option(option: CompressionOption) -> List[str]:
    """Check an option against the three pruning rules of §4.2.2.

    Returns a list of violation messages (empty when valid).  Used by the
    tree tests to prove every enumerated path is well-formed, and by the
    extensibility hook so user-supplied options are validated too.
    """
    problems: List[str] = []
    actions = option.actions
    if not actions:
        problems.append("option has no actions")
        return problems

    # Rule 2: first/second-step tasks only in their steps — encoded as:
    # every COMM1* must be followed (eventually, same phase pair) by the
    # matching COMM2*, and COMM2* must have a preceding COMM1* partner.
    # Rule 3: routines of the pair must match ROUTINE_PAIRING.
    open_first: List[Action] = []
    for action in actions:
        if action.task in (ActionTask.COMM1, ActionTask.COMM1_C):
            open_first.append(action)
        elif action.task in (ActionTask.COMM2, ActionTask.COMM2_C):
            if not open_first:
                problems.append(f"{action.describe()} has no first step")
                continue
            first = open_first.pop()
            expected = ROUTINE_PAIRING.get(first.routine)
            if action.routine is not expected:
                problems.append(
                    f"{first.describe()} pairs with {expected}, "
                    f"got {action.describe()}"
                )
    # Unclosed divisible schemes are allowed only when the first step is
    # hierarchical INTRA1/INTER whose second half belongs to a later
    # phase that a compressed path legitimately transforms; we require
    # closure for FLAT, where there is a single phase.
    for first in open_first:
        if first.phase is Phase.FLAT:
            problems.append(f"{first.describe()} never closed")

    # Compression state machine: COMM_C/COMM1_C/COMM2_C require the
    # payload to be compressed; COMM/COMM1/COMM2 require it dense.
    compressed = False
    for action in actions:
        if action.task is ActionTask.COMP:
            if compressed:
                problems.append("double compression without decompression")
            compressed = True
        elif action.task is ActionTask.DECOMP:
            if not compressed:
                problems.append("decompression of a dense payload")
            compressed = False
        elif action.task in (ActionTask.COMM_C, ActionTask.COMM1_C, ActionTask.COMM2_C):
            if not compressed:
                problems.append(f"{action.describe()} on a dense payload")
        elif action.task in (ActionTask.COMM, ActionTask.COMM1, ActionTask.COMM2):
            if compressed:
                problems.append(f"{action.describe()} on a compressed payload")
    if compressed:
        problems.append("option ends with a compressed payload (no final decomp)")

    # Flat options must not touch hierarchical phases and vice versa.
    for action in actions:
        if option.flat and action.phase is not Phase.FLAT:
            problems.append(f"flat option contains {action.describe()}")
        if not option.flat and action.phase is Phase.FLAT:
            problems.append(f"hierarchical option contains {action.describe()}")

    # Ratio dimension: a pinned ratio must be a usable sparsity and only
    # makes sense on a path that actually compresses.
    if option.ratio is not None:
        if not 0.0 < option.ratio <= 1.0:
            problems.append(
                f"ratio must be in (0, 1], got {option.ratio}"
            )
        if not option.compresses:
            problems.append(
                "ratio pinned on a non-compressing option"
            )
    return problems
