"""Tensor fusion: bucket boundaries as a planner dimension (DESIGN.md §5.8).

Espresso's per-tensor search never *merges* tensors, yet the alpha-beta
cost model it prices against rewards fusing small gradients: every
collective pays a per-message launch latency (the alpha term), so a
model with hundreds of small tensors spends more time launching
messages than moving bytes.  This module adds MG-WFBP-style fusion
groups to the strategy space as a *model transformation*: a
:class:`~repro.core.strategy.FusionPlan` partitions the tensor trace
into contiguous buckets, :func:`fused_model` collapses each bucket into
one aggregate tensor (payloads summed, backprop compute summed), and
the entire existing stack — Algorithm 1/2, the fast evaluation layer,
the event-driven simulator, the invariant battery, and the differential
oracle — runs on the fused job *unchanged*.  Payload-size conservation
now holds per fused group because, to every layer below this one, the
group simply *is* a tensor.

Candidate boundaries come from two families the systems literature
converged on:

* **MG-WFBP** (Shi et al.): walk the backprop trace merging each tensor
  into the open bucket while the cumulative added start delay (the
  compute time of every member after the first) stays below the
  per-message launch latency alpha — merging is free exactly while the
  wait it introduces costs less than the launch it saves.
* **Optimal uniform buffers**: with per-message cost ``alpha + beta*s``,
  total comm time over ``E`` elements in buckets of ``s`` elements is
  ``E/s * alpha + E * beta``; balancing launch overhead against
  pipelining granularity gives ``s* = sqrt(E * alpha / beta)``, and a
  geometric sweep around ``s*`` covers the model-shape dependence.

Both generators are priced honestly: every candidate plan gets a full
Espresso run on its fused job, the winner gets a joint
boundary-refinement pass
(:func:`~repro.core.algorithm.fusion_boundary_sweep`), and the
no-fusion plan is always in the portfolio — fusion-aware planning never
loses to per-tensor planning.  The singleton plan's fused model equals
the original model *exactly* (integer payload sums are exact and a
one-member ``math.fsum`` returns its argument), so no-fusion results
are bit-identical to plain :class:`~repro.core.espresso.Espresso`.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.config import JobConfig
from repro.core.algorithm import IMPROVEMENT_EPSILON, fusion_boundary_sweep
from repro.core.espresso import Espresso, EspressoResult
from repro.core.options import no_compression_option
from repro.core.plan import PlanCompiler
from repro.core.strategy import (
    CompressionStrategy,
    FusedStrategy,
    FusionPlan,
)
from repro.models.base import ModelProfile, TensorProfile

#: Schema tag newly-saved plan artifacts carry.  v2 added the optional
#: per-group ``ratio_schedule`` and ``error_budget`` fields; v1
#: artifacts (which simply lack them) still load.
PLAN_SCHEMA = "espresso-plan/v2"

#: Schemas :meth:`PlanArtifact.check_against` accepts on load.
_SUPPORTED_SCHEMAS = ("espresso-plan/v1", PLAN_SCHEMA)

#: Sizes used to fit the per-message cost ``alpha + beta * elements``
#: from the compiled no-compression stage chain.  The large pair sits
#: deep in the bandwidth-bound regime so the slope is clean.
_BETA_FIT_SMALL = 1 << 16
_BETA_FIT_LARGE = 1 << 22

#: Geometric sweep around the optimal uniform buffer size s*.
_BUFFER_SWEEP = ((0.25, "buffer/4"), (0.5, "buffer/2"), (1.0, "buffer"),
                 (2.0, "buffer*2"), (4.0, "buffer*4"))


class StalePlanError(Exception):
    """A cached/loaded plan no longer matches the model trace.

    Raised by :meth:`PlanArtifact.check_against` and
    :meth:`~repro.core.robust.DegradationTable.replan` when fusion-group
    boundaries were decided against a different tensor trace than the
    one being planned — re-using them would silently misprice every
    bucket.  The CLI reports the one-line message and exits 2, matching
    the checkpoint refusal style.
    """


# -- fusion as a model transformation ---------------------------------------


def fused_model(model: ModelProfile, plan: FusionPlan) -> ModelProfile:
    """``model`` with each fusion group collapsed into one tensor.

    A group's payload is the exact integer sum of its members' elements;
    its backprop compute time is the ``math.fsum`` of the members' (the
    bucket is ready when its last gradient is).  Singleton groups reuse
    the member's exact values and name, so the singleton plan's fused
    model compares equal to ``model`` — the bit-identity anchor for the
    fused-vs-unfused equivalence suite.
    """
    if plan.num_tensors != model.num_tensors:
        raise ValueError(
            f"plan partitions {plan.num_tensors} tensors but model "
            f"{model.name!r} traces {model.num_tensors}"
        )
    tensors: List[TensorProfile] = []
    for start, stop in plan.groups():
        members = model.tensors[start:stop]
        if len(members) == 1:
            tensors.append(members[0])
            continue
        tensors.append(
            TensorProfile(
                name=f"{members[0].name}..{members[-1].name}",
                num_elements=sum(t.num_elements for t in members),
                compute_time=math.fsum(t.compute_time for t in members),
            )
        )
    return dataclasses.replace(model, tensors=tuple(tensors))


def fused_job(job: JobConfig, plan: FusionPlan) -> JobConfig:
    """``job`` with its model fused under ``plan`` (GC/system unchanged)."""
    return dataclasses.replace(job, model=fused_model(job.model, plan))


# -- candidate boundary generators ------------------------------------------


def estimate_alpha_beta(job: JobConfig) -> Tuple[float, float]:
    """Fit the per-message cost ``alpha + beta * elements`` for ``job``.

    Prices the *compiled* no-compression stage chain (the same
    :class:`~repro.core.plan.PlanCompiler` the evaluator uses) at a
    1-element and two large payloads: beta is the slope between the
    large pair, alpha the 1-element cost net of its beta share.  Both
    are 0.0 on a single-GPU cluster, where no collective ever runs and
    fusion has nothing to save.
    """
    compiler = PlanCompiler(
        cluster=job.system.cluster,
        compressor=job.build_compressor(),
        gpu=job.system.gpu,
        cpu=job.system.cpu,
    )
    plain = no_compression_option()

    def comm_seconds(num_elements: int) -> float:
        return math.fsum(
            stage.duration for stage in compiler.stages(plain, num_elements)
        )

    small, large = _BETA_FIT_SMALL, _BETA_FIT_LARGE
    beta = max(0.0, (comm_seconds(large) - comm_seconds(small)) / (large - small))
    alpha = max(0.0, comm_seconds(1) - beta)
    return alpha, beta


def mgwfbp_plan(model: ModelProfile, alpha: float) -> FusionPlan:
    """MG-WFBP merged-gradient grouping for a launch latency ``alpha``.

    Walks the backprop trace (tensors are in completion order) merging
    each tensor into the open bucket while the cumulative start delay
    the merge adds — the compute time of every member after the first —
    stays below ``alpha``.  Past that point the wait costs more than
    the launch it saves, so a new bucket opens.
    """
    boundaries = [0]
    delay = 0.0
    for index in range(1, model.num_tensors):
        delay += model.tensors[index].compute_time
        if delay >= alpha:
            boundaries.append(index)
            delay = 0.0
    return FusionPlan(num_tensors=model.num_tensors, boundaries=tuple(boundaries))


def uniform_buffer_plan(model: ModelProfile, target_elements: int) -> FusionPlan:
    """Greedy bucket fill toward a uniform payload of ``target_elements``.

    A tensor that would overflow a non-empty bucket starts the next one;
    oversize tensors get their own bucket.
    """
    if target_elements < 1:
        raise ValueError(f"target_elements must be >= 1, got {target_elements}")
    boundaries = [0]
    filled = 0
    for index, tensor in enumerate(model.tensors):
        if filled and filled + tensor.num_elements > target_elements:
            boundaries.append(index)
            filled = 0
        filled += tensor.num_elements
    return FusionPlan(num_tensors=model.num_tensors, boundaries=tuple(boundaries))


def optimal_buffer_elements(model: ModelProfile, alpha: float, beta: float) -> int:
    """The launch-vs-granularity optimum ``s* = sqrt(E * alpha / beta)``."""
    total = sum(tensor.num_elements for tensor in model.tensors)
    return max(1, int(math.sqrt(total * alpha / beta)))


def candidate_plans(job: JobConfig) -> List[Tuple[str, FusionPlan]]:
    """The named candidate boundary portfolio for ``job``.

    Always leads with the no-fusion singleton plan (fusion-aware
    planning must never lose to per-tensor planning), then the MG-WFBP
    grouping and the geometric sweep around the optimal uniform buffer,
    deduplicated by boundaries (first name wins).  On a single-GPU
    cluster alpha is 0 and only the singleton survives.
    """
    model = job.model
    plans: List[Tuple[str, FusionPlan]] = [
        ("none", FusionPlan.singleton(model.num_tensors))
    ]
    seen = {plans[0][1].boundaries}
    alpha, beta = estimate_alpha_beta(job)
    named: List[Tuple[str, FusionPlan]] = []
    if alpha > 0.0:
        named.append(("mgwfbp", mgwfbp_plan(model, alpha)))
        if beta > 0.0:
            optimum = optimal_buffer_elements(model, alpha, beta)
            for scale, name in _BUFFER_SWEEP:
                target = max(1, int(optimum * scale))
                named.append((name, uniform_buffer_plan(model, target)))
    for name, plan in named:
        if plan.boundaries not in seen:
            seen.add(plan.boundaries)
            plans.append((name, plan))
    return plans


# -- the fusion-aware planner ------------------------------------------------


@dataclass
class FusionCandidate:
    """One fully-planned boundary candidate."""

    name: str
    plan: FusionPlan
    result: EspressoResult

    @property
    def iteration_time(self) -> float:
        return self.result.iteration_time

    #: Deterministic winner order: best time, then fewest groups, then
    #: lexicographically smallest boundaries — total, so the selection
    #: is independent of candidate enumeration order.
    @property
    def order_key(self) -> Tuple[float, int, Tuple[int, ...]]:
        return (self.result.iteration_time, self.plan.num_groups, self.plan.boundaries)


@dataclass
class FusionResult:
    """The joint boundary + per-bucket-option decision."""

    fused: FusedStrategy
    result: EspressoResult  # the winning candidate's Espresso run
    candidates: List[FusionCandidate]
    iteration_time: float
    #: Iteration time of the no-fusion candidate; None when the plan was
    #: pinned (loaded artifact) and "none" was never planned.
    no_fusion_time: Optional[float]
    selection_seconds: float
    sweep_trials: int = 0
    sweep_accepts: int = 0

    @property
    def plan(self) -> FusionPlan:
        return self.fused.plan

    @property
    def strategy(self) -> CompressionStrategy:
        """The per-group strategy, indexed like the fused model."""
        return self.fused.as_strategy()

    @property
    def improvement_over_no_fusion(self) -> Optional[float]:
        if self.no_fusion_time is None or self.no_fusion_time <= 0.0:
            return None
        return (self.no_fusion_time - self.iteration_time) / self.no_fusion_time

    def summary(self) -> str:
        plan = self.plan
        delta = self.improvement_over_no_fusion
        vs = (
            f"{delta * 100:+.2f}% vs no fusion"
            if delta is not None
            else "pinned plan"
        )
        return (
            f"Fusion planner selected {plan.num_groups} group(s) over "
            f"{plan.num_tensors} tensors ({len(self.candidates)} candidate "
            f"plan(s) priced in {self.selection_seconds * 1e3:.1f} ms); "
            f"iteration {self.iteration_time * 1e3:.2f} ms ({vs})."
        )


class FusionPlanner:
    """Chooses fusion-group boundaries jointly with compression options.

    Runs the full :class:`~repro.core.espresso.Espresso` pipeline on the
    fused job of every candidate plan from :func:`candidate_plans`,
    refines the winner's boundaries with
    :func:`~repro.core.algorithm.fusion_boundary_sweep` (the refined
    plan re-enters the portfolio as one more fully-planned candidate),
    and picks the winner under ``(iteration_time, num_groups,
    boundaries)``.  The outer loop is serial and every inner Espresso
    run is bit-identical across ``--jobs`` widths, so the joint search
    inherits the planner's parallel determinism guarantee.

    Pass ``plan`` to pin the boundaries (e.g. from a loaded
    :class:`PlanArtifact`): only that plan is priced, with no boundary
    refinement — the artifact *is* the boundary decision.
    """

    def __init__(
        self,
        job: JobConfig,
        jobs: int = 1,
        check: bool = False,
        oversubscribe: bool = False,
        plan: Optional[FusionPlan] = None,
        refinement_sweeps: int = 2,
        ratios: Optional[Sequence[float]] = None,
        error_budget: Optional[float] = None,
    ):
        self.job = job
        self.jobs = max(1, int(jobs))
        self.check = check
        self.oversubscribe = oversubscribe
        self.ratios = tuple(ratios) if ratios else None
        self.error_budget = error_budget
        if plan is not None and plan.num_tensors != job.model.num_tensors:
            raise StalePlanError(
                f"stale plan: boundaries partition {plan.num_tensors} "
                f"tensors but model {job.model.name!r} traces "
                f"{job.model.num_tensors}"
            )
        self.plan = plan
        self.refinement_sweeps = refinement_sweeps

    def _plan_candidate(self, name: str, plan: FusionPlan) -> FusionCandidate:
        result = Espresso(
            fused_job(self.job, plan),
            jobs=self.jobs,
            check=self.check,
            oversubscribe=self.oversubscribe,
            ratios=self.ratios,
            error_budget=self.error_budget,
        ).select_strategy()
        return FusionCandidate(name=name, plan=plan, result=result)

    def select_strategy(self) -> FusionResult:
        start = time.perf_counter()
        pinned = self.plan is not None
        if pinned:
            named = [("pinned", self.plan)]
        else:
            named = candidate_plans(self.job)
        candidates = [self._plan_candidate(name, plan) for name, plan in named]
        best = min(candidates, key=lambda c: c.order_key)

        trials = accepts = 0
        if not pinned and self.refinement_sweeps > 0 and best.plan.num_tensors > 1:
            plan, options, swept_time, trials, accepts = fusion_boundary_sweep(
                self.job,
                best.plan,
                best.result.strategy.options,
                sweeps=self.refinement_sweeps,
            )
            if accepts and all(c.plan.boundaries != plan.boundaries for c in candidates):
                refined = self._plan_candidate("refined", plan)
                # The sweep's own option assignment can beat the greedy
                # re-plan of the refined boundaries; keep the better.
                # Under an error budget the sweep's assignment is not
                # budget-checked, so only the (budgeted) re-plan counts.
                if self.error_budget is None and (
                    swept_time < refined.result.iteration_time - IMPROVEMENT_EPSILON
                ):
                    refined.result = dataclasses.replace(
                        refined.result,
                        strategy=CompressionStrategy(options=tuple(options)),
                        iteration_time=swept_time,
                    )
                candidates.append(refined)
                best = min(candidates, key=lambda c: c.order_key)

        no_fusion_time = None
        for candidate in candidates:
            if candidate.name == "none":
                no_fusion_time = candidate.iteration_time
                break
        return FusionResult(
            fused=FusedStrategy(
                plan=best.plan, options=tuple(best.result.strategy.options)
            ),
            result=best.result,
            candidates=candidates,
            iteration_time=best.iteration_time,
            no_fusion_time=no_fusion_time,
            selection_seconds=time.perf_counter() - start,
            sweep_trials=trials,
            sweep_accepts=accepts,
        )


# -- plan artifacts ----------------------------------------------------------


@dataclass(frozen=True)
class PlanArtifact:
    """A serialized fusion plan, guarded against stale reuse.

    Stores enough of the model trace (tensor count and per-tensor
    element counts) to detect that the model a plan is loaded against is
    not the model it was decided for.  ``group_options`` are display
    strings only — loading an artifact pins the *boundaries* and
    re-decides the options for the current job.
    """

    model_name: str
    num_tensors: int
    tensor_elements: Tuple[int, ...]
    boundaries: Tuple[int, ...]
    group_options: Tuple[str, ...] = ()
    iteration_time: float = 0.0
    schema: str = PLAN_SCHEMA
    #: v2: per-group pinned compression ratios (None = the job
    #: compressor's own ratio).  Display/inspection metadata, like
    #: ``group_options`` — loading pins boundaries only.
    ratio_schedule: Tuple[Optional[float], ...] = ()
    #: v2: the global error budget the plan was decided under, if any.
    error_budget: Optional[float] = None

    @classmethod
    def from_result(cls, job: JobConfig, result: FusionResult) -> "PlanArtifact":
        return cls(
            model_name=job.model.name,
            num_tensors=job.model.num_tensors,
            tensor_elements=tuple(
                tensor.num_elements for tensor in job.model.tensors
            ),
            boundaries=result.plan.boundaries,
            group_options=tuple(
                option.describe() for option in result.fused.options
            ),
            iteration_time=result.iteration_time,
            ratio_schedule=tuple(
                option.ratio for option in result.fused.options
            ),
            error_budget=result.result.error_budget,
        )

    def plan(self) -> FusionPlan:
        return FusionPlan(num_tensors=self.num_tensors, boundaries=self.boundaries)

    def check_against(self, model: ModelProfile) -> None:
        """Raise :class:`StalePlanError` unless ``model`` matches the
        trace this plan was decided for (one-line diagnostic)."""
        if self.schema not in _SUPPORTED_SCHEMAS:
            raise StalePlanError(
                f"stale plan: schema {self.schema!r} is not one of the "
                f"supported {list(_SUPPORTED_SCHEMAS)}; re-plan with "
                f"--fusion --save"
            )
        if self.num_tensors != model.num_tensors:
            raise StalePlanError(
                f"stale plan: boundaries were decided for {self.num_tensors} "
                f"tensors but model {model.name!r} traces "
                f"{model.num_tensors}; re-plan with --fusion --save"
            )
        elements = tuple(tensor.num_elements for tensor in model.tensors)
        if self.tensor_elements != elements:
            index = next(
                i
                for i, (a, b) in enumerate(zip(self.tensor_elements, elements))
                if a != b
            )
            raise StalePlanError(
                f"stale plan: tensor T{index} has {elements[index]} elements "
                f"but the plan was decided for {self.tensor_elements[index]}; "
                f"re-plan with --fusion --save"
            )

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "model_name": self.model_name,
            "num_tensors": self.num_tensors,
            "tensor_elements": list(self.tensor_elements),
            "boundaries": list(self.boundaries),
            "group_options": list(self.group_options),
            "iteration_time": self.iteration_time,
            "ratio_schedule": list(self.ratio_schedule),
            "error_budget": self.error_budget,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanArtifact":
        try:
            budget = data.get("error_budget")
            return cls(
                schema=str(data["schema"]),
                model_name=str(data["model_name"]),
                num_tensors=int(data["num_tensors"]),
                tensor_elements=tuple(int(n) for n in data["tensor_elements"]),
                boundaries=tuple(int(b) for b in data["boundaries"]),
                group_options=tuple(str(s) for s in data.get("group_options", ())),
                iteration_time=float(data.get("iteration_time", 0.0)),
                ratio_schedule=tuple(
                    None if ratio is None else float(ratio)
                    for ratio in data.get("ratio_schedule", ())
                ),
                error_budget=None if budget is None else float(budget),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StalePlanError(f"stale plan: unreadable artifact ({exc})")


def save_plan(path: Union[str, Path], artifact: PlanArtifact) -> None:
    Path(path).write_text(json.dumps(artifact.to_dict(), indent=2) + "\n")


def load_plan(path: Union[str, Path]) -> PlanArtifact:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StalePlanError(f"stale plan: cannot read {path} ({exc})")
    if not isinstance(data, dict):
        raise StalePlanError(f"stale plan: {path} is not a plan artifact")
    return PlanArtifact.from_dict(data)
