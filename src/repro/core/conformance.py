"""Job-level conformance runs: invariants + differential oracle.

This is the driver behind ``python -m repro validate``: for a training
job and a set of strategies it simulates each strategy three independent
ways — the optimized engine (:func:`repro.sim.engine.simulate`), the
naive O(n²) reference oracle (:func:`repro.sim.oracle.
simulate_reference`), and the incremental delta-simulator's resident
base (:class:`repro.sim.incremental.IncrementalSimulator`) — checks the
engine timeline against the scheduler invariants
(:mod:`repro.sim.validate`), audits every distinct option's payload
algebra, and reports exact-equality mismatches between the three
simulators.  Zero violations and zero mismatches is the conformance
bar every future perf refactor of ``sim/`` must clear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import JobConfig
from repro.core.options import Device, canonical_key
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.sim.engine import Timeline, simulate
from repro.sim.incremental import IncrementalSimulator
from repro.sim.oracle import simulate_reference
from repro.sim.validate import Violation, check_option_conservation, check_timeline


@dataclass(frozen=True)
class StrategyConformance:
    """Conformance outcome for one strategy on one job."""

    name: str
    makespan: float
    num_stages: int
    violations: Tuple[Violation, ...]
    oracle_exact: bool
    incremental_exact: bool
    timeline: Timeline

    @property
    def ok(self) -> bool:
        return not self.violations and self.oracle_exact and self.incremental_exact


#: Uniform strategy builders exercised by the default conformance suite:
#: the FP32 baselines plus the six uniform preset pipelines (the
#: portfolio strategies the planner itself evaluates).
def conformance_strategies(
    num_tensors: int,
) -> List[Tuple[str, CompressionStrategy]]:
    """The default (name, strategy) suite for a ``num_tensors`` model."""
    suite: List[Tuple[str, CompressionStrategy]] = [
        ("baseline", baseline_strategy(num_tensors)),
        ("baseline-flat", baseline_strategy(num_tensors, flat=True)),
    ]
    builders = (
        ("allgather", inter_allgather_option),
        ("alltoall", inter_alltoall_option),
        ("double", double_compression_option),
    )
    for label, builder in builders:
        for device in (Device.GPU, Device.CPU):
            suite.append(
                (
                    f"{label}-{device.value}",
                    CompressionStrategy(options=(builder(device),) * num_tensors),
                )
            )
    return suite


def validate_strategy(
    evaluator: StrategyEvaluator,
    strategy: CompressionStrategy,
    name: str = "strategy",
    oracle: bool = True,
) -> StrategyConformance:
    """Run the full conformance battery on one strategy."""
    chains = evaluator.chains(strategy)
    cpu_capacity = evaluator.job.system.cpu.parallel_workers
    timeline = simulate(chains, cpu_capacity=cpu_capacity)

    violations = check_timeline(
        timeline, chains=chains, cpu_capacity=cpu_capacity
    )
    seen_options = set()
    for index, option in enumerate(strategy.options):
        key = (canonical_key(option), evaluator.model.tensors[index].num_elements)
        if key in seen_options:
            continue
        seen_options.add(key)
        violations.extend(
            check_option_conservation(
                option, evaluator.model.tensors[index].num_elements,
                evaluator.cluster,
            )
        )

    oracle_exact = True
    if oracle:
        reference = simulate_reference(chains, cpu_capacity=cpu_capacity)
        oracle_exact = reference == timeline

    incremental = IncrementalSimulator(chains, cpu_capacity=cpu_capacity)
    incremental_exact = (
        incremental.base_makespan == timeline.makespan
        and incremental.base_timeline() == timeline
    )

    return StrategyConformance(
        name=name,
        makespan=timeline.makespan,
        num_stages=len(timeline.stages),
        violations=tuple(violations),
        oracle_exact=oracle_exact,
        incremental_exact=incremental_exact,
        timeline=timeline,
    )


def validate_job(
    job: JobConfig,
    strategies: Optional[Sequence[Tuple[str, CompressionStrategy]]] = None,
    oracle: bool = True,
) -> List[StrategyConformance]:
    """Conformance-check a job across ``strategies`` (default suite)."""
    evaluator = StrategyEvaluator(job)
    if strategies is None:
        strategies = conformance_strategies(job.model.num_tensors)
    return [
        validate_strategy(evaluator, strategy, name=name, oracle=oracle)
        for name, strategy in strategies
    ]


def validate_under_faults(
    job: JobConfig,
    ensemble: Optional[Sequence["FaultModel"]] = None,
    strategies: Optional[Sequence[Tuple[str, CompressionStrategy]]] = None,
    oracle: bool = False,
) -> List[Tuple[str, List[StrategyConformance]]]:
    """Run the conformance battery on every perturbed variant of ``job``.

    Faults perturb job inputs, never the engine (:mod:`repro.sim.
    faults`), so a faulted timeline must clear exactly the same
    invariant bar as a nominal one — this is the check ``repro faults
    --check`` and the fault tests in ``tests/sim`` rely on.  Returns
    ``[(fault name, conformance reports)]`` in ensemble order.
    """
    from repro.sim.faults import default_ensemble

    if ensemble is None:
        ensemble = default_ensemble()
    return [
        (
            fault_model.name,
            validate_job(
                fault_model.apply_to_job(job),
                strategies=strategies,
                oracle=oracle,
            ),
        )
        for fault_model in ensemble
    ]
