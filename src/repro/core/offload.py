"""Algorithm 2: provably optimal CPU offloading (§4.4.3).

After Algorithm 1, the compressed tensors T_gpu are grouped by
(size, compression option).  Lemma 1: if q tensors of a group must move
to the CPU, the best q are those **farthest from the output layer** —
they are computed earliest in backprop, so their CPU compression overlaps
the remaining computation and communication.  Algorithm 2 therefore only
enumerates the *count* of offloaded tensors per group
(prod(|G_i| + 1) combinations, Theorem 1) instead of all 2^|T_gpu|
subsets, evaluating each combination's F(S).

When the group structure still makes the product impractically large, a
coordinate-descent sweep over the group counts (each sweep step is
exact within its group, by Lemma 1) is used instead; the exhaustive path
is always taken when the product fits the ``max_evaluations`` budget, so
Theorem 1's optimality claim is testable against brute force.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.options import CompressionOption, Device, canonical_key
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


@dataclass(frozen=True)
class OffloadGroup:
    """One G_i^gpu: same-size, same-option tensors, sorted by descending
    distance to the output layer (the Lemma 1 offload order)."""

    size: int
    option: CompressionOption
    members: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.members)


def offload_groups(
    evaluator: StrategyEvaluator, strategy: CompressionStrategy
) -> List[OffloadGroup]:
    """Group the GPU-compressed tensors for Algorithm 2."""
    model = evaluator.model
    by_key: Dict[Tuple[int, int], List[int]] = {}
    options: Dict[Tuple[int, int], CompressionOption] = {}
    for index, option in enumerate(strategy.options):
        if not option.compresses or not option.uses_device(Device.GPU):
            continue
        # Group by option *value* (canonical key), not object identity:
        # two tensors assigned equal options belong to the same G_i even
        # when the option objects were built separately.
        key = (model.tensors[index].num_elements, canonical_key(option))
        by_key.setdefault(key, []).append(index)
        # Store the first member's option once and verify every later
        # member against it: a canonical_key collision (two unequal
        # options sharing a key) would otherwise silently merge distinct
        # plan chains into one Lemma-1 group and corrupt Algorithm 2's
        # optimum.  canonical_key is value-interned, so this can only
        # fire if that interning breaks — fail loudly, not quietly.
        stored = options.setdefault(key, option)
        if stored is not option and stored != option:
            raise ValueError(
                f"canonical_key collision: tensor {index} option "
                f"{option.describe()!r} shares key {key[1]} with unequal "
                f"option {stored.describe()!r}"
            )
    groups = []
    for key, members in by_key.items():
        members.sort(key=model.distance_to_output, reverse=True)
        groups.append(
            OffloadGroup(size=key[0], option=options[key], members=tuple(members))
        )
    groups.sort(key=lambda g: (-g.size, g.members))
    return groups


def apply_offload_counts(
    strategy: CompressionStrategy,
    groups: Sequence[OffloadGroup],
    counts: Sequence[int],
) -> CompressionStrategy:
    """Offload the first ``counts[i]`` tensors of each group to the CPU."""
    if len(counts) != len(groups):
        raise ValueError("counts must align with groups")
    options = list(strategy.options)
    for group, count in zip(groups, counts):
        if not 0 <= count <= len(group):
            raise ValueError(
                f"count {count} out of range for group of {len(group)}"
            )
        for index in group.members[:count]:
            options[index] = options[index].with_device(Device.CPU)
    return CompressionStrategy(options=tuple(options))


@dataclass
class OffloadResult:
    """Outcome of Algorithm 2."""

    strategy: CompressionStrategy
    iteration_time: float
    counts: Tuple[int, ...]
    groups: Tuple[OffloadGroup, ...]
    combinations: int
    evaluations: int = 0
    exhaustive: bool = True

    @property
    def offloaded_indices(self) -> List[int]:
        return [
            index
            for group, count in zip(self.groups, self.counts)
            for index in group.members[:count]
        ]


def _combination_count(groups: Sequence[OffloadGroup]) -> int:
    total = 1
    for group in groups:
        total *= len(group) + 1
    return total


def _count_replacements(
    groups: Sequence[OffloadGroup],
    counts: Sequence[int],
    cpu_options: Sequence[CompressionOption],
) -> List[Tuple[int, CompressionOption]]:
    """The per-tensor (index, CPU option) replacements a count vector
    implies — the delta-evaluation form of :func:`apply_offload_counts`."""
    return [
        (index, cpu_option)
        for group, count, cpu_option in zip(groups, counts, cpu_options)
        for index in group.members[:count]
    ]


def cpu_offload_decision(
    evaluator: StrategyEvaluator,
    strategy: CompressionStrategy,
    max_evaluations: int = 100_000,
) -> OffloadResult:
    """Run Algorithm 2 on the output of Algorithm 1."""
    evaluations_before = evaluator.evaluations
    groups = tuple(offload_groups(evaluator, strategy))
    base_time = evaluator.iteration_time(strategy)
    combinations = _combination_count(groups)
    if not groups:
        return OffloadResult(
            strategy=strategy,
            iteration_time=base_time,
            counts=(),
            groups=groups,
            combinations=combinations,
            evaluations=evaluator.evaluations - evaluations_before,
        )

    best_counts = (0,) * len(groups)
    best_time = base_time
    cpu_options = [group.option.with_device(Device.CPU) for group in groups]
    exhaustive = combinations <= max_evaluations
    if exhaustive:
        for counts in itertools.product(*(range(len(g) + 1) for g in groups)):
            if not any(counts):
                continue  # base case already evaluated
            trial_time = evaluator.iteration_time_multi(
                strategy, _count_replacements(groups, counts, cpu_options)
            )
            if trial_time < best_time:
                best_time = trial_time
                best_counts = counts
    else:
        best_counts, best_time = _coordinate_descent(
            evaluator, strategy, groups, cpu_options, best_time
        )

    best = apply_offload_counts(strategy, groups, best_counts)
    return OffloadResult(
        strategy=best,
        iteration_time=best_time,
        counts=tuple(best_counts),
        groups=groups,
        combinations=combinations,
        evaluations=evaluator.evaluations - evaluations_before,
        exhaustive=exhaustive,
    )


def _coordinate_descent(
    evaluator: StrategyEvaluator,
    strategy: CompressionStrategy,
    groups: Sequence[OffloadGroup],
    cpu_options: Sequence[CompressionOption],
    base_time: float,
    max_sweeps: int = 4,
) -> Tuple[Tuple[int, ...], float]:
    """Per-group sweeps when the exhaustive product is too large."""
    counts = [0] * len(groups)
    best_time = base_time
    for _ in range(max_sweeps):
        improved = False
        for g, group in enumerate(groups):
            best_c = counts[g]
            for c in range(len(group) + 1):
                if c == counts[g]:
                    continue
                trial_counts = list(counts)
                trial_counts[g] = c
                trial_time = evaluator.iteration_time_multi(
                    strategy,
                    _count_replacements(groups, trial_counts, cpu_options),
                )
                if trial_time < best_time:
                    best_time = trial_time
                    best_c = c
                    improved = True
            counts[g] = best_c
        if not improved:
            break
    return tuple(counts), best_time
