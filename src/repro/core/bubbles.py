"""Communication-bubble analysis (Property #1 of §4.4.2).

A *bubble* is a gap between the communications of adjacent tensors on a
link where the link sits idle because the next tensor's gradient is not
ready yet (Fig. 9(a)).  Compressing a tensor communicated before a bubble
only widens the gap — it cannot pull later communications earlier — and
wastes compression resources, so Algorithm 1's ``Remove()`` rules such
tensors out whenever bubbles appear.

Not every idle gap is a bubble.  A gap in front of a divisible scheme's
*second* step is usually self-inflicted: the op is waiting on the same
tensor's intermediate decompress/aggregate/re-compress, whose timing
itself depends on when the link ran the *first* step — so compressing
earlier tensors would pull the whole pipeline earlier and the gap is not
a shield.  We therefore count a gap as a bubble only when the readiness
of the stage that follows it is **independent of that link's schedule**:
no earlier stage of the same tensor's chain ran on the same link, i.e.
the wait is gated by backprop computation (or by another resource), not
by this link's own history.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.sim.engine import ScheduledStage, Timeline
from repro.sim.stages import COMM, INTER, INTRA, RESOURCES

#: Gaps shorter than this are scheduling noise (latency rounding), not
#: bubbles a human would see on the timeline.
DEFAULT_MIN_BUBBLE = 50e-6


def _stages_on(timeline: Timeline, resource: str) -> List[ScheduledStage]:
    stages = [s for s in timeline.stages if s.resource == resource]
    stages.sort(key=lambda s: s.start)
    return stages


def communication_bubbles(
    timeline: Timeline, min_bubble: float = DEFAULT_MIN_BUBBLE
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-link bubbles: readiness-gated idle gaps of at least ``min_bubble``.

    A gap qualifies only if the op that ends it is the first stage of its
    tensor's chain to touch the link (see module docstring).
    """
    # First stage index of each (tensor, resource) pair.
    first_on_link: Dict[Tuple[int, str], int] = {}
    for stage in timeline.stages:
        key = (stage.tensor_index, stage.resource)
        current = first_on_link.get(key)
        if current is None or stage.stage_index < current:
            first_on_link[key] = stage.stage_index

    bubbles: Dict[str, List[Tuple[float, float]]] = {}
    for resource in (INTRA, INTER):
        stages = _stages_on(timeline, resource)
        gaps: List[Tuple[float, float]] = []
        # The link is idle from t=0 (backprop start) until its first
        # stage: a leading readiness gap is as real a bubble as one
        # between two stages — the link waits for the first gradient —
        # so the cursor starts at 0, not at the first stage's end.
        cursor = 0.0
        for stage in stages:
            if stage.start - cursor >= min_bubble:
                key = (stage.tensor_index, stage.resource)
                if first_on_link[key] == stage.stage_index:
                    gaps.append((cursor, stage.start))
            cursor = max(cursor, stage.end)
        if gaps:
            bubbles[resource] = gaps
    return bubbles


def tensors_before_bubbles(
    timeline: Timeline,
    min_bubble: float = DEFAULT_MIN_BUBBLE,
) -> Set[int]:
    """Tensors whose communication completes before a bubble.

    A tensor is "before a bubble" when, on **every** link it communicates
    on, some bubble starts at or after its last communication there —
    i.e. a downstream readiness gap absorbs any communication-time
    reduction on every path, so compressing it cannot shorten the
    iteration (it can only widen the gaps).
    """
    bubbles = communication_bubbles(timeline, min_bubble)
    # Last communication end per (tensor, resource).
    last_comm: Dict[Tuple[int, str], float] = {}
    for stage in timeline.stages:
        if stage.kind != COMM:
            continue
        key = (stage.tensor_index, stage.resource)
        last_comm[key] = max(last_comm.get(key, 0.0), stage.end)

    tensors = {tensor for tensor, _ in last_comm}
    before: Set[int] = set()
    eps = 1e-12
    for tensor in tensors:
        shielded_everywhere = True
        for resource in (INTRA, INTER):
            end = last_comm.get((tensor, resource))
            if end is None:
                continue  # tensor does not use this link
            gaps = bubbles.get(resource, [])
            if not any(start >= end - eps for start, _ in gaps):
                shielded_everywhere = False
                break
        if shielded_everywhere:
            before.add(tensor)
    return before


def tensors_before_bubbles_flat(
    view: Tuple[
        Sequence[int],
        Sequence[int],
        Sequence[int],
        Sequence[float],
        Sequence[float],
        Sequence[bool],
    ],
    min_bubble: float = DEFAULT_MIN_BUBBLE,
) -> Set[int]:
    """:func:`tensors_before_bubbles` straight from flat task arrays.

    ``view`` is ``(tensors, stage_indexes, resource_indexes, starts,
    ends, comm_flags)`` — the shape
    :meth:`repro.sim.incremental.IncrementalSimulator.task_view`
    returns.  Decisions are bit-identical to running the Timeline
    version on the same schedule: the starts and ends are the same
    exact floats, the per-link walk visits stages in the same
    ``(start, tensor, stage)`` order (task order is tensor-major, so a
    stable sort by start reproduces it), and every threshold compare is
    the same expression.  What this skips is materializing a
    :class:`~repro.sim.engine.ScheduledStage` per task — Remove() runs
    after every accepted greedy change, which made the object churn a
    measurable slice of selection time on deep models.
    """
    tensors, ks, res, start, end, is_comm = view
    n = len(tensors)
    intra = RESOURCES.index(INTRA)
    inter = RESOURCES.index(INTER)

    first_on_link: Dict[Tuple[int, int], int] = {}
    link_tasks: Dict[int, List[int]] = {intra: [], inter: []}
    for t in range(n):
        r = res[t]
        if r == intra or r == inter:
            key = (tensors[t], r)
            current = first_on_link.get(key)
            if current is None or ks[t] < current:
                first_on_link[key] = ks[t]
            link_tasks[r].append(t)

    bubbles: Dict[int, List[Tuple[float, float]]] = {}
    for r, tasks in link_tasks.items():
        tasks.sort(key=start.__getitem__)
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for t in tasks:
            s = start[t]
            if s - cursor >= min_bubble:
                if first_on_link[(tensors[t], r)] == ks[t]:
                    gaps.append((cursor, s))
            e = end[t]
            if e > cursor:
                cursor = e
        if gaps:
            bubbles[r] = gaps

    last_comm: Dict[Tuple[int, int], float] = {}
    for t in range(n):
        if not is_comm[t]:
            continue
        key = (tensors[t], res[t])
        e = end[t]
        prev = last_comm.get(key)
        if prev is None or e > prev:
            last_comm[key] = e

    before: Set[int] = set()
    eps = 1e-12
    for tensor in {tensor for tensor, _ in last_comm}:
        shielded_everywhere = True
        for r in (intra, inter):
            e = last_comm.get((tensor, r))
            if e is None:
                continue
            gaps = bubbles.get(r, [])
            if not any(s >= e - eps for s, _ in gaps):
                shielded_everywhere = False
                break
        if shielded_everywhere:
            before.add(tensor)
    return before
