"""Registry for the benchmark model profiles (the paper's Table 4)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.base import ModelProfile
from repro.models.bert import bert_base
from repro.models.gpt2 import gpt2
from repro.models.lstm import lstm
from repro.models.resnet101 import resnet101
from repro.models.ugatit import ugatit
from repro.models.vgg16 import vgg16

_BUILDERS: Dict[str, Callable[[], ModelProfile]] = {
    "vgg16": vgg16,
    "resnet101": resnet101,
    "ugatit": ugatit,
    "bert-base": bert_base,
    "gpt2": gpt2,
    "lstm": lstm,
}


def available_models() -> List[str]:
    """Names of the six paper models, in Table 4 order."""
    return list(_BUILDERS)


def get_model(name: str) -> ModelProfile:
    """Build the profile registered under ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return builder()
