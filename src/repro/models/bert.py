"""BERT-base profile (Devlin et al.) — 207 gradient tensors, ~420 MB.

12 transformer encoder layers (hidden 768, FFN 3072), embeddings, and the
task heads (pooler, SQuAD QA head, MLM transform) that bring the tensor
count to the paper's 207.  Because every encoder layer repeats the same
parameter shapes, the profile has only a handful of distinct tensor sizes
— the property Fig. 11 of the paper shows and Algorithm 2's grouping
exploits.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.base import ModelProfile, build_profile

_HIDDEN = 768
_FFN = 3072
_LAYERS = 12
_VOCAB = 30522
_MAX_POS = 512

_BIAS_WEIGHT = 0.02
_LN_WEIGHT = 0.05
_BACKWARD_TIME = 0.060
_FORWARD_TIME = 0.030


def _dense(name: str, fan_in: int, fan_out: int, out: list, scale: float = 1.0) -> None:
    params = fan_in * fan_out
    out.append((f"{name}.weight", params, params * scale))
    out.append((f"{name}.bias", fan_out, params * scale * _BIAS_WEIGHT))


def _layernorm(name: str, size: int, out: list) -> None:
    out.append((f"{name}.weight", size, size * _LN_WEIGHT))
    out.append((f"{name}.bias", size, size * _LN_WEIGHT))


def _forward_order_layers() -> List[Tuple[str, int, float]]:
    layers: List[Tuple[str, int, float]] = []
    # Embeddings (word/position/type + LayerNorm): 5 tensors.  Embedding
    # backward is a scatter-add, far cheaper per parameter than a matmul.
    layers.append(("embeddings.word", _VOCAB * _HIDDEN, _VOCAB * _HIDDEN * 0.05))
    layers.append(("embeddings.position", _MAX_POS * _HIDDEN, _MAX_POS * _HIDDEN * 0.05))
    layers.append(("embeddings.token_type", 2 * _HIDDEN, 2 * _HIDDEN * 0.05))
    _layernorm("embeddings.ln", _HIDDEN, layers)
    # 12 encoder layers x 16 tensors = 192.
    for i in range(_LAYERS):
        prefix = f"encoder.{i}"
        _dense(f"{prefix}.attention.query", _HIDDEN, _HIDDEN, layers)
        _dense(f"{prefix}.attention.key", _HIDDEN, _HIDDEN, layers)
        _dense(f"{prefix}.attention.value", _HIDDEN, _HIDDEN, layers)
        _dense(f"{prefix}.attention.output", _HIDDEN, _HIDDEN, layers)
        _layernorm(f"{prefix}.attention.ln", _HIDDEN, layers)
        _dense(f"{prefix}.ffn.intermediate", _HIDDEN, _FFN, layers)
        _dense(f"{prefix}.ffn.output", _FFN, _HIDDEN, layers)
        _layernorm(f"{prefix}.ffn.ln", _HIDDEN, layers)
    # Heads: pooler (2) + MLM transform dense (2) + MLM LN (2) + MLM
    # decoder bias (1) + seq-relationship bias (1) + QA head (2) = 10.
    _dense("pooler", _HIDDEN, _HIDDEN, layers)
    _dense("mlm.transform", _HIDDEN, _HIDDEN, layers)
    _layernorm("mlm.ln", _HIDDEN, layers)
    layers.append(("mlm.decoder.bias", _VOCAB, _VOCAB * _LN_WEIGHT))
    layers.append(("seq_relationship.bias", 2, 2 * _LN_WEIGHT))
    _dense("qa_outputs", _HIDDEN, 2, layers)
    return layers


def bert_base() -> ModelProfile:
    """Build the BERT-base profile of the paper's Table 4."""
    layers = list(reversed(_forward_order_layers()))
    return build_profile(
        name="bert-base",
        layers=layers,
        backward_time=_BACKWARD_TIME,
        forward_time=_FORWARD_TIME,
        batch_size=1024,
        sample_unit="tokens",
        dataset="squad",
    )
