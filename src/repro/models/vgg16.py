"""VGG16 profile (Simonyan & Zisserman) — 32 gradient tensors, ~528 MB.

13 convolutions + 3 fully-connected layers, each contributing a weight and
a bias tensor.  Conv backprop cost scales with ``params x spatial``;
fully-connected cost scales with params alone.  Times are calibrated to a
V100 at batch 32 (ImageNet), the paper's Table 4 configuration.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.base import ModelProfile, build_profile

#: (name, in_channels, out_channels, output spatial side) in forward order.
_CONVS = [
    ("conv1_1", 3, 64, 224),
    ("conv1_2", 64, 64, 224),
    ("conv2_1", 64, 128, 112),
    ("conv2_2", 128, 128, 112),
    ("conv3_1", 128, 256, 56),
    ("conv3_2", 256, 256, 56),
    ("conv3_3", 256, 256, 56),
    ("conv4_1", 256, 512, 28),
    ("conv4_2", 512, 512, 28),
    ("conv4_3", 512, 512, 28),
    ("conv5_1", 512, 512, 14),
    ("conv5_2", 512, 512, 14),
    ("conv5_3", 512, 512, 14),
]
#: (name, in_features, out_features) in forward order.
_FCS = [("fc6", 25088, 4096), ("fc7", 4096, 4096), ("fc8", 4096, 1000)]

_KERNEL = 3 * 3
#: Relative compute cost per parameter of an FC layer vs conv (convs reuse
#: each weight spatial-many times, FCs once).
_FC_WEIGHT_PER_PARAM = 1.0
_BIAS_WEIGHT = 0.02

_BACKWARD_TIME = 0.094
_FORWARD_TIME = 0.045


def _layers() -> List[Tuple[str, int, float]]:
    """Tensors in backprop completion order (classifier first)."""
    layers: List[Tuple[str, int, float]] = []
    for name, fan_in, fan_out in reversed(_FCS):
        params = fan_in * fan_out
        weight = params * _FC_WEIGHT_PER_PARAM
        layers.append((f"{name}.bias", fan_out, weight * _BIAS_WEIGHT))
        layers.append((f"{name}.weight", params, weight))
    for name, cin, cout, spatial in reversed(_CONVS):
        params = _KERNEL * cin * cout
        # Backprop of a conv touches each weight spatial^2 times.
        weight = params * spatial * spatial / 1e4
        layers.append((f"{name}.bias", cout, weight * _BIAS_WEIGHT))
        layers.append((f"{name}.weight", params, weight))
    return layers


def vgg16() -> ModelProfile:
    """Build the VGG16 profile of the paper's Table 4."""
    return build_profile(
        name="vgg16",
        layers=_layers(),
        backward_time=_BACKWARD_TIME,
        forward_time=_FORWARD_TIME,
        batch_size=32,
        sample_unit="images",
        dataset="imagenet",
    )
