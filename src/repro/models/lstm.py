"""LSTM language-model profile (Merity et al.) — 10 gradient tensors, ~328 MB.

A large 3-layer LSTM with a tied embedding/decoder, the paper's worst case
for GC: only 10 tensors, dominated by a few huge recurrent matrices, on
the bandwidth-starved PCIe/25 Gbps testbed (Table 1 shows GC *slows down*
this model).  Recurrent backprop is time-step sequential, so the backward
pass is long relative to the model's FLOPs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.base import ModelProfile, build_profile

_VOCAB = 33278
_EMBED = 1150
_HIDDEN = 1500

_BACKWARD_TIME = 0.100
_FORWARD_TIME = 0.050

#: (layer name, input size, hidden size) in forward order.
_LSTM_LAYERS = [
    ("lstm1", _EMBED, _HIDDEN),
    ("lstm2", _HIDDEN, _HIDDEN),
    ("lstm3", _HIDDEN, _EMBED),
]


def _forward_order_layers() -> List[Tuple[str, int, float]]:
    layers: List[Tuple[str, int, float]] = []
    layers.append(("embedding", _VOCAB * _EMBED, _VOCAB * _EMBED * 0.15))
    for name, fan_in, hidden in _LSTM_LAYERS:
        w_ih = 4 * hidden * fan_in
        w_hh = 4 * hidden * hidden
        layers.append((f"{name}.weight_ih", w_ih, w_ih * 1.0))
        layers.append((f"{name}.weight_hh", w_hh, w_hh * 1.0))
        layers.append((f"{name}.bias", 4 * hidden, 4 * hidden * 0.02))
    return layers


def lstm() -> ModelProfile:
    """Build the LSTM profile of the paper's Table 4."""
    layers = list(reversed(_forward_order_layers()))
    return build_profile(
        name="lstm",
        layers=layers,
        backward_time=_BACKWARD_TIME,
        forward_time=_FORWARD_TIME,
        batch_size=80,
        sample_unit="tokens",
        dataset="wikitext-2",
    )
