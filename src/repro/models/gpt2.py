"""GPT2 (small) profile (Radford et al.) — 148 gradient tensors, ~475 MB.

Token + position embeddings, 12 transformer decoder blocks (hidden 768,
fused QKV projection, FFN 3072), final LayerNorm.  The LM head shares the
token-embedding weight, so it contributes no extra tensor — exactly the
148-tensor count the paper reports (Table 5).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.base import ModelProfile, build_profile

_HIDDEN = 768
_FFN = 3072
_LAYERS = 12
_VOCAB = 50257
_MAX_POS = 1024

_BIAS_WEIGHT = 0.02
_LN_WEIGHT = 0.05
_BACKWARD_TIME = 0.065
_FORWARD_TIME = 0.032


def _dense(name: str, fan_in: int, fan_out: int, out: list) -> None:
    params = fan_in * fan_out
    out.append((f"{name}.weight", params, params * 1.0))
    out.append((f"{name}.bias", fan_out, params * _BIAS_WEIGHT))


def _layernorm(name: str, size: int, out: list) -> None:
    out.append((f"{name}.weight", size, size * _LN_WEIGHT))
    out.append((f"{name}.bias", size, size * _LN_WEIGHT))


def _forward_order_layers() -> List[Tuple[str, int, float]]:
    layers: List[Tuple[str, int, float]] = []
    # wte backward is a scatter-add (tied with the LM head, which adds a
    # dense matmul contribution — hence a larger weight than BERT's).
    layers.append(("wte", _VOCAB * _HIDDEN, _VOCAB * _HIDDEN * 0.3))
    layers.append(("wpe", _MAX_POS * _HIDDEN, _MAX_POS * _HIDDEN * 0.05))
    # 12 blocks x 12 tensors = 144.
    for i in range(_LAYERS):
        prefix = f"h.{i}"
        _layernorm(f"{prefix}.ln_1", _HIDDEN, layers)
        _dense(f"{prefix}.attn.c_attn", _HIDDEN, 3 * _HIDDEN, layers)
        _dense(f"{prefix}.attn.c_proj", _HIDDEN, _HIDDEN, layers)
        _layernorm(f"{prefix}.ln_2", _HIDDEN, layers)
        _dense(f"{prefix}.mlp.c_fc", _HIDDEN, _FFN, layers)
        _dense(f"{prefix}.mlp.c_proj", _FFN, _HIDDEN, layers)
    _layernorm("ln_f", _HIDDEN, layers)
    return layers


def gpt2() -> ModelProfile:
    """Build the GPT2 profile of the paper's Table 4."""
    layers = list(reversed(_forward_order_layers()))
    return build_profile(
        name="gpt2",
        layers=layers,
        backward_time=_BACKWARD_TIME,
        forward_time=_FORWARD_TIME,
        batch_size=80,
        sample_unit="tokens",
        dataset="wikitext-2",
    )
