"""Model zoo: per-tensor (size, backprop-time) profiles of the paper's six
benchmark DNNs, plus synthetic didactic jobs for the illustrative figures."""

from repro.models.base import ModelProfile, TensorProfile, build_profile
from repro.models.synthetic import (
    synthetic_model,
    three_tensor_job,
    two_tensor_job,
    uniform_model,
)
from repro.models.zoo import available_models, get_model

__all__ = [
    "ModelProfile",
    "TensorProfile",
    "build_profile",
    "available_models",
    "get_model",
    "synthetic_model",
    "three_tensor_job",
    "two_tensor_job",
    "uniform_model",
]
