"""ResNet101 profile (He et al.) — 314 gradient tensors, ~170 MB.

The full bottleneck structure is generated: conv1 + bn1, four stages of
[3, 4, 23, 3] bottleneck blocks (1x1 / 3x3 / 1x1 convs, each followed by a
BatchNorm contributing weight+bias tensors), downsample projections at the
first block of every stage, and the final classifier.  This reproduces the
paper's tensor count (314) and the long tail of tiny BatchNorm tensors
that makes ResNet101 the stress test for Espresso's selection time
(Table 5).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.base import ModelProfile, build_profile

#: Blocks per stage for ResNet101.
_STAGE_BLOCKS = [3, 4, 23, 3]
#: (mid_channels, output spatial side) per stage.
_STAGE_CFG = [(64, 56), (128, 28), (256, 14), (512, 7)]

_BIAS_WEIGHT = 0.5  # BN backward is cheap but not free relative to params
_BACKWARD_TIME = 0.097
_FORWARD_TIME = 0.048


def _conv(name: str, k: int, cin: int, cout: int, spatial: int, out: list) -> None:
    params = k * k * cin * cout
    out.append((f"{name}.weight", params, params * spatial * spatial / 1e4))


def _bn(name: str, channels: int, out: list) -> None:
    weight = channels * _BIAS_WEIGHT / 1e2
    out.append((f"{name}.weight", channels, weight))
    out.append((f"{name}.bias", channels, weight))


def _forward_order_layers() -> List[Tuple[str, int, float]]:
    layers: List[Tuple[str, int, float]] = []
    _conv("conv1", 7, 3, 64, 112, layers)
    _bn("bn1", 64, layers)
    in_ch = 64
    for stage, (blocks, (mid, spatial)) in enumerate(
        zip(_STAGE_BLOCKS, _STAGE_CFG), start=1
    ):
        out_ch = mid * 4
        for block in range(blocks):
            prefix = f"layer{stage}.{block}"
            _conv(f"{prefix}.conv1", 1, in_ch, mid, spatial, layers)
            _bn(f"{prefix}.bn1", mid, layers)
            _conv(f"{prefix}.conv2", 3, mid, mid, spatial, layers)
            _bn(f"{prefix}.bn2", mid, layers)
            _conv(f"{prefix}.conv3", 1, mid, out_ch, spatial, layers)
            _bn(f"{prefix}.bn3", out_ch, layers)
            if block == 0:
                _conv(f"{prefix}.downsample", 1, in_ch, out_ch, spatial, layers)
                _bn(f"{prefix}.downsample_bn", out_ch, layers)
            in_ch = out_ch
    fc_params = 2048 * 1000
    layers.append(("fc.weight", fc_params, fc_params / 1e2))
    layers.append(("fc.bias", 1000, 1000 * _BIAS_WEIGHT / 1e2))
    return layers


def resnet101() -> ModelProfile:
    """Build the ResNet101 profile of the paper's Table 4."""
    layers = list(reversed(_forward_order_layers()))
    return build_profile(
        name="resnet101",
        layers=layers,
        backward_time=_BACKWARD_TIME,
        forward_time=_FORWARD_TIME,
        batch_size=32,
        sample_unit="images",
        dataset="imagenet",
    )
