"""U-GAT-IT profile (Kim et al.) — 148 gradient tensors, ~2559 MB.

An image-to-image GAN with two generators and four discriminators.  The
real U-GAT-IT is famously parameter-heavy because the generators' AdaLIN
gamma/beta MLPs take the *flattened feature map* as input, creating a few
enormous fully-connected tensors; the conv stacks add many mid-sized and
small tensors.  We reproduce that highly skewed size distribution at the
paper's total size (~2.5 GB) and tensor count (148).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.models.base import ModelProfile, build_profile

_BACKWARD_TIME = 0.320
_FORWARD_TIME = 0.180

#: Flattened 64x64 x 256-channel feature map feeding the AdaLIN MLP —
#: the source of U-GAT-IT's enormous fully-connected weight (~268M params).
_FLAT_FEATURES = 64 * 64 * 256
_NGF4 = 256


def _conv(name: str, k: int, cin: int, cout: int, spatial: int, out: list) -> None:
    params = k * k * cin * cout
    out.append((f"{name}.weight", params, params * spatial * spatial / 1e4))
    out.append((f"{name}.bias", cout, cout * 0.01))


def _dense(name: str, fan_in: int, fan_out: int, out: list) -> None:
    params = fan_in * fan_out
    out.append((f"{name}.weight", params, params * 0.4))
    out.append((f"{name}.bias", fan_out, fan_out * 0.01))


def _rho(name: str, channels: int, out: list) -> None:
    """AdaLIN's learnable layer/instance-norm mixing parameter."""
    out.append((f"{name}.rho", channels, channels * 0.01))


def _generator(prefix: str, out: list) -> None:
    """One generator: downsampling convs, AdaLIN MLPs, resblocks, upsampling."""
    _conv(f"{prefix}.down1", 7, 3, 64, 256, out)
    _conv(f"{prefix}.down2", 3, 64, 128, 128, out)
    _conv(f"{prefix}.down3", 3, 128, 256, 64, out)
    # The giant AdaLIN MLP: flattened feature map -> style code -> gamma/beta.
    _dense(f"{prefix}.fc", _FLAT_FEATURES, _NGF4, out)
    _dense(f"{prefix}.gamma", _NGF4, _NGF4, out)
    _dense(f"{prefix}.beta", _NGF4, _NGF4, out)
    for i in range(5):
        _conv(f"{prefix}.resblock{i}.conv1", 3, 256, 256, 64, out)
        _rho(f"{prefix}.resblock{i}.norm1", 256, out)
        _conv(f"{prefix}.resblock{i}.conv2", 3, 256, 256, 64, out)
        _rho(f"{prefix}.resblock{i}.norm2", 256, out)
    _conv(f"{prefix}.up1", 3, 256, 128, 128, out)
    _rho(f"{prefix}.up1.norm", 128, out)
    _conv(f"{prefix}.up2", 3, 128, 64, 256, out)
    _rho(f"{prefix}.up2.norm", 64, out)
    _conv(f"{prefix}.out", 7, 64, 3, 256, out)


def _discriminator(prefix: str, depth: int, out: list) -> None:
    """A PatchGAN discriminator with ``depth`` conv layers."""
    channels = [3, 64, 128, 256, 512, 1024, 2048]
    spatial = 128
    for i in range(depth):
        _conv(f"{prefix}.conv{i}", 4, channels[i], channels[i + 1], spatial, out)
        spatial = max(8, spatial // 2)
    _dense(f"{prefix}.logit", channels[depth], 1, out)


def _forward_order_layers() -> List[Tuple[str, int, float]]:
    layers: List[Tuple[str, int, float]] = []
    _generator("genA2B", layers)
    _generator("genB2A", layers)
    _discriminator("disGA", 6, layers)
    _discriminator("disGB", 6, layers)
    _discriminator("disLA", 4, layers)
    _discriminator("disLB", 4, layers)
    return layers


def ugatit() -> ModelProfile:
    """Build the U-GAT-IT profile of the paper's Table 4."""
    layers = list(reversed(_forward_order_layers()))
    return build_profile(
        name="ugatit",
        layers=layers,
        backward_time=_BACKWARD_TIME,
        forward_time=_FORWARD_TIME,
        batch_size=2,
        sample_unit="images",
        dataset="selfie2anime",
    )
