"""Model profiles: the "DNN model information" input of the paper (Fig. 6).

A :class:`ModelProfile` is the per-tensor (size, backprop compute time)
sequence plus forward time and batch metadata — everything Espresso's
empirical models consume.  Tensors are ordered by **backprop completion
order**: ``tensors[0]`` finishes first during backward propagation.

Paper convention (Fig. 9 / Lemma 1): the tensor computed *last* during
backward propagation is "closest to the output layer"; we expose that as
``distance_to_output`` (0 for the last tensor) so the decision algorithm
can use the paper's exact tie-breaking language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.compression.base import FP32_BYTES
from repro.utils.units import MB
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class TensorProfile:
    """One gradient tensor of a DNN model.

    Attributes:
        name: layer/parameter name, for readable timelines.
        num_elements: number of FP32 gradient elements.
        compute_time: backprop computation time of this tensor, seconds.
    """

    name: str
    num_elements: int
    compute_time: float

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ValueError(
                f"tensor {self.name!r}: num_elements must be >= 1, "
                f"got {self.num_elements}"
            )
        check_non_negative(f"tensor {self.name!r} compute_time", self.compute_time)

    @property
    def nbytes(self) -> int:
        """FP32 size in bytes."""
        return self.num_elements * FP32_BYTES


@dataclass(frozen=True)
class ModelProfile:
    """A DNN training job's model-side description.

    Attributes:
        name: model name (e.g. ``"bert-base"``).
        tensors: gradient tensors in backprop completion order.
        forward_time: forward-pass time per iteration, seconds.
        batch_size: per-GPU batch size (samples of ``sample_unit``).
        sample_unit: throughput unit — ``"images"`` or ``"tokens"``.
        dataset: dataset name (documentation only).
    """

    name: str
    tensors: Tuple[TensorProfile, ...]
    forward_time: float
    batch_size: int
    sample_unit: str = "images"
    dataset: str = "synthetic"

    def __post_init__(self) -> None:
        if not self.tensors:
            raise ValueError(f"model {self.name!r} has no tensors")
        check_positive("forward_time", self.forward_time)
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def num_tensors(self) -> int:
        return len(self.tensors)

    @property
    def backward_time(self) -> float:
        """Total backprop computation time, seconds."""
        return sum(t.compute_time for t in self.tensors)

    @property
    def iteration_compute_time(self) -> float:
        """Single-GPU iteration time (forward + backward), no comm."""
        return self.forward_time + self.backward_time

    @property
    def total_bytes(self) -> int:
        """Model gradient size in bytes (Table 4's "Model size")."""
        return sum(t.nbytes for t in self.tensors)

    @property
    def size_mb(self) -> float:
        return self.total_bytes / MB

    def distance_to_output(self, index: int) -> int:
        """Paper's distance to the output layer for ``tensors[index]``.

        The tensor computed last in backprop has distance 0 (Fig. 9's T2).
        """
        if not 0 <= index < len(self.tensors):
            raise IndexError(f"tensor index {index} out of range")
        return len(self.tensors) - 1 - index

    def single_gpu_throughput(self) -> float:
        """Samples/second on one GPU (the T of the scaling factor)."""
        return self.batch_size / self.iteration_compute_time


def _normalize_times(
    weights: Sequence[float], target_total: float
) -> List[float]:
    """Scale nonnegative ``weights`` so they sum to ``target_total``."""
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("compute-time weights must have positive sum")
    return [w / total * target_total for w in weights]


def build_profile(
    name: str,
    layers: Iterable[Tuple[str, int, float]],
    backward_time: float,
    forward_time: float,
    batch_size: int,
    sample_unit: str,
    dataset: str,
) -> ModelProfile:
    """Assemble a :class:`ModelProfile` from (name, elements, weight) layers.

    ``layers`` must be in backprop completion order.  Each layer's third
    field is a relative compute weight; weights are normalized so the
    backward pass sums to ``backward_time`` seconds.
    """
    layer_list = list(layers)
    times = _normalize_times([w for _, _, w in layer_list], backward_time)
    tensors = tuple(
        TensorProfile(name=layer_name, num_elements=elements, compute_time=t)
        for (layer_name, elements, _), t in zip(layer_list, times)
    )
    return ModelProfile(
        name=name,
        tensors=tensors,
        forward_time=forward_time,
        batch_size=batch_size,
        sample_unit=sample_unit,
        dataset=dataset,
    )
