"""Synthetic didactic models used in tests and to regenerate the paper's
illustrative timelines (Figs. 2, 5, and 9)."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.models.base import ModelProfile, TensorProfile
from repro.utils.units import MB, MS


def synthetic_model(
    name: str,
    tensors: Sequence[Tuple[int, float]],
    forward_time: float = 10 * MS,
    batch_size: int = 32,
) -> ModelProfile:
    """Build a model from explicit (num_elements, compute_time) pairs.

    ``tensors`` are in backprop completion order.
    """
    profiles = tuple(
        TensorProfile(name=f"T{i}", num_elements=elements, compute_time=t)
        for i, (elements, t) in enumerate(tensors)
    )
    return ModelProfile(
        name=name,
        tensors=profiles,
        forward_time=forward_time,
        batch_size=batch_size,
        sample_unit="images",
        dataset="synthetic",
    )


def three_tensor_job() -> ModelProfile:
    """The Fig. 2 example: three tensors T0, T1, T2.

    Sized so that without GC T0's communication fully overlaps with
    computation while T2's is fully exposed, reproducing the paper's
    didactic timeline.
    """
    return synthetic_model(
        "fig2-job",
        [
            (int(8 * MB / 4), 20 * MS),  # T0
            (int(24 * MB / 4), 25 * MS),  # T1
            (int(32 * MB / 4), 15 * MS),  # T2
        ],
        forward_time=20 * MS,
    )


def two_tensor_job(
    t0_mb: float = 32.0,
    t1_mb: float = 8.0,
    t0_time: float = 15 * MS,
    t1_time: float = 30 * MS,
) -> ModelProfile:
    """A two-tensor job for the Fig. 5 scheme-interaction examples."""
    return synthetic_model(
        "fig5-job",
        [
            (int(t0_mb * MB / 4), t0_time),
            (int(t1_mb * MB / 4), t1_time),
        ],
        forward_time=15 * MS,
    )


def uniform_model(
    num_tensors: int,
    tensor_mb: float = 16.0,
    compute_ms: float = 8.0,
    forward_ms: float = 30.0,
) -> ModelProfile:
    """A model of ``num_tensors`` identical tensors (property-test fodder)."""
    return synthetic_model(
        f"uniform-{num_tensors}",
        [(int(tensor_mb * MB / 4), compute_ms * MS)] * num_tensors,
        forward_time=forward_ms * MS,
    )
