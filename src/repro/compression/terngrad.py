"""TernGrad ternary quantization (Wen et al. 2017).

Coordinates become {-1, 0, +1} times the per-tensor max magnitude, with
stochastic rounding keeping the estimator unbiased.  Two bits per
coordinate on the wire plus the FP32 scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor

_BITS_PER_ELEMENT = 2


class TernGrad(Compressor):
    """Stochastic ternarization against the max-magnitude scale."""

    name = "terngrad"
    work_factor = 1.2

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        flat = arr.ravel()
        scale = float(np.max(np.abs(flat)))
        if scale == 0.0:
            ternary = np.zeros(flat.size, dtype=np.int8)
        else:
            rng = np.random.default_rng(0 if seed is None else seed)
            prob = np.abs(flat) / scale
            keep = rng.random(flat.size) < prob
            ternary = (np.sign(flat) * keep).astype(np.int8)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            # int8 in memory; the wire-size model charges 2 bits/element.
            payload={"ternary": ternary},
            nbytes=self.compressed_nbytes(flat.size),
            metadata={"scale": scale},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        scale = compressed.metadata["scale"]
        out = compressed.payload["ternary"].astype(np.float32) * scale
        return out.reshape(compressed.shape)

    def compressed_nbytes(self, num_elements: int) -> int:
        total_bits = num_elements * _BITS_PER_ELEMENT
        return (total_bits + 7) // 8 + FP32_BYTES
