"""FP16 cast "compression": halves the traffic with a precision cast."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import CompressedTensor, Compressor

_FP16_BYTES = 2


class FP16(Compressor):
    """Cast gradients to half precision for the wire."""

    name = "fp16"
    work_factor = 0.5

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            payload={"values": arr.ravel().astype(np.float16)},
            nbytes=self.compressed_nbytes(arr.size),
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        return (
            compressed.payload["values"].astype(np.float32).reshape(compressed.shape)
        )

    def compressed_nbytes(self, num_elements: int) -> int:
        return num_elements * _FP16_BYTES
