"""QSGD stochastic quantization (Alistarh et al. 2017).

Coordinates are quantized to ``levels`` uniform levels of ``|x| / ||x||_2``
with stochastic rounding, which keeps the quantizer unbiased.  The wire
carries ``ceil(log2(levels + 1)) + 1`` bits per coordinate (level + sign)
plus the FP32 norm.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor


class QSGD(Compressor):
    """Unbiased stochastic uniform quantization against the L2 norm."""

    name = "qsgd"
    work_factor = 1.5

    def __init__(self, levels: int = 255):
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.levels = levels

    @property
    def bits_per_element(self) -> int:
        """Bits for the level index plus one sign bit."""
        return math.ceil(math.log2(self.levels + 1)) + 1

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        flat = arr.ravel()
        norm = float(np.linalg.norm(flat))
        if norm == 0.0:
            quantized = np.zeros(flat.size, dtype=np.uint8 if self.levels < 256 else np.uint16)
            signs = np.packbits(np.zeros(flat.size, dtype=bool))
        else:
            rng = np.random.default_rng(0 if seed is None else seed)
            scaled = np.abs(flat) / norm * self.levels
            floor = np.floor(scaled)
            prob = scaled - floor
            quantized = floor + (rng.random(flat.size) < prob)
            dtype = np.uint8 if self.levels < 256 else np.uint16
            quantized = quantized.astype(dtype)
            signs = np.packbits(flat >= 0.0)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            payload={"levels": quantized, "signs": signs},
            nbytes=self.compressed_nbytes(flat.size),
            metadata={"norm": norm},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        n = compressed.num_elements
        norm = compressed.metadata["norm"]
        magnitude = compressed.payload["levels"].astype(np.float32) / self.levels * norm
        bits = np.unpackbits(compressed.payload["signs"], count=n)
        out = np.where(bits == 1, magnitude, -magnitude).astype(np.float32)
        return out.reshape(compressed.shape)

    def compressed_nbytes(self, num_elements: int) -> int:
        total_bits = num_elements * self.bits_per_element
        return (total_bits + 7) // 8 + FP32_BYTES
