"""Top-k sparsification and DGC (Lin et al., "Deep Gradient Compression").

Top-k keeps the ``ratio`` fraction of coordinates with the largest
magnitude.  DGC is Top-k with a cheaper, sampling-based threshold
estimation (plus training-loop tricks such as momentum correction that
live in the optimizer, not the compressor).  Both ship k values + k
indices on the wire.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor
from repro.compression.randomk import sparse_elements

_INDEX_BYTES = 4


class TopK(Compressor):
    """Exact top-k magnitude sparsification."""

    name = "topk"
    #: A selection pass over all elements dominates; costlier than Random-k.
    work_factor = 3.0

    def __init__(self, ratio: float = 0.01):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio

    def _select(self, flat: np.ndarray, k: int, seed: Optional[int]) -> np.ndarray:
        """Return the indices of the k kept coordinates (sorted)."""
        if k >= flat.size:
            return np.arange(flat.size, dtype=np.int64)
        idx = np.argpartition(np.abs(flat), flat.size - k)[-k:]
        idx.sort()
        return idx.astype(np.int64)

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        flat = arr.ravel()
        k = sparse_elements(flat.size, self.ratio)
        indices = self._select(flat, k, seed)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            payload={
                "values": flat[indices].astype(np.float32),
                "indices": indices,
            },
            nbytes=self.compressed_nbytes(flat.size),
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        out = np.zeros(compressed.num_elements, dtype=np.float32)
        out[compressed.payload["indices"]] = compressed.payload["values"]
        return out.reshape(compressed.shape)

    def compressed_nbytes(self, num_elements: int) -> int:
        k = sparse_elements(num_elements, self.ratio)
        return k * (FP32_BYTES + _INDEX_BYTES)

    def error_energy(self, num_elements: int, ratio: Optional[float] = None) -> float:
        """Discarded-energy fraction of a magnitude top-k pass.

        Model: the sorted per-coordinate energy density decays roughly
        linearly (density ∝ (1 - u) over the normalized rank u — the
        standard surrogate L-GreCo fits per layer).  Keeping the top
        ``r = k/n`` of that density discards ``(1 - r)^2`` of the total
        energy — strictly less than Random-k's ``1 - r`` for the same
        ratio, which is exactly why magnitude selection wins.  DGC
        inherits this: its trim/top-up keeps the same k, and its sampled
        threshold approximates the same selection.
        """
        k = sparse_elements(num_elements, self.ratio if ratio is None else ratio)
        kept = k / num_elements
        return (1.0 - kept) ** 2


class DGC(TopK):
    """DGC's sampled-threshold Top-k.

    Instead of an exact selection, DGC estimates the magnitude threshold
    from a random sample of the gradient (cheaper on large tensors), then
    keeps every coordinate above the threshold, trimming or topping up to
    exactly k so the wire size stays deterministic — the property §4.3 of
    the paper relies on.
    """

    name = "dgc"
    #: Sampling makes selection cheaper than exact top-k.
    work_factor = 2.0

    #: Fraction of coordinates sampled for threshold estimation.
    SAMPLE_FRACTION = 0.01
    #: Minimum sample size so tiny tensors still estimate something.
    MIN_SAMPLE = 256

    def _select(self, flat: np.ndarray, k: int, seed: Optional[int]) -> np.ndarray:
        if k >= flat.size:
            return np.arange(flat.size, dtype=np.int64)
        magnitudes = np.abs(flat)
        sample_size = min(
            flat.size, max(self.MIN_SAMPLE, int(flat.size * self.SAMPLE_FRACTION))
        )
        rng = np.random.default_rng(0 if seed is None else seed)
        sample = magnitudes[rng.integers(0, flat.size, size=sample_size)]
        # Threshold such that ~ratio of sampled magnitudes exceed it.
        threshold = np.quantile(sample, 1.0 - self.ratio)
        candidates = np.flatnonzero(magnitudes >= threshold)
        if candidates.size > k:
            # Trim to the k largest among candidates.
            order = np.argpartition(magnitudes[candidates], candidates.size - k)
            candidates = candidates[order[-k:]]
        elif candidates.size < k:
            # Top up with the globally largest remaining coordinates.
            remaining = np.setdiff1d(
                np.argpartition(magnitudes, flat.size - k)[-k:],
                candidates,
                assume_unique=False,
            )
            candidates = np.concatenate([candidates, remaining[: k - candidates.size]])
        candidates.sort()
        return candidates.astype(np.int64)
