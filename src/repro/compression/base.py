"""Compressor interface shared by all gradient-compression algorithms.

Two concerns live here:

* **Mathematical behaviour** — ``compress``/``decompress`` operate on real
  numpy arrays so the training engine (:mod:`repro.training`) can validate
  convergence exactly as the paper's §5.4 does.
* **Wire-size model** — ``compressed_nbytes`` tells the communication cost
  models (:mod:`repro.comm`) how many bytes a compressed tensor occupies,
  and ``work_factor`` tells the compression time models
  (:mod:`repro.profiling`) how expensive the kernel is relative to a plain
  streaming pass over the data.

The paper (§4.3) requires GC algorithms to have deterministic compression
time and deterministic compression ratio given a tensor size; every
compressor here satisfies both.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: Bytes per FP32 gradient element.
FP32_BYTES = 4


@dataclass
class CompressedTensor:
    """The wire representation of a compressed gradient.

    Attributes:
        algorithm: name of the compressor that produced it.
        shape: original tensor shape, needed to decompress.
        payload: algorithm-specific arrays (e.g. values/indices/sign bits).
        nbytes: number of bytes this object occupies on the wire.
        metadata: small scalars (norms, scales) that also travel on the wire.
    """

    algorithm: str
    shape: tuple
    payload: Dict[str, np.ndarray]
    nbytes: int
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1


class Compressor(abc.ABC):
    """A gradient-compression algorithm.

    Subclasses must be stateless with respect to gradient content (error
    feedback is layered on by
    :class:`repro.compression.error_feedback.ErrorFeedback`), but may use a
    caller-provided seed for shared randomness (e.g. Random-k index
    selection synchronized across workers).
    """

    #: Human-readable algorithm name (registry key).
    name: str = "abstract"

    #: Relative computational cost per input element of one
    #: compress+decompress pair, where 1.0 is a single streaming pass
    #: (e.g. an FP16 cast).  Feeds the compression time models.
    work_factor: float = 1.0

    #: Whether decompressed tensors from different workers can be summed
    #: without re-sparsifying (dense output).  All algorithms here produce
    #: dense decompressed output, so aggregation is always a dense sum.
    is_identity: bool = False

    @abc.abstractmethod
    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        """Compress ``tensor`` (any shape, float dtype) for the wire."""

    @abc.abstractmethod
    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        """Reconstruct a dense float32 tensor from ``compressed``."""

    @abc.abstractmethod
    def compressed_nbytes(self, num_elements: int) -> int:
        """Wire size in bytes of a compressed tensor of ``num_elements``."""

    def compression_ratio(self, num_elements: int) -> float:
        """Wire bytes divided by FP32 bytes; < 1 means traffic is saved."""
        if num_elements <= 0:
            raise ValueError(f"num_elements must be > 0, got {num_elements}")
        return self.compressed_nbytes(num_elements) / (num_elements * FP32_BYTES)

    def error_energy(self, num_elements: int, ratio: Optional[float] = None) -> float:
        """Estimated fraction of gradient energy this compressor discards.

        The L-GreCo-style error budget (``core/algorithm.py``) sums this
        per tensor, weighted by element count, and refuses strategies
        whose global weighted error exceeds the budget.  ``ratio``
        overrides the compressor's configured ratio for ladder pricing;
        compressors without a ratio knob ignore it.

        The base implementation returns 0.0: lossless or unmodeled
        algorithms (fp16, none, quantizers without a fitted error model)
        never consume budget.  Sparsifiers override this with closed
        forms derived from their selection rule.
        """
        if num_elements <= 0:
            raise ValueError(f"num_elements must be > 0, got {num_elements}")
        return 0.0

    def _check_input(self, tensor: np.ndarray) -> np.ndarray:
        arr = np.asarray(tensor, dtype=np.float32)
        if arr.size == 0:
            raise ValueError("cannot compress an empty tensor")
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
