"""The identity "compressor": plain FP32 synchronization (no GC)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor


class NoCompression(Compressor):
    """Pass-through compressor used by the FP32 baseline."""

    name = "none"
    work_factor = 0.0
    is_identity = True

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            payload={"values": arr.copy()},
            nbytes=self.compressed_nbytes(arr.size),
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        return compressed.payload["values"].reshape(compressed.shape).copy()

    def compressed_nbytes(self, num_elements: int) -> int:
        return num_elements * FP32_BYTES
