"""EF-SignSGD 1-bit quantization (Karimireddy et al. 2019).

Each gradient coordinate is reduced to its sign; a single per-tensor scale
(the mean absolute value) preserves magnitude in expectation.  The error
made by the quantizer is fed back by the
:class:`~repro.compression.error_feedback.ErrorFeedback` wrapper — that
combination is the "EF" part that fixes plain SignSGD's convergence.

Wire format: ``ceil(n / 8)`` sign-bit bytes + one FP32 scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor


class EFSignSGD(Compressor):
    """1-bit sign quantization with a mean-magnitude scale."""

    name = "efsignsgd"
    #: Sign + packbits + scale: roughly one streaming pass.
    work_factor = 1.0

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        flat = arr.ravel()
        scale = float(np.mean(np.abs(flat)))
        signs = np.packbits(flat >= 0.0)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            payload={"signs": signs},
            nbytes=self.compressed_nbytes(flat.size),
            metadata={"scale": scale},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        n = compressed.num_elements
        bits = np.unpackbits(compressed.payload["signs"], count=n)
        scale = compressed.metadata["scale"]
        out = np.where(bits == 1, scale, -scale).astype(np.float32)
        return out.reshape(compressed.shape)

    def compressed_nbytes(self, num_elements: int) -> int:
        return (num_elements + 7) // 8 + FP32_BYTES
