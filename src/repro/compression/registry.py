"""Name-based compressor registry.

The paper's "GC information" config names the algorithm and its
compression ratio (Fig. 6); :func:`create_compressor` turns that config
into a concrete :class:`~repro.compression.base.Compressor`.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict

from repro.compression.base import Compressor
from repro.compression.efsignsgd import EFSignSGD
from repro.compression.fp16 import FP16
from repro.compression.none import NoCompression
from repro.compression.qsgd import QSGD
from repro.compression.randomk import RandomK
from repro.compression.terngrad import TernGrad
from repro.compression.topk import DGC, TopK

_FACTORIES: Dict[str, Callable[..., Compressor]] = {
    "none": NoCompression,
    "randomk": RandomK,
    "topk": TopK,
    "dgc": DGC,
    "efsignsgd": EFSignSGD,
    "qsgd": QSGD,
    "terngrad": TernGrad,
    "fp16": FP16,
}


def available_compressors() -> list:
    """Registered algorithm names, sorted."""
    return sorted(_FACTORIES)


def _accepted_keys(factory: Callable[..., Compressor]) -> list:
    """Constructor keyword names ``factory`` accepts (sorted), or None
    when its signature cannot be introspected (C factories, ``**kwargs``
    catch-alls) — in that case kwargs are forwarded unchecked."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return None
    keys = []
    for parameter in signature.parameters.values():
        if parameter.kind == inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            keys.append(parameter.name)
    return sorted(keys)


def create_compressor(name: str, **params) -> Compressor:
    """Instantiate the compressor registered under ``name``.

    Keyword arguments are forwarded to the algorithm's constructor, e.g.
    ``create_compressor("dgc", ratio=0.01)``.  A typo'd keyword
    (``ration=0.01``) or an out-of-range value (``ratio=0``) raises
    :class:`ValueError` with a one-line diagnostic naming the accepted
    keys, so the CLI and the planning service can map it to their usual
    exit-2 / error-response paths instead of a raw traceback.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from None
    accepted = _accepted_keys(factory)
    if accepted is not None:
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise ValueError(
                f"compressor {name!r} has unknown parameter(s) "
                f"{', '.join(map(repr, unknown))}; accepted: "
                f"{', '.join(accepted) if accepted else '(none)'}"
            )
    try:
        return factory(**params)
    except TypeError as error:
        raise ValueError(f"compressor {name!r}: {error}") from None
    except ValueError as error:
        raise ValueError(f"compressor {name!r}: {error}") from None


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a custom compressor (the abstraction's extensibility hook)."""
    if name in _FACTORIES:
        raise ValueError(f"compressor {name!r} already registered")
    _FACTORIES[name] = factory
