"""Name-based compressor registry.

The paper's "GC information" config names the algorithm and its
compression ratio (Fig. 6); :func:`create_compressor` turns that config
into a concrete :class:`~repro.compression.base.Compressor`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.compression.base import Compressor
from repro.compression.efsignsgd import EFSignSGD
from repro.compression.fp16 import FP16
from repro.compression.none import NoCompression
from repro.compression.qsgd import QSGD
from repro.compression.randomk import RandomK
from repro.compression.terngrad import TernGrad
from repro.compression.topk import DGC, TopK

_FACTORIES: Dict[str, Callable[..., Compressor]] = {
    "none": NoCompression,
    "randomk": RandomK,
    "topk": TopK,
    "dgc": DGC,
    "efsignsgd": EFSignSGD,
    "qsgd": QSGD,
    "terngrad": TernGrad,
    "fp16": FP16,
}


def available_compressors() -> list:
    """Registered algorithm names, sorted."""
    return sorted(_FACTORIES)


def create_compressor(name: str, **params) -> Compressor:
    """Instantiate the compressor registered under ``name``.

    Keyword arguments are forwarded to the algorithm's constructor, e.g.
    ``create_compressor("dgc", ratio=0.01)``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from None
    return factory(**params)


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a custom compressor (the abstraction's extensibility hook)."""
    if name in _FACTORIES:
        raise ValueError(f"compressor {name!r} already registered")
    _FACTORIES[name] = factory
