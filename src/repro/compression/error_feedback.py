"""Error feedback (a.k.a. memory / residual accumulation).

The paper applies error feedback to every compressor on both GPU and CPU
paths (§5.1) because it is what preserves convergence under aggressive
compression.  The wrapper keeps a residual per tensor key:

    acc      = gradient + residual[key]
    wire     = compress(acc)
    residual = acc - decompress(wire)

so information dropped by the compressor in one step re-enters the next.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.compression.base import CompressedTensor, Compressor


class ErrorFeedback:
    """Stateful error-feedback wrapper around a :class:`Compressor`.

    One instance belongs to one worker; residuals are tracked per tensor
    key (e.g. the tensor's name or index in the model).
    """

    def __init__(self, compressor: Compressor):
        self.compressor = compressor
        self._residuals: Dict[object, np.ndarray] = {}

    def compress(
        self,
        key: object,
        gradient: np.ndarray,
        seed: Optional[int] = None,
        compressor: Optional[Compressor] = None,
    ) -> CompressedTensor:
        """Compress ``gradient`` for tensor ``key``, updating the residual.

        ``compressor`` overrides the wrapped compressor for this call
        while keeping the same residual store — the graceful-degradation
        path (fall back to ``NoCompression`` when a compressor faults)
        uses it so the accumulated residual is carried into the fallback
        step instead of being dropped.  The residual is only updated if
        the compressor succeeds, so a faulting ``compress`` leaves the
        state exactly as it was (safe to retry).
        """
        comp = compressor if compressor is not None else self.compressor
        grad = np.asarray(gradient, dtype=np.float32)
        residual = self._residuals.get(key)
        acc = grad if residual is None else grad + residual
        compressed = comp.compress(acc, seed=seed)
        self._residuals[key] = acc - comp.decompress(compressed)
        return compressed

    def decompress(
        self,
        compressed: CompressedTensor,
        compressor: Optional[Compressor] = None,
    ) -> np.ndarray:
        """Decompress (stateless; provided for call-site symmetry).

        ``compressor`` must match whatever produced ``compressed`` when
        the compress call used an override (the degradation path).
        """
        comp = compressor if compressor is not None else self.compressor
        return comp.decompress(compressed)

    def residual(self, key: object) -> Optional[np.ndarray]:
        """The residual currently stored for ``key`` (None before first use)."""
        value = self._residuals.get(key)
        return None if value is None else value.copy()

    def reset(self) -> None:
        """Drop all residuals (e.g. between training runs)."""
        self._residuals.clear()

    def state_dict(self) -> Dict[object, np.ndarray]:
        """A deep copy of every stored residual, for checkpointing.

        Residuals are what make biased compressors convergent; a
        checkpoint that dropped them would restore a run whose next
        updates silently lose the accumulated compression error.
        """
        return {key: value.copy() for key, value in self._residuals.items()}

    def load_state_dict(self, state: Dict[object, np.ndarray]) -> None:
        """Replace all residuals with (copies of) ``state``'s."""
        self._residuals = {
            key: np.asarray(value, dtype=np.float32).copy()
            for key, value in state.items()
        }
