"""Random-k sparsification (Stich et al., "Sparsified SGD with memory").

A uniformly random subset of k = ``ratio * n`` gradient coordinates is
kept.  With a seed shared across workers (derived from the training step
and tensor name) all workers select the *same* coordinates, which is what
makes Random-k aggregation-friendly in practice; the seed is a parameter
so callers control that synchronization.

Wire format: k FP32 values + k int32 indices (8 bytes per kept element).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor

_INDEX_BYTES = 4


def sparse_elements(num_elements: int, ratio: float) -> int:
    """Number of coordinates kept by a sparsifier (at least one).

    Uses an explicit ceiling, not ``round``: Python rounds half-to-even
    (banker's rounding), which made k — and therefore the priced wire
    bytes — non-monotone in ``ratio`` for small tensors (e.g. n=100:
    round(2.5)=2 but round(1.5)=2 as well, while 0.025 > 0.015).  The
    ratio-ladder planner prunes on the assumption that cost is monotone
    non-decreasing in ratio, so k must be too.  ``ceil`` is monotone,
    keeps at least the old k, and is clamped to ``num_elements``.
    """
    if num_elements <= 0:
        raise ValueError(f"num_elements must be > 0, got {num_elements}")
    return max(1, min(num_elements, math.ceil(num_elements * ratio)))


class RandomK(Compressor):
    """Keep a random ``ratio`` fraction of coordinates."""

    name = "randomk"
    #: One RNG pass + gather + scatter: cheap relative to Top-k.
    work_factor = 1.5

    def __init__(self, ratio: float = 0.01, rescale: bool = False):
        """Args:
        ratio: fraction of coordinates to keep.
        rescale: multiply kept values by ``n/k`` to make the compressed
            gradient an unbiased estimator.  Leave False when combined
            with error feedback (the residual memory already corrects the
            bias, and rescaling would poison the residuals).
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.rescale = rescale

    def compress(self, tensor: np.ndarray, seed: Optional[int] = None) -> CompressedTensor:
        arr = self._check_input(tensor)
        flat = arr.ravel()
        k = sparse_elements(flat.size, self.ratio)
        rng = np.random.default_rng(0 if seed is None else seed)
        indices = rng.choice(flat.size, size=k, replace=False).astype(np.int64)
        indices.sort()
        scale = flat.size / k if self.rescale else 1.0
        values = (flat[indices] * scale).astype(np.float32)
        return CompressedTensor(
            algorithm=self.name,
            shape=arr.shape,
            payload={"values": values, "indices": indices},
            nbytes=self.compressed_nbytes(flat.size),
            metadata={"scale": scale},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        out = np.zeros(compressed.num_elements, dtype=np.float32)
        out[compressed.payload["indices"]] = compressed.payload["values"]
        return out.reshape(compressed.shape)

    def compressed_nbytes(self, num_elements: int) -> int:
        k = sparse_elements(num_elements, self.ratio)
        return k * (FP32_BYTES + _INDEX_BYTES)

    def error_energy(self, num_elements: int, ratio: Optional[float] = None) -> float:
        """Expected discarded-energy fraction of one random-k pass.

        Coordinates are kept uniformly at random, so in expectation the
        kept set holds ``k/n`` of the gradient energy regardless of how
        that energy is distributed; the rest is the (error-feedback
        recycled) compression error.
        """
        k = sparse_elements(num_elements, self.ratio if ratio is None else ratio)
        return 1.0 - k / num_elements
