"""Gradient-compression algorithms (the paper's GC library, §5.1).

Sparsifiers (Random-k, Top-k, DGC) and quantizers (EF-SignSGD, QSGD,
TernGrad, FP16) implemented on numpy, plus the error-feedback wrapper the
paper applies to all of them, and a registry keyed by algorithm name.
"""

from repro.compression.base import FP32_BYTES, CompressedTensor, Compressor
from repro.compression.efsignsgd import EFSignSGD
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.fp16 import FP16
from repro.compression.none import NoCompression
from repro.compression.qsgd import QSGD
from repro.compression.randomk import RandomK
from repro.compression.registry import (
    available_compressors,
    create_compressor,
    register_compressor,
)
from repro.compression.terngrad import TernGrad
from repro.compression.topk import DGC, TopK

__all__ = [
    "FP32_BYTES",
    "CompressedTensor",
    "Compressor",
    "NoCompression",
    "RandomK",
    "TopK",
    "DGC",
    "EFSignSGD",
    "QSGD",
    "TernGrad",
    "FP16",
    "ErrorFeedback",
    "available_compressors",
    "create_compressor",
    "register_compressor",
]
