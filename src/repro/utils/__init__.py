"""Shared utilities: units, validation, backoff, and table rendering."""

from repro.utils.backoff import backoff_delay, total_backoff
from repro.utils.units import (
    GB,
    GBPS,
    KB,
    MB,
    US,
    MS,
    GbpsToBytesPerSec,
    format_bytes,
    format_seconds,
)
from repro.utils.tables import render_table
from repro.utils.validation import check_finite, check_non_negative, check_positive

__all__ = [
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "GBPS",
    "GbpsToBytesPerSec",
    "format_bytes",
    "format_seconds",
    "render_table",
    "check_positive",
    "check_non_negative",
    "check_finite",
    "backoff_delay",
    "total_backoff",
]
