"""Small argument-validation helpers shared across modules."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value
