"""Small argument-validation helpers shared across modules."""

from __future__ import annotations

import math


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``.

    Note that ``NaN < 0`` is false: callers that must also exclude
    NaN/infinity should combine this with :func:`check_finite`.
    """
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_finite(name: str, value: float) -> float:
    """Return ``value`` if finite (not NaN/inf), else raise ``ValueError``."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
