"""Minimal ASCII table renderer used by the benchmark harness.

The benchmark modules print the same rows the paper's tables report;
``render_table`` keeps that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
