"""Units and human-readable formatting.

Internally the whole library uses **seconds** for time and **bytes** for
sizes.  Bandwidths are bytes/second.  These constants make call sites
self-documenting, e.g. ``duration = 5 * MS`` or ``size = 170 * MB``.
"""

from __future__ import annotations

#: Size units (bytes).
KB = 1 << 10
MB = 1 << 20
GB = 1 << 30

#: Time units (seconds).
US = 1e-6
MS = 1e-3

#: Bandwidth unit: 1 GB/s expressed in bytes/second.
GBPS = float(GB)

_BITS_PER_BYTE = 8


def GbpsToBytesPerSec(gbps: float) -> float:
    """Convert a network bandwidth quoted in Gbit/s to bytes/second.

    Network links (Ethernet, NVLink, PCIe) are conventionally quoted in
    Gbit/s; 100 Gbps -> 12.5e9 bytes/s.
    """
    return gbps * 1e9 / _BITS_PER_BYTE


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``'170.0 MB'``."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``'12.3 ms'``."""
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f} h"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.1f} us"
