"""Exponential backoff: the one retry-delay formula the repo shares.

Three resilience layers retry with exponential backoff — the training
supervisor's per-tensor compress retries
(:class:`~repro.training.supervision.TrainingSupervisor`), the worker
pool's one-shot restart before latching serial
(:class:`~repro.core.parallel.WorkerPool`), and the planning service's
evaluator-failure retries (:mod:`repro.service.resilience`).  They must
agree on what "retry k with base b" costs, both for the simulated time
axis and for real sleeps, so the formula lives here instead of being
re-derived (slightly differently) at each site.
"""

from __future__ import annotations

from typing import Optional


def backoff_delay(
    attempt: int, base: float, cap: Optional[float] = None
) -> float:
    """Delay in seconds before retry ``attempt`` (1-based).

    Retry ``k`` waits ``base * 2**(k-1)``, optionally clamped to
    ``cap``.  ``attempt`` counts *retries*, not calls: the first retry
    after a failure is attempt 1 and waits exactly ``base``.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if base < 0:
        raise ValueError(f"base must be >= 0, got {base}")
    if cap is not None and cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    delay = base * (2 ** (attempt - 1))
    if cap is not None:
        delay = min(delay, cap)
    return delay


def total_backoff(
    retries: int, base: float, cap: Optional[float] = None
) -> float:
    """Total delay spent across ``retries`` consecutive retries."""
    return sum(
        backoff_delay(attempt, base, cap)
        for attempt in range(1, retries + 1)
    )
