"""The asyncio planning server (``repro serve``, DESIGN.md §5.9).

Request lifecycle::

    connection -> decode frame -> admission control -> bounded queue
      -> worker -> exact-cache lookup
                -> circuit breaker gate
                -> plan attempt (executor thread, cooperative deadline)
                     -> retry w/ backoff on evaluator death
                -> degradation ladder (stale cache -> heuristic -> refusal)
      -> response frame

Every admitted request is answered exactly once, within its deadline
regime: a fresh plan, an exact cache hit, an explicitly ``degraded``
stale/heuristic plan, or a one-line refusal.  Nothing is silently
dropped — the load harness (`scripts/service_bench.py`) asserts this.

Concurrency model: one event loop; ``workers`` asyncio workers each
drive one planning call at a time on a same-width thread pool.  The
planner is pure Python, so threads serialize on the GIL — the pool
buys *cancellation and queueing semantics* (a planning call blocks a
thread, not the loop; deadlines fire inside the evaluator via the
``cancel_check`` seam), while real CPU parallelism stays where it
already lives, in the planner's own ``jobs > 1`` process pool.  The
degradation ladder runs on a separate single-thread executor so a
breaker-open burst of stuck planning threads cannot starve the cheap
fallback path.

Ops (JSON-lines; any object without an ``op`` is a plan request):

* ``{"op": "plan", ...PlanRequest fields}`` -> PlanResponse
* ``{"op": "fleet", ...FleetRequest fields}`` -> FleetResponse: the
  joint multi-tenant planner behind the same admission control, queue,
  deadline, breaker, and retry machinery; its degraded rung is the
  per-tenant heuristic fleet (no exact cache — a fleet answer depends
  on every tenant, so plan-cache reuse happens inside the planner, not
  at the response layer)
* ``{"op": "health"}`` -> readiness + breaker/cache/queue snapshot,
  answered immediately (never queued behind planning work)
* ``{"op": "stats"}`` -> full counter dump
* ``{"op": "drain"}`` -> begin graceful drain (also wired to SIGTERM):
  finish in-flight and queued work, refuse new plans, flush a
  cache-stats summary line, then close.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.service.api import (
    FleetRequest,
    FleetResponse,
    PlanRequest,
    PlanResponse,
    RequestError,
    SOURCE_CACHE,
    SOURCE_FRESH,
    SOURCE_HEURISTIC,
    SOURCE_STALE_CACHE,
    decode_message,
    encode_message,
    family_key,
    job_fingerprint,
    strategy_digest,
)
from repro.service.core import (
    CacheEntry,
    PlanningCore,
    StrategyCache,
    heuristic_fleet,
    heuristic_plan,
    make_entry,
)
from repro.service.resilience import (
    KILL,
    OPEN,
    SLOW,
    CancelToken,
    ChaosSchedule,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    EvaluatorWorkerError,
    RequestCancelled,
    RetryPolicy,
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything `repro serve` can tune, with service-grade defaults."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; the bound port is printed
    workers: int = 2
    queue_limit: int = 16
    #: Applied when a request carries no ``deadline_s``; None = unbounded.
    default_deadline_s: Optional[float] = 30.0
    #: Planner fan-out width (the CLI's ``--jobs``), not server threads.
    jobs: int = 1
    check: bool = False
    cache_entries: int = 256
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 2.0
    chaos: Optional[ChaosSchedule] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )


@dataclass
class ServiceStats:
    """Lifetime counters, dumped by the ``stats`` op and the drain line."""

    received: int = 0
    served: int = 0
    fresh: int = 0
    cache_hits: int = 0
    stale_serves: int = 0
    heuristic_serves: int = 0
    degraded: int = 0
    refused: int = 0
    rejected_saturated: int = 0
    rejected_draining: int = 0
    errors: int = 0
    retries: int = 0
    worker_failures: int = 0
    deadline_misses: int = 0
    queue_expired: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class PlanningServer:
    """Newline-delimited-JSON planning service over TCP.

    Construct, ``await start()``, then ``await wait_drained()`` (or use
    :meth:`run` which does both plus signal wiring).  All mutable state
    is touched only from the event loop thread.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.core = PlanningCore(jobs=config.jobs, check=config.check)
        self.cache = StrategyCache(max_entries=config.cache_entries)
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.stats = ServiceStats()
        # Created in start(): on Python 3.9 asyncio primitives bind the
        # loop they were constructed under, which must be the running one.
        self.queue: Optional["asyncio.Queue"] = None
        self._drained: Optional[asyncio.Event] = None
        self.draining = False
        self.drain_reason = ""
        self.in_flight = 0
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: list = []
        self._drain_task: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="plan"
        )
        # The degradation ladder must stay responsive even when every
        # planning thread is wedged in a slow evaluation, so it gets
        # its own (single) thread.
        self._fallback_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="fallback"
        )

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self.queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker(i))
            for i in range(self.config.workers)
        ]

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum,
                self.request_drain,
                f"signal {signal.Signals(signum).name}",
            )

    async def run(self) -> None:
        """Start, announce the port, and serve until drained."""
        await self.start()
        self.install_signal_handlers()
        print(
            f"repro serve: listening on {self.config.host}:{self.port} "
            f"(workers={self.config.workers} "
            f"queue_limit={self.config.queue_limit} "
            f"jobs={self.config.jobs})",
            flush=True,
        )
        if self.config.chaos is not None and self.config.chaos.active:
            print(
                f"repro serve: CHAOS ACTIVE ({self.config.chaos.describe()})",
                flush=True,
            )
        await self.wait_drained()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    def request_drain(self, reason: str = "drain requested") -> None:
        """Begin graceful drain: finish in-flight + queued, refuse new."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        self._drain_task = asyncio.get_running_loop().create_task(
            self._finish_drain()
        )

    async def _finish_drain(self) -> None:
        await self.queue.join()
        # Blocking puts: with a queue smaller than the worker count the
        # sentinels drain through as workers consume them and exit.
        for _ in self._workers:
            await self.queue.put(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        self._fallback_executor.shutdown(wait=False)
        cache = self.cache.stats()
        print(
            f"repro serve: drained ({self.drain_reason}); "
            f"served {self.stats.served} "
            f"({self.stats.fresh} fresh, {self.stats.cache_hits} cached, "
            f"{self.stats.degraded} degraded, {self.stats.refused} refused, "
            f"{self.stats.rejected_saturated + self.stats.rejected_draining} "
            f"rejected); cache hit rate {cache['hit_rate']:.1%} "
            f"({cache['entries']} entries, {cache['stale_hits']} stale serves)",
            flush=True,
        )
        self._drained.set()

    # -- wire handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending = set()

        async def answer(line: bytes) -> None:
            response = await self.dispatch_line(line)
            async with write_lock:
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    pass

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # One task per frame so a pipelining client gets
                # concurrent planning, not per-connection serialization.
                task = asyncio.get_running_loop().create_task(answer(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            # Event-loop shutdown cancels handler tasks mid-read; the
            # stream protocol retrieves our result, so propagating the
            # cancellation would be logged as a callback error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Drain closes the listener while handlers are winding
                # down; a cancelled close is a clean exit here.
                pass

    async def dispatch_line(self, line: bytes) -> dict:
        try:
            message = decode_message(line)
        except RequestError as error:
            self.stats.errors += 1
            return PlanResponse(status="error", reason=str(error)).to_dict()
        return await self.dispatch(message)

    async def dispatch(self, message: dict) -> dict:
        op = message.get("op", "plan")
        # Introspection is answered inline — it must work precisely
        # when the queue is saturated or the planner is wedged.
        if op == "health":
            return self.health()
        if op == "stats":
            return {"op": "stats", **self.snapshot()}
        if op == "drain":
            self.request_drain("drain op received")
            return {"op": "drain", "status": "draining"}
        if op == "plan":
            return await self.submit(message)
        if op == "fleet":
            return await self.submit_fleet(message)
        self.stats.errors += 1
        return PlanResponse(
            status="error", reason=f"unknown op {op!r}"
        ).to_dict()

    def health(self) -> dict:
        return {
            "op": "health",
            "status": "ok",
            "ready": not self.draining and not self.queue.full(),
            "draining": self.draining,
            "queue_depth": self.queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "in_flight": self.in_flight,
            "workers": self.config.workers,
            "served": self.stats.served,
            "breaker": self.breaker.snapshot(),
            "cache": self.cache.stats(),
        }

    def snapshot(self) -> dict:
        return {
            **self.stats.to_dict(),
            "queue_depth": self.queue.qsize(),
            "in_flight": self.in_flight,
            "draining": self.draining,
            "breaker": self.breaker.snapshot(),
            "cache": self.cache.stats(),
        }

    # -- admission + planning pipeline --------------------------------

    async def submit(self, message: dict) -> dict:
        """Admission control: parse, gate, queue, await the answer."""
        self.stats.received += 1
        request_id = str(message.get("request_id", ""))
        try:
            request = PlanRequest.from_dict(message)
        except RequestError as error:
            self.stats.errors += 1
            return PlanResponse(
                request_id=request_id, status="error", reason=str(error)
            ).to_dict()
        if self.draining:
            self.stats.rejected_draining += 1
            return PlanResponse(
                request_id=request.request_id,
                status="rejected",
                reason=f"draining ({self.drain_reason}): "
                f"refusing new plan requests",
            ).to_dict()
        if self.queue.full():
            self.stats.rejected_saturated += 1
            return PlanResponse(
                request_id=request.request_id,
                status="rejected",
                reason=f"admission control: queue saturated "
                f"({self.queue.qsize()} queued, limit "
                f"{self.config.queue_limit}); retry later",
            ).to_dict()
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        try:
            deadline = Deadline(budget)
        except ValueError as error:
            self.stats.errors += 1
            return PlanResponse(
                request_id=request.request_id,
                status="error",
                reason=str(error),
            ).to_dict()
        future = asyncio.get_running_loop().create_future()
        self.queue.put_nowait((request, deadline, future))
        return await future

    async def submit_fleet(self, message: dict) -> dict:
        """Admission control for ``op: "fleet"`` — same gates as plans."""
        self.stats.received += 1
        request_id = str(message.get("request_id", ""))
        try:
            request = FleetRequest.from_dict(message)
        except RequestError as error:
            self.stats.errors += 1
            return FleetResponse(
                request_id=request_id, status="error", reason=str(error)
            ).to_dict()
        if self.draining:
            self.stats.rejected_draining += 1
            return FleetResponse(
                request_id=request.request_id,
                status="rejected",
                reason=f"draining ({self.drain_reason}): "
                f"refusing new fleet requests",
            ).to_dict()
        if self.queue.full():
            self.stats.rejected_saturated += 1
            return FleetResponse(
                request_id=request.request_id,
                status="rejected",
                reason=f"admission control: queue saturated "
                f"({self.queue.qsize()} queued, limit "
                f"{self.config.queue_limit}); retry later",
            ).to_dict()
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        try:
            deadline = Deadline(budget)
        except ValueError as error:
            self.stats.errors += 1
            return FleetResponse(
                request_id=request.request_id,
                status="error",
                reason=str(error),
            ).to_dict()
        future = asyncio.get_running_loop().create_future()
        self.queue.put_nowait((request, deadline, future))
        return await future

    async def _worker(self, index: int) -> None:
        while True:
            item = await self.queue.get()
            if item is None:
                self.queue.task_done()
                return
            request, deadline, future = item
            fleet = isinstance(request, FleetRequest)
            self.in_flight += 1
            try:
                if fleet:
                    response = await self._process_fleet(request, deadline)
                else:
                    response = await self._process(request, deadline)
            except Exception as error:  # the answer-every-request net
                self.stats.errors += 1
                response_cls = FleetResponse if fleet else PlanResponse
                response = response_cls(
                    request_id=request.request_id,
                    status="error",
                    reason=f"internal error: {type(error).__name__}: {error}",
                    elapsed_s=deadline.elapsed(),
                ).to_dict()
            finally:
                self.in_flight -= 1
                self.queue.task_done()
            if not future.done():
                future.set_result(response)

    async def _process(self, request: PlanRequest, deadline: Deadline) -> dict:
        try:
            job = request.build_job()
        except RequestError as error:
            self.stats.errors += 1
            return PlanResponse(
                request_id=request.request_id,
                status="error",
                reason=str(error),
                elapsed_s=deadline.elapsed(),
            ).to_dict()
        fingerprint = job_fingerprint(job)
        family = family_key(job)

        entry = self.cache.get(fingerprint)
        if entry is not None:
            return self._plan_response(
                request, entry, SOURCE_CACHE, deadline, attempts=0
            )

        if deadline.expired():
            # Spent its whole budget queued: planning would only miss
            # harder.  Not an evaluator failure, so the breaker is not
            # charged; the ladder still answers within this turn.
            self.stats.queue_expired += 1
            return await self._degraded(
                request,
                family,
                deadline,
                reason=f"deadline of {deadline.budget_s:.3f}s expired "
                f"after {deadline.elapsed():.3f}s in queue",
            )

        if not self.breaker.allow():
            return await self._degraded(
                request,
                family,
                deadline,
                reason=f"circuit breaker open "
                f"({self.breaker.consecutive_failures} consecutive "
                f"failures); planner bypassed",
            )

        attempts = 0
        while True:
            attempts += 1
            token = CancelToken(deadline)
            try:
                entry = await asyncio.get_running_loop().run_in_executor(
                    self._executor,
                    self._plan_sync,
                    request,
                    token,
                    attempts - 1,
                )
            except EvaluatorWorkerError as error:
                self.stats.worker_failures += 1
                self.breaker.record_failure()
                if self.breaker.state == OPEN:
                    return await self._degraded(
                        request,
                        family,
                        deadline,
                        reason=f"circuit breaker opened after evaluator "
                        f"failure: {error}",
                    )
                delay = self.config.retry.delay(attempts)
                if (
                    attempts > self.config.retry.max_retries
                    or deadline.remaining() <= delay
                ):
                    return await self._degraded(
                        request,
                        family,
                        deadline,
                        reason=f"evaluator failed {attempts}x "
                        f"(last: {error}); retries exhausted",
                    )
                self.stats.retries += 1
                await asyncio.sleep(delay)
                continue
            except (DeadlineExceeded, RequestCancelled) as error:
                self.stats.deadline_misses += 1
                self.breaker.record_failure()
                return await self._degraded(
                    request, family, deadline, reason=str(error)
                )
            self.breaker.record_success()
            self.cache.put(entry)
            self.stats.fresh += 1
            return self._plan_response(
                request, entry, SOURCE_FRESH, deadline, attempts=attempts
            )

    def _plan_sync(
        self, request: PlanRequest, token: CancelToken, attempt: int
    ) -> CacheEntry:
        """One planning attempt on an executor thread (chaos applies)."""
        chaos = self.config.chaos
        if chaos is not None and chaos.active:
            action = chaos.action(request.request_id, attempt)
            if action == KILL:
                raise EvaluatorWorkerError(
                    f"injected evaluator kill (chaos, attempt {attempt})"
                )
            if action == SLOW:
                self._chaos_sleep(chaos.slow_seconds, token)
        token.check()
        return self.core.plan_request(request, cancel_check=token.check)

    async def _process_fleet(
        self, request: FleetRequest, deadline: Deadline
    ) -> dict:
        """The fleet twin of :meth:`_process`: same gates, same ladder
        shape.  No exact-cache rung (a fleet answer couples every
        tenant); the degraded rung is the per-tenant heuristic fleet."""
        try:
            fingerprint = request.fingerprint()  # also validates
        except RequestError as error:
            self.stats.errors += 1
            return FleetResponse(
                request_id=request.request_id,
                status="error",
                reason=str(error),
                elapsed_s=deadline.elapsed(),
            ).to_dict()

        if deadline.expired():
            # Spent its whole budget queued: not an evaluator failure,
            # so the breaker is not charged.
            self.stats.queue_expired += 1
            return await self._degraded_fleet(
                request,
                fingerprint,
                deadline,
                reason=f"deadline of {deadline.budget_s:.3f}s expired "
                f"after {deadline.elapsed():.3f}s in queue",
            )

        if not self.breaker.allow():
            return await self._degraded_fleet(
                request,
                fingerprint,
                deadline,
                reason=f"circuit breaker open "
                f"({self.breaker.consecutive_failures} consecutive "
                f"failures); planner bypassed",
            )

        attempts = 0
        while True:
            attempts += 1
            token = CancelToken(deadline)
            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    self._executor,
                    self._fleet_sync,
                    request,
                    token,
                    attempts - 1,
                )
            except EvaluatorWorkerError as error:
                self.stats.worker_failures += 1
                self.breaker.record_failure()
                if self.breaker.state == OPEN:
                    return await self._degraded_fleet(
                        request,
                        fingerprint,
                        deadline,
                        reason=f"circuit breaker opened after evaluator "
                        f"failure: {error}",
                    )
                delay = self.config.retry.delay(attempts)
                if (
                    attempts > self.config.retry.max_retries
                    or deadline.remaining() <= delay
                ):
                    return await self._degraded_fleet(
                        request,
                        fingerprint,
                        deadline,
                        reason=f"evaluator failed {attempts}x "
                        f"(last: {error}); retries exhausted",
                    )
                self.stats.retries += 1
                await asyncio.sleep(delay)
                continue
            except (DeadlineExceeded, RequestCancelled) as error:
                self.stats.deadline_misses += 1
                self.breaker.record_failure()
                return await self._degraded_fleet(
                    request, fingerprint, deadline, reason=str(error)
                )
            self.breaker.record_success()
            self.stats.fresh += 1
            return self._fleet_response(
                request,
                result,
                fingerprint,
                SOURCE_FRESH,
                deadline,
                attempts=attempts,
            )

    def _fleet_sync(
        self, request: FleetRequest, token: CancelToken, attempt: int
    ):
        """One fleet-planning attempt on an executor thread."""
        chaos = self.config.chaos
        if chaos is not None and chaos.active:
            action = chaos.action(request.request_id, attempt)
            if action == KILL:
                raise EvaluatorWorkerError(
                    f"injected evaluator kill (chaos, attempt {attempt})"
                )
            if action == SLOW:
                self._chaos_sleep(chaos.slow_seconds, token)
        token.check()
        return self.core.plan_fleet_request(
            request, cancel_check=token.check
        )

    async def _degraded_fleet(
        self,
        request: FleetRequest,
        fingerprint: str,
        deadline: Deadline,
        reason: str,
    ) -> dict:
        """Degraded fleet rung: per-tenant heuristic plans, fairly
        priced under their own contention, on the fallback executor."""
        try:
            result = await asyncio.get_running_loop().run_in_executor(
                self._fallback_executor,
                lambda: heuristic_fleet(request.build_fleet()),
            )
        except Exception as error:
            self.stats.refused += 1
            return FleetResponse(
                request_id=request.request_id,
                status="rejected",
                reason=f"{reason}; heuristic fallback also failed: {error}",
                elapsed_s=deadline.elapsed(),
            ).to_dict()
        self.stats.degraded += 1
        self.stats.heuristic_serves += 1
        return self._fleet_response(
            request,
            result,
            fingerprint,
            SOURCE_HEURISTIC,
            deadline,
            degraded=True,
            reason=reason,
        )

    def _fleet_response(
        self,
        request: FleetRequest,
        result,
        fingerprint: str,
        source: str,
        deadline: Deadline,
        degraded: bool = False,
        reason: Optional[str] = None,
        attempts: int = 1,
    ) -> dict:
        self.stats.served += 1
        tenants = tuple(
            {
                "name": plan.name,
                "model": plan.model,
                "source": plan.source,
                "iteration_time": plan.contended_time,
                "nominal_time": plan.nominal_time,
                "slowdown": plan.slowdown,
                "throughput": plan.throughput,
                "strategy_digest": strategy_digest(plan.strategy),
                "contention": plan.contention.describe(),
            }
            for plan in result.tenants
        )
        return FleetResponse(
            request_id=request.request_id,
            status="ok",
            reason=reason,
            source=source,
            degraded=degraded,
            fingerprint=fingerprint,
            mode=result.mode,
            converged=result.converged,
            oscillated=result.oscillated,
            rounds=result.rounds,
            aggregate_throughput=result.aggregate_throughput,
            selfish_aggregate_throughput=result.selfish_aggregate_throughput,
            worst_slowdown=result.worst_slowdown,
            tenants=tenants,
            parallel_disabled_reason=result.parallel_disabled_reason,
            timelines_checked=result.timelines_checked,
            attempts=attempts,
            elapsed_s=deadline.elapsed(),
        ).to_dict()

    @staticmethod
    def _chaos_sleep(seconds: float, token: CancelToken) -> None:
        """Injected evaluator slowness, still deadline-cancellable."""
        end = time.monotonic() + seconds
        while True:
            token.check()
            left = end - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(0.02, left))

    async def _degraded(
        self,
        request: PlanRequest,
        family: str,
        deadline: Deadline,
        reason: str,
    ) -> dict:
        """The degradation ladder: stale plan -> heuristic -> refusal."""
        stale = self.cache.get_stale(family)
        if stale is not None:
            self.stats.degraded += 1
            self.stats.stale_serves += 1
            return self._plan_response(
                request,
                stale,
                SOURCE_STALE_CACHE,
                deadline,
                degraded=True,
                reason=reason,
            )
        try:
            entry = await asyncio.get_running_loop().run_in_executor(
                self._fallback_executor, self._heuristic_entry, request
            )
        except Exception as error:
            self.stats.refused += 1
            return PlanResponse(
                request_id=request.request_id,
                status="rejected",
                reason=f"{reason}; heuristic fallback also failed: {error}",
                elapsed_s=deadline.elapsed(),
            ).to_dict()
        self.stats.degraded += 1
        self.stats.heuristic_serves += 1
        return self._plan_response(
            request,
            entry,
            SOURCE_HEURISTIC,
            deadline,
            degraded=True,
            reason=reason,
        )

    def _heuristic_entry(self, request: PlanRequest) -> CacheEntry:
        job = request.build_job()
        strategy, iteration_time, baseline_time = heuristic_plan(job)
        # Deliberately NOT cached: a heuristic plan must never be
        # mistaken for the planner's answer on a later exact hit.
        return make_entry(job, strategy, iteration_time, baseline_time)

    def _plan_response(
        self,
        request: PlanRequest,
        entry: CacheEntry,
        source: str,
        deadline: Deadline,
        degraded: bool = False,
        reason: Optional[str] = None,
        attempts: int = 1,
    ) -> dict:
        self.stats.served += 1
        if source == SOURCE_CACHE:
            self.stats.cache_hits += 1
        return PlanResponse(
            request_id=request.request_id,
            status="ok",
            reason=reason,
            source=source,
            degraded=degraded,
            fingerprint=entry.fingerprint,
            model=entry.model_name,
            iteration_time=entry.iteration_time,
            baseline_iteration_time=entry.baseline_iteration_time,
            strategy_digest=entry.digest,
            options=entry.options_text,
            compressed_tensors=entry.compressed_tensors,
            num_tensors=entry.num_tensors,
            attempts=attempts,
            elapsed_s=deadline.elapsed(),
        ).to_dict()


def serve(config: ServerConfig) -> int:
    """Blocking entry point for ``repro serve``."""
    try:
        asyncio.run(PlanningServer(config).run())
    except KeyboardInterrupt:  # pragma: no cover - interactive escape
        print("repro serve: interrupted", file=sys.stderr)
        return 1
    return 0


__all__ = ["PlanningServer", "ServerConfig", "ServiceStats", "serve"]
