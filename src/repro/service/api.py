"""Planning-service request/response vocabulary (DESIGN.md §5.9).

One :class:`PlanRequest` names everything a plan decision depends on —
the model (zoo name or inline trace), the GC configuration, and the
cluster — plus the per-request deadline.  Two requests that describe
the same job produce the same :func:`PlanRequest.fingerprint` no matter
how they were spelled (zoo name vs the identical inline trace, default
vs explicit parameters), because the fingerprint hashes the *canonical
serialized job* (the same ``model_to_dict``/``gc_to_dict``/
``cluster_to_dict`` forms the config files use), not the request's
surface fields.  The strategy cache and the request deduplication both
key on it.

Strategies cross the wire as their per-tensor ``describe()`` strings
plus a :func:`strategy_digest` over them.  ``describe()`` spells out the
full option value (mode, every action with phase/routine/device), so
digest equality is value equality — unlike
:func:`~repro.core.options.canonical_key`, whose small ints are
process-local interning artifacts and must never leave the process.
The load harness uses the digest to prove that a served non-degraded
plan is bit-identical to ``repro plan`` on the same inputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.config import (
    GCInfo,
    JobConfig,
    SystemInfo,
    cluster_from_dict,
    cluster_to_dict,
    gc_to_dict,
    model_from_dict,
    model_to_dict,
)
from repro.core.strategy import CompressionStrategy
from repro.models import available_models, get_model

#: Testbed names accepted by :class:`PlanRequest` (the two paper setups).
TESTBEDS = ("nvlink", "pcie")

#: Where a response's strategy came from, worst-first on the
#: degradation ladder (DESIGN.md §5.9): a fresh planner run, an exact
#: strategy-cache hit, a stale cached plan for the same model+GC family
#: decided under different conditions, or the alpha-beta heuristic.
SOURCE_FRESH = "fresh"
SOURCE_CACHE = "cache"
SOURCE_STALE_CACHE = "stale-cache"
SOURCE_HEURISTIC = "heuristic"


class RequestError(Exception):
    """A plan request cannot be used (one-line diagnostic).

    The server maps it to a ``status: "error"`` response; the CLI maps
    it to the usual one-line exit-2 diagnostic.
    """


@dataclass(frozen=True)
class PlanRequest:
    """Everything one plan decision depends on, as wire-able data.

    Attributes:
        model: zoo model name (ignored when ``model_config`` is given).
        model_config: inline model trace (``model_to_dict`` form).
        gc: compression algorithm name.
        ratio: sparsification ratio shorthand (merged into ``gc_params``).
        gc_params: extra compressor constructor parameters.
        testbed: ``"nvlink"`` or ``"pcie"`` preset cluster family.
        machines / gpus: preset cluster dimensions.
        system_config: inline cluster (``cluster_to_dict`` form),
            overriding the preset fields.
        deadline_s: per-request deadline in seconds; ``None`` means the
            server default applies.
        request_id: caller-chosen correlation id, echoed verbatim.
        ratios: per-tensor compression-ratio ladder the planner should
            search (``plan --ratios``); ``None`` plans at the fixed
            configured ratio.
        error_budget: global compression-error budget in ``[0, 1]``
            (``plan --error-budget``).
    """

    model: str = "gpt2"
    model_config: Optional[dict] = None
    gc: str = "dgc"
    ratio: Optional[float] = None
    gc_params: Dict[str, object] = field(default_factory=dict)
    testbed: str = "nvlink"
    machines: int = 8
    gpus: int = 8
    system_config: Optional[dict] = None
    deadline_s: Optional[float] = None
    request_id: str = ""
    ratios: Optional[List[float]] = None
    error_budget: Optional[float] = None

    def build_job(self) -> JobConfig:
        """The :class:`~repro.config.JobConfig` this request describes.

        Every invalid field — unknown model or testbed, malformed
        inline config, non-positive cluster dimensions — raises
        :class:`RequestError` with a one-line message.
        """
        try:
            if self.model_config is not None:
                model = model_from_dict(self.model_config)
            else:
                if self.model not in available_models():
                    raise RequestError(
                        f"unknown model {self.model!r}; available: "
                        f"{', '.join(available_models())}"
                    )
                model = get_model(self.model)
            params = dict(self.gc_params)
            if self.ratio is not None:
                params["ratio"] = float(self.ratio)
            gc = GCInfo(str(self.gc), params)
            if self.system_config is not None:
                cluster = cluster_from_dict(self.system_config)
            else:
                if self.testbed not in TESTBEDS:
                    raise RequestError(
                        f"unknown testbed {self.testbed!r}; "
                        f"expected one of {TESTBEDS}"
                    )
                factory = (
                    nvlink_100g_cluster
                    if self.testbed == "nvlink"
                    else pcie_25g_cluster
                )
                if self.machines < 1 or self.gpus < 1:
                    raise RequestError(
                        f"machines/gpus must be >= 1, got "
                        f"{self.machines}/{self.gpus}"
                    )
                cluster = factory(
                    num_machines=int(self.machines),
                    gpus_per_machine=int(self.gpus),
                )
            if self.ratios is not None:
                for entry in self.ratios:
                    if not 0.0 < float(entry) <= 1.0:
                        raise RequestError(
                            f"ratios entries must be in (0, 1], got {entry}"
                        )
            if self.error_budget is not None and not (
                0.0 <= float(self.error_budget) <= 1.0
            ):
                raise RequestError(
                    f"error_budget must be in [0, 1], got {self.error_budget}"
                )
            job = JobConfig(model=model, gc=gc, system=SystemInfo(cluster=cluster))
            # Validate compressor kwargs eagerly so a typo'd or
            # out-of-range parameter is a RequestError at admission,
            # not a traceback inside the planner thread.
            job.build_compressor()
            return job
        except RequestError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise RequestError(f"bad plan request: {error}") from None

    def fingerprint(self) -> str:
        """Canonical job fingerprint (cache/dedup key).

        Hashes the serialized job, so spelling differences that describe
        the same job collapse to one key.  The ratio-ladder knobs join
        the key when set: a laddered plan must never be served from a
        fixed-ratio cache entry or vice versa.
        """
        return job_fingerprint(
            self.build_job(),
            ratios=self.ratios,
            error_budget=self.error_budget,
        )

    def family(self) -> str:
        """The (model, GC) family key used for stale-cache fallback."""
        return family_key(self.build_job())

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        return {k: v for k, v in data.items() if v not in (None, {}, "")}

    @classmethod
    def from_dict(cls, data: dict) -> "PlanRequest":
        if not isinstance(data, dict):
            raise RequestError(
                f"plan request must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known - {"op"})
        if unknown:
            raise RequestError(
                f"plan request has unknown key(s) "
                f"{', '.join(map(repr, unknown))}"
            )
        kwargs = {k: v for k, v in data.items() if k in known}
        try:
            return cls(**kwargs)
        except TypeError as error:
            raise RequestError(f"bad plan request: {error}") from None


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class FleetRequest:
    """Everything one *fleet* plan decision depends on, as wire data.

    The fleet analogue of :class:`PlanRequest` (``op: "fleet"``): a
    tenant list plus one shared cluster.  Tenant entries use the same
    dict form as fleet config files
    (:meth:`repro.cluster.tenancy.TenantSpec.to_dict`).

    Attributes:
        tenants: list of tenant dicts (name, model, gc, ratio, gc_params).
        testbed / machines / gpus: preset shared-cluster family and
            dimensions, as in :class:`PlanRequest`.
        system_config: inline cluster (``cluster_to_dict`` form),
            overriding the preset fields.
        max_rounds: fixed-point iteration cap before the CVaR fallback.
        deadline_s: per-request deadline in seconds; ``None`` means the
            server default applies.
        request_id: caller-chosen correlation id, echoed verbatim.
    """

    tenants: List[dict] = field(default_factory=list)
    testbed: str = "nvlink"
    machines: int = 8
    gpus: int = 8
    system_config: Optional[dict] = None
    max_rounds: int = 6
    deadline_s: Optional[float] = None
    request_id: str = ""

    def build_fleet(self):
        """The :class:`~repro.cluster.tenancy.FleetSpec` this describes.

        Every invalid field raises :class:`RequestError` with a one-line
        message (the server's ``status: "error"``, the CLI's exit 2).
        """
        from repro.cluster.tenancy import FleetSpec, TenantSpec

        try:
            if self.system_config is not None:
                cluster = cluster_from_dict(self.system_config)
            else:
                if self.testbed not in TESTBEDS:
                    raise RequestError(
                        f"unknown testbed {self.testbed!r}; "
                        f"expected one of {TESTBEDS}"
                    )
                if self.machines < 1 or self.gpus < 1:
                    raise RequestError(
                        f"machines/gpus must be >= 1, got "
                        f"{self.machines}/{self.gpus}"
                    )
                factory = (
                    nvlink_100g_cluster
                    if self.testbed == "nvlink"
                    else pcie_25g_cluster
                )
                cluster = factory(
                    num_machines=int(self.machines),
                    gpus_per_machine=int(self.gpus),
                )
            if not isinstance(self.tenants, list) or not self.tenants:
                raise RequestError(
                    "fleet request needs a non-empty 'tenants' list"
                )
            if self.max_rounds < 1:
                raise RequestError(
                    f"max_rounds must be >= 1, got {self.max_rounds}"
                )
            tenants = tuple(
                TenantSpec.from_dict(entry, index=index)
                for index, entry in enumerate(self.tenants)
            )
            fleet = FleetSpec(cluster=cluster, tenants=tenants)
            for tenant in fleet.tenants:
                # Validate compressor kwargs eagerly, as build_job does.
                tenant.job(cluster)
            return fleet
        except RequestError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise RequestError(f"bad fleet request: {error}") from None

    def fingerprint(self) -> str:
        """Canonical fingerprint over every tenant job + the cluster."""
        fleet = self.build_fleet()
        return _digest(
            {
                "cluster": cluster_to_dict(fleet.cluster),
                "tenants": {
                    name: job_fingerprint(job)
                    for name, job in fleet.jobs().items()
                },
                "max_rounds": self.max_rounds,
            }
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FleetRequest":
        if not isinstance(data, dict):
            raise RequestError(
                f"fleet request must be a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known - {"op"})
        if unknown:
            raise RequestError(
                f"fleet request has unknown key(s) "
                f"{', '.join(map(repr, unknown))}"
            )
        kwargs = {k: v for k, v in data.items() if k in known}
        try:
            return cls(**kwargs)
        except TypeError as error:
            raise RequestError(f"bad fleet request: {error}") from None


@dataclass(frozen=True)
class FleetResponse:
    """The service's answer to one :class:`FleetRequest`.

    Same status vocabulary as :class:`PlanResponse`.  An ``"ok"``
    response carries ``mode`` (``"joint"`` / ``"selfish"`` for the
    portfolio fallback / ``"heuristic"`` for the degraded rung), the
    fixed-point diagnostics, the aggregate throughputs of both the
    shipped and the selfish assignment, and one dict per tenant
    (name, model, source, contended/nominal iteration times, slowdown,
    throughput, strategy digest, contention description).
    """

    request_id: str = ""
    status: str = "ok"
    reason: Optional[str] = None
    source: Optional[str] = None
    degraded: bool = False
    fingerprint: Optional[str] = None
    mode: Optional[str] = None
    converged: bool = False
    oscillated: bool = False
    rounds: int = 0
    aggregate_throughput: Optional[float] = None
    selfish_aggregate_throughput: Optional[float] = None
    worst_slowdown: Optional[float] = None
    tenants: Tuple[dict, ...] = ()
    parallel_disabled_reason: Optional[str] = None
    timelines_checked: int = 0
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["tenants"] = list(self.tenants)
        return {k: v for k, v in data.items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict) -> "FleetResponse":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "tenants" in kwargs:
            kwargs["tenants"] = tuple(kwargs["tenants"])
        return cls(**kwargs)


def job_fingerprint(
    job: JobConfig,
    ratios: Optional[Sequence[float]] = None,
    error_budget: Optional[float] = None,
) -> str:
    """Canonical fingerprint of a job's planning inputs.

    Serializes the model trace, GC configuration, and cluster through
    the same dict forms the config files round-trip through, then
    hashes the canonical JSON.  Device profiles are part of
    ``SystemInfo`` but not of the wire vocabulary; requests always carry
    the default profiles, so they contribute nothing distinguishing.
    ``ratios`` / ``error_budget`` (the ratio-ladder planner knobs) are
    part of the decision and therefore of the key when present.
    """
    payload = {
        "model": model_to_dict(job.model),
        "gc": gc_to_dict(job.gc),
        "cluster": cluster_to_dict(job.system.cluster),
    }
    # Planner knobs join the fingerprint only when set, so every digest
    # minted before the ratio dimension existed stays valid.
    if ratios:
        payload["ratios"] = [float(ratio) for ratio in ratios]
    if error_budget is not None:
        payload["error_budget"] = float(error_budget)
    return _digest(payload)


def family_key(job: JobConfig) -> str:
    """The (model, GC) family a job belongs to — the stale-cache index.

    Two jobs share a family when they train the same model with the
    same compressor configuration; only the cluster differs.  A cached
    plan from the same family is structurally sensible on the new
    cluster even if no longer optimal, which is what the degradation
    ladder wants from a stale serve.
    """
    return _digest({"model": model_to_dict(job.model), "gc": gc_to_dict(job.gc)})


def strategy_digest(strategy: CompressionStrategy) -> str:
    """Cross-process-stable value digest of a strategy.

    Built from the per-option ``describe()`` strings (the complete
    option value), so two digests are equal iff the strategies assign
    value-equal options tensor by tensor — the wire-safe stand-in for
    comparing ``strategy.fingerprint()`` tuples, whose canonical keys
    are process-local.
    """
    text = "\n".join(option.describe() for option in strategy.options)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PlanResponse:
    """The service's answer to one :class:`PlanRequest`.

    ``status`` is ``"ok"`` (a plan is attached), ``"rejected"``
    (admission control or drain refused the request — ``reason`` says
    why in one line), or ``"error"`` (the request itself is unusable).
    An ``"ok"`` response carries the plan's provenance: ``source`` (one
    of the ``SOURCE_*`` constants) and ``degraded`` (True for
    stale-cache and heuristic plans served while the circuit breaker
    shields the planner).
    """

    request_id: str = ""
    status: str = "ok"
    reason: Optional[str] = None
    source: Optional[str] = None
    degraded: bool = False
    fingerprint: Optional[str] = None
    model: Optional[str] = None
    iteration_time: Optional[float] = None
    baseline_iteration_time: Optional[float] = None
    strategy_digest: Optional[str] = None
    options: Tuple[str, ...] = ()
    compressed_tensors: Optional[int] = None
    num_tensors: Optional[int] = None
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def speedup_over_fp32(self) -> Optional[float]:
        if not self.iteration_time or not self.baseline_iteration_time:
            return None
        return self.baseline_iteration_time / self.iteration_time

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["options"] = list(self.options)
        return {k: v for k, v in data.items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict) -> "PlanResponse":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "options" in kwargs:
            kwargs["options"] = tuple(kwargs["options"])
        return cls(**kwargs)


def encode_message(payload: dict) -> bytes:
    """One wire frame: compact JSON + newline (the protocol is
    newline-delimited JSON over a stream)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one wire frame, raising :class:`RequestError` on garbage."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RequestError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise RequestError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


__all__ = [
    "FleetRequest",
    "FleetResponse",
    "PlanRequest",
    "PlanResponse",
    "RequestError",
    "SOURCE_CACHE",
    "SOURCE_FRESH",
    "SOURCE_HEURISTIC",
    "SOURCE_STALE_CACHE",
    "TESTBEDS",
    "decode_message",
    "encode_message",
    "family_key",
    "job_fingerprint",
    "strategy_digest",
]
